//! Whole-program static syscall analysis: the approaches Loupe is
//! compared against, implemented as real call-graph reachability.
//!
//! The paper contrasts Loupe with binary-level and source-level static
//! analysis (Tsai et al. \[63\], the Unikraft analysers \[26, 27\]). Both
//! are *comprehensive but conservative*: they report every syscall that
//! could be reached under any workload, configuration or error path —
//! which is why Fig. 4 shows them 2–5× above what applications actually
//! need.
//!
//! Each app model lowers into a [`ProgramGraph`] (functions, direct and
//! indirect call edges, address-taken sets, per-object linkage, syscall
//! sites); the analyser walks reachability from the entry point at one
//! of four **precision levels**:
//!
//! * **L0** — naive binary analysis: every address-taken function is a
//!   candidate target of every indirect call, and a syscall site whose
//!   number sits in a register expands to the full table;
//! * **L1** — indirect-call candidates pruned by signature class
//!   (arity/type matching à la sysfilter);
//! * **L2** — L1 plus intraprocedural constant propagation, resolving
//!   `syscall(N)` sites whose number is a local literal;
//! * **L3** — source-level analysis: objects nothing references are
//!   dropped from the link (dead libc wrappers disappear), candidates
//!   restricted to linked code.
//!
//! Every attributed syscall carries a [`Witness`]: the shortest
//! entry→site call path that justifies the attribution, re-checkable
//! against the graph with [`verify_witness`]. By construction (see
//! [`ProgramGraph::validate`]) the attributed sets form the containment
//! chain **dynamic ⊆ L3 ⊆ L2 ⊆ L1 ⊆ L0**.
//!
//! # Examples
//!
//! ```
//! use loupe_apps::registry;
//! use loupe_static::{analyze_graph, Level};
//! use loupe_apps::ProgramGraph;
//!
//! let app = registry::find("redis").unwrap();
//! let graph = ProgramGraph::lower(app.as_ref());
//! let l0 = analyze_graph(&graph, Level::L0);
//! let l3 = analyze_graph(&graph, Level::L3);
//! assert!(l3.syscalls.is_subset(&l0.syscalls));
//! ```

use std::collections::VecDeque;

use loupe_apps::program::{CallEdge, FuncId, NumberOperand, ProgramGraph};
use loupe_apps::AppModel;
use loupe_syscalls::{Sysno, SysnoSet};
use serde::{Deserialize, Serialize};

/// The result of a static analysis pass.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticReport {
    /// Application name.
    pub app: String,
    /// Analysis level that produced this report.
    pub level: Level,
    /// Every syscall the analyser attributes to the application.
    pub syscalls: SysnoSet,
    /// One witness per attributed syscall: the shortest entry→site call
    /// path justifying it. Empty in reports stored by older versions.
    #[serde(default)]
    pub witnesses: Vec<Witness>,
}

impl StaticReport {
    /// The witness for `sysno`, if attributed.
    pub fn witness(&self, sysno: Sysno) -> Option<&Witness> {
        self.witnesses.iter().find(|w| w.sysno == sysno)
    }
}

/// Analysis precision level, naive binary (L0) to source-aware (L3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Naive binary analysis: all address-taken functions are indirect
    /// targets, register-number syscall sites expand to the full table.
    L0,
    /// Indirect-call candidates pruned by signature class.
    L1,
    /// L1 + intraprocedural constant propagation resolves `syscall(N)`.
    L2,
    /// Source-level: dead-linked objects excluded from the walk.
    L3,
}

// Manual serde impls: pre-ladder databases stored the two historic
// levels under `"Binary"`/`"Source"`, which must keep deserializing
// (into L0/L3) alongside the ladder names.
impl Serialize for Level {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(
            match self {
                Level::L0 => "L0",
                Level::L1 => "L1",
                Level::L2 => "L2",
                Level::L3 => "L3",
            }
            .to_owned(),
        )
    }
}

impl Deserialize for Level {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let name = v
            .as_str()
            .ok_or_else(|| serde::Error::custom(format!("expected level name, got {v:?}")))?;
        match name {
            "L0" | "Binary" => Ok(Level::L0),
            "L1" => Ok(Level::L1),
            "L2" => Ok(Level::L2),
            "L3" | "Source" => Ok(Level::L3),
            other => Err(serde::Error::custom(format!(
                "unknown analysis level `{other}`"
            ))),
        }
    }
}

impl Level {
    /// Every level, coarsest first (the precision ladder).
    pub const ALL: [Level; 4] = [Level::L0, Level::L1, Level::L2, Level::L3];

    /// The historic binary-level analysis: an alias for [`Level::L0`]
    /// (pre-ladder databases store this name).
    #[allow(non_upper_case_globals)]
    pub const Binary: Level = Level::L0;

    /// The historic source-level analysis: an alias for [`Level::L3`].
    #[allow(non_upper_case_globals)]
    pub const Source: Level = Level::L3;

    /// Stable lowercase label (db namespace keys, report tables, CLI).
    pub fn label(self) -> &'static str {
        match self {
            Level::L0 => "l0",
            Level::L1 => "l1",
            Level::L2 => "l2",
            Level::L3 => "l3",
        }
    }

    /// The label pre-ladder databases stored this level under, for the
    /// levels that existed then.
    pub fn legacy_label(self) -> Option<&'static str> {
        match self {
            Level::L0 => Some("binary"),
            Level::L3 => Some("source"),
            _ => None,
        }
    }

    /// Human-readable title for docs and CLI output.
    pub fn title(self) -> &'static str {
        match self {
            Level::L0 => "L0 (naive binary)",
            Level::L1 => "L1 (signature-pruned)",
            Level::L2 => "L2 (constant propagation)",
            Level::L3 => "L3 (source level)",
        }
    }

    /// What the level adds over the previous rung, for docs.
    pub fn description(self) -> &'static str {
        match self {
            Level::L0 => {
                "every address-taken function targets every indirect call; \
                 register-number syscall sites expand to the full table"
            }
            Level::L1 => "indirect-call candidates pruned by signature class",
            Level::L2 => "intraprocedural constant propagation resolves syscall(N) sites",
            Level::L3 => "dead-linked objects dropped; only source-linked code walked",
        }
    }

    /// Parses a CLI/user spelling: `l0`..`l3`, bare digits, or the
    /// legacy `binary`/`source` names.
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "l0" | "0" | "binary" => Some(Level::L0),
            "l1" | "1" => Some(Level::L1),
            "l2" | "2" => Some(Level::L2),
            "l3" | "3" | "source" => Some(Level::L3),
            _ => None,
        }
    }

    /// The analyser for this level, as a trait object.
    pub fn analyzer(self) -> Box<dyn StaticAnalyzer + Send + Sync> {
        Box::new(GraphAnalyzer::new(self))
    }
}

/// How a witness step was reached from its predecessor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EdgeKind {
    /// The first step: the program entry point.
    Entry,
    /// Reached through a direct call.
    Direct,
    /// Reached as a candidate target of an indirect call.
    Indirect,
}

/// One function on a witness path.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WitnessStep {
    /// Function name (graph names are unique).
    pub function: String,
    /// How the walk arrived here.
    pub edge: EdgeKind,
}

/// The justification for one attributed syscall: the shortest call path
/// from the entry point to a syscall site whose expansion (at the
/// report's level) contains the syscall.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Witness {
    /// The attributed syscall.
    pub sysno: Sysno,
    /// Entry-to-site path; the first step is always the entry point.
    pub path: Vec<WitnessStep>,
    /// Index of the justifying syscall site in the final function.
    pub site: usize,
}

impl Witness {
    /// Renders the path as `a → b → c [site k]` for CLI/doc output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, step) in self.path.iter().enumerate() {
            if i > 0 {
                out.push_str(match step.edge {
                    EdgeKind::Entry => " → ",
                    EdgeKind::Direct => " → ",
                    EdgeKind::Indirect => " ⇢ ", // over-approximated hop
                });
            }
            out.push_str(&step.function);
        }
        out.push_str(&format!(" [site {}]", self.site));
        out
    }
}

/// Whether `site`'s expansion at `level` contains `sysno`.
fn site_covers(site: NumberOperand, level: Level, sysno: Sysno) -> bool {
    match site {
        NumberOperand::Const(s) => s == sysno,
        NumberOperand::Register { resolvable } => match level {
            // Naive levels cannot read the register: the whole table.
            Level::L0 | Level::L1 => true,
            // Constant propagation resolves the literal when present.
            Level::L2 | Level::L3 => resolvable.is_none_or(|n| n == sysno),
        },
    }
}

/// Whether `target` is a candidate of an indirect call with signature
/// class `sig` at `level`.
fn indirect_candidate(graph: &ProgramGraph, level: Level, sig: u8, target: FuncId) -> bool {
    let f = &graph.functions[target];
    if !f.address_taken {
        return false;
    }
    match level {
        Level::L0 => true,
        Level::L1 | Level::L2 => f.sig == sig,
        Level::L3 => f.sig == sig && f.source_linked,
    }
}

/// Whether a direct call edge into `target` is walked at `level`
/// (source analysis never enters dead-linked objects).
fn direct_walkable(graph: &ProgramGraph, level: Level, target: FuncId) -> bool {
    level != Level::L3 || graph.functions[target].source_linked
}

/// Runs graph reachability over `graph` at `level`, attributing every
/// syscall some reachable site can expand to, with one shortest-path
/// [`Witness`] per attributed syscall (breadth-first, so paths are
/// minimal in call-edge count; ties broken by deterministic traversal
/// order).
pub fn analyze_graph(graph: &ProgramGraph, level: Level) -> StaticReport {
    let n = graph.functions.len();
    // Address-taken population, bucketed for the sig-pruning levels.
    let candidates: Vec<FuncId> = (0..n)
        .filter(|&i| graph.functions[i].address_taken)
        .collect();

    let mut prev: Vec<Option<(FuncId, EdgeKind)>> = vec![None; n];
    let mut seen = vec![false; n];
    let mut queue = VecDeque::new();
    seen[graph.entry] = true;
    queue.push_back(graph.entry);

    let mut syscalls = SysnoSet::new();
    let mut witnesses: Vec<Witness> = Vec::new();

    while let Some(f) = queue.pop_front() {
        // Attribute this function's sites.
        for (site_idx, site) in graph.functions[f].sites.iter().enumerate() {
            let expand = |syscalls: &mut SysnoSet, witnesses: &mut Vec<Witness>, s: Sysno| {
                if syscalls.insert(s) {
                    witnesses.push(Witness {
                        sysno: s,
                        path: path_to(graph, &prev, f),
                        site: site_idx,
                    });
                }
            };
            match site.number {
                NumberOperand::Const(s) => expand(&mut syscalls, &mut witnesses, s),
                NumberOperand::Register { resolvable } => match (level, resolvable) {
                    (Level::L2 | Level::L3, Some(s)) => expand(&mut syscalls, &mut witnesses, s),
                    _ => {
                        for s in Sysno::all() {
                            expand(&mut syscalls, &mut witnesses, s);
                        }
                    }
                },
            }
        }
        // Walk outgoing edges.
        for edge in &graph.functions[f].calls {
            match *edge {
                CallEdge::Direct { target } => {
                    if direct_walkable(graph, level, target) && !seen[target] {
                        seen[target] = true;
                        prev[target] = Some((f, EdgeKind::Direct));
                        queue.push_back(target);
                    }
                }
                CallEdge::Indirect { sig, .. } => {
                    for &t in &candidates {
                        if indirect_candidate(graph, level, sig, t) && !seen[t] {
                            seen[t] = true;
                            prev[t] = Some((f, EdgeKind::Indirect));
                            queue.push_back(t);
                        }
                    }
                }
            }
        }
    }

    witnesses.sort_by_key(|w| w.sysno);
    StaticReport {
        app: graph.app.clone(),
        level,
        syscalls,
        witnesses,
    }
}

/// Reconstructs the BFS path from the entry to `f`.
fn path_to(
    graph: &ProgramGraph,
    prev: &[Option<(FuncId, EdgeKind)>],
    f: FuncId,
) -> Vec<WitnessStep> {
    let mut steps = Vec::new();
    let mut cur = f;
    loop {
        match prev[cur] {
            Some((p, kind)) => {
                steps.push(WitnessStep {
                    function: graph.functions[cur].name.clone(),
                    edge: kind,
                });
                cur = p;
            }
            None => {
                steps.push(WitnessStep {
                    function: graph.functions[cur].name.clone(),
                    edge: EdgeKind::Entry,
                });
                break;
            }
        }
    }
    steps.reverse();
    steps
}

/// Re-walks a witness against the graph at `level`: every step must be
/// a real edge the level would take, and the final site must expand to
/// the witnessed syscall.
///
/// # Errors
///
/// A description of the first step that does not re-walk.
pub fn verify_witness(graph: &ProgramGraph, level: Level, w: &Witness) -> Result<(), String> {
    if w.path.is_empty() {
        return Err("empty witness path".into());
    }
    let resolve = |name: &str| -> Result<FuncId, String> {
        graph
            .find(name)
            .ok_or_else(|| format!("function `{name}` not in graph"))
    };
    let first = resolve(&w.path[0].function)?;
    if first != graph.entry {
        return Err(format!(
            "path starts at `{}`, not the entry point",
            w.path[0].function
        ));
    }
    if w.path[0].edge != EdgeKind::Entry {
        return Err("first step must be an Entry edge".into());
    }
    let mut at = first;
    for step in &w.path[1..] {
        let next = resolve(&step.function)?;
        let ok = match step.edge {
            EdgeKind::Entry => false,
            EdgeKind::Direct => {
                graph.functions[at]
                    .calls
                    .contains(&CallEdge::Direct { target: next })
                    && direct_walkable(graph, level, next)
            }
            EdgeKind::Indirect => graph.functions[at].calls.iter().any(|e| {
                matches!(*e, CallEdge::Indirect { sig, .. }
                    if indirect_candidate(graph, level, sig, next))
            }),
        };
        if !ok {
            return Err(format!(
                "no {:?} edge `{}` → `{}` at {}",
                step.edge,
                graph.functions[at].name,
                step.function,
                level.title()
            ));
        }
        at = next;
    }
    let sites = &graph.functions[at].sites;
    let site = sites
        .get(w.site)
        .ok_or_else(|| format!("`{}` has no site {}", graph.functions[at].name, w.site))?;
    if !site_covers(site.number, level, w.sysno) {
        return Err(format!(
            "site {} of `{}` cannot expand to `{}` at {}",
            w.site,
            graph.functions[at].name,
            w.sysno.name(),
            level.title()
        ));
    }
    Ok(())
}

/// Common interface of the per-level analysers.
pub trait StaticAnalyzer {
    /// Analyses one application (lowering it to its program graph).
    fn analyze(&self, app: &dyn AppModel) -> StaticReport;

    /// The analysis level.
    fn level(&self) -> Level;
}

/// The graph-reachability analyser at a chosen precision level.
#[derive(Debug, Clone, Copy)]
pub struct GraphAnalyzer {
    level: Level,
}

impl GraphAnalyzer {
    /// Creates the analyser for `level`.
    pub fn new(level: Level) -> GraphAnalyzer {
        GraphAnalyzer { level }
    }
}

impl StaticAnalyzer for GraphAnalyzer {
    fn analyze(&self, app: &dyn AppModel) -> StaticReport {
        analyze_graph(&ProgramGraph::lower(app), self.level)
    }

    fn level(&self) -> Level {
        self.level
    }
}

/// Binary-level analyser (à la Tsai et al. / sysfilter): the naive
/// [`Level::L0`] configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct BinaryAnalyzer;

impl BinaryAnalyzer {
    /// Creates the analyser.
    pub fn new() -> BinaryAnalyzer {
        BinaryAnalyzer
    }
}

impl StaticAnalyzer for BinaryAnalyzer {
    fn analyze(&self, app: &dyn AppModel) -> StaticReport {
        GraphAnalyzer::new(Level::L0).analyze(app)
    }

    fn level(&self) -> Level {
        Level::L0
    }
}

/// Source-level analyser (à la the Unikraft source analyser): the
/// [`Level::L3`] configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct SourceAnalyzer;

impl SourceAnalyzer {
    /// Creates the analyser.
    pub fn new() -> SourceAnalyzer {
        SourceAnalyzer
    }
}

impl StaticAnalyzer for SourceAnalyzer {
    fn analyze(&self, app: &dyn AppModel) -> StaticReport {
        GraphAnalyzer::new(Level::L3).analyze(app)
    }

    fn level(&self) -> Level {
        Level::L3
    }
}

/// API importance under static analysis: for each syscall, the fraction
/// of `reports` that contain it (the metric of Tsai et al. reused in
/// §5.1).
///
/// Delegates to [`loupe_plan::importance_fractions`] — the same
/// (NaN-safe) implementation that ranks the dynamic curves — borrowing
/// each report's set rather than cloning it.
pub fn api_importance(reports: &[StaticReport]) -> Vec<(Sysno, f64)> {
    loupe_plan::importance_fractions(reports.iter().map(|r| &r.syscalls))
}

#[cfg(test)]
mod tests {
    use super::*;
    use loupe_apps::registry;

    #[test]
    fn ladder_is_monotone_for_every_detailed_app() {
        for app in registry::detailed() {
            let graph = ProgramGraph::lower(app.as_ref());
            let reports: Vec<_> = Level::ALL
                .iter()
                .map(|&l| analyze_graph(&graph, l))
                .collect();
            for pair in reports.windows(2) {
                assert!(
                    pair[1].syscalls.is_subset(&pair[0].syscalls),
                    "{}: {} ⊄ {}",
                    app.name(),
                    pair[1].level.label(),
                    pair[0].level.label()
                );
            }
            assert!(
                graph.dynamic_reachable().is_subset(&reports[3].syscalls),
                "{}: dynamic ⊄ L3",
                app.name()
            );
            assert!(
                reports[0].syscalls.len() > 90,
                "{}: naive view too small ({})",
                app.name(),
                reports[0].syscalls.len()
            );
            // Signature pruning must actually prune something.
            assert!(
                reports[1].syscalls.len() < reports[0].syscalls.len(),
                "{}: L1 did not prune",
                app.name()
            );
            // Source level drops the dead libc objects.
            assert!(
                reports[3].syscalls.len() < reports[2].syscalls.len(),
                "{}: L3 did not drop dead objects",
                app.name()
            );
        }
    }

    #[test]
    fn every_attributed_syscall_has_a_verifying_witness() {
        // The acceptance anchor: for a detailed app, every attributed
        // syscall at every level carries a witness that re-walks.
        let app = registry::find("redis").unwrap();
        let graph = ProgramGraph::lower(app.as_ref());
        for &level in &Level::ALL {
            let report = analyze_graph(&graph, level);
            assert_eq!(
                report.witnesses.len(),
                report.syscalls.len(),
                "one witness per attributed syscall at {}",
                level.label()
            );
            for w in &report.witnesses {
                assert!(report.syscalls.contains(w.sysno));
                verify_witness(&graph, level, w).unwrap_or_else(|e| {
                    panic!("{} witness for {}: {e}", level.label(), w.sysno.name())
                });
            }
        }
    }

    #[test]
    fn witnesses_are_shortest_paths_and_render() {
        let app = registry::find("weborf").unwrap();
        let graph = ProgramGraph::lower(app.as_ref());
        let report = analyze_graph(&graph, Level::L3);
        // Init syscalls sit one hop from the entry.
        let w = report
            .witness(loupe_syscalls::Sysno::execve)
            .expect("execve witnessed");
        assert_eq!(w.path.len(), 2, "{:?}", w);
        assert_eq!(w.path[0].function, "crt::_start");
        assert!(w.render().contains("crt::libc_start_main"));
        // A corrupted witness must not verify.
        let mut bad = w.clone();
        bad.path[1].function = "app::main".into();
        assert!(verify_witness(&graph, Level::L3, &bad).is_err());
    }

    #[test]
    fn constant_propagation_resolves_raw_sites() {
        // A fleet app with raw syscall(N) sites: the naive levels expand
        // them to the full table, L2 resolves them.
        let app = registry::dataset()
            .into_iter()
            .find(|a| !a.code().raw_syscalls.is_empty())
            .expect("a fleet app with raw sites");
        let graph = ProgramGraph::lower(app.as_ref());
        let l1 = analyze_graph(&graph, Level::L1);
        let l2 = analyze_graph(&graph, Level::L2);
        assert_eq!(
            l1.syscalls.len(),
            Sysno::all().count(),
            "{}: unknown register expands to the whole table",
            app.name()
        );
        assert!(l2.syscalls.len() < l1.syscalls.len() / 2, "{}", app.name());
        for s in app.code().raw_syscalls.iter() {
            assert!(l2.syscalls.contains(s));
            let w = l2.witness(s).expect("resolved site witnessed");
            verify_witness(&graph, Level::L2, w).unwrap();
        }
    }

    #[test]
    fn legacy_levels_alias_the_ladder_ends() {
        assert_eq!(Level::Binary, Level::L0);
        assert_eq!(Level::Source, Level::L3);
        assert_eq!(Level::parse("binary"), Some(Level::L0));
        assert_eq!(Level::parse("source"), Some(Level::L3));
        assert_eq!(Level::parse("L2"), Some(Level::L2));
        assert_eq!(Level::parse("nope"), None);
        // Pre-ladder reports deserialize into the aliased levels, with
        // no witnesses.
        let old = r#"{"app":"redis","level":"Binary","syscalls":[0]}"#;
        let report: StaticReport = serde_json::from_str(old).unwrap();
        assert_eq!(report.level, Level::L0);
        assert!(report.witnesses.is_empty());
        let app = registry::find("redis").unwrap();
        let b = BinaryAnalyzer::new().analyze(app.as_ref());
        let s = SourceAnalyzer::new().analyze(app.as_ref());
        assert_eq!(b.level, Level::L0);
        assert_eq!(s.level, Level::L3);
        assert!(s.syscalls.is_subset(&b.syscalls));
    }

    #[test]
    fn source_view_is_still_an_overestimate_of_behaviour() {
        // The source level includes error-path syscalls the workloads
        // never execute; spot-check one known dead branch.
        let app = registry::find("redis").unwrap();
        let s = SourceAnalyzer::new().analyze(app.as_ref());
        assert!(s.syscalls.contains(loupe_syscalls::Sysno::mremap));
    }

    #[test]
    fn importance_is_sorted_descending() {
        let bin = BinaryAnalyzer::new();
        let reports: Vec<_> = registry::detailed()
            .iter()
            .map(|a| bin.analyze(a.as_ref()))
            .collect();
        let imp = api_importance(&reports);
        assert!(imp.windows(2).all(|w| w[0].1 >= w[1].1));
        assert!(imp[0].1 >= 0.99, "top syscalls are in every binary");
    }
}
