//! Static-analysis baselines: the approaches Loupe is compared against.
//!
//! The paper contrasts Loupe with binary-level and source-level static
//! analysis (Tsai et al. \[63\], the Unikraft analysers \[26, 27\]). Both are
//! *comprehensive but conservative*: they report every syscall that could
//! be reached under any workload, configuration or error path — which is
//! why Fig. 4 shows them 2–5× above what applications actually need.
//!
//! These analysers operate on each app model's `AppCode` descriptor (its
//! declared source/binary syscall surface), reproducing the over-
//! estimation *mechanism*: dead and error-path code, plus — at the binary
//! level — the entire linked libc and over-approximated indirect calls.
//!
//! # Examples
//!
//! ```
//! use loupe_apps::registry;
//! use loupe_static::{BinaryAnalyzer, SourceAnalyzer, StaticAnalyzer};
//!
//! let app = registry::find("redis").unwrap();
//! let bin = BinaryAnalyzer::new().analyze(app.as_ref());
//! let src = SourceAnalyzer::new().analyze(app.as_ref());
//! assert!(src.syscalls.is_subset(&bin.syscalls));
//! ```

use loupe_apps::AppModel;
use loupe_syscalls::SysnoSet;
use serde::{Deserialize, Serialize};

/// The result of a static analysis pass.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticReport {
    /// Application name.
    pub app: String,
    /// Analysis level that produced this report.
    pub level: Level,
    /// Every syscall the analyser attributes to the application.
    pub syscalls: SysnoSet,
}

/// Analysis level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Level {
    /// Operates on ELF binaries: sees the app + all linked libraries, and
    /// over-approximates indirect calls.
    Binary,
    /// Operates on sources: sees all branches of the app code (including
    /// error paths) but resolves the libc more precisely.
    Source,
}

impl Level {
    /// Both levels, binary first (the paper's Fig. 4 ordering).
    pub const ALL: [Level; 2] = [Level::Binary, Level::Source];

    /// Stable lowercase label (db namespace keys, report tables).
    pub fn label(self) -> &'static str {
        match self {
            Level::Binary => "binary",
            Level::Source => "source",
        }
    }

    /// The analyser for this level, as a trait object.
    pub fn analyzer(self) -> Box<dyn StaticAnalyzer + Send + Sync> {
        match self {
            Level::Binary => Box::new(BinaryAnalyzer::new()),
            Level::Source => Box::new(SourceAnalyzer::new()),
        }
    }
}

/// Common interface of the two analysers.
pub trait StaticAnalyzer {
    /// Analyses one application.
    fn analyze(&self, app: &dyn AppModel) -> StaticReport;

    /// The analysis level.
    fn level(&self) -> Level;
}

/// Binary-level analyser (à la Tsai et al. / sysfilter).
#[derive(Debug, Clone, Copy, Default)]
pub struct BinaryAnalyzer;

impl BinaryAnalyzer {
    /// Creates the analyser.
    pub fn new() -> BinaryAnalyzer {
        BinaryAnalyzer
    }
}

impl StaticAnalyzer for BinaryAnalyzer {
    fn analyze(&self, app: &dyn AppModel) -> StaticReport {
        let spec = app.spec();
        StaticReport {
            app: spec.name,
            level: Level::Binary,
            syscalls: app.code().binary_view(spec.libc),
        }
    }

    fn level(&self) -> Level {
        Level::Binary
    }
}

/// Source-level analyser (à la the Unikraft source analyser).
#[derive(Debug, Clone, Copy, Default)]
pub struct SourceAnalyzer;

impl SourceAnalyzer {
    /// Creates the analyser.
    pub fn new() -> SourceAnalyzer {
        SourceAnalyzer
    }
}

impl StaticAnalyzer for SourceAnalyzer {
    fn analyze(&self, app: &dyn AppModel) -> StaticReport {
        let spec = app.spec();
        StaticReport {
            app: spec.name,
            level: Level::Source,
            syscalls: app.code().source_view(spec.libc),
        }
    }

    fn level(&self) -> Level {
        Level::Source
    }
}

/// API importance under static analysis: for each syscall, the fraction of
/// `reports` that contain it (the metric of Tsai et al. reused in §5.1).
///
/// Delegates to [`loupe_plan::importance_fractions`] — the same (NaN-safe)
/// implementation that ranks the dynamic curves, so static and dynamic
/// importance are always computed identically and only the input sets
/// differ.
pub fn api_importance(reports: &[StaticReport]) -> Vec<(loupe_syscalls::Sysno, f64)> {
    let sets: Vec<SysnoSet> = reports.iter().map(|r| r.syscalls.clone()).collect();
    loupe_plan::importance_fractions(&sets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use loupe_apps::registry;

    #[test]
    fn binary_dominates_source_for_every_detailed_app() {
        let bin = BinaryAnalyzer::new();
        let src = SourceAnalyzer::new();
        for app in registry::detailed() {
            let b = bin.analyze(app.as_ref());
            let s = src.analyze(app.as_ref());
            assert!(
                s.syscalls.is_subset(&b.syscalls),
                "{}: source not within binary",
                app.name()
            );
            assert!(
                b.syscalls.len() > 100,
                "{}: binary view too small ({})",
                app.name(),
                b.syscalls.len()
            );
        }
    }

    #[test]
    fn source_view_is_still_an_overestimate_of_behaviour() {
        // The source view includes error-path syscalls the workloads never
        // execute; spot-check one known dead branch.
        let app = registry::find("redis").unwrap();
        let s = SourceAnalyzer::new().analyze(app.as_ref());
        assert!(s.syscalls.contains(loupe_syscalls::Sysno::mremap));
    }

    #[test]
    fn importance_is_sorted_descending() {
        let bin = BinaryAnalyzer::new();
        let reports: Vec<_> = registry::detailed()
            .iter()
            .map(|a| bin.analyze(a.as_ref()))
            .collect();
        let imp = api_importance(&reports);
        assert!(imp.windows(2).all(|w| w[0].1 >= w[1].1));
        assert!(imp[0].1 >= 0.99, "top syscalls are in every binary");
    }
}
