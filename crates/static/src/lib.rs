//! Static-analysis baselines: the approaches Loupe is compared against.
//!
//! The paper contrasts Loupe with binary-level and source-level static
//! analysis (Tsai et al. \[63\], the Unikraft analysers \[26, 27\]). Both are
//! *comprehensive but conservative*: they report every syscall that could
//! be reached under any workload, configuration or error path — which is
//! why Fig. 4 shows them 2–5× above what applications actually need.
//!
//! These analysers operate on each app model's `AppCode` descriptor (its
//! declared source/binary syscall surface), reproducing the over-
//! estimation *mechanism*: dead and error-path code, plus — at the binary
//! level — the entire linked libc and over-approximated indirect calls.
//!
//! # Examples
//!
//! ```
//! use loupe_apps::registry;
//! use loupe_static::{BinaryAnalyzer, SourceAnalyzer, StaticAnalyzer};
//!
//! let app = registry::find("redis").unwrap();
//! let bin = BinaryAnalyzer::new().analyze(app.as_ref());
//! let src = SourceAnalyzer::new().analyze(app.as_ref());
//! assert!(src.syscalls.is_subset(&bin.syscalls));
//! ```

use loupe_apps::AppModel;
use loupe_syscalls::SysnoSet;
use serde::{Deserialize, Serialize};

/// The result of a static analysis pass.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticReport {
    /// Application name.
    pub app: String,
    /// Analysis level that produced this report.
    pub level: Level,
    /// Every syscall the analyser attributes to the application.
    pub syscalls: SysnoSet,
}

/// Analysis level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Level {
    /// Operates on ELF binaries: sees the app + all linked libraries, and
    /// over-approximates indirect calls.
    Binary,
    /// Operates on sources: sees all branches of the app code (including
    /// error paths) but resolves the libc more precisely.
    Source,
}

/// Common interface of the two analysers.
pub trait StaticAnalyzer {
    /// Analyses one application.
    fn analyze(&self, app: &dyn AppModel) -> StaticReport;

    /// The analysis level.
    fn level(&self) -> Level;
}

/// Binary-level analyser (à la Tsai et al. / sysfilter).
#[derive(Debug, Clone, Copy, Default)]
pub struct BinaryAnalyzer;

impl BinaryAnalyzer {
    /// Creates the analyser.
    pub fn new() -> BinaryAnalyzer {
        BinaryAnalyzer
    }
}

impl StaticAnalyzer for BinaryAnalyzer {
    fn analyze(&self, app: &dyn AppModel) -> StaticReport {
        let spec = app.spec();
        StaticReport {
            app: spec.name,
            level: Level::Binary,
            syscalls: app.code().binary_view(spec.libc),
        }
    }

    fn level(&self) -> Level {
        Level::Binary
    }
}

/// Source-level analyser (à la the Unikraft source analyser).
#[derive(Debug, Clone, Copy, Default)]
pub struct SourceAnalyzer;

impl SourceAnalyzer {
    /// Creates the analyser.
    pub fn new() -> SourceAnalyzer {
        SourceAnalyzer
    }
}

impl StaticAnalyzer for SourceAnalyzer {
    fn analyze(&self, app: &dyn AppModel) -> StaticReport {
        let spec = app.spec();
        StaticReport {
            app: spec.name,
            level: Level::Source,
            syscalls: app.code().source_view(spec.libc),
        }
    }

    fn level(&self) -> Level {
        Level::Source
    }
}

/// API importance under static analysis: for each syscall, the fraction of
/// `reports` that contain it (the metric of Tsai et al. reused in §5.1).
pub fn api_importance(reports: &[StaticReport]) -> Vec<(loupe_syscalls::Sysno, f64)> {
    use std::collections::BTreeMap;
    let mut counts: BTreeMap<loupe_syscalls::Sysno, usize> = BTreeMap::new();
    for r in reports {
        for s in r.syscalls.iter() {
            *counts.entry(s).or_insert(0) += 1;
        }
    }
    let total = reports.len().max(1) as f64;
    let mut v: Vec<_> = counts
        .into_iter()
        .map(|(s, c)| (s, c as f64 / total))
        .collect();
    v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use loupe_apps::registry;

    #[test]
    fn binary_dominates_source_for_every_detailed_app() {
        let bin = BinaryAnalyzer::new();
        let src = SourceAnalyzer::new();
        for app in registry::detailed() {
            let b = bin.analyze(app.as_ref());
            let s = src.analyze(app.as_ref());
            assert!(
                s.syscalls.is_subset(&b.syscalls),
                "{}: source not within binary",
                app.name()
            );
            assert!(
                b.syscalls.len() > 100,
                "{}: binary view too small ({})",
                app.name(),
                b.syscalls.len()
            );
        }
    }

    #[test]
    fn source_view_is_still_an_overestimate_of_behaviour() {
        // The source view includes error-path syscalls the workloads never
        // execute; spot-check one known dead branch.
        let app = registry::find("redis").unwrap();
        let s = SourceAnalyzer::new().analyze(app.as_ref());
        assert!(s.syscalls.contains(loupe_syscalls::Sysno::mremap));
    }

    #[test]
    fn importance_is_sorted_descending() {
        let bin = BinaryAnalyzer::new();
        let reports: Vec<_> = registry::detailed()
            .iter()
            .map(|a| bin.analyze(a.as_ref()))
            .collect();
        let imp = api_importance(&reports);
        assert!(imp.windows(2).all(|w| w[0].1 >= w[1].1));
        assert!(imp[0].1 >= 0.99, "top syscalls are in every binary");
    }
}
