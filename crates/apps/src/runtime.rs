//! Shared application runtime: the building blocks the detailed app models
//! are written in.
//!
//! Each helper encodes one of the failure-resilience idioms the paper
//! catalogues in §5.2 (ignore / alternative syscall / safe default /
//! disable feature / abort), so that the Loupe engine's stub and fake runs
//! produce the same classifications the authors observed on real software.

use bytes::Bytes;
use loupe_kernel::LinuxSim;
use loupe_syscalls::Sysno;

use crate::env::Env;
use crate::libc::{LibcRuntime, LockOutcome};
use crate::model::Exit;

/// Pre-populates the VFS with the files every dynamically linked
/// application needs (the base-image half of the paper's Dockerfiles).
pub fn provision_base(sim: &mut LinuxSim) {
    sim.vfs.add_file("/lib/libc.so.6", vec![0x7f; 2048]);
    sim.vfs
        .add_file("/etc/passwd", b"root:x:0:0::/root:/bin/sh\n".to_vec());
    sim.vfs.add_file("/etc/group", b"root:x:0:\n".to_vec());
    sim.vfs
        .add_file("/etc/hosts", b"127.0.0.1 localhost\n".to_vec());
    sim.vfs
        .add_file("/etc/resolv.conf", b"nameserver 127.0.0.1\n".to_vec());
    sim.vfs.add_file("/etc/localtime", vec![0x54; 128]);
    sim.vfs.mkdir("/var/log");
    sim.vfs.mkdir("/var/run");
    sim.vfs.mkdir("/tmp");
}

/// Which readiness API a server uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventApi {
    /// `epoll_create1` (modern), falling back to `epoll_create`.
    Epoll,
    /// `poll(2)`.
    Poll,
    /// `select(2)`.
    Select,
}

/// How the server writes responses (§5.6: the paper distinguishes `write`
/// vs `writev` payload paths; Table 2 relies on Nginx logging via `write`
/// but answering via `writev`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponsePath {
    /// `write(2)`.
    Write,
    /// `writev(2)`.
    Writev,
    /// `sendto(2)`.
    Sendto,
    /// `sendfile(2)` from a content file, with `writev` for headers.
    Sendfile {
        /// VFS path of the file served.
        content_fd_path: &'static str,
    },
}

/// Creates, binds and configures the listening socket.
///
/// # Errors
///
/// `socket`/`bind`/`listen` failures are fatal (§5.2: fundamental features
/// that can "almost never" be stubbed or faked). The non-blocking setup is
/// fatal only when `nonblock_fatal` is set (F_SETFL is required by every
/// app in the paper's dataset except Nginx, which uses `ioctl(FIONBIO)`).
pub fn listen_socket(
    env: &mut Env<'_>,
    port: u16,
    nonblock_via_ioctl: bool,
    nonblock_fatal: bool,
) -> Result<u64, Exit> {
    let r = env.sys(Sysno::socket, [2, 1, 0, 0, 0, 0]);
    if r.ret < 0 {
        return Err(Exit::Crash("socket() failed".into()));
    }
    let fd = r.ret as u64;
    let r = env.sys(Sysno::setsockopt, [fd, 1, 2, 1, 0, 0]); // SO_REUSEADDR
    if r.is_err() {
        env.feature("so-reuseaddr", false); // non-fatal tuning
    }
    if env.sys(Sysno::bind, [fd, port as u64, 0, 0, 0, 0]).ret < 0 {
        return Err(Exit::Crash(format!("bind() to port {port} failed")));
    }
    if env.sys(Sysno::listen, [fd, 511, 0, 0, 0, 0]).ret < 0 {
        return Err(Exit::Crash("listen() failed".into()));
    }
    let nb = if nonblock_via_ioctl {
        env.sys(Sysno::ioctl, [fd, 0x5421 /* FIONBIO */, 1, 0, 0, 0])
    } else {
        env.sys(Sysno::fcntl, [fd, 4 /* F_SETFL */, 0x800, 0, 0, 0])
    };
    if nb.ret < 0 && nonblock_fatal {
        return Err(Exit::Crash("cannot set O_NONBLOCK on listener".into()));
    }
    // Close-on-exec hardening: universally attempted, never checked
    // (§5.4: F_SETFD is widely executed and always stubbable).
    let _ = env.sys(Sysno::fcntl, [fd, 2 /* F_SETFD */, 1, 0, 0, 0]);
    if !nonblock_via_ioctl && nonblock_fatal {
        // libevent-style verification: read the flags back. A *faked*
        // F_SETFL leaves the socket blocking, which would deadlock the
        // event loop — this is what makes F_SETFL a required sub-feature
        // (§5.4) while F_SETFD stays stubbable.
        let flags = env.sys(Sysno::fcntl, [fd, 3 /* F_GETFL */, 0, 0, 0, 0]);
        if flags.ret < 0 || flags.ret as u64 & 0x800 == 0 {
            return Err(Exit::Crash(
                "listener did not enter non-blocking mode".into(),
            ));
        }
    }
    Ok(fd)
}

/// Sets up the readiness mechanism and registers `fds`.
///
/// # Errors
///
/// Event-driven servers cannot run without their readiness API: failures
/// are fatal crashes, mirroring how real servers abort when
/// `epoll_create` fails.
pub fn event_setup(env: &mut Env<'_>, api: EventApi, fds: &[u64]) -> Result<Option<u64>, Exit> {
    match api {
        EventApi::Epoll => {
            let mut r = env.sys(Sysno::epoll_create1, [0; 6]);
            if r.ret < 0 {
                // Alternative-syscall resilience: fall back to the legacy
                // epoll_create (§5.2 "using other system calls").
                r = env.sys(Sysno::epoll_create, [16, 0, 0, 0, 0, 0]);
            }
            if r.ret < 0 {
                return Err(Exit::Crash("no usable event notification mechanism".into()));
            }
            let ep = r.ret as u64;
            for &fd in fds {
                if env.sys(Sysno::epoll_ctl, [ep, 1, fd, 0, 0, 0]).ret < 0 {
                    return Err(Exit::Crash("epoll_ctl(ADD) failed".into()));
                }
            }
            Ok(Some(ep))
        }
        EventApi::Poll | EventApi::Select => Ok(None),
    }
}

/// Queries the fd limit and sizes the client table (Fig. 6a: Redis).
///
/// Returns the configured max-clients. On getter failure the application
/// logs a warning and adopts a conservative default — the safe-default
/// resilience that makes `getrlimit`/`prlimit64` stubbable.
pub fn tune_fd_limit(env: &mut Env<'_>, getter: Sysno, want: u64) -> u64 {
    let r = match getter {
        Sysno::prlimit64 => env.sys(Sysno::prlimit64, [0, 7, 0, 0, 0, 0]),
        _ => env.sys(Sysno::getrlimit, [7, 0, 0, 0, 0, 0]),
    };
    match r.payload {
        loupe_kernel::Payload::Pair(cur, max) if !r.is_err() => {
            if cur < want && want <= max {
                // Try to raise the soft limit; ignore failure.
                let raised = match getter {
                    Sysno::prlimit64 => env.sys(Sysno::prlimit64, [0, 7, want, max, 0, 0]),
                    _ => env.sys(Sysno::setrlimit, [7, want, max, 0, 0, 0]),
                };
                if !raised.is_err() {
                    return want - 32;
                }
            }
            cur.saturating_sub(32).min(want)
        }
        _ => {
            // "Unable to obtain the current NOFILE limit, assuming 1024".
            env.feature("fd-limit-tuning", false);
            1024 - 32
        }
    }
}

/// Drops root privileges the way the server apps do (Fig. 6b: Nginx).
///
/// # Errors
///
/// Each step *checks* its return value and treats failure as fatal —
/// which is why these syscalls cannot be stubbed but *can* be faked
/// (success without effect is harmless without a user/kernel boundary).
pub fn drop_privileges(env: &mut Env<'_>, keepcaps: bool) -> Result<(), Exit> {
    if keepcaps {
        let r = env.sys(Sysno::prctl, [8 /* PR_SET_KEEPCAPS */, 1, 0, 0, 0, 0]);
        if r.ret < 0 {
            return Err(Exit::Crash("prctl(PR_SET_KEEPCAPS, 1) failed".into()));
        }
    }
    if env.sys(Sysno::setgroups, [0, 0, 0, 0, 0, 0]).ret < 0 {
        return Err(Exit::Crash("setgroups() failed".into()));
    }
    if env.sys(Sysno::setgid, [33, 0, 0, 0, 0, 0]).ret < 0 {
        return Err(Exit::Crash("setgid(www-data) failed".into()));
    }
    if env.sys(Sysno::setuid, [33, 0, 0, 0, 0, 0]).ret < 0 {
        return Err(Exit::Crash("setuid(www-data) failed".into()));
    }
    Ok(())
}

/// Reads a pseudo-file (`/proc`, `/sys`, `/dev`) the way applications
/// probe kernel tunables at startup: open → read → close. Returns whether
/// usable content came back; callers treat failure with ignore- or
/// feature-resilience (§3.3).
pub fn read_pseudo(env: &mut Env<'_>, open_sys: Sysno, path: &str) -> bool {
    let f = env.sys_path(open_sys, [0; 6], path);
    if f.ret < 0 {
        return false;
    }
    let fd = f.ret as u64;
    let r = env.sys(Sysno::read, [fd, 0, 256, 0, 0, 0]);
    let _ = env.sys(Sysno::close, [fd, 0, 0, 0, 0, 0]);
    r.ret >= 0 && r.payload.as_bytes().is_some()
}

/// Standard daemon housekeeping: new session, umask, pid file. All
/// failure-oblivious (ignore-resilience, §5.2).
pub fn daemonize(env: &mut Env<'_>, open_sys: Sysno, pidfile: &str) {
    let _ = env.sys0(Sysno::setsid);
    let _ = env.sys(Sysno::umask, [0o022, 0, 0, 0, 0, 0]);
    let r = env.sys_path(open_sys, [0, 0, 0x40 /* O_CREAT */, 0, 0, 0], pidfile);
    if r.ret >= 0 {
        let fd = r.ret as u64;
        let _ = env.sys_data(Sysno::write, [fd, 0, 0, 0, 0, 0], &b"4242\n"[..]);
        let _ = env.sys(Sysno::close, [fd, 0, 0, 0, 0, 0]);
    }
}

/// Configuration for the request-serving loop.
#[derive(Debug, Clone)]
pub struct ServeCfg {
    /// Listening port.
    pub port: u16,
    /// Listener fd (from [`listen_socket`]).
    pub listen_fd: u64,
    /// epoll fd (from [`event_setup`]), `None` for poll/select servers.
    pub epoll_fd: Option<u64>,
    /// Which API detects readiness when `epoll_fd` is `None`.
    pub fallback_api: EventApi,
    /// Which syscall reads requests (`read` for modern apps, `recvfrom` for
    /// older socket-API code).
    pub read_syscall: Sysno,
    /// How responses reach the client.
    pub response: ResponsePath,
    /// Response body size in bytes.
    pub response_len: usize,
    /// Application compute per request, in time units.
    pub work_per_request: u64,
    /// Access-log fd: one `write` per request when set (Table 2's Nginx
    /// `write` row).
    pub access_log_fd: Option<u64>,
    /// Whether to use `accept4` (modern) or `accept` (older apps).
    pub accept4: bool,
    /// Keep-alive depth: requests served per client connection before it
    /// is closed (benchmark clients reuse connections).
    pub close_every: u32,
}

/// Per-request hook outcome for [`serve_requests`].
pub type HookResult = Result<(), Exit>;

/// Drives `n` end-to-end requests: the embedded test script connects a
/// client, the application accepts/reads/responds through the (interposed)
/// kernel, and the script verifies the bytes actually arrived.
///
/// Returns the number of *verified* responses, also recorded in the env.
///
/// # Errors
///
/// Propagates crash/hang decisions from the application hook, and declares
/// the application [`Exit::Hung`] when its event loop stops seeing events
/// entirely (the paper's "unresponsiveness" failure sign, §3.2).
pub fn serve_requests(
    env: &mut Env<'_>,
    cfg: &ServeCfg,
    n: u32,
    mut per_request: impl FnMut(&mut Env<'_>, u32, u64) -> HookResult,
) -> Result<u64, Exit> {
    let mut served = 0u64;
    let mut loop_starved = 0u32;
    let request = Bytes::from_static(b"GET / HTTP/1.1\r\nHost: localhost\r\n\r\n");
    let keep_alive = cfg.close_every.max(1);
    // Live (client-conn, app-fd) pair while a keep-alive batch is open.
    let mut live: Option<(loupe_kernel::net::ConnId, u64)> = None;
    for i in 0..n {
        // ---- test-script side: connect (or reuse) and send a request ----
        let (conn, known_fd) = match live {
            Some((conn, fd)) => (conn, Some(fd)),
            None => {
                let Some(conn) = env.host_mut().connect(cfg.port) else {
                    env.fail("connection refused");
                    break;
                };
                (conn, None)
            }
        };
        env.host_mut().send(conn, request.clone());

        // ---- application side ----
        let ready = match cfg.epoll_fd {
            Some(ep) => env.sys(Sysno::epoll_wait, [ep, 0, 64, 0, 0, 0]).ret,
            None => match cfg.fallback_api {
                EventApi::Select => env.sys(Sysno::select, [64, 0, 0, 0, 0, 0]).ret,
                _ => env.sys(Sysno::poll, [0, 1, 100, 0, 0, 0]).ret,
            },
        };
        if ready <= 0 {
            loop_starved += 1;
            if loop_starved >= 3 {
                return Err(Exit::Hung("event loop sees no events".into()));
            }
            continue;
        }
        loop_starved = 0;

        let cfd = match known_fd {
            Some(fd) => fd,
            None => {
                let acc = if cfg.accept4 {
                    env.sys(Sysno::accept4, [cfg.listen_fd, 0, 0, 0x800, 0, 0])
                } else {
                    env.sys(Sysno::accept, [cfg.listen_fd, 0, 0, 0, 0, 0])
                };
                if acc.ret < 0 {
                    env.fail("accept failed");
                    if env.failure_count() > 3 {
                        return Err(Exit::Hung("cannot accept connections".into()));
                    }
                    continue;
                }
                let fd = acc.ret as u64;
                // Register the accepted connection for readiness (keep-
                // alive requests arrive on it, not on the listener).
                if let Some(ep) = cfg.epoll_fd {
                    let _ = env.sys(Sysno::epoll_ctl, [ep, 1, fd, 0, 0, 0]);
                }
                live = Some((conn, fd));
                fd
            }
        };

        let req = env.sys(cfg.read_syscall, [cfd, 0, 4096, 0, 0, 0]);
        if req.ret <= 0 {
            env.fail("empty request read");
            let _ = env.sys(Sysno::close, [cfd, 0, 0, 0, 0, 0]);
            live = None;
            continue;
        }

        env.charge(cfg.work_per_request);
        per_request(env, i, cfd)?;

        // Access log line (ignore-resilience: failure only degrades the
        // logging feature, Table 2).
        if let Some(log_fd) = cfg.access_log_fd {
            let line = b"127.0.0.1 - - \"GET /\" 200 612\n";
            let w = env.sys_data(Sysno::write, [log_fd, 0, 0, 0, 0, 0], &line[..]);
            if w.ret < line.len() as i64 {
                env.feature("access-logging", false);
            }
        }

        // Response.
        let body = vec![b'X'; cfg.response_len];
        let sent = match cfg.response {
            ResponsePath::Write => env.sys_data(Sysno::write, [cfd, 0, 0, 0, 0, 0], body),
            ResponsePath::Writev => env.sys_data(Sysno::writev, [cfd, 0, 0, 0, 0, 0], body),
            ResponsePath::Sendto => env.sys_data(Sysno::sendto, [cfd, 0, 0, 0, 0, 0], body),
            ResponsePath::Sendfile { content_fd_path } => {
                let header = env.sys_data(
                    Sysno::writev,
                    [cfd, 0, 0, 0, 0, 0],
                    &b"HTTP/1.1 200 OK\r\n\r\n"[..],
                );
                if header.ret < 0 {
                    header
                } else {
                    let f = env.sys_path(Sysno::openat, [0; 6], content_fd_path);
                    if f.ret < 0 {
                        f
                    } else {
                        let ffd = f.ret as u64;
                        let out = env.sys(
                            Sysno::sendfile,
                            [cfd, ffd, 0, cfg.response_len as u64, 0, 0],
                        );
                        let _ = env.sys(Sysno::close, [ffd, 0, 0, 0, 0, 0]);
                        out
                    }
                }
            }
        };
        if sent.ret < 0 {
            env.fail("response write failed");
        }

        // Keep-alive: close the connection only at batch boundaries.
        let batch_done = (i + 1) % keep_alive == 0 || i + 1 == n;
        if batch_done {
            let _ = env.sys(Sysno::close, [cfd, 0, 0, 0, 0, 0]);
            live = None;
        }

        // ---- test-script side: verify the bytes arrived ----
        let mut got = 0usize;
        while let Some(chunk) = env.host_mut().recv(conn) {
            got += chunk.len();
        }
        if got > 0 {
            env.record_response();
            served += 1;
        } else {
            env.fail("client received no response");
        }
        if batch_done {
            env.host_mut().close(conn);
        }
    }
    Ok(served)
}

/// A contended pthread lock round-trip with corruption accounting: the
/// Redis/Table 2 `futex` dynamics.
///
/// `contended` forces the slow path (another logical thread holds the
/// lock). Returns `true` if the critical section was entered consistently.
pub fn locked_section(
    env: &mut Env<'_>,
    libc: &mut LibcRuntime,
    addr: u64,
    contended: bool,
) -> bool {
    if contended {
        env.mem_store(addr, 1);
    }
    let outcome = libc.lock(env, addr);
    let consistent = outcome != LockOutcome::Corrupted;
    // Critical section work.
    env.charge(5);
    libc.unlock(env, addr);
    consistent
}

#[cfg(test)]
mod tests {
    use super::*;
    use loupe_kernel::{Kernel, LinuxSim};

    #[test]
    fn provision_base_adds_loader_files() {
        let mut sim = LinuxSim::new();
        provision_base(&mut sim);
        assert!(sim.vfs.exists("/lib/libc.so.6"));
        assert!(sim.vfs.exists("/etc/passwd"));
    }

    #[test]
    fn listen_socket_happy_path() {
        let mut sim = LinuxSim::new();
        let mut env = Env::new(&mut sim);
        let fd = listen_socket(&mut env, 8080, false, true).unwrap();
        assert!(fd >= 3);
        drop(env);
        assert!(sim.host_mut().connect(8080).is_some());
    }

    #[test]
    fn serve_requests_end_to_end() {
        let mut sim = LinuxSim::new();
        provision_base(&mut sim);
        let mut env = Env::new(&mut sim);
        let lfd = listen_socket(&mut env, 8080, false, true).unwrap();
        let ep = event_setup(&mut env, EventApi::Epoll, &[lfd]).unwrap();
        let cfg = ServeCfg {
            port: 8080,
            listen_fd: lfd,
            epoll_fd: ep,
            fallback_api: EventApi::Epoll,
            response: ResponsePath::Writev,
            response_len: 612,
            work_per_request: 50,
            access_log_fd: None,
            accept4: true,
            close_every: 8,
            read_syscall: Sysno::read,
        };
        let served = serve_requests(&mut env, &cfg, 10, |_, _, _| Ok(())).unwrap();
        assert_eq!(served, 10);
        assert_eq!(env.responses(), 10);
        assert_eq!(env.failure_count(), 0);
    }

    #[test]
    fn access_log_writes_to_file() {
        let mut sim = LinuxSim::new();
        provision_base(&mut sim);
        let mut env = Env::new(&mut sim);
        let lfd = listen_socket(&mut env, 80, true, false).unwrap();
        let ep = event_setup(&mut env, EventApi::Epoll, &[lfd]).unwrap();
        let log = env
            .sys_path(Sysno::openat, [0, 0, 0x440, 0, 0, 0], "/var/log/access.log")
            .ret as u64;
        let cfg = ServeCfg {
            port: 80,
            listen_fd: lfd,
            epoll_fd: ep,
            fallback_api: EventApi::Epoll,
            response: ResponsePath::Writev,
            response_len: 128,
            work_per_request: 50,
            access_log_fd: Some(log),
            accept4: true,
            close_every: 8,
            read_syscall: Sysno::read,
        };
        serve_requests(&mut env, &cfg, 5, |_, _, _| Ok(())).unwrap();
        drop(env);
        assert!(sim.vfs.size("/var/log/access.log").unwrap() > 0);
    }

    #[test]
    fn tune_fd_limit_uses_kernel_values_and_defaults() {
        let mut sim = LinuxSim::new();
        let mut env = Env::new(&mut sim);
        let got = tune_fd_limit(&mut env, Sysno::prlimit64, 10000);
        assert_eq!(got, 10000 - 32, "raised within hard limit");
    }

    #[test]
    fn drop_privileges_succeeds_on_full_kernel() {
        let mut sim = LinuxSim::new();
        let mut env = Env::new(&mut sim);
        drop_privileges(&mut env, true).unwrap();
        assert_eq!(env.sys0(Sysno::geteuid).ret, 33);
    }

    #[test]
    fn locked_section_consistent_on_real_kernel() {
        let mut sim = LinuxSim::new();
        provision_base(&mut sim);
        let mut env = Env::new(&mut sim);
        let mut libc = LibcRuntime::init(&mut env, crate::libc::LibcFlavor::GlibcDynamic).unwrap();
        assert!(locked_section(&mut env, &mut libc, 0x2000, false));
        assert!(locked_section(&mut env, &mut libc, 0x2000, true));
    }
}
