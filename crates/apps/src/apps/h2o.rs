//! The H2O model: a modern HTTP/2 server.
//!
//! Table 1 distinctives: `set_tid_address` and `accept4`/`eventfd2` are on
//! the *implement* list (H2O's thread runtime validates TID bookkeeping),
//! `dup` is stubbable (stdio redirect), `getuid` is fakeable (root check).

use loupe_kernel::LinuxSim;
use loupe_syscalls::Sysno;

use crate::code::AppCode;
use crate::env::Env;
use crate::libc::{LibcFlavor, LibcRuntime};
use crate::model::{AppKind, AppModel, AppSpec, Exit};
use crate::runtime::{
    self, event_setup, listen_socket, serve_requests, EventApi, ResponsePath, ServeCfg,
};
use crate::workload::Workload;

/// The H2O web server.
#[derive(Debug, Clone, Default)]
pub struct H2o;

impl H2o {
    /// Creates the model.
    pub fn new() -> H2o {
        H2o
    }
}

impl AppModel for H2o {
    fn name(&self) -> &str {
        "h2o"
    }

    fn spec(&self) -> AppSpec {
        AppSpec {
            name: "h2o".into(),
            version: "2.2.6".into(),
            year: 2021,
            port: Some(8443),
            kind: AppKind::WebServer,
            libc: LibcFlavor::GlibcDynamic,
        }
    }

    fn provision(&self, sim: &mut LinuxSim) {
        runtime::provision_base(sim);
        sim.vfs
            .add_file("/etc/h2o/h2o.conf", b"listen: 8443\n".to_vec());
        sim.vfs.add_file("/srv/h2o/index.html", vec![b'2'; 512]);
    }

    fn run(&self, env: &mut Env<'_>, workload: Workload) -> Result<(), Exit> {
        let mut libc = LibcRuntime::init(env, LibcFlavor::GlibcDynamic)?;

        // Thread runtime bookkeeping: set_tid_address is validated.
        if env.sys(Sysno::set_tid_address, [0x7100, 0, 0, 0, 0, 0]).ret <= 0 {
            return Err(Exit::Crash("thread runtime: TID bookkeeping failed".into()));
        }
        // Root check: getuid — stub crashes, fake (0) passes.
        if env.sys0(Sysno::getuid).ret < 0 {
            return Err(Exit::Crash("cannot determine user".into()));
        }
        // stdio redirect via dup: optional.
        if env.sys(Sysno::dup, [2, 0, 0, 0, 0, 0]).ret < 0 {
            env.feature("stdio-redirect", false);
        }
        // Entropy for session tickets: getrandom, fallback to /dev/urandom.
        let rnd = env.sys(Sysno::getrandom, [0, 32, 0, 0, 0, 0]);
        if rnd.ret < 32 || rnd.payload.as_bytes().is_none() {
            let f = env.sys_path(Sysno::openat, [0; 6], "/dev/urandom");
            if f.ret < 0 {
                return Err(Exit::Crash("no entropy source for TLS".into()));
            }
            let r = env.sys(Sysno::read, [f.ret as u64, 0, 32, 0, 0, 0]);
            if r.ret < 32 {
                return Err(Exit::Crash("cannot read entropy".into()));
            }
            let _ = env.sys(Sysno::close, [f.ret as u64, 0, 0, 0, 0, 0]);
        }

        let conf = env.sys_path(Sysno::openat, [0; 6], "/etc/h2o/h2o.conf");
        if conf.ret < 0 {
            return Err(Exit::Crash("failed to load configuration".into()));
        }
        let _ = env.sys(Sysno::read, [conf.ret as u64, 0, 2048, 0, 0, 0]);
        let _ = env.sys(Sysno::close, [conf.ret as u64, 0, 0, 0, 0, 0]);

        // Worker notification eventfd: required.
        let efd = env.sys(Sysno::eventfd2, [0, 0x80000, 0, 0, 0, 0]);
        if efd.ret < 0 {
            return Err(Exit::Crash("failed to create notification eventfd".into()));
        }
        let efd = efd.ret as u64;
        let _ = libc.start_thread(env);

        let listen_fd = listen_socket(env, 8443, false, true)?;
        let ep = event_setup(env, EventApi::Epoll, &[listen_fd])?;

        let cfg = ServeCfg {
            port: 8443,
            listen_fd,
            epoll_fd: ep,
            fallback_api: EventApi::Epoll,
            read_syscall: Sysno::read,
            response: ResponsePath::Writev,
            response_len: 512,
            work_per_request: 70,
            access_log_fd: None,
            accept4: true,
            close_every: 8,
        };
        serve_requests(env, &cfg, workload.requests(), |env, i, _| {
            let w = env.sys_data(Sysno::write, [efd, 0, 8, 0, 0, 0], vec![1u8; 8]);
            if w.ret < 0 {
                return Err(Exit::Hung("worker notification lost".into()));
            }
            let woke = env.sys(Sysno::read, [efd, 0, 8, 0, 0, 0]);
            if woke.payload.as_u64().is_none() {
                return Err(Exit::Hung("worker never woke".into()));
            }
            if i % 16 == 15 {
                let _ = env.sys0(Sysno::clock_gettime);
            }
            Ok(())
        })?;

        if workload.checks_aux_features() {
            let st = env.sys_path(Sysno::stat, [0; 6], "/srv/h2o/index.html");
            env.feature("file-serving", !st.is_err());
            let _ = env.sys(Sysno::ioctl, [1, 0x5401, 0, 0, 0, 0]);
        }

        let _ = env.sys(Sysno::close, [listen_fd, 0, 0, 0, 0, 0]);
        let _ = env.sys0(Sysno::exit_group);
        Ok(())
    }

    fn code(&self) -> AppCode {
        use Sysno as S;
        AppCode::new()
            .with_checked(&[
                S::socket,
                S::bind,
                S::listen,
                S::accept4,
                S::fcntl,
                S::epoll_create1,
                S::epoll_create,
                S::epoll_ctl,
                S::epoll_wait,
                S::read,
                S::write,
                S::writev,
                S::close,
                S::openat,
                S::stat,
                S::fstat,
                S::eventfd2,
                S::set_tid_address,
                S::getrandom,
                S::mmap,
                S::munmap,
                S::brk,
                S::clone,
                S::set_robust_list,
                S::futex,
                S::dup,
                S::sendfile,
                S::setsockopt,
                S::rt_sigaction,
            ])
            .with_unchecked(&[
                S::getuid,
                S::getpid,
                S::clock_gettime,
                S::ioctl,
                S::exit_group,
                S::rt_sigprocmask,
                S::madvise,
                S::sched_yield,
            ])
            .with_binary_extra(&[
                S::memfd_create,
                S::timerfd_create,
                S::timerfd_settime,
                S::pipe2,
                S::socketpair,
                S::getdents64,
                S::unlink,
                S::setuid,
                S::setgid,
            ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_benchmark() {
        let mut sim = LinuxSim::new();
        let app = H2o::new();
        app.provision(&mut sim);
        let mut env = Env::new(&mut sim);
        app.run(&mut env, Workload::Benchmark).unwrap();
        let out = env.finish(Exit::Clean);
        assert_eq!(out.responses, 200);
        assert!(out.failures.is_empty(), "{:?}", out.failures);
    }
}
