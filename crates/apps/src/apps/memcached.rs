//! The Memcached model.
//!
//! Threaded worker pool: `eventfd2` is the dispatch mechanism and is
//! *required* (Table 1: Unikraft/Fuchsia both implement 290 to unlock
//! Memcached), while `set_robust_list`/`set_tid_address`/`clock_nanosleep`
//! are stubbable (Table 1's stub columns).

use loupe_kernel::LinuxSim;
use loupe_syscalls::Sysno;

use crate::code::AppCode;
use crate::env::Env;
use crate::libc::{LibcFlavor, LibcRuntime};
use crate::model::{AppKind, AppModel, AppSpec, Exit};
use crate::runtime::{
    self, event_setup, listen_socket, serve_requests, EventApi, ResponsePath, ServeCfg,
};
use crate::workload::Workload;

/// The Memcached in-memory cache.
#[derive(Debug, Clone, Default)]
pub struct Memcached;

impl Memcached {
    /// Creates the model.
    pub fn new() -> Memcached {
        Memcached
    }
}

impl AppModel for Memcached {
    fn name(&self) -> &str {
        "memcached"
    }

    fn spec(&self) -> AppSpec {
        AppSpec {
            name: "memcached".into(),
            version: "1.6.12".into(),
            year: 2021,
            port: Some(11211),
            kind: AppKind::KeyValue,
            libc: LibcFlavor::GlibcDynamic,
        }
    }

    fn provision(&self, sim: &mut LinuxSim) {
        runtime::provision_base(sim);
    }

    fn run(&self, env: &mut Env<'_>, workload: Workload) -> Result<(), Exit> {
        let mut libc = LibcRuntime::init(env, LibcFlavor::GlibcDynamic)?;

        // Refuses to run as root without -u: checks getuid (fake 0 works,
        // the subsequent setuid path is what Table 1 faking covers).
        if env.sys0(Sysno::getuid).ret < 0 {
            return Err(Exit::Crash("can't determine current user".into()));
        }
        // Raise NOFILE: warns and continues on failure.
        runtime::tune_fd_limit(env, Sysno::prlimit64, 16384);
        // Ignore SIGPIPE: checked, fatal if it cannot be installed.
        if env.sys(Sysno::rt_sigaction, [13, 1, 0, 0, 0, 0]).ret < 0 {
            return Err(Exit::Crash("can't ignore SIGPIPE".into()));
        }
        // Slab arena pre-allocation.
        let arena = env.sys(Sysno::mmap, [0, 4 << 20, 3, 0x22, u64::MAX, 0]);
        if arena.ret <= 0 {
            return Err(Exit::Crash("failed to allocate slab arena".into()));
        }

        // Worker threads, each woken through an eventfd: *required*.
        let mut worker_efds = Vec::new();
        for _ in 0..2 {
            let efd = env.sys(Sysno::eventfd2, [0, 0x80000, 0, 0, 0, 0]);
            if efd.ret < 0 {
                return Err(Exit::Crash("failed to create notify eventfd".into()));
            }
            worker_efds.push(efd.ret as u64);
            let _ = libc.start_thread(env);
        }
        // LRU crawler naps via clock_nanosleep: failure degrades the
        // crawler only (stubbable).
        if env.sys(Sysno::clock_nanosleep, [1, 0, 0, 0, 0, 0]).ret < 0 {
            env.feature("lru-crawler", false);
        }

        let listen_fd = listen_socket(env, 11211, false, true)?;
        let ep = event_setup(env, EventApi::Epoll, &[listen_fd])?;

        let cfg = ServeCfg {
            port: 11211,
            listen_fd,
            epoll_fd: ep,
            fallback_api: EventApi::Epoll,
            read_syscall: Sysno::read,
            response: ResponsePath::Write,
            response_len: 100,
            work_per_request: 60,
            access_log_fd: None,
            accept4: true,
            close_every: 8,
        };

        let efd0 = worker_efds[0];
        serve_requests(env, &cfg, workload.requests(), |env, i, _| {
            // Dispatch to a worker through its eventfd; a failed wakeup
            // means the item is never served.
            let w = env.sys_data(Sysno::write, [efd0, 0, 8, 0, 0, 0], vec![1u8; 8]);
            if w.ret < 0 {
                return Err(Exit::Hung("worker wakeup lost".into()));
            }
            // The worker reads the counter back; a faked eventfd2 left us
            // with a bogus descriptor and the wakeup never arrives.
            let woke = env.sys(Sysno::read, [efd0, 0, 8, 0, 0, 0]);
            if woke.payload.as_u64().is_none() {
                return Err(Exit::Hung("worker never woke".into()));
            }
            if i % 32 == 31 {
                let _ = env.sys0(Sysno::clock_gettime);
                let _ = env.sys0(Sysno::getrusage);
            }
            Ok(())
        })?;

        if workload.checks_aux_features() {
            // `stats` command path.
            let _ = env.sys0(Sysno::getpid);
            let _ = env.sys0(Sysno::uname);
            let _ = env.sys(Sysno::madvise, [arena.ret as u64, 4 << 20, 4, 0, 0, 0]);
            env.feature("stats", true);
        }

        let _ = env.sys(Sysno::munmap, [arena.ret as u64, 4 << 20, 0, 0, 0, 0]);
        let _ = env.sys(Sysno::close, [listen_fd, 0, 0, 0, 0, 0]);
        let _ = env.sys0(Sysno::exit_group);
        Ok(())
    }

    fn code(&self) -> AppCode {
        use Sysno as S;
        AppCode::new()
            .with_checked(&[
                S::socket,
                S::bind,
                S::listen,
                S::accept4,
                S::accept,
                S::fcntl,
                S::epoll_ctl,
                S::epoll_wait,
                S::epoll_create1,
                S::epoll_create,
                S::read,
                S::write,
                S::close,
                S::eventfd2,
                S::mmap,
                S::munmap,
                S::brk,
                S::clone,
                S::set_robust_list,
                S::rt_sigaction,
                S::getuid,
                S::setuid,
                S::getrlimit,
                S::prlimit64,
                S::setrlimit,
                S::openat,
                S::futex,
                S::sendmsg,
                S::recvmsg,
                S::setsockopt,
                S::getsockopt,
                S::pipe2,
            ])
            .with_unchecked(&[
                S::getpid,
                S::uname,
                S::clock_gettime,
                S::getrusage,
                S::madvise,
                S::clock_nanosleep,
                S::exit_group,
                S::rt_sigprocmask,
                S::sched_yield,
            ])
            .with_binary_extra(&[
                S::sendto,
                S::recvfrom,
                S::socketpair,
                S::getegid,
                S::geteuid,
                S::getgid,
                S::sysinfo,
                S::mlockall,
            ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_completes() {
        let mut sim = LinuxSim::new();
        let app = Memcached::new();
        app.provision(&mut sim);
        let mut env = Env::new(&mut sim);
        app.run(&mut env, Workload::Benchmark).unwrap();
        let out = env.finish(Exit::Clean);
        assert_eq!(out.responses, 200);
        assert!(out.failures.is_empty(), "{:?}", out.failures);
    }

    #[test]
    fn suite_checks_stats() {
        let mut sim = LinuxSim::new();
        let app = Memcached::new();
        app.provision(&mut sim);
        let mut env = Env::new(&mut sim);
        app.run(&mut env, Workload::TestSuite).unwrap();
        let out = env.finish(Exit::Clean);
        assert_eq!(out.features.get("stats"), Some(&true));
    }
}
