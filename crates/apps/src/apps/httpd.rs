//! The Apache httpd model (prefork MPM).
//!
//! Table 1 distinctives (Kerla step 1): `clone`, `openat` and `setsockopt`
//! are on the *implement* list — the prefork master must fork workers, and
//! Apache treats `SO_REUSEADDR` failure as fatal. Fig. 8 uses a 2006-era
//! variant.

use loupe_kernel::LinuxSim;
use loupe_syscalls::Sysno;

use crate::code::AppCode;
use crate::env::Env;
use crate::libc::{LibcFlavor, LibcRuntime};
use crate::model::{AppKind, AppModel, AppSpec, Exit};
use crate::runtime::{self, daemonize, serve_requests, EventApi, ResponsePath, ServeCfg};
use crate::workload::Workload;

/// The Apache httpd web server.
#[derive(Debug, Clone)]
pub struct Httpd {
    year: u32,
}

impl Httpd {
    /// A modern (2021, 2.4.x) httpd.
    pub fn modern() -> Httpd {
        Httpd { year: 2021 }
    }

    /// A 2006-era (2.2.x) httpd for the evolution experiment (Fig. 8).
    pub fn legacy() -> Httpd {
        Httpd { year: 2006 }
    }

    fn is_modern(&self) -> bool {
        self.year >= 2015
    }
}

impl AppModel for Httpd {
    fn name(&self) -> &str {
        if self.is_modern() {
            "httpd"
        } else {
            "httpd-2.2"
        }
    }

    fn spec(&self) -> AppSpec {
        AppSpec {
            name: self.name().to_owned(),
            version: if self.is_modern() { "2.4.51" } else { "2.2.3" }.into(),
            year: self.year,
            port: Some(8088),
            kind: AppKind::WebServer,
            libc: LibcFlavor::GlibcDynamic,
        }
    }

    fn provision(&self, sim: &mut LinuxSim) {
        runtime::provision_base(sim);
        sim.vfs.add_file(
            "/etc/apache2/httpd.conf",
            b"Listen 8088\nDocumentRoot /srv/apache\n".to_vec(),
        );
        sim.vfs.add_file("/srv/apache/index.html", vec![b'A'; 512]);
    }

    fn run(&self, env: &mut Env<'_>, workload: Workload) -> Result<(), Exit> {
        let mut libc = LibcRuntime::init(env, LibcFlavor::GlibcDynamic)?;

        let open_sys = if self.is_modern() {
            Sysno::openat
        } else {
            Sysno::open
        };
        let conf = env.sys_path(open_sys, [0; 6], "/etc/apache2/httpd.conf");
        if conf.ret < 0 {
            return Err(Exit::Crash("could not open configuration".into()));
        }
        let _ = env.sys(Sysno::read, [conf.ret as u64, 0, 4096, 0, 0, 0]);
        let _ = env.sys(Sysno::close, [conf.ret as u64, 0, 0, 0, 0, 0]);

        // Scoreboard shared memory.
        let sb = env.sys(
            Sysno::mmap,
            [0, 128 * 1024, 3, 0x21 /* shared */, u64::MAX, 0],
        );
        if sb.ret <= 0 {
            return Err(Exit::Crash("could not create scoreboard".into()));
        }

        // Listener with *checked* SO_REUSEADDR (Apache aborts).
        let s = env.sys(Sysno::socket, [2, 1, 0, 0, 0, 0]);
        if s.ret < 0 {
            return Err(Exit::Crash("could not create socket".into()));
        }
        let listen_fd = s.ret as u64;
        if env.sys(Sysno::setsockopt, [listen_fd, 1, 2, 1, 0, 0]).ret < 0 {
            return Err(Exit::Crash("setsockopt(SO_REUSEADDR) failed".into()));
        }
        // APR verifies the option took hold (a faked setsockopt cannot
        // satisfy the read-back).
        let applied = env.sys(Sysno::getsockopt, [listen_fd, 1, 2, 0, 0, 0]);
        if applied.payload.as_u64() != Some(1) {
            return Err(Exit::Crash("SO_REUSEADDR not applied".into()));
        }
        if env.sys(Sysno::bind, [listen_fd, 8088, 0, 0, 0, 0]).ret < 0 {
            return Err(Exit::Crash("could not bind to address".into()));
        }
        if env.sys(Sysno::listen, [listen_fd, 511, 0, 0, 0, 0]).ret < 0 {
            return Err(Exit::Crash("could not listen".into()));
        }
        if env.sys(Sysno::fcntl, [listen_fd, 4, 0x800, 0, 0, 0]).ret < 0 {
            return Err(Exit::Crash("could not set listener non-blocking".into()));
        }

        daemonize(env, open_sys, "/var/run/httpd.pid");
        // Prefork workers: clone is required. A *faked* clone returns 0,
        // turning the master into a child that exits after its request
        // quota — nobody supervises the listener and service stops
        // (unlike Nginx, whose worker loop is the serving loop).
        for _ in 0..2 {
            let tid = libc.start_thread(env);
            if tid < 0 {
                return Err(Exit::Crash("fork: unable to fork new process".into()));
            }
            if tid == 0 {
                return Err(Exit::Hung(
                    "prefork master became a child; listener unsupervised".into(),
                ));
            }
        }
        let _ = env.sys(Sysno::rt_sigaction, [17, 0x1, 0, 0, 0, 0]);

        let log = env.sys_path(
            open_sys,
            [0, 0, 0x440, 0, 0, 0],
            "/var/log/apache2/access.log",
        );
        let access_log_fd = if log.ret >= 0 {
            Some(log.ret as u64)
        } else {
            env.feature("access-logging", false);
            None
        };

        let cfg = ServeCfg {
            port: 8088,
            listen_fd,
            epoll_fd: None,
            fallback_api: if self.is_modern() {
                EventApi::Poll
            } else {
                EventApi::Select
            },
            read_syscall: Sysno::read,
            response: ResponsePath::Writev,
            response_len: 512,
            work_per_request: 65,
            access_log_fd,
            accept4: self.is_modern(),
            close_every: 8,
        };
        serve_requests(env, &cfg, workload.requests(), |env, i, _| {
            if i % 10 == 9 {
                let _ = env.sys_path(Sysno::stat, [0; 6], "/srv/apache/index.html");
                let _ = env.sys0(Sysno::gettimeofday);
                // Reap any exited child.
                let _ = env.sys(Sysno::wait4, [u64::MAX, 0, 1, 0, 0, 0]);
            }
            Ok(())
        })?;

        if workload.checks_aux_features() {
            // .htaccess lookups walk the tree.
            let _ = env.sys_path(Sysno::stat, [0; 6], "/srv/apache/.htaccess");
            let _ = env.sys_path(Sysno::access, [0; 6], "/srv/apache/index.html");
            let _ = env.sys0(Sysno::getpid);
            let _ = env.sys0(Sysno::uname);
            env.feature("htaccess", true);
        }

        let _ = env.sys(Sysno::munmap, [sb.ret as u64, 128 * 1024, 0, 0, 0, 0]);
        let _ = env.sys(Sysno::close, [listen_fd, 0, 0, 0, 0, 0]);
        let _ = env.sys0(Sysno::exit_group);
        Ok(())
    }

    fn code(&self) -> AppCode {
        use Sysno as S;
        let mut code = AppCode::new()
            .with_checked(&[
                S::socket,
                S::bind,
                S::listen,
                S::accept,
                S::setsockopt,
                S::getsockopt,
                S::fcntl,
                S::read,
                S::writev,
                S::close,
                S::open,
                S::openat,
                S::stat,
                S::fstat,
                S::mmap,
                S::munmap,
                S::brk,
                S::clone,
                S::set_robust_list,
                S::wait4,
                S::kill,
                S::rt_sigaction,
                S::setuid,
                S::setgid,
                S::setgroups,
                S::chown,
                S::access,
                S::poll,
                S::select,
                S::lseek,
                S::getdents64,
                S::semget,
                S::semop,
            ])
            .with_unchecked(&[
                S::write,
                S::getpid,
                S::getppid,
                S::gettimeofday,
                S::umask,
                S::setsid,
                S::uname,
                S::exit_group,
                S::rt_sigprocmask,
                S::times,
                S::alarm,
            ])
            .with_binary_extra(&[
                S::shmget,
                S::shmat,
                S::shmctl,
                S::epoll_create1,
                S::epoll_ctl,
                S::epoll_wait,
                S::sendfile,
                S::pipe,
                S::dup2,
                S::chroot,
                S::getrlimit,
                S::setrlimit,
            ]);
        if self.is_modern() {
            code.source_syscalls.insert(S::accept4);
            code.source_syscalls.insert(S::prlimit64);
        }
        code
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_eras_serve_requests() {
        for app in [Httpd::modern(), Httpd::legacy()] {
            let mut sim = LinuxSim::new();
            app.provision(&mut sim);
            let mut env = Env::new(&mut sim);
            app.run(&mut env, Workload::Benchmark).unwrap();
            let out = env.finish(Exit::Clean);
            assert_eq!(out.responses, 200, "{}", app.name());
        }
    }
}
