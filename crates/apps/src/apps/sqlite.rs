//! The SQLite model: the only non-server among the seven deep-dive apps.
//!
//! The workload executes SQL statements against a database file. Resilience
//! highlights from the paper: `mremap` failure falls back to
//! `mmap`+copy (§5.2 — mremap is stubbable/fakeable, Table 1 Kerla fakes
//! 25 to unlock SQLite), while `lseek`, `access` and `unlink` are on the
//! *implement* list (journal management checks them and aborts).

use loupe_kernel::LinuxSim;
use loupe_syscalls::Sysno;

use crate::code::AppCode;
use crate::env::Env;
use crate::libc::{LibcFlavor, LibcRuntime};
use crate::model::{AppKind, AppModel, AppSpec, Exit};
use crate::runtime;
use crate::workload::Workload;

/// The SQLite database engine, driven through its shell.
#[derive(Debug, Clone, Default)]
pub struct Sqlite;

impl Sqlite {
    /// Creates the model.
    pub fn new() -> Sqlite {
        Sqlite
    }
}

impl AppModel for Sqlite {
    fn name(&self) -> &str {
        "sqlite"
    }

    fn spec(&self) -> AppSpec {
        AppSpec {
            name: "sqlite".into(),
            version: "3.36.0".into(),
            year: 2021,
            port: None,
            kind: AppKind::Database,
            libc: LibcFlavor::GlibcDynamic,
        }
    }

    fn provision(&self, sim: &mut LinuxSim) {
        runtime::provision_base(sim);
        sim.vfs.add_file("/data/test.db", vec![0u8; 8192]);
    }

    fn run(&self, env: &mut Env<'_>, workload: Workload) -> Result<(), Exit> {
        let mut libc = LibcRuntime::init(env, LibcFlavor::GlibcDynamic)?;
        let _ = env.sys0(Sysno::getpid);
        let _ = env.sys0(Sysno::getcwd);
        let _ = env.sys0(Sysno::geteuid);

        // Temp-name entropy from /dev/urandom, falling back to the clock
        // (ignore-resilience: the classic SQLite randomness path).
        if !runtime::read_pseudo(env, Sysno::openat, "/dev/urandom") {
            let _ = env.sys0(Sysno::gettimeofday);
        }

        // Open the database; fatal if impossible.
        let db = env.sys_path(Sysno::openat, [0, 0, 0x42, 0, 0, 0], "/data/test.db");
        if db.ret < 0 {
            return Err(Exit::Crash("unable to open database file".into()));
        }
        let db_fd = db.ret as u64;
        if env.sys(Sysno::fstat, [db_fd, 0, 0, 0, 0, 0]).is_err() {
            return Err(Exit::Crash("cannot fstat database".into()));
        }
        // POSIX advisory locks guard the file: checked, fatal.
        if env
            .sys(Sysno::fcntl, [db_fd, 6 /* F_SETLK */, 0, 0, 0, 0])
            .ret
            < 0
        {
            return Err(Exit::Crash("database is locked".into()));
        }
        // Hot-journal detection probes with access(): an error return that
        // is not ENOENT means the journal state is unknowable — abort.
        // A *faked* access claims a hot journal exists: SQLite must then
        // replay it, and aborts when the claimed journal cannot be read.
        let probe = env.sys_path(Sysno::access, [0; 6], "/data/test.db-journal");
        if probe.ret < 0 && probe.errno() != Some(loupe_syscalls::Errno::ENOENT) {
            return Err(Exit::Crash("cannot probe hot journal".into()));
        }
        if probe.ret == 0 {
            let hot = env.sys_path(Sysno::openat, [0; 6], "/data/test.db-journal");
            if hot.ret < 0 {
                return Err(Exit::Crash("hot journal vanished during recovery".into()));
            }
            let _ = env.sys(Sysno::read, [hot.ret as u64, 0, 4096, 0, 0, 0]);
            let _ = env.sys(Sysno::close, [hot.ret as u64, 0, 0, 0, 0, 0]);
        }

        // Page-cache mapping, grown with mremap (fallback: mmap + copy).
        let map = env.sys(Sysno::mmap, [0, 64 * 1024, 3, 0x22, u64::MAX, 0]);
        if map.ret <= 0 {
            return Err(Exit::Crash("cannot map page cache".into()));
        }
        let mut cache_addr = map.ret as u64;
        let mut cache_len = 64 * 1024u64;

        let statements = workload.requests();
        for i in 0..statements {
            // Journal for the transaction.
            let j = env.sys_path(
                Sysno::openat,
                [0, 0, 0x40, 0, 0, 0],
                "/data/test.db-journal",
            );
            if j.ret < 0 {
                env.fail("cannot create rollback journal");
                break;
            }
            let jfd = j.ret as u64;
            let w = env.sys_data(Sysno::write, [jfd, 0, 0, 0, 0, 0], vec![b'J'; 512]);
            if w.ret <= 0 {
                env.fail("journal write failed");
            }
            let _ = env.sys(Sysno::fsync, [jfd, 0, 0, 0, 0, 0]);

            // Statement execution: seek + paged read/write on the db.
            if env
                .sys(Sysno::lseek, [db_fd, u64::from(i % 8) * 1024, 0, 0, 0, 0])
                .ret
                < 0
            {
                env.fail("seek failed");
                let _ = env.sys(Sysno::close, [jfd, 0, 0, 0, 0, 0]);
                break;
            }
            let r = env.sys(Sysno::pread64, [db_fd, 0, 1024, 0, 0, 0]);
            let w = env.sys_data(Sysno::pwrite64, [db_fd, 0, 0, 0, 0, 0], vec![b'P'; 1024]);
            env.charge(80); // btree + VM work
            let _ = env.sys(Sysno::fdatasync, [db_fd, 0, 0, 0, 0, 0]);

            // Page verification (SQLite checksums its pages): seek back to
            // the page just written and read it. Catches faked seeks,
            // reads and writes alike — the data itself must round-trip.
            if i % 4 == 0 {
                let page_pos = u64::from(i % 8) * 1024 + 1024;
                let back = env.sys(Sysno::lseek, [db_fd, page_pos, 0, 0, 0, 0]);
                let check = env.sys(Sysno::read, [db_fd, 0, 1024, 0, 0, 0]);
                let intact = back.ret as u64 == page_pos
                    && check
                        .payload
                        .as_bytes()
                        .is_some_and(|b| b.len() == 1024 && b.iter().all(|&x| x == b'P'));
                if !intact {
                    env.fail("database disk image is malformed");
                }
            }

            // Commit: close + unlink the journal. A journal that cannot be
            // removed would be replayed as a hot journal on next open —
            // SQLite treats this as fatal I/O error.
            let _ = env.sys(Sysno::close, [jfd, 0, 0, 0, 0, 0]);
            if env
                .sys_path(Sysno::unlink, [0; 6], "/data/test.db-journal")
                .ret
                < 0
            {
                env.fail("cannot delete journal: database left in hot state");
                break;
            }
            // Commit is only durable once the journal is *really* gone: a
            // faked unlink leaves a stale hot journal that would roll the
            // committed transaction back on the next open.
            let gone = env.sys_path(Sysno::stat, [0; 6], "/data/test.db-journal");
            if gone.ret == 0 && gone.payload.as_u64().is_some() {
                env.fail("stale hot journal after commit; refusing to continue");
                break;
            }

            if r.ret >= 0 && w.ret > 0 {
                env.record_response();
            } else {
                env.fail("statement I/O failed");
            }

            // Cache growth every 16 statements: mremap with mmap fallback.
            if i % 16 == 15 {
                let grown = env.sys(
                    Sysno::mremap,
                    [cache_addr, cache_len, cache_len * 2, 1, 0, 0],
                );
                if grown.ret > 0 {
                    cache_addr = grown.ret as u64;
                    cache_len *= 2;
                } else {
                    // §5.2: "reallocating mappings with mmap when mremap
                    // fails, as we observe in SQLite".
                    let alt = env.sys(Sysno::mmap, [0, cache_len * 2, 3, 0x22, u64::MAX, 0]);
                    if alt.ret > 0 {
                        env.charge(cache_len / 256); // copy cost
                        let _ = env.sys(Sysno::munmap, [cache_addr, cache_len, 0, 0, 0, 0]);
                        cache_addr = alt.ret as u64;
                        cache_len *= 2;
                    }
                }
            }
        }

        if workload.checks_aux_features() {
            // The test harness shells out to set up fixtures (the paper's
            // Ruby-suite-calls-git example, §3.3): those syscalls belong
            // to the helper binary and must stay out of SQLite's trace.
            let _ = env.helper_sys(Sysno::clone, [0; 6]);
            let _ = env.helper_sys(Sysno::execve, [0; 6]);
            let _ = env.helper_sys(Sysno::getxattr, [0; 6]);
            let _ = env.helper_sys(Sysno::sethostname, [0; 6]);
            let _ = env.helper_sys(Sysno::wait4, [0; 6]);

            // VACUUM / temp-file machinery.
            let t = env.sys_path(Sysno::openat, [0, 0, 0x40, 0, 0, 0], "/tmp/etilqs_1");
            if t.ret >= 0 {
                let tfd = t.ret as u64;
                let _ = env.sys(Sysno::ftruncate, [tfd, 4096, 0, 0, 0, 0]);
                let _ = env.sys_data(Sysno::write, [tfd, 0, 0, 0, 0, 0], vec![0u8; 4096]);
                let _ = env.sys(Sysno::close, [tfd, 0, 0, 0, 0, 0]);
                let renamed = env.sys_path(Sysno::rename, [0; 6], "/tmp/etilqs_1").ret == 0;
                env.feature("vacuum", renamed);
            } else {
                env.feature("vacuum", false);
            }
            let _ = env.sys(Sysno::madvise, [cache_addr, cache_len, 1, 0, 0, 0]);
            let _ = env.sys_path(Sysno::stat, [0; 6], "/data/test.db");
            let _ = env.sys0(Sysno::uname);
            let _ = env.sys(Sysno::getdents64, [db_fd, 0, 0, 0, 0, 0]);
        }

        let _ = env.sys(Sysno::munmap, [cache_addr, cache_len, 0, 0, 0, 0]);
        let _ = env.sys(Sysno::close, [db_fd, 0, 0, 0, 0, 0]);
        libc.printf(env, "sqlite> .quit\n");
        let _ = env.sys0(Sysno::exit_group);
        Ok(())
    }

    fn code(&self) -> AppCode {
        use Sysno as S;
        AppCode::new()
            .with_checked(&[
                S::openat,
                S::open,
                S::read,
                S::write,
                S::pread64,
                S::pwrite64,
                S::lseek,
                S::close,
                S::fstat,
                S::stat,
                S::access,
                S::unlink,
                S::fcntl,
                S::fsync,
                S::fdatasync,
                S::ftruncate,
                S::mmap,
                S::munmap,
                S::mremap,
                S::brk,
                S::rename,
                S::getcwd,
                S::flock,
                S::mkdir,
                S::rmdir,
            ])
            .with_unchecked(&[
                S::getpid,
                S::geteuid,
                S::getuid,
                S::madvise,
                S::uname,
                S::getdents64,
                S::exit_group,
                S::clock_gettime,
                S::gettimeofday,
                S::getrusage,
                S::utime,
            ])
            .with_binary_extra(&[
                S::shmget,
                S::shmat,
                S::shmdt,
                S::nanosleep,
                S::readlink,
                S::statfs,
                S::utimensat,
                S::getrandom,
            ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(w: Workload) -> crate::model::AppOutcome {
        let mut sim = LinuxSim::new();
        let app = Sqlite::new();
        app.provision(&mut sim);
        let mut env = Env::new(&mut sim);
        let res = app.run(&mut env, w);
        let exit = match res {
            Ok(()) => Exit::Clean,
            Err(e) => e,
        };
        env.finish(exit)
    }

    #[test]
    fn executes_all_statements() {
        let out = run(Workload::Benchmark);
        assert!(out.exit.is_clean());
        assert_eq!(out.responses, 200);
        assert!(out.failures.is_empty(), "{:?}", out.failures);
    }

    #[test]
    fn suite_exercises_vacuum() {
        let out = run(Workload::TestSuite);
        assert_eq!(out.features.get("vacuum"), Some(&true));
    }
}
