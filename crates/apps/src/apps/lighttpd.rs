//! The Lighttpd model.
//!
//! Contrast with Nginx: Lighttpd *warns and continues* when it cannot drop
//! privileges (setuid/setgid/setgroups are stubbable — Table 1 Kerla stubs
//! 105/106/116 for Lighttpd), its daemonize pipe (`pipe2`) is optional,
//! but `epoll_create1` is required (no legacy fallback in the model).

use loupe_kernel::LinuxSim;
use loupe_syscalls::Sysno;

use crate::code::AppCode;
use crate::env::Env;
use crate::libc::{LibcFlavor, LibcRuntime};
use crate::model::{AppKind, AppModel, AppSpec, Exit};
use crate::runtime::{self, serve_requests, EventApi, ResponsePath, ServeCfg};
use crate::workload::Workload;

/// The Lighttpd web server.
#[derive(Debug, Clone, Default)]
pub struct Lighttpd;

impl Lighttpd {
    /// Creates the model.
    pub fn new() -> Lighttpd {
        Lighttpd
    }
}

impl AppModel for Lighttpd {
    fn name(&self) -> &str {
        "lighttpd"
    }

    fn spec(&self) -> AppSpec {
        AppSpec {
            name: "lighttpd".into(),
            version: "1.4.59".into(),
            year: 2021,
            port: Some(8081),
            kind: AppKind::WebServer,
            libc: LibcFlavor::GlibcDynamic,
        }
    }

    fn provision(&self, sim: &mut LinuxSim) {
        runtime::provision_base(sim);
        sim.vfs.add_file(
            "/etc/lighttpd/lighttpd.conf",
            b"server.port = 8081\nserver.document-root = \"/srv/www\"\n".to_vec(),
        );
        sim.vfs.add_file("/srv/www/index.html", vec![b'h'; 400]);
    }

    fn run(&self, env: &mut Env<'_>, workload: Workload) -> Result<(), Exit> {
        let mut libc = LibcRuntime::init(env, LibcFlavor::GlibcDynamic)?;

        let conf = env.sys_path(Sysno::openat, [0; 6], "/etc/lighttpd/lighttpd.conf");
        if conf.ret < 0 {
            return Err(Exit::Crash("configuration file not found".into()));
        }
        let _ = env.sys(Sysno::read, [conf.ret as u64, 0, 4096, 0, 0, 0]);
        let _ = env.sys(Sysno::close, [conf.ret as u64, 0, 0, 0, 0, 0]);

        // Daemonize handshake pipe: optional.
        let pipe = env.sys(Sysno::pipe2, [0, 0, 0, 0, 0, 0]);
        if pipe.ret < 0 {
            env.feature("daemonize-handshake", false);
        }
        let _ = env.sys0(Sysno::setsid);
        let _ = env.sys(Sysno::umask, [0o022, 0, 0, 0, 0, 0]);

        // Privilege drop: warn-and-continue (unlike Nginx).
        for (call, args) in [
            (Sysno::setgroups, [0u64, 0, 0, 0, 0, 0]),
            (Sysno::setgid, [33, 0, 0, 0, 0, 0]),
            (Sysno::setuid, [33, 0, 0, 0, 0, 0]),
        ] {
            if env.sys(call, args).ret < 0 {
                env.feature("privilege-drop", false);
            }
        }

        let listen_fd = runtime::listen_socket(env, 8081, false, true)?;
        // fdevent backend: epoll_create1 only — required.
        let ep = env.sys(Sysno::epoll_create1, [0x80000, 0, 0, 0, 0, 0]);
        if ep.ret < 0 {
            return Err(Exit::Crash("fdevent: failed to initialize epoll".into()));
        }
        let ep = ep.ret as u64;
        if env.sys(Sysno::epoll_ctl, [ep, 1, listen_fd, 0, 0, 0]).ret < 0 {
            return Err(Exit::Crash("fdevent: epoll_ctl failed".into()));
        }

        let log = env.sys_path(
            Sysno::openat,
            [0, 0, 0x440, 0, 0, 0],
            "/var/log/lighttpd/access.log",
        );
        let access_log_fd = if log.ret >= 0 {
            Some(log.ret as u64)
        } else {
            env.feature("access-logging", false);
            None
        };

        let cfg = ServeCfg {
            port: 8081,
            listen_fd,
            epoll_fd: Some(ep),
            fallback_api: EventApi::Epoll,
            read_syscall: Sysno::read,
            response: ResponsePath::Writev,
            response_len: 400,
            work_per_request: 45,
            access_log_fd,
            accept4: true,
            close_every: 8,
        };
        serve_requests(env, &cfg, workload.requests(), |env, i, cfd| {
            if i % 10 == 9 {
                // Static file stat for caching headers.
                let _ = env.sys_path(Sysno::stat, [0; 6], "/srv/www/index.html");
                let _ = env.sys0(Sysno::clock_gettime);
            }
            if i % 30 == 29 {
                // Occasional sendfile of the document root file.
                let f = env.sys_path(Sysno::openat, [0; 6], "/srv/www/index.html");
                if f.ret >= 0 {
                    let _ = env.sys(Sysno::sendfile, [cfd, f.ret as u64, 0, 400, 0, 0]);
                    let _ = env.sys(Sysno::close, [f.ret as u64, 0, 0, 0, 0, 0]);
                }
            }
            Ok(())
        })?;

        if workload.checks_aux_features() {
            let _ = env.sys0(Sysno::getuid);
            let _ = env.sys0(Sysno::getpid);
            let _ = env.sys_path(Sysno::getdents64, [0; 6], "/srv/www");
            let dir = env.sys_path(Sysno::openat, [0; 6], "/srv/www");
            if dir.ret >= 0 {
                let listing = env.sys(Sysno::getdents64, [dir.ret as u64, 0, 0, 0, 0, 0]);
                env.feature("dir-listing", listing.ret >= 0);
                let _ = env.sys(Sysno::close, [dir.ret as u64, 0, 0, 0, 0, 0]);
            }
        }

        libc.printf(env, "lighttpd: graceful shutdown\n");
        let _ = env.sys(Sysno::close, [listen_fd, 0, 0, 0, 0, 0]);
        let _ = env.sys0(Sysno::exit_group);
        Ok(())
    }

    fn code(&self) -> AppCode {
        use Sysno as S;
        AppCode::new()
            .with_checked(&[
                S::socket,
                S::bind,
                S::listen,
                S::setsockopt,
                S::accept4,
                S::accept,
                S::fcntl,
                S::epoll_create1,
                S::epoll_ctl,
                S::epoll_wait,
                S::read,
                S::writev,
                S::close,
                S::openat,
                S::open,
                S::stat,
                S::fstat,
                S::sendfile,
                S::pipe2,
                S::mmap,
                S::munmap,
                S::brk,
                S::clone,
                S::rt_sigaction,
                S::getdents64,
                S::lseek,
                S::pread64,
                S::pwrite64,
            ])
            .with_unchecked(&[
                S::write,
                S::setuid,
                S::setgid,
                S::setgroups,
                S::setsid,
                S::umask,
                S::getpid,
                S::getuid,
                S::clock_gettime,
                S::exit_group,
                S::rt_sigprocmask,
                S::madvise,
            ])
            .with_binary_extra(&[
                S::chroot,
                S::prctl,
                S::getrlimit,
                S::prlimit64,
                S::setrlimit,
                S::sysinfo,
                S::socketpair,
                S::kill,
                S::wait4,
                S::unlink,
            ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_benchmark() {
        let mut sim = LinuxSim::new();
        let app = Lighttpd::new();
        app.provision(&mut sim);
        let mut env = Env::new(&mut sim);
        app.run(&mut env, Workload::Benchmark).unwrap();
        let out = env.finish(Exit::Clean);
        assert_eq!(out.responses, 200);
        assert!(out.failures.is_empty(), "{:?}", out.failures);
    }

    #[test]
    fn suite_lists_directories() {
        let mut sim = LinuxSim::new();
        let app = Lighttpd::new();
        app.provision(&mut sim);
        let mut env = Env::new(&mut sim);
        app.run(&mut env, Workload::TestSuite).unwrap();
        let out = env.finish(Exit::Clean);
        assert_eq!(out.features.get("dir-listing"), Some(&true));
    }
}
