//! The MongoDB model: the widest syscall footprint in the set.
//!
//! Table 1 lists MongoDB as the most expensive app to unlock on every OS
//! — the final step for Unikraft, Fuchsia *and* Kerla. The required tail
//! comes from WiredTiger and the server runtime: `rt_sigtimedwait` (128),
//! `sysinfo` (99), `mincore` (27), `clock_getres` (229), `flock` (73),
//! `futex` (202) and `timerfd_create` (283), with `sigaltstack` stubbable
//! and `statfs` fakeable.

use loupe_kernel::LinuxSim;
use loupe_syscalls::Sysno;

use crate::code::AppCode;
use crate::env::Env;
use crate::libc::{LibcFlavor, LibcRuntime};
use crate::model::{AppKind, AppModel, AppSpec, Exit};
use crate::runtime::{
    self, event_setup, listen_socket, locked_section, serve_requests, EventApi, ResponsePath,
    ServeCfg,
};
use crate::workload::Workload;

/// The MongoDB document database.
#[derive(Debug, Clone, Default)]
pub struct MongoDb;

impl MongoDb {
    /// Creates the model.
    pub fn new() -> MongoDb {
        MongoDb
    }
}

impl AppModel for MongoDb {
    fn name(&self) -> &str {
        "mongodb"
    }

    fn spec(&self) -> AppSpec {
        AppSpec {
            name: "mongodb".into(),
            version: "5.0.3".into(),
            year: 2021,
            port: Some(27017),
            kind: AppKind::Database,
            libc: LibcFlavor::GlibcDynamic,
        }
    }

    fn provision(&self, sim: &mut LinuxSim) {
        runtime::provision_base(sim);
        sim.vfs.mkdir("/data/db");
        sim.vfs.add_file("/data/db/WiredTiger.wt", vec![0u8; 4096]);
        sim.vfs.add_file(
            "/etc/mongod.conf",
            b"storage:\n  dbPath: /data/db\n".to_vec(),
        );
    }

    fn run(&self, env: &mut Env<'_>, workload: Workload) -> Result<(), Exit> {
        let mut libc = LibcRuntime::init(env, LibcFlavor::GlibcDynamic)?;

        // --- startup validation (the "required tail") -----------------------
        // Clock sanity: WiredTiger validates timer resolution and uses
        // the returned value to size its spin thresholds.
        let res = env.sys(Sysno::clock_getres, [1, 0, 0, 0, 0, 0]);
        if res.ret < 0 || res.payload.as_u64().is_none() {
            return Err(Exit::Crash("clock source validation failed".into()));
        }
        // Memory budget: refuses to start blind.
        let si = env.sys0(Sysno::sysinfo);
        if si.ret < 0 || si.payload.as_u64().is_none() {
            return Err(Exit::Crash("cannot determine system memory".into()));
        }
        // Data directory lock: fatal when flock is unavailable.
        let lockf = env.sys_path(Sysno::openat, [0, 0, 0x40, 0, 0, 0], "/data/db/mongod.lock");
        if lockf.ret < 0 {
            return Err(Exit::Crash("cannot open lock file".into()));
        }
        let lock = env.sys(Sysno::flock, [lockf.ret as u64, 2, 0, 0, 0, 0]);
        if lock.ret < 0 || lock.payload.as_u64().is_none() {
            return Err(Exit::Crash("unable to lock /data/db".into()));
        }
        // Filesystem capacity probe: statfs — refuses ENOSYS, accepts fake.
        if env.sys_path(Sysno::statfs, [0; 6], "/data/db").ret < 0 {
            return Err(Exit::Crash("cannot statfs data directory".into()));
        }
        // Cache residency probing: the residency vector is consumed.
        let resident = env.sys(Sysno::mincore, [0x7000_0000, 4096, 0, 0, 0, 0]);
        if resident.ret < 0 || resident.payload.as_bytes().is_none() {
            return Err(Exit::Crash("cache residency probe failed".into()));
        }
        // Signal-handling thread waits with rt_sigtimedwait and consumes
        // the delivered signal number.
        let sig = env.sys(Sysno::rt_sigtimedwait, [0, 0, 0, 0, 0, 0]);
        if sig.ret < 0 || sig.payload.as_u64().is_none() {
            return Err(Exit::Crash("signal processing thread failed".into()));
        }
        // Periodic task timer: created AND armed.
        let tfd = env.sys(Sysno::timerfd_create, [1, 0, 0, 0, 0, 0]);
        if tfd.ret < 0 {
            return Err(Exit::Crash("cannot create maintenance timer".into()));
        }
        if env
            .sys(Sysno::timerfd_settime, [tfd.ret as u64, 0, 0, 0, 0, 0])
            .ret
            < 0
        {
            return Err(Exit::Crash("cannot arm maintenance timer".into()));
        }
        // Stack-overflow handler: stubbable (degrades diagnostics only).
        if env.sys(Sysno::sigaltstack, [0x7200, 8192, 0, 0, 0, 0]).ret < 0 {
            env.feature("stack-overflow-diagnostics", false);
        }
        // Diagnostics probes: /proc/self/status (memory telemetry) and
        // the online-CPU list; both degrade to defaults on failure.
        if !runtime::read_pseudo(env, Sysno::openat, "/proc/self/status") {
            env.feature("memory-telemetry", false);
        }
        let _ = runtime::read_pseudo(env, Sysno::openat, "/sys/devices/system/cpu/online");
        let _ = env.sys(Sysno::prctl, [15 /* PR_SET_NAME */, 0, 0, 0, 0, 0]);
        let _ = env.sys0(Sysno::sched_getaffinity);
        let _ = env.sys(Sysno::getrandom, [0, 16, 0, 0, 0, 0]);
        runtime::tune_fd_limit(env, Sysno::prlimit64, 64000);

        // WiredTiger cache.
        let cache = env.sys(Sysno::mmap, [0, 16 << 20, 3, 0x22, u64::MAX, 0]);
        if cache.ret <= 0 {
            return Err(Exit::Crash("cannot reserve storage engine cache".into()));
        }
        let _ = env.sys(Sysno::madvise, [cache.ret as u64, 16 << 20, 14, 0, 0, 0]);

        // Worker threads.
        for _ in 0..3 {
            let _ = libc.start_thread(env);
        }

        let listen_fd = listen_socket(env, 27017, false, true)?;
        let ep = event_setup(env, EventApi::Epoll, &[listen_fd])?;

        let db_fd = {
            let f = env.sys_path(Sysno::openat, [0, 0, 2, 0, 0, 0], "/data/db/WiredTiger.wt");
            if f.ret < 0 {
                return Err(Exit::Crash("cannot open storage files".into()));
            }
            f.ret as u64
        };

        let cfg = ServeCfg {
            port: 27017,
            listen_fd,
            epoll_fd: ep,
            fallback_api: EventApi::Epoll,
            read_syscall: Sysno::recvmsg,
            response: ResponsePath::Sendto,
            response_len: 512,
            work_per_request: 150,
            access_log_fd: None,
            accept4: true,
            close_every: 8,
        };
        serve_requests(env, &cfg, workload.requests(), |env, i, _| {
            // Storage I/O per operation.
            let _ = env.sys(Sysno::pread64, [db_fd, 0, 4096, 0, 0, 0]);
            if i % 4 == 1 {
                let w = env.sys_data(Sysno::pwrite64, [db_fd, 0, 0, 0, 0, 0], vec![b'B'; 4096]);
                if w.ret <= 0 {
                    env.fail("journal write failed");
                }
                let _ = env.sys(Sysno::fdatasync, [db_fd, 0, 0, 0, 0, 0]);
            }
            // Lock hand-off with the checkpoint thread.
            if i % 5 == 4 && !locked_section(env, &mut libc, 0x9000, true) {
                env.charge(300);
                env.fail("WT_SESSION inconsistent");
            }
            if i % 25 == 24 {
                let _ = env.sys0(Sysno::clock_gettime);
                let _ = env.sys0(Sysno::getrusage);
            }
            Ok(())
        })?;

        if workload.checks_aux_features() {
            // Checkpoint + compact.
            let _ = env.sys(Sysno::fallocate, [db_fd, 0, 0, 1 << 20, 0, 0]);
            let _ = env.sys(Sysno::ftruncate, [db_fd, 1 << 20, 0, 0, 0, 0]);
            let _ = env.sys(Sysno::fsync, [db_fd, 0, 0, 0, 0, 0]);
            let _ = env.sys0(Sysno::uname);
            let _ = env.sys0(Sysno::getpid);
            env.feature("checkpoint", true);
        }

        let _ = env.sys(Sysno::munmap, [cache.ret as u64, 16 << 20, 0, 0, 0, 0]);
        let _ = env.sys(Sysno::close, [db_fd, 0, 0, 0, 0, 0]);
        let _ = env.sys(Sysno::close, [listen_fd, 0, 0, 0, 0, 0]);
        let _ = env.sys0(Sysno::exit_group);
        Ok(())
    }

    fn code(&self) -> AppCode {
        use Sysno as S;
        AppCode::new()
            .with_checked(&[
                S::socket,
                S::bind,
                S::listen,
                S::setsockopt,
                S::accept4,
                S::fcntl,
                S::epoll_create1,
                S::epoll_create,
                S::epoll_ctl,
                S::epoll_wait,
                S::read,
                S::write,
                S::recvmsg,
                S::sendmsg,
                S::sendto,
                S::recvfrom,
                S::close,
                S::openat,
                S::stat,
                S::fstat,
                S::statfs,
                S::pread64,
                S::pwrite64,
                S::fdatasync,
                S::fsync,
                S::fallocate,
                S::ftruncate,
                S::flock,
                S::mmap,
                S::munmap,
                S::mremap,
                S::brk,
                S::madvise,
                S::mincore,
                S::clone,
                S::set_robust_list,
                S::futex,
                S::rt_sigaction,
                S::rt_sigtimedwait,
                S::sigaltstack,
                S::timerfd_create,
                S::timerfd_settime,
                S::eventfd2,
                S::clock_getres,
                S::sysinfo,
                S::prlimit64,
                S::setrlimit,
                S::getrandom,
                S::sched_getaffinity,
                S::set_tid_address,
                S::unlink,
                S::rename,
                S::getdents64,
                S::lseek,
            ])
            .with_unchecked(&[
                S::getpid,
                S::gettid,
                S::clock_gettime,
                S::gettimeofday,
                S::getrusage,
                S::prctl,
                S::uname,
                S::exit_group,
                S::rt_sigprocmask,
                S::sched_yield,
                S::nanosleep,
                S::getcwd,
                S::umask,
            ])
            .with_binary_extra(&[
                S::shmget,
                S::shmat,
                S::semget,
                S::semop,
                S::setpriority,
                S::getpriority,
                S::io_setup,
                S::io_submit,
                S::io_getevents,
                S::personality,
                S::setsid,
                S::socketpair,
                S::pipe2,
                S::dup2,
                S::chdir,
                S::readlink,
                S::mlock,
            ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_operations() {
        let mut sim = LinuxSim::new();
        let app = MongoDb::new();
        app.provision(&mut sim);
        let mut env = Env::new(&mut sim);
        app.run(&mut env, Workload::Benchmark).unwrap();
        let out = env.finish(Exit::Clean);
        assert_eq!(out.responses, 200);
        assert!(out.failures.is_empty(), "{:?}", out.failures);
    }

    #[test]
    fn code_footprint_is_wide() {
        let code = MongoDb::new().code();
        assert!(code.source_syscalls.len() > 55);
    }
}
