//! The Nginx model.
//!
//! The richest model in the set, because Table 2 and Table 3 both hinge on
//! Nginx-specific behaviour:
//!
//! * access logs go through `write` while payloads go through `writev`/
//!   `sendfile` — stubbing `write` *speeds the server up* by skipping log
//!   I/O without breaking request handling;
//! * the master process parks in `rt_sigsuspend`; if that call is stubbed
//!   or faked the master degrades to busy-wait polling (Table 2: -38%);
//! * a faked `clone` returns 0, so the master believes it is the worker
//!   and runs the worker loop itself (functional, but leaks master-side
//!   pools: +memory);
//! * `prctl(PR_SET_KEEPCAPS)` failure is fatal (Fig. 6b) — unstubbable,
//!   but perfectly fakeable;
//! * `sendfile` failure falls back to the `writev` body path
//!   (alternative-syscall resilience: sendfile is stubbable);
//! * legacy builds (0.3.19-era) use `accept`/`epoll_create`/`recvfrom` and
//!   the old glibc wrappers, which is what Table 3 compares.

use loupe_kernel::LinuxSim;
use loupe_syscalls::Sysno;

use crate::code::AppCode;
use crate::env::Env;
use crate::libc::{LibcFlavor, LibcRuntime};
use crate::model::{AppKind, AppModel, AppSpec, Exit};
use crate::runtime::{
    self, daemonize, drop_privileges, event_setup, listen_socket, serve_requests, EventApi,
    ResponsePath, ServeCfg,
};
use crate::workload::Workload;

/// Which era of Nginx is modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Era {
    /// A 2021 release (1.21.x): `accept4`, `epoll_create1`, `openat`.
    Modern,
    /// A 2005/2006-era release (0.3.19): `accept`, `epoll_create`,
    /// `recvfrom`, `socketpair` master channel, `dup2` stdio redirect.
    Legacy,
}

/// The Nginx web server.
#[derive(Debug, Clone)]
pub struct Nginx {
    era: Era,
    libc: LibcFlavor,
}

impl Nginx {
    /// A modern (2021) Nginx on modern glibc.
    pub fn modern() -> Nginx {
        Nginx {
            era: Era::Modern,
            libc: LibcFlavor::GlibcDynamic,
        }
    }

    /// Nginx 0.3.19 built against a modern glibc (Table 3, right column;
    /// also the "old release" point of Fig. 8).
    pub fn legacy() -> Nginx {
        Nginx {
            era: Era::Legacy,
            libc: LibcFlavor::GlibcDynamic,
        }
    }

    /// Nginx 0.3.19 built against glibc 2.3.2 in 32-bit mode (Table 3,
    /// left column).
    pub fn legacy_32bit() -> Nginx {
        Nginx {
            era: Era::Legacy,
            libc: LibcFlavor::OldGlibc32,
        }
    }

    fn accept4(&self) -> bool {
        self.era == Era::Modern
    }
}

impl AppModel for Nginx {
    fn name(&self) -> &str {
        match (self.era, self.libc) {
            (Era::Modern, _) => "nginx",
            (Era::Legacy, LibcFlavor::OldGlibc32) => "nginx-0.3.19-glibc2.3.2",
            (Era::Legacy, _) => "nginx-0.3.19",
        }
    }

    fn spec(&self) -> AppSpec {
        AppSpec {
            name: self.name().to_owned(),
            version: match self.era {
                Era::Modern => "1.21.6".into(),
                Era::Legacy => "0.3.19".into(),
            },
            year: match self.era {
                Era::Modern => 2021,
                Era::Legacy => 2006,
            },
            port: Some(80),
            kind: AppKind::WebServer,
            libc: self.libc,
        }
    }

    fn provision(&self, sim: &mut LinuxSim) {
        runtime::provision_base(sim);
        sim.vfs.add_file(
            "/etc/nginx/nginx.conf",
            b"worker_processes 1;\nuser www-data;\naccess_log /var/log/nginx/access.log;\n"
                .to_vec(),
        );
        sim.vfs.add_file("/srv/www/index.html", vec![b'<'; 612]);
        sim.vfs
            .add_file("/srv/www/large.bin", vec![b'L'; 64 * 1024]);
        sim.vfs.mkdir("/var/log/nginx");
    }

    fn run(&self, env: &mut Env<'_>, workload: Workload) -> Result<(), Exit> {
        let mut libc = LibcRuntime::init(env, self.libc)?;

        // --- configuration ------------------------------------------------
        let open_sys = self.libc.open_syscall();
        let conf = env.sys_path(open_sys, [0; 6], "/etc/nginx/nginx.conf");
        if conf.ret < 0 {
            return Err(Exit::Crash(
                "[emerg] open() \"/etc/nginx/nginx.conf\" failed".into(),
            ));
        }
        let conf_fd = conf.ret as u64;
        if env.sys(Sysno::fstat, [conf_fd, 0, 0, 0, 0, 0]).is_err() {
            env.feature("config-mtime-check", false);
        }
        if env.sys(Sysno::read, [conf_fd, 0, 4096, 0, 0, 0]).ret < 0 {
            return Err(Exit::Crash("[emerg] cannot read configuration".into()));
        }
        let _ = env.sys(Sysno::close, [conf_fd, 0, 0, 0, 0, 0]);

        // geteuid: "am I root?" — stub crashes, fake(0) proceeds fine.
        let euid = env.sys0(Sysno::geteuid);
        if euid.ret < 0 {
            return Err(Exit::Crash("[emerg] getuid() failed".into()));
        }
        let _ = env.sys0(Sysno::getpid);
        if self.era == Era::Legacy {
            // 0.3.19 probed kernel parameters via sysctl and gettimeofday
            // at startup.
            if self.libc != LibcFlavor::OldGlibc32 {
                let _ = env.sys(Sysno::_sysctl, [0; 6]);
            }
            let _ = env.sys0(Sysno::gettimeofday);
            let _ = env.sys0(Sysno::uname);
        } else {
            let _ = env.sys0(Sysno::uname);
        }

        // Worker auto-sizing probes /proc/cpuinfo; a missing procfs just
        // means one worker (ignore-resilience).
        if !runtime::read_pseudo(env, open_sys, "/proc/cpuinfo") {
            env.feature("worker-autoscale", false);
        }

        // RLIMIT_NOFILE via the libc wrapper (modern glibc routes getrlimit
        // through prlimit64 — Table 3's prlimit64-vs-getrlimit difference).
        runtime::tune_fd_limit(env, self.libc.rlimit_syscall(), 8192);

        // --- sockets and logs ----------------------------------------------
        // Nginx sets non-blocking via ioctl(FIONBIO), not fcntl (§5.4).
        let listen_fd = listen_socket(env, 80, true, false)?;
        let api = EventApi::Epoll;
        let ep = if self.era == Era::Modern {
            event_setup(env, api, &[listen_fd])?
        } else {
            // Legacy path: epoll_create only (no epoll_create1 in 2006).
            let r = env.sys(Sysno::epoll_create, [512, 0, 0, 0, 0, 0]);
            if r.ret < 0 {
                return Err(Exit::Crash("[emerg] epoll_create() failed".into()));
            }
            let ep = r.ret as u64;
            if env.sys(Sysno::epoll_ctl, [ep, 1, listen_fd, 0, 0, 0]).ret < 0 {
                return Err(Exit::Crash("[emerg] epoll_ctl() failed".into()));
            }
            Some(ep)
        };

        let log = env.sys_path(
            open_sys,
            [0, 0, 0x440 /* O_CREAT|O_APPEND */, 0, 0, 0],
            "/var/log/nginx/access.log",
        );
        let access_log_fd = if log.ret >= 0 {
            // chown the log to the worker user; root-only, fake-friendly.
            if env
                .sys_path(
                    Sysno::chown,
                    [0, 33, 33, 0, 0, 0],
                    "/var/log/nginx/access.log",
                )
                .ret
                < 0
            {
                env.feature("log-ownership", false);
            }
            Some(log.ret as u64)
        } else {
            env.feature("access-logging", false);
            None
        };

        daemonize(env, open_sys, "/var/run/nginx.pid");
        if self.era == Era::Legacy {
            // stdio redirect to /dev/null and the master-worker channel.
            let _ = env.sys(Sysno::dup2, [2, 1, 0, 0, 0, 0]);
            let _ = env.sys(Sysno::socketpair, [1, 1, 0, 0, 0, 0]);
            let _ = env.sys_path(Sysno::mkdir, [0, 0o755, 0, 0, 0, 0], "/var/lib/nginx-tmp");
        }
        drop_privileges(env, true)?;
        // Upstream availability probe (proxy module) + listener flags.
        let probe = env.sys(Sysno::socket, [2, 1, 0, 0, 0, 0]);
        if probe.ret >= 0 {
            let _ = env.sys(Sysno::connect, [probe.ret as u64, 8081, 0, 0, 0, 0]);
            let _ = env.sys(Sysno::close, [probe.ret as u64, 0, 0, 0, 0, 0]);
        }
        let _ = env.sys(Sysno::fcntl, [listen_fd, 3 /* F_GETFL */, 0, 0, 0, 0]);

        // Signal handlers for reload/reap.
        for sig in [1u64, 15, 17, 10] {
            if env.sys(Sysno::rt_sigaction, [sig, 0x1000, 0, 0, 0, 0]).ret < 0 {
                env.feature("signal-handling", false);
            }
        }
        let _ = env.sys(Sysno::rt_sigprocmask, [0, 0, 0, 0, 0, 0]);

        // --- master / worker ----------------------------------------------
        // Master-side temporary config pool: freed only on the true master
        // path below. A faked clone() jumps straight to the worker loop and
        // leaks it (Table 2: clone fake → +memory).
        let master_pool = env.sys(Sysno::mmap, [0, 1536 * 1024, 3, 0x22, u64::MAX, 0]);
        let clone_ret = libc.start_thread(env);
        if clone_ret < 0 {
            return Err(Exit::Crash(
                "[emerg] fork() failed while spawning worker".into(),
            ));
        }
        let master_runs_worker_loop = clone_ret == 0;
        if !master_runs_worker_loop && master_pool.ret > 0 {
            let _ = env.sys(
                Sysno::munmap,
                [master_pool.ret as u64, 1536 * 1024, 0, 0, 0, 0],
            );
        }
        // Worker-side connection/request pools, allocated when the worker
        // loop starts — in the faked-clone path they coexist with the
        // never-freed master pool (Table 2: clone fake -> +memory).
        let _worker_pool = env.sys(Sysno::mmap, [0, 1 << 20, 3, 0x22, u64::MAX, 0]);

        let cfg = ServeCfg {
            port: 80,
            listen_fd,
            epoll_fd: ep,
            fallback_api: api,
            read_syscall: if self.era == Era::Modern {
                Sysno::read
            } else {
                Sysno::recvfrom
            },
            response: ResponsePath::Writev,
            response_len: 612,
            work_per_request: 50,
            access_log_fd,
            accept4: self.accept4(),
            close_every: 8,
        };

        let n = workload.requests();
        let mut batch_start = 0u32;
        while batch_start < n {
            let batch = (n - batch_start).min(10);
            serve_requests(env, &cfg, batch, |env, i, cfd| {
                // Every 25th request serves a large file via sendfile,
                // falling back to read+writev when sendfile is unavailable
                // (sendfile is stubbable — alternative-syscall resilience).
                if (batch_start + i) % 25 == 24 && !self.libc.is_32bit() {
                    let f = env.sys_path(open_sys, [0; 6], "/srv/www/large.bin");
                    if f.ret >= 0 {
                        let ffd = f.ret as u64;
                        let sent = env.sys(Sysno::sendfile, [cfd, ffd, 0, 65536, 0, 0]);
                        if sent.ret < 0 {
                            // Fall back to read+writev.
                            let r = env.sys(Sysno::pread64, [ffd, 0, 65536, 0, 0, 0]);
                            if let Some(bytes) = r.payload.as_bytes() {
                                let _ = env.sys_data(
                                    Sysno::writev,
                                    [cfd, 0, 0, 0, 0, 0],
                                    bytes.clone(),
                                );
                            }
                            env.charge(64);
                        }
                        let _ = env.sys(Sysno::close, [ffd, 0, 0, 0, 0, 0]);
                    }
                }
                Ok(())
            })?;
            batch_start += batch;

            // The master parks between event batches. A working
            // rt_sigsuspend returns -EINTR after sleeping off-CPU; a
            // stub/fake returns instantly and the master burns CPU
            // polling (Table 2: -38%).
            if !master_runs_worker_loop {
                let r = env.sys(Sysno::rt_sigsuspend, [0; 6]);
                if r.errno() != Some(loupe_syscalls::Errno::EINTR) {
                    env.charge(135 * u64::from(batch));
                }
            }
        }

        // --- suite-only feature coverage ------------------------------------
        if workload.checks_aux_features() {
            // Config reload (SIGHUP path): re-open config, re-stat content.
            let re = env.sys_path(open_sys, [0; 6], "/etc/nginx/nginx.conf");
            if re.ret >= 0 {
                let _ = env.sys(Sysno::pread64, [re.ret as u64, 0, 4096, 0, 0, 0]);
                let _ = env.sys(Sysno::close, [re.ret as u64, 0, 0, 0, 0, 0]);
                env.feature("config-reload", true);
            } else {
                env.feature("config-reload", false);
            }
            let st = env.sys_path(Sysno::stat, [0; 6], "/srv/www/index.html");
            env.feature("static-stat", !st.is_err());
            if !self.libc.is_32bit() {
                let _ = env.sys_path(Sysno::lstat, [0; 6], "/srv/www/index.html");
            }
            let _ = env.sys(Sysno::lseek, [3, 0, 0, 0, 0, 0]);
            // Proxy buffering touches temp files via pwrite64.
            let tmp = env.sys_path(open_sys, [0, 0, 0x40, 0, 0, 0], "/var/lib/nginx-proxy.tmp");
            if tmp.ret >= 0 {
                let w = env.sys_data(
                    Sysno::pwrite64,
                    [tmp.ret as u64, 0, 0, 0, 0, 0],
                    vec![0u8; 1024],
                );
                env.feature("proxy-buffering", w.ret > 0);
                let _ = env.sys(Sysno::close, [tmp.ret as u64, 0, 0, 0, 0, 0]);
            }
            // Access-log health: did the log actually grow?
            if access_log_fd.is_some() {
                let st = env.sys_path(Sysno::stat, [0; 6], "/var/log/nginx/access.log");
                let grew = st.payload.as_u64().unwrap_or(0) > 0;
                env.feature("access-logging", grew);
            }
        }

        libc.printf(env, "nginx: shutting down\n");
        let _ = env.sys(Sysno::close, [listen_fd, 0, 0, 0, 0, 0]);
        let _ = env.sys0(Sysno::exit_group);
        Ok(())
    }

    fn code(&self) -> AppCode {
        use Sysno as S;
        let mut code = AppCode::new()
            .with_checked(&[
                S::socket,
                S::bind,
                S::listen,
                S::accept,
                S::setsockopt,
                S::ioctl,
                S::fcntl,
                S::epoll_ctl,
                S::epoll_wait,
                S::read,
                S::writev,
                S::sendfile,
                S::close,
                S::openat,
                S::open,
                S::fstat,
                S::stat,
                S::lstat,
                S::pread64,
                S::pwrite64,
                S::mmap,
                S::munmap,
                S::brk,
                S::clone,
                S::set_robust_list,
                S::rt_sigaction,
                S::rt_sigsuspend,
                S::setuid,
                S::setgid,
                S::setgroups,
                S::prctl,
                S::chown,
                S::geteuid,
                S::setrlimit,
                S::getrlimit,
                S::prlimit64,
                S::setsid,
                S::dup2,
                S::mkdir,
                S::socketpair,
                S::execve,
                S::lseek,
                S::recvfrom,
                S::sendto,
                S::connect,
                S::shutdown,
                S::unlink,
                S::rename,
                S::getsockname,
                S::getsockopt,
                S::sched_setaffinity,
                S::kill,
                S::wait4,
            ])
            .with_unchecked(&[
                S::write,
                S::umask,
                S::getpid,
                S::gettimeofday,
                S::clock_gettime,
                S::uname,
                S::rt_sigprocmask,
                S::exit_group,
                S::epoll_create,
                S::epoll_create1,
                S::accept4,
                S::getppid,
                S::_sysctl,
                S::times,
                S::madvise,
            ])
            // Error paths and rarely-enabled modules (mail proxy, dav):
            // visible to static analysis only.
            .with_binary_extra(&[
                S::chroot,
                S::symlink,
                S::readlink,
                S::utimensat,
                S::flock,
                S::getdents64,
                S::sysinfo,
                S::sched_getaffinity,
                S::eventfd2,
                S::timerfd_create,
                S::timerfd_settime,
                S::setitimer,
            ]);
        if self.era == Era::Modern {
            code.source_syscalls.insert(S::statx);
        }
        code
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;
    use loupe_kernel::Kernel;

    fn run(nginx: &Nginx, workload: Workload) -> (crate::model::AppOutcome, LinuxSim) {
        let mut sim = LinuxSim::new();
        nginx.provision(&mut sim);
        let mut env = Env::new(&mut sim);
        let res = nginx.run(&mut env, workload);
        let exit = match res {
            Ok(()) => Exit::Clean,
            Err(e) => e,
        };
        (env.finish(exit), sim)
    }

    #[test]
    fn benchmark_serves_all_requests() {
        let (out, _) = run(&Nginx::modern(), Workload::Benchmark);
        assert!(out.exit.is_clean(), "{:?}", out.exit);
        assert_eq!(out.responses, u64::from(Workload::Benchmark.requests()));
        assert!(out.failures.is_empty(), "{:?}", out.failures);
    }

    #[test]
    fn health_check_passes() {
        let (out, _) = run(&Nginx::modern(), Workload::HealthCheck);
        assert_eq!(out.responses, 1);
    }

    #[test]
    fn suite_covers_aux_features() {
        let (out, sim) = run(&Nginx::modern(), Workload::TestSuite);
        assert!(out.exit.is_clean());
        assert_eq!(out.features.get("access-logging"), Some(&true));
        assert_eq!(out.features.get("config-reload"), Some(&true));
        assert!(sim.vfs.size("/var/log/nginx/access.log").unwrap() > 0);
    }

    #[test]
    fn legacy_variant_uses_old_syscalls() {
        let mut sim = LinuxSim::new();
        let nginx = Nginx::legacy();
        nginx.provision(&mut sim);
        let mut env = Env::new(&mut sim);
        nginx.run(&mut env, Workload::HealthCheck).unwrap();
        let out = env.finish(Exit::Clean);
        assert_eq!(out.responses, 1);
    }

    #[test]
    fn legacy_32bit_boots() {
        let (out, _) = run(&Nginx::legacy_32bit(), Workload::HealthCheck);
        assert!(out.exit.is_clean(), "{:?}", out.exit);
    }

    #[test]
    fn code_view_is_superset_of_needs() {
        let code = Nginx::modern().code();
        assert!(code.source_syscalls.contains(Sysno::writev));
        assert!(code.source_syscalls.contains(Sysno::rt_sigsuspend));
        assert!(code.return_checks[&Sysno::prctl]);
        assert!(!code.return_checks[&Sysno::write], "log writes unchecked");
    }

    #[test]
    fn access_log_contributes_file_growth() {
        let (_, mut sim) = run(&Nginx::modern(), Workload::Benchmark);
        assert!(sim.vfs.size("/var/log/nginx/access.log").unwrap() > 100);
        assert_eq!(sim.host_mut().pending_responses(), 0);
    }
}
