//! Detailed application models.
//!
//! Each model transcribes, in imperative Rust against the simulated
//! kernel, the system-call behaviour and failure-resilience logic of one
//! of the cloud applications the paper analyses in depth. The models are
//! the ground truth the Loupe engine measures; none of them knows anything
//! about stubbing or faking — they only react to syscall return values,
//! exactly like the real programs.

pub mod h2o;
pub mod haproxy;
pub mod hello;
pub mod httpd;
pub mod iperf3;
pub mod lighttpd;
pub mod memcached;
pub mod mongodb;
pub mod nginx;
pub mod redis;
pub mod sqlite;
pub mod webfsd;
pub mod weborf;

pub use h2o::H2o;
pub use haproxy::Haproxy;
pub use hello::Hello;
pub use httpd::Httpd;
pub use iperf3::Iperf3;
pub use lighttpd::Lighttpd;
pub use memcached::Memcached;
pub use mongodb::MongoDb;
pub use nginx::Nginx;
pub use redis::Redis;
pub use sqlite::Sqlite;
pub use webfsd::Webfsd;
pub use weborf::Weborf;
