//! The HAProxy model: a TCP/HTTP proxy.
//!
//! Distinctives: backend `connect` is load-bearing (no backend, no
//! service), `prlimit64` is *required* (HAProxy computes its connection
//! budget from RLIMIT_NOFILE and refuses to start without it — Table 1
//! Kerla implements 302 for HAProxy), and a raft of socket-option calls are
//! unchecked and stubbable (§5.2: HAProxy tops the bench stub/fake ratio
//! at 65%).

use loupe_kernel::LinuxSim;
use loupe_syscalls::Sysno;

use crate::code::AppCode;
use crate::env::Env;
use crate::libc::{LibcFlavor, LibcRuntime};
use crate::model::{AppKind, AppModel, AppSpec, Exit};
use crate::runtime::{
    self, daemonize, event_setup, listen_socket, serve_requests, EventApi, ResponsePath, ServeCfg,
};
use crate::workload::Workload;

/// The HAProxy load balancer.
#[derive(Debug, Clone, Default)]
pub struct Haproxy;

impl Haproxy {
    /// Creates the model.
    pub fn new() -> Haproxy {
        Haproxy
    }
}

impl AppModel for Haproxy {
    fn name(&self) -> &str {
        "haproxy"
    }

    fn spec(&self) -> AppSpec {
        AppSpec {
            name: "haproxy".into(),
            version: "2.4.7".into(),
            year: 2021,
            port: Some(8000),
            kind: AppKind::Proxy,
            libc: LibcFlavor::GlibcDynamic,
        }
    }

    fn provision(&self, sim: &mut LinuxSim) {
        runtime::provision_base(sim);
        sim.vfs.add_file(
            "/etc/haproxy/haproxy.cfg",
            b"frontend fe\n  bind :8000\nbackend be\n  server s1 127.0.0.1:9000\n".to_vec(),
        );
    }

    fn run(&self, env: &mut Env<'_>, workload: Workload) -> Result<(), Exit> {
        let libc = &mut LibcRuntime::init(env, LibcFlavor::GlibcDynamic)?;

        let conf = env.sys_path(Sysno::openat, [0; 6], "/etc/haproxy/haproxy.cfg");
        if conf.ret < 0 {
            return Err(Exit::Crash("cannot open configuration".into()));
        }
        let _ = env.sys(Sysno::read, [conf.ret as u64, 0, 4096, 0, 0, 0]);
        let _ = env.sys(Sysno::close, [conf.ret as u64, 0, 0, 0, 0, 0]);

        // Connection budget from RLIMIT_NOFILE: *fatal* when unavailable
        // ("[ALERT] Cannot get/set RLIMIT_NOFILE").
        let rl = env.sys(Sysno::prlimit64, [0, 7, 0, 0, 0, 0]);
        if rl.is_err() || !matches!(rl.payload, loupe_kernel::Payload::Pair(..)) {
            return Err(Exit::Crash("[ALERT] cannot compute resource limits".into()));
        }

        // Backlog tuning reads the kernel's somaxconn (ignore-resilient).
        let _ = runtime::read_pseudo(env, Sysno::openat, "/proc/sys/net/core/somaxconn");
        daemonize(env, Sysno::openat, "/var/run/haproxy.pid");
        // CLI/master socketpair.
        let _ = env.sys(Sysno::socketpair, [1, 1, 0, 0, 0, 0]);
        // setgroups/setgid/setuid: checked, fatal (fakeable, Table 1).
        runtime::drop_privileges(env, false)?;

        let listen_fd = listen_socket(env, 8000, false, true)?;
        let ep = event_setup(env, EventApi::Epoll, &[listen_fd])?;
        // Backend health check: connect must work or every request 503s.
        let be = env.sys(Sysno::socket, [2, 1, 0, 0, 0, 0]);
        if be.ret < 0 {
            return Err(Exit::Crash("cannot create backend socket".into()));
        }
        let be_fd = be.ret as u64;
        if env.sys(Sysno::connect, [be_fd, 9000, 0, 0, 0, 0]).ret < 0 {
            return Err(Exit::Crash("no backend server available".into()));
        }
        // Per-connection tuning: unchecked, stub/fake freely.
        let _ = env.sys(Sysno::setsockopt, [be_fd, 6, 1, 1, 0, 0]);
        let _ = env.sys(Sysno::getsockopt, [be_fd, 1, 4, 0, 0, 0]);

        let cfg = ServeCfg {
            port: 8000,
            listen_fd,
            epoll_fd: ep,
            fallback_api: EventApi::Epoll,
            read_syscall: Sysno::read,
            response: ResponsePath::Write,
            response_len: 256,
            work_per_request: 40,
            access_log_fd: None,
            accept4: true,
            close_every: 8,
        };
        serve_requests(env, &cfg, workload.requests(), |env, i, _| {
            // Forward to backend and relay: modelled as backend write.
            let w = env.sys_data(Sysno::write, [be_fd, 0, 0, 0, 0, 0], vec![b'F'; 128]);
            if w.ret < 0 {
                env.fail("backend forward failed");
            }
            if i % 20 == 19 {
                let _ = env.sys0(Sysno::clock_gettime);
            }
            Ok(())
        })?;

        if workload.checks_aux_features() {
            // Stats socket + reload path.
            let _ = env.sys0(Sysno::getpid);
            let _ = env.sys(Sysno::rt_sigaction, [10, 0x1, 0, 0, 0, 0]);
            let chroot = env.sys_path(Sysno::chroot, [0; 6], "/var/lib/haproxy");
            env.feature("chroot-jail", !chroot.is_err());
            env.feature("stats", true);
        }

        libc.printf(env, "haproxy: stopping\n");
        let _ = env.sys(Sysno::close, [be_fd, 0, 0, 0, 0, 0]);
        let _ = env.sys(Sysno::close, [listen_fd, 0, 0, 0, 0, 0]);
        let _ = env.sys0(Sysno::exit_group);
        Ok(())
    }

    fn code(&self) -> AppCode {
        use Sysno as S;
        AppCode::new()
            .with_checked(&[
                S::socket,
                S::bind,
                S::listen,
                S::accept4,
                S::accept,
                S::connect,
                S::fcntl,
                S::epoll_create1,
                S::epoll_create,
                S::epoll_ctl,
                S::epoll_wait,
                S::read,
                S::write,
                S::close,
                S::openat,
                S::prlimit64,
                S::setrlimit,
                S::setuid,
                S::setgid,
                S::setgroups,
                S::chroot,
                S::clone,
                S::socketpair,
                S::sendto,
                S::recvfrom,
                S::brk,
                S::mmap,
                S::munmap,
                S::rt_sigaction,
                S::pipe2,
                S::sendmsg,
                S::recvmsg,
                S::shutdown,
            ])
            .with_unchecked(&[
                S::setsockopt,
                S::getsockopt,
                S::getpid,
                S::clock_gettime,
                S::gettimeofday,
                S::umask,
                S::setsid,
                S::exit_group,
                S::rt_sigprocmask,
                S::sched_yield,
                S::getuid,
                S::geteuid,
            ])
            .with_binary_extra(&[
                S::timer_create,
                S::timer_settime,
                S::timer_delete,
                S::eventfd2,
                S::statfs,
                S::getrandom,
                S::sched_setaffinity,
                S::sysinfo,
                S::splice,
            ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proxies_all_requests() {
        let mut sim = LinuxSim::new();
        let app = Haproxy::new();
        app.provision(&mut sim);
        let mut env = Env::new(&mut sim);
        app.run(&mut env, Workload::Benchmark).unwrap();
        let out = env.finish(Exit::Clean);
        assert_eq!(out.responses, 200);
        assert!(out.failures.is_empty(), "{:?}", out.failures);
    }
}
