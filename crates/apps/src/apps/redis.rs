//! The Redis model.
//!
//! Redis is the paper's running example: 42 syscalls to pass the test
//! suite, only ~20 required for `redis-benchmark` (§1), with the Table 2
//! dynamics concentrated here:
//!
//! * `getrlimit`/`prlimit64` failure → conservative `maxclients` default
//!   (Fig. 6a — stubbable);
//! * `sysinfo` and `ioctl(TCGETS)` failures are ignored (log-only, §5.2);
//! * `pipe2` failure disables persistence but not the key-value core;
//! * faked `futex` corrupts lock hand-off: throughput collapses, file
//!   descriptors leak, and the test script eventually sees wrong data;
//! * faked `close`/`munmap` leak FDs / memory while staying functional;
//! * `rt_sigprocmask` failure suppresses the background-free thread, so
//!   memory is released earlier (-15% RSS).

use loupe_kernel::LinuxSim;
use loupe_syscalls::Sysno;

use crate::code::AppCode;
use crate::env::Env;
use crate::libc::{LibcFlavor, LibcRuntime};
use crate::model::{AppKind, AppModel, AppSpec, Exit};
use crate::runtime::{
    self, event_setup, listen_socket, locked_section, serve_requests, EventApi, ResponsePath,
    ServeCfg,
};
use crate::workload::Workload;

/// The Redis key-value store.
#[derive(Debug, Clone)]
pub struct Redis {
    year: u32,
}

impl Redis {
    /// A modern (2021, 6.x) Redis.
    pub fn modern() -> Redis {
        Redis { year: 2021 }
    }

    /// A 2010-era (2.0) Redis for the evolution experiment (Fig. 8).
    pub fn legacy() -> Redis {
        Redis { year: 2010 }
    }

    fn is_modern(&self) -> bool {
        self.year >= 2015
    }
}

impl AppModel for Redis {
    fn name(&self) -> &str {
        if self.is_modern() {
            "redis"
        } else {
            "redis-2.0"
        }
    }

    fn spec(&self) -> AppSpec {
        AppSpec {
            name: self.name().to_owned(),
            version: if self.is_modern() { "6.2.6" } else { "2.0.4" }.into(),
            year: self.year,
            port: Some(6379),
            kind: AppKind::KeyValue,
            libc: LibcFlavor::GlibcDynamic,
        }
    }

    fn provision(&self, sim: &mut LinuxSim) {
        runtime::provision_base(sim);
        sim.vfs.add_file(
            "/etc/redis/redis.conf",
            b"maxclients 10000\nappendonly yes\n".to_vec(),
        );
        sim.vfs.add_file("/data/appendonly.aof", vec![b'*'; 256]);
        sim.vfs.mkdir("/data");
    }

    fn run(&self, env: &mut Env<'_>, workload: Workload) -> Result<(), Exit> {
        let mut libc = LibcRuntime::init(env, LibcFlavor::GlibcDynamic)?;

        // --- startup -------------------------------------------------------
        // Config is optional: Redis runs with defaults if it cannot be read.
        let conf = env.sys_path(Sysno::openat, [0; 6], "/etc/redis/redis.conf");
        if conf.ret >= 0 {
            let _ = env.sys(Sysno::read, [conf.ret as u64, 0, 4096, 0, 0, 0]);
            let _ = env.sys(Sysno::close, [conf.ret as u64, 0, 0, 0, 0, 0]);
        } else {
            env.feature("config-file", false);
        }

        // Terminal width for the startup banner: ignored on failure
        // ("Redis assumes a safe value of 80 characters", §5.2).
        let _ = env.sys(Sysno::ioctl, [1, 0x5413 /* TIOCGWINSZ */, 0, 0, 0, 0]);
        // Total memory for maxmemory hints: only used in debug logs (§5.2).
        let _ = env.sys0(Sysno::sysinfo);
        let _ = env.sys0(Sysno::getpid);
        let _ = env.sys(Sysno::umask, [0o077, 0, 0, 0, 0, 0]);
        let _ = env.sys0(Sysno::getcwd);
        libc.printf(env, "* Ready to accept connections\n");

        // Kernel tunable probes (real Redis warns about overcommit and
        // transparent hugepages at startup): ignore-resilient.
        if !runtime::read_pseudo(env, Sysno::openat, "/proc/sys/vm/overcommit_memory") {
            libc.printf(env, "# WARNING overcommit_memory could not be checked\n");
        }
        let _ = runtime::read_pseudo(
            env,
            Sysno::openat,
            "/sys/kernel/mm/transparent_hugepage/enabled",
        );

        // maxclients from RLIMIT_NOFILE (Fig. 6a): safe default on failure.
        let _maxclients = runtime::tune_fd_limit(env, Sysno::prlimit64, 10032);

        // AOF load: checks file presence with newfstatat, reads with
        // pread64. A missing file is fine (fresh instance); a *broken
        // stat/pread* (ENOSYS) is a fatal load error.
        let st = env.sys_path(Sysno::newfstatat, [0; 6], "/data/appendonly.aof");
        if st.ret >= 0 {
            // The stat's size drives the loader's read plan: a faked stat
            // (no size) is as fatal as a failed one.
            let Some(aof_size) = st.payload.as_u64() else {
                return Err(Exit::Crash("Can't stat the append only file".into()));
            };
            let aof = env.sys_path(Sysno::openat, [0; 6], "/data/appendonly.aof");
            if aof.ret >= 0 {
                let r = env.sys(Sysno::pread64, [aof.ret as u64, 0, 4096, 0, 0, 0]);
                let loaded = r.payload.as_bytes().map_or(0, |b| b.len() as u64);
                if r.ret < 0 || loaded < aof_size.min(4096) {
                    return Err(Exit::Crash(
                        "Bad file format reading the append only file".into(),
                    ));
                }
                let _ = env.sys(Sysno::close, [aof.ret as u64, 0, 0, 0, 0, 0]);
            }
        } else if st.errno() != Some(loupe_syscalls::Errno::ENOENT) {
            return Err(Exit::Crash("Can't stat the append only file".into()));
        }

        // Persistence channel (parent <-> RDB child): stub → disabled with
        // a log line; fake → garbage fds that surface later (§5.3).
        let pipe = env.sys(Sysno::pipe2, [0, 0x80000, 0, 0, 0, 0]);
        let persistence_fds = if pipe.ret == 0 {
            match pipe.payload.as_fds() {
                Some(fds) => Some(fds),
                None => Some([-1, -1]), // faked: "success" without fds
            }
        } else {
            libc.printf(env, "# Can't create pipe: persistence disabled\n");
            env.feature("persistence", false);
            None
        };

        // Background lazy-free thread. pthread_sigmask failure suppresses
        // the thread (Table 2: sigprocmask → memory freed earlier).
        let mask = env.sys(Sysno::rt_sigprocmask, [0, 0xffff, 0, 0, 0, 0]);
        let bg_thread = if mask.ret == 0 {
            libc.start_thread(env) > 0
        } else {
            false
        };

        // --- sockets --------------------------------------------------------
        // anetNonBlock uses fcntl(F_SETFL) and treats failure as fatal.
        let listen_fd = listen_socket(env, 6379, false, true)?;
        let ep = event_setup(env, EventApi::Epoll, &[listen_fd])?;

        let cfg = ServeCfg {
            port: 6379,
            listen_fd,
            epoll_fd: ep,
            fallback_api: EventApi::Epoll,
            read_syscall: Sysno::read,
            response: ResponsePath::Write,
            response_len: 64,
            work_per_request: 120,
            access_log_fd: None,
            accept4: self.is_modern(),
            close_every: 5,
        };

        // --- event loop -------------------------------------------------------
        let n = workload.requests();
        let mut corruption = 0u32;
        let mut deferred: Vec<(u64, u64)> = Vec::new();
        let lock_addr = 0x6000u64;
        let mut batch_buf: Option<(u64, u64)> = None;
        serve_requests(env, &cfg, n, |env, i, _cfd| {
            // Every 16 requests: a 256 KiB working buffer (jemalloc huge
            // class → mmap-backed).
            if i % 16 == 0 {
                let r = env.sys(Sysno::mmap, [0, 256 * 1024, 3, 0x22, u64::MAX, 0]);
                if r.ret > 0 {
                    let this = (r.ret as u64, 256 * 1024u64);
                    if let Some(prev) = batch_buf.replace(this) {
                        if bg_thread {
                            // Lazy free: the bg thread releases later.
                            deferred.push(prev);
                            if deferred.len() >= 4 {
                                for (addr, len) in deferred.drain(..) {
                                    let _ = env.sys(Sysno::munmap, [addr, len, 0, 0, 0, 0]);
                                }
                            }
                        } else {
                            let _ = env.sys(Sysno::munmap, [prev.0, prev.1, 0, 0, 0, 0]);
                        }
                    }
                }
            }
            // Every 4th request contends on the dict lock with the bg
            // thread. A faked/stubbed futex barges into the held section.
            if i % 4 == 3 && !locked_section(env, &mut libc, lock_addr, true) {
                corruption += 1;
                env.charge(2200); // detect + repair the inconsistent entry
                if corruption.is_multiple_of(8) {
                    // Inconsistent client bookkeeping re-registers an fd.
                    let _ = env.sys_path(Sysno::openat, [0; 6], "/dev/null");
                }
                if corruption > 3 {
                    env.fail("WRONGTYPE inconsistent value read");
                }
            }
            // Periodic serverCron: time + stats, all ignore-resilient.
            if i % 10 == 0 {
                let _ = env.sys0(Sysno::clock_gettime);
                let _ = env.sys0(Sysno::getrusage);
                let _ = env.sys(Sysno::madvise, [0x7000_0000, 4096, 4, 0, 0, 0]);
            }
            Ok(())
        })?;

        // Release anything still deferred.
        for (addr, len) in deferred.drain(..) {
            let _ = env.sys(Sysno::munmap, [addr, len, 0, 0, 0, 0]);
        }
        if let Some((addr, len)) = batch_buf.take() {
            let _ = env.sys(Sysno::munmap, [addr, len, 0, 0, 0, 0]);
        }

        // --- persistence (exercised by the suite) ---------------------------
        if workload.checks_aux_features() {
            if let Some([rfd, wfd]) = persistence_fds {
                // BGSAVE handshake through the pipe, then RDB write-out.
                let ok = if wfd >= 0 {
                    let w = env.sys_data(Sysno::write, [wfd as u64, 0, 0, 0, 0, 0], &b"save\n"[..]);
                    let r = env.sys(Sysno::read, [rfd as u64, 0, 16, 0, 0, 0]);
                    w.ret > 0 && r.ret > 0
                } else {
                    false
                };
                let rdb = env.sys_path(Sysno::openat, [0, 0, 0x40, 0, 0, 0], "/data/temp.rdb");
                let written = if rdb.ret >= 0 {
                    let fd = rdb.ret as u64;
                    let w = env.sys_data(Sysno::write, [fd, 0, 0, 0, 0, 0], vec![b'R'; 2048]);
                    let _ = env.sys(Sysno::fdatasync, [fd, 0, 0, 0, 0, 0]);
                    let _ = env.sys(Sysno::close, [fd, 0, 0, 0, 0, 0]);
                    let renamed = env.sys_path(Sysno::rename, [0; 6], "/data/temp.rdb").ret == 0;
                    w.ret > 0 && renamed
                } else {
                    false
                };
                env.feature("persistence", ok && written);
            }
            // INFO command surface.
            let _ = env.sys0(Sysno::uname);
            let _ = env.sys0(Sysno::times);
            let _ = env.sys(Sysno::unlink, [0; 6]);
        }

        if corruption > 0 {
            libc.printf(env, "# Synchronization anomalies detected\n");
        }
        let _ = env.sys(Sysno::close, [listen_fd, 0, 0, 0, 0, 0]);
        let _ = env.sys0(Sysno::exit_group);
        Ok(())
    }

    fn code(&self) -> AppCode {
        use Sysno as S;
        let mut code = AppCode::new()
            .with_checked(&[
                S::socket,
                S::bind,
                S::listen,
                S::accept,
                S::accept4,
                S::fcntl,
                S::epoll_ctl,
                S::epoll_wait,
                S::epoll_create,
                S::epoll_create1,
                S::read,
                S::write,
                S::close,
                S::openat,
                S::open,
                S::fstat,
                S::newfstatat,
                S::pread64,
                S::pwrite64,
                S::mmap,
                S::munmap,
                S::brk,
                S::clone,
                S::set_robust_list,
                S::rt_sigaction,
                S::rt_sigprocmask,
                S::futex,
                S::pipe2,
                S::pipe,
                S::fdatasync,
                S::fsync,
                S::rename,
                S::unlink,
                S::getrlimit,
                S::prlimit64,
                S::setrlimit,
                S::lseek,
                S::ftruncate,
                S::connect,
                S::setsockopt,
                S::getsockopt,
                S::kill,
                S::wait4,
                S::execve,
                S::mremap,
            ])
            .with_unchecked(&[
                S::ioctl,
                S::sysinfo,
                S::getpid,
                S::umask,
                S::getcwd,
                S::clock_gettime,
                S::gettimeofday,
                S::getrusage,
                S::madvise,
                S::uname,
                S::times,
                S::exit_group,
                S::getppid,
                S::sched_yield,
                S::getuid,
            ])
            // Cluster mode, TLS, modules: present in the binary, never run
            // by these workloads.
            .with_binary_extra(&[
                S::sendto,
                S::recvfrom,
                S::sendmsg,
                S::recvmsg,
                S::socketpair,
                S::eventfd2,
                S::getrandom,
                S::statfs,
                S::getdents64,
                S::chdir,
                S::setsid,
                S::setuid,
                S::setgid,
                S::sigaltstack,
                S::mincore,
            ]);
        if !self.is_modern() {
            // 2010-era Redis predates accept4/pipe2 usage.
            code.source_syscalls.remove(S::accept4);
            code.source_syscalls.remove(S::pipe2);
            code.source_syscalls.insert(S::pipe);
        }
        code
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(redis: &Redis, workload: Workload) -> (crate::model::AppOutcome, LinuxSim) {
        let mut sim = LinuxSim::new();
        redis.provision(&mut sim);
        let mut env = Env::new(&mut sim);
        let res = redis.run(&mut env, workload);
        let exit = match res {
            Ok(()) => Exit::Clean,
            Err(e) => e,
        };
        (env.finish(exit), sim)
    }

    #[test]
    fn benchmark_serves_everything() {
        let (out, _) = run(&Redis::modern(), Workload::Benchmark);
        assert!(out.exit.is_clean(), "{:?}", out.exit);
        assert_eq!(out.responses, 200);
        assert!(out.failures.is_empty(), "{:?}", out.failures);
    }

    #[test]
    fn suite_verifies_persistence() {
        let (out, sim) = run(&Redis::modern(), Workload::TestSuite);
        assert!(out.exit.is_clean());
        assert_eq!(out.features.get("persistence"), Some(&true));
        assert!(sim.vfs.exists("/data/temp.rdb"));
    }

    #[test]
    fn no_corruption_on_real_kernel() {
        let (out, sim) = run(&Redis::modern(), Workload::Benchmark);
        assert!(out.failures.is_empty());
        // All working buffers were released; only libc-loader maps remain.
        assert!(
            sim.memory().map_count() <= 8,
            "maps: {}",
            sim.memory().map_count()
        );
    }

    #[test]
    fn legacy_variant_differs_in_code() {
        let new = Redis::modern().code();
        let old = Redis::legacy().code();
        assert!(new.source_syscalls.contains(Sysno::accept4));
        assert!(!old.source_syscalls.contains(Sysno::accept4));
        assert!(old.source_syscalls.contains(Sysno::pipe));
    }

    #[test]
    fn fd_usage_is_bounded_on_real_kernel() {
        let (_, sim) = run(&Redis::modern(), Workload::Benchmark);
        assert!(
            sim.fd_table().open_count() < 10,
            "fds: {}",
            sim.fd_table().open_count()
        );
    }
}
