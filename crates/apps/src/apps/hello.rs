//! The hello-world model (Table 4): prints one line and exits.
//!
//! Its entire syscall footprint *is* the libc init sequence plus the
//! `printf` path and `exit_group`, which is exactly what §5.6 measures
//! across glibc/musl and dynamic/static linking.

use loupe_kernel::LinuxSim;
use loupe_syscalls::Sysno;

use crate::code::AppCode;
use crate::env::Env;
use crate::libc::{LibcFlavor, LibcRuntime};
use crate::model::{AppKind, AppModel, AppSpec, Exit};
use crate::runtime;
use crate::workload::Workload;

/// A trivial "Hello, world!" program, parameterised by libc build.
#[derive(Debug, Clone)]
pub struct Hello {
    libc: LibcFlavor,
}

impl Hello {
    /// Creates a hello-world linked against `libc`.
    pub fn new(libc: LibcFlavor) -> Hello {
        Hello { libc }
    }

    /// All four Table 4 build configurations.
    pub fn table4_matrix() -> Vec<Hello> {
        vec![
            Hello::new(LibcFlavor::GlibcDynamic),
            Hello::new(LibcFlavor::GlibcStatic),
            Hello::new(LibcFlavor::MuslDynamic),
            Hello::new(LibcFlavor::MuslStatic),
        ]
    }
}

impl AppModel for Hello {
    fn name(&self) -> &str {
        match self.libc {
            LibcFlavor::GlibcDynamic => "hello-glibc-dynamic",
            LibcFlavor::GlibcStatic => "hello-glibc-static",
            LibcFlavor::MuslDynamic => "hello-musl-dynamic",
            LibcFlavor::MuslStatic => "hello-musl-static",
            LibcFlavor::OldGlibc32 => "hello-glibc232",
        }
    }

    fn spec(&self) -> AppSpec {
        AppSpec {
            name: self.name().to_owned(),
            version: "1.0".into(),
            year: 2021,
            port: None,
            kind: AppKind::Utility,
            libc: self.libc,
        }
    }

    fn provision(&self, sim: &mut LinuxSim) {
        runtime::provision_base(sim);
    }

    fn run(&self, env: &mut Env<'_>, _workload: Workload) -> Result<(), Exit> {
        let mut libc = LibcRuntime::init(env, self.libc)?;
        libc.printf(env, "Hello, world!\n");
        env.record_response(); // the printed line is the observable output
        let _ = env.sys0(Sysno::exit_group);
        Ok(())
    }

    fn code(&self) -> AppCode {
        AppCode::new().with_unchecked(&[self.libc.printf_syscall(), Sysno::exit_group])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loupe_kernel::Kernel;

    #[test]
    fn prints_hello_on_every_libc() {
        for hello in Hello::table4_matrix() {
            let mut sim = LinuxSim::new();
            hello.provision(&mut sim);
            let mut env = Env::new(&mut sim);
            hello.run(&mut env, Workload::HealthCheck).unwrap();
            let out = env.finish(Exit::Clean);
            assert_eq!(out.responses, 1, "{}", hello.name());
            assert!(
                sim.host_mut()
                    .console
                    .iter()
                    .any(|l| l.contains("Hello, world!")),
                "{}",
                hello.name()
            );
        }
    }
}
