//! The Weborf model: a minimal static-file web server.
//!
//! Small syscall footprint; quirks from Table 1 (Kerla): `mprotect` is on
//! the *implement* list (weborf's thread-stack guard pages are checked)
//! and `prlimit64` is fakeable.

use loupe_kernel::LinuxSim;
use loupe_syscalls::Sysno;

use crate::code::AppCode;
use crate::env::Env;
use crate::libc::{LibcFlavor, LibcRuntime};
use crate::model::{AppKind, AppModel, AppSpec, Exit};
use crate::runtime::{self, serve_requests, EventApi, ResponsePath, ServeCfg};
use crate::workload::Workload;

/// The Weborf web server.
#[derive(Debug, Clone, Default)]
pub struct Weborf;

impl Weborf {
    /// Creates the model.
    pub fn new() -> Weborf {
        Weborf
    }
}

impl AppModel for Weborf {
    fn name(&self) -> &str {
        "weborf"
    }

    fn spec(&self) -> AppSpec {
        AppSpec {
            name: "weborf".into(),
            version: "0.17".into(),
            year: 2020,
            port: Some(8080),
            kind: AppKind::WebServer,
            libc: LibcFlavor::GlibcDynamic,
        }
    }

    fn provision(&self, sim: &mut LinuxSim) {
        runtime::provision_base(sim);
        sim.vfs.add_file("/srv/web/index.html", vec![b'w'; 256]);
    }

    fn run(&self, env: &mut Env<'_>, workload: Workload) -> Result<(), Exit> {
        let mut libc = LibcRuntime::init(env, LibcFlavor::GlibcDynamic)?;

        // Thread pool with guard pages: mprotect is checked and fatal.
        for _ in 0..2 {
            let stack = env.sys(Sysno::mmap, [0, 256 * 1024, 3, 0x22, u64::MAX, 0]);
            if stack.ret <= 0 {
                return Err(Exit::Crash("cannot allocate thread stack".into()));
            }
            // The guard page must really be PROT_NONE: weborf re-reads
            // the applied protection (as /proc/self/maps would show it).
            let guard = env.sys(Sysno::mprotect, [stack.ret as u64, 4096, 0, 0, 0, 0]);
            if guard.ret < 0 || guard.payload.as_u64() != Some(0) {
                return Err(Exit::Crash("cannot install stack guard page".into()));
            }
            let _ = libc.start_thread(env);
        }
        // prlimit64 for the connection cap: safe default on failure.
        runtime::tune_fd_limit(env, Sysno::prlimit64, 2048);

        let listen_fd = runtime::listen_socket(env, 8080, false, true)?;
        // weborf predates epoll in this configuration: poll-based loop.
        let cfg = ServeCfg {
            port: 8080,
            listen_fd,
            epoll_fd: None,
            fallback_api: EventApi::Poll,
            read_syscall: Sysno::read,
            response: ResponsePath::Write,
            response_len: 256,
            work_per_request: 30,
            access_log_fd: None,
            accept4: false,
            close_every: 8,
        };
        serve_requests(env, &cfg, workload.requests(), |env, i, _| {
            if i % 8 == 7 {
                let _ = env.sys_path(Sysno::stat, [0; 6], "/srv/web/index.html");
            }
            Ok(())
        })?;

        if workload.checks_aux_features() {
            let dir = env.sys_path(Sysno::openat, [0; 6], "/srv/web");
            if dir.ret >= 0 {
                let l = env.sys(Sysno::getdents64, [dir.ret as u64, 0, 0, 0, 0, 0]);
                env.feature("dir-listing", l.ret >= 0);
                let _ = env.sys(Sysno::close, [dir.ret as u64, 0, 0, 0, 0, 0]);
            }
            let _ = env.sys0(Sysno::getuid);
        }

        let _ = env.sys(Sysno::close, [listen_fd, 0, 0, 0, 0, 0]);
        let _ = env.sys0(Sysno::exit_group);
        Ok(())
    }

    fn code(&self) -> AppCode {
        use Sysno as S;
        AppCode::new()
            .with_checked(&[
                S::socket,
                S::bind,
                S::listen,
                S::accept,
                S::read,
                S::write,
                S::close,
                S::openat,
                S::open,
                S::stat,
                S::fstat,
                S::mmap,
                S::mprotect,
                S::brk,
                S::clone,
                S::set_robust_list,
                S::poll,
                S::fcntl,
                S::getdents64,
                S::futex,
            ])
            .with_unchecked(&[
                S::getuid,
                S::getpid,
                S::setsockopt,
                S::prlimit64,
                S::getrlimit,
                S::exit_group,
                S::clock_gettime,
                S::rt_sigaction,
                S::munmap,
            ])
            .with_binary_extra(&[S::setuid, S::setgid, S::chdir, S::chroot, S::sendfile])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_health_check_and_benchmark() {
        for w in [Workload::HealthCheck, Workload::Benchmark] {
            let mut sim = LinuxSim::new();
            let app = Weborf::new();
            app.provision(&mut sim);
            let mut env = Env::new(&mut sim);
            app.run(&mut env, w).unwrap();
            let out = env.finish(Exit::Clean);
            assert_eq!(out.responses, u64::from(w.requests()));
        }
    }
}
