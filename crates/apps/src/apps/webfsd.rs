//! The webfsd model: a single-file static web server.
//!
//! Table 1 distinctive (Kerla step 10): the identity getters
//! `getuid`/`getgid`/`geteuid`/`getegid` are on the *implement* list —
//! webfsd refuses to serve without knowing who it runs as.

use loupe_kernel::LinuxSim;
use loupe_syscalls::Sysno;

use crate::code::AppCode;
use crate::env::Env;
use crate::libc::{LibcFlavor, LibcRuntime};
use crate::model::{AppKind, AppModel, AppSpec, Exit};
use crate::runtime::{self, serve_requests, EventApi, ResponsePath, ServeCfg};
use crate::workload::Workload;

/// The webfsd web server.
#[derive(Debug, Clone, Default)]
pub struct Webfsd;

impl Webfsd {
    /// Creates the model.
    pub fn new() -> Webfsd {
        Webfsd
    }
}

impl AppModel for Webfsd {
    fn name(&self) -> &str {
        "webfsd"
    }

    fn spec(&self) -> AppSpec {
        AppSpec {
            name: "webfsd".into(),
            version: "1.21".into(),
            year: 2019,
            port: Some(8000),
            kind: AppKind::WebServer,
            libc: LibcFlavor::GlibcDynamic,
        }
    }

    fn provision(&self, sim: &mut LinuxSim) {
        runtime::provision_base(sim);
        sim.vfs.add_file("/srv/files/data.bin", vec![b'f'; 1024]);
    }

    fn run(&self, env: &mut Env<'_>, workload: Workload) -> Result<(), Exit> {
        let _libc = LibcRuntime::init(env, LibcFlavor::GlibcDynamic)?;

        // Identity sanity checks: webfsd aborts when it cannot tell who it
        // is (all four getters checked and required).
        for getter in [Sysno::getuid, Sysno::geteuid, Sysno::getgid, Sysno::getegid] {
            if env.sys0(getter).ret < 0 {
                return Err(Exit::Crash("cannot determine process identity".into()));
            }
        }
        let _ = env.sys0(Sysno::getpid);

        // Document root must exist.
        let root = env.sys_path(Sysno::stat, [0; 6], "/srv/files");
        if root.is_err() {
            return Err(Exit::Crash("document root not accessible".into()));
        }

        let listen_fd = runtime::listen_socket(env, 8000, false, true)?;
        let cfg = ServeCfg {
            port: 8000,
            listen_fd,
            epoll_fd: None,
            fallback_api: EventApi::Select,
            read_syscall: Sysno::read,
            response: ResponsePath::Sendfile {
                content_fd_path: "/srv/files/data.bin",
            },
            response_len: 1024,
            work_per_request: 25,
            access_log_fd: None,
            accept4: false,
            close_every: 8,
        };
        serve_requests(env, &cfg, workload.requests(), |env, i, _| {
            if i % 12 == 11 {
                let _ = env.sys_path(Sysno::stat, [0; 6], "/srv/files/data.bin");
            }
            Ok(())
        })?;

        if workload.checks_aux_features() {
            let dir = env.sys_path(Sysno::openat, [0; 6], "/srv/files");
            if dir.ret >= 0 {
                let l = env.sys(Sysno::getdents64, [dir.ret as u64, 0, 0, 0, 0, 0]);
                env.feature("dir-index", l.ret >= 0);
                let _ = env.sys(Sysno::close, [dir.ret as u64, 0, 0, 0, 0, 0]);
            }
        }

        let _ = env.sys(Sysno::close, [listen_fd, 0, 0, 0, 0, 0]);
        let _ = env.sys0(Sysno::exit_group);
        Ok(())
    }

    fn code(&self) -> AppCode {
        use Sysno as S;
        AppCode::new()
            .with_checked(&[
                S::socket,
                S::bind,
                S::listen,
                S::accept,
                S::read,
                S::write,
                S::writev,
                S::sendfile,
                S::close,
                S::openat,
                S::open,
                S::stat,
                S::fstat,
                S::select,
                S::fcntl,
                S::getuid,
                S::geteuid,
                S::getgid,
                S::getegid,
                S::getdents64,
                S::brk,
                S::mmap,
            ])
            .with_unchecked(&[
                S::getpid,
                S::setsockopt,
                S::exit_group,
                S::rt_sigaction,
                S::gettimeofday,
                S::umask,
                S::munmap,
            ])
            .with_binary_extra(&[S::setuid, S::setgid, S::chroot, S::chdir, S::lseek])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_files_via_sendfile() {
        let mut sim = LinuxSim::new();
        let app = Webfsd::new();
        app.provision(&mut sim);
        let mut env = Env::new(&mut sim);
        app.run(&mut env, Workload::Benchmark).unwrap();
        let out = env.finish(Exit::Clean);
        assert_eq!(out.responses, 200);
        assert!(out.failures.is_empty(), "{:?}", out.failures);
    }
}
