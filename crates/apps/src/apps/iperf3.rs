//! The iPerf3 model: a TCP throughput benchmark server (Table 2's third
//! application). The workload streams large chunks; the performance metric
//! is bytes moved per unit time. The only Table 2 effect here is the
//! glibc brk→mmap allocator fallback (+memory).

use loupe_kernel::LinuxSim;
use loupe_syscalls::Sysno;

use crate::code::AppCode;
use crate::env::Env;
use crate::libc::{LibcFlavor, LibcRuntime};
use crate::model::{AppKind, AppModel, AppSpec, Exit};
use crate::runtime::{self, event_setup, listen_socket, EventApi};
use crate::workload::Workload;

/// The iPerf3 network benchmark tool (server mode).
#[derive(Debug, Clone, Default)]
pub struct Iperf3;

impl Iperf3 {
    /// Creates the model.
    pub fn new() -> Iperf3 {
        Iperf3
    }
}

impl AppModel for Iperf3 {
    fn name(&self) -> &str {
        "iperf3"
    }

    fn spec(&self) -> AppSpec {
        AppSpec {
            name: "iperf3".into(),
            version: "3.10".into(),
            year: 2021,
            port: Some(5201),
            kind: AppKind::NetTool,
            libc: LibcFlavor::GlibcDynamic,
        }
    }

    fn provision(&self, sim: &mut LinuxSim) {
        runtime::provision_base(sim);
    }

    fn run(&self, env: &mut Env<'_>, workload: Workload) -> Result<(), Exit> {
        let mut libc = LibcRuntime::init(env, LibcFlavor::GlibcDynamic)?;

        // Receive buffer through malloc (brk heap, or the mmap fallback
        // that costs memory when brk is unavailable — Table 2).
        let _buf = libc.malloc(env, 128 * 1024);
        let _ = env.sys0(Sysno::getpid);
        let _ = env.sys0(Sysno::uname);
        let _ = env.sys0(Sysno::clock_gettime);
        libc.printf(
            env,
            "-----------------------------------------------------------\n",
        );

        let listen_fd = listen_socket(env, 5201, false, true)?;
        // TCP tuning: best-effort.
        let _ = env.sys(Sysno::setsockopt, [listen_fd, 6, 1, 1, 0, 0]); // TCP_NODELAY
        let ep = event_setup(env, EventApi::Epoll, &[listen_fd])?;
        let ep = ep.expect("epoll api");

        // One control + one data connection, then stream chunks.
        let Some(ctrl) = env.host_mut().connect(5201) else {
            env.fail("client could not connect");
            return Ok(());
        };
        env.host_mut().send(ctrl, &b"{cookie}"[..]);
        if env.sys(Sysno::epoll_wait, [ep, 0, 16, 0, 0, 0]).ret <= 0 {
            return Err(Exit::Hung("no events on control connection".into()));
        }
        let acc = env.sys(Sysno::accept4, [listen_fd, 0, 0, 0x800, 0, 0]);
        if acc.ret < 0 {
            env.fail("accept failed");
            return Ok(());
        }
        let cfd = acc.ret as u64;
        let _ = env.sys(Sysno::read, [cfd, 0, 128, 0, 0, 0]);

        let chunks = workload.requests();
        let chunk = vec![b'D'; 128 * 1024];
        for i in 0..chunks {
            // Test script streams a chunk; server reads and accounts it.
            env.host_mut().send(ctrl, chunk.clone());
            let r = env.sys(Sysno::read, [cfd, 0, 128 * 1024, 0, 0, 0]);
            if r.ret <= 0 {
                env.fail("stream read failed");
                break;
            }
            env.charge(20); // checksum + accounting
            env.record_response();
            if i % 50 == 49 {
                let _ = env.sys0(Sysno::clock_gettime);
            }
        }

        // Final stats exchange, verified end-to-end.
        let stats = env.sys_data(Sysno::write, [cfd, 0, 0, 0, 0, 0], &b"{results}"[..]);
        if stats.ret < 0 || env.host_mut().recv(ctrl).is_none() {
            env.fail("client never received results");
        }
        let _ = env.sys(Sysno::close, [cfd, 0, 0, 0, 0, 0]);
        let _ = env.sys(Sysno::close, [listen_fd, 0, 0, 0, 0, 0]);
        let _ = env.sys0(Sysno::exit_group);
        Ok(())
    }

    fn code(&self) -> AppCode {
        use Sysno as S;
        AppCode::new()
            .with_checked(&[
                S::socket,
                S::bind,
                S::listen,
                S::accept,
                S::accept4,
                S::setsockopt,
                S::read,
                S::write,
                S::close,
                S::epoll_create1,
                S::epoll_create,
                S::epoll_ctl,
                S::epoll_wait,
                S::mmap,
                S::brk,
                S::munmap,
                S::openat,
                S::fcntl,
                S::connect,
                S::getsockopt,
                S::select,
            ])
            .with_unchecked(&[
                S::getpid,
                S::uname,
                S::clock_gettime,
                S::gettimeofday,
                S::exit_group,
                S::rt_sigaction,
                S::nanosleep,
            ])
            .with_binary_extra(&[S::sendto, S::recvfrom, S::getrusage, S::sysinfo, S::pipe])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_all_chunks() {
        let mut sim = LinuxSim::new();
        let app = Iperf3::new();
        app.provision(&mut sim);
        let mut env = Env::new(&mut sim);
        app.run(&mut env, Workload::Benchmark).unwrap();
        let out = env.finish(Exit::Clean);
        assert_eq!(out.responses, 200);
        assert!(out.failures.is_empty(), "{:?}", out.failures);
        assert!(out.elapsed > 0);
    }

    #[test]
    fn throughput_dominated_by_data_movement() {
        let mut sim = LinuxSim::new();
        let app = Iperf3::new();
        app.provision(&mut sim);
        let mut env = Env::new(&mut sim);
        app.run(&mut env, Workload::HealthCheck).unwrap();
        let short = env.finish(Exit::Clean);

        let mut sim2 = LinuxSim::new();
        app.provision(&mut sim2);
        let mut env2 = Env::new(&mut sim2);
        app.run(&mut env2, Workload::Benchmark).unwrap();
        let long = env2.finish(Exit::Clean);
        assert!(long.elapsed > short.elapsed * 10);
    }
}
