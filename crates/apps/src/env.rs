//! The run environment: the application's window onto the (possibly
//! interposed) kernel, plus outcome recording.

use std::collections::BTreeMap;

use bytes::Bytes;
use loupe_kernel::{HostPort, Invocation, Kernel, SysOutcome};
use loupe_syscalls::Sysno;

use crate::model::{AppOutcome, Exit};

/// The environment one application run executes in.
///
/// Wraps the kernel handle (which the Loupe engine interposes) and
/// accumulates the observable outcome: verified responses, feature health,
/// failures and log lines.
pub struct Env<'k> {
    kernel: &'k mut dyn Kernel,
    start: u64,
    responses: u64,
    features: BTreeMap<String, bool>,
    failures: Vec<String>,
}

impl<'k> Env<'k> {
    /// Creates an environment around a kernel handle.
    pub fn new(kernel: &'k mut dyn Kernel) -> Env<'k> {
        let start = kernel.now();
        Env {
            kernel,
            start,
            responses: 0,
            features: BTreeMap::new(),
            failures: Vec::new(),
        }
    }

    // ---- system-call helpers -------------------------------------------

    /// Issues a raw system call.
    pub fn sys(&mut self, sysno: Sysno, args: [u64; 6]) -> SysOutcome {
        self.kernel.syscall(&Invocation::new(sysno, args))
    }

    /// Issues a zero-argument system call.
    pub fn sys0(&mut self, sysno: Sysno) -> SysOutcome {
        self.sys(sysno, [0; 6])
    }

    /// Issues a path-taking system call.
    pub fn sys_path(&mut self, sysno: Sysno, args: [u64; 6], path: &str) -> SysOutcome {
        self.kernel
            .syscall(&Invocation::new(sysno, args).with_path(path))
    }

    /// Issues a data-carrying system call (write family).
    pub fn sys_data(&mut self, sysno: Sysno, args: [u64; 6], data: impl Into<Bytes>) -> SysOutcome {
        self.kernel
            .syscall(&Invocation::new(sysno, args).with_data(data.into()))
    }

    /// Issues a fully built invocation.
    pub fn sys_inv(&mut self, inv: &Invocation) -> SysOutcome {
        self.kernel.syscall(inv)
    }

    /// Issues a system call on behalf of a *helper binary* spawned by the
    /// workload (e.g. the `git` invocations of a test suite, §3.3). The
    /// Loupe whitelist excludes these from the application's trace.
    pub fn helper_sys(&mut self, sysno: Sysno, args: [u64; 6]) -> SysOutcome {
        self.kernel
            .syscall(&Invocation::new(sysno, args).with_note("helper:test-suite-tool"))
    }

    // ---- memory / time --------------------------------------------------

    /// Charges application compute time.
    pub fn charge(&mut self, cost: u64) {
        self.kernel.charge(cost);
    }

    /// Current virtual time.
    pub fn now(&self) -> u64 {
        self.kernel.now()
    }

    /// Stores to modelled user memory (futex words).
    pub fn mem_store(&mut self, addr: u64, val: u32) {
        self.kernel.mem_store(addr, val);
    }

    /// Loads from modelled user memory.
    pub fn mem_load(&self, addr: u64) -> u32 {
        self.kernel.mem_load(addr)
    }

    /// Host-side network port (the embedded test-script side: connecting
    /// clients, sending requests, verifying responses).
    pub fn host_mut(&mut self) -> &mut HostPort {
        self.kernel.host_mut()
    }

    // ---- outcome recording ----------------------------------------------

    /// Records one end-to-end verified response.
    pub fn record_response(&mut self) {
        self.responses += 1;
    }

    /// Records several verified responses at once.
    pub fn record_responses(&mut self, n: u64) {
        self.responses += n;
    }

    /// Records an application-visible failure (a log line a test script
    /// would flag).
    pub fn fail(&mut self, reason: impl Into<String>) {
        self.failures.push(reason.into());
    }

    /// Records feature health. Once a feature goes unhealthy it stays so.
    pub fn feature(&mut self, name: &str, ok: bool) {
        let entry = self.features.entry(name.to_owned()).or_insert(true);
        *entry = *entry && ok;
    }

    /// Number of verified responses so far.
    pub fn responses(&self) -> u64 {
        self.responses
    }

    /// Number of recorded failures so far.
    pub fn failure_count(&self) -> usize {
        self.failures.len()
    }

    /// Finalises the run into an [`AppOutcome`].
    pub fn finish(self, exit: Exit) -> AppOutcome {
        AppOutcome {
            exit,
            responses: self.responses,
            elapsed: self.kernel.now() - self.start,
            features: self.features,
            failures: self.failures,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loupe_kernel::LinuxSim;

    #[test]
    fn records_and_finishes() {
        let mut k = LinuxSim::new();
        let mut env = Env::new(&mut k);
        env.sys0(Sysno::getpid);
        env.charge(50);
        env.record_response();
        env.record_responses(2);
        env.feature("logging", true);
        env.feature("logging", false);
        env.feature("logging", true); // cannot recover
        env.fail("oops");
        let out = env.finish(Exit::Clean);
        assert_eq!(out.responses, 3);
        assert!(out.elapsed >= 50);
        assert!(!out.features["logging"]);
        assert_eq!(out.failures, vec!["oops"]);
    }

    #[test]
    fn syscall_helpers_reach_the_kernel() {
        let mut k = LinuxSim::new();
        k.vfs.add_file("/tmp/f", b"abc".to_vec());
        let mut env = Env::new(&mut k);
        let fd = env.sys_path(Sysno::openat, [0; 6], "/tmp/f").ret;
        assert!(fd >= 3);
        let n = env
            .sys_data(Sysno::write, [1, 0, 0, 0, 0, 0], &b"hi"[..])
            .ret;
        assert_eq!(n, 2);
        env.mem_store(0x10, 7);
        assert_eq!(env.mem_load(0x10), 7);
    }
}
