//! The application registry: the 116-app dataset plus named variants.

use crate::apps::{
    H2o, Haproxy, Hello, Httpd, Iperf3, Lighttpd, Memcached, MongoDb, Nginx, Redis, Sqlite, Webfsd,
    Weborf,
};
use crate::fleet;
use crate::libc::LibcFlavor;
use crate::model::AppModel;

/// The twelve hand-modelled applications.
pub fn detailed() -> Vec<Box<dyn AppModel>> {
    vec![
        Box::new(Nginx::modern()),
        Box::new(Redis::modern()),
        Box::new(Memcached::new()),
        Box::new(Sqlite::new()),
        Box::new(Haproxy::new()),
        Box::new(Lighttpd::new()),
        Box::new(Weborf::new()),
        Box::new(Iperf3::new()),
        Box::new(MongoDb::new()),
        Box::new(H2o::new()),
        Box::new(Httpd::modern()),
        Box::new(Webfsd::new()),
    ]
}

/// The full 116-application dataset (12 detailed + 104 generated), the
/// population behind Fig. 3 and the support-plan experiments.
pub fn dataset() -> Vec<Box<dyn AppModel>> {
    let mut apps = detailed();
    for app in fleet::generate_fleet() {
        apps.push(Box::new(app));
    }
    apps
}

/// The 15 popular cloud applications used in Table 1's support plans:
/// the 12 detailed models plus three cloud-infrastructure apps from the
/// fleet.
pub fn cloud_apps() -> Vec<Box<dyn AppModel>> {
    let mut apps = detailed();
    for target in ["etcd", "postgres", "mosquitto"] {
        let app = fleet::generate_fleet()
            .into_iter()
            .find(|a| a.name() == target)
            .expect("fleet contains the cloud extras");
        apps.push(Box::new(app));
    }
    apps
}

/// Version/libc variants used by the evolution experiments (Fig. 8,
/// Table 3) and the hello-world matrix (Table 4). Not part of the
/// 116-app dataset.
pub fn variants() -> Vec<Box<dyn AppModel>> {
    let mut v: Vec<Box<dyn AppModel>> = vec![
        Box::new(Nginx::legacy()),
        Box::new(Nginx::legacy_32bit()),
        Box::new(Redis::legacy()),
        Box::new(Httpd::legacy()),
    ];
    for hello in Hello::table4_matrix() {
        v.push(Box::new(hello));
    }
    v.push(Box::new(Hello::new(LibcFlavor::OldGlibc32)));
    v
}

/// Names of every app in the dataset, in dataset order, without
/// running fleet profile generation — for cheap fleet iteration
/// (shard planning, tooling) where the models themselves are not
/// needed.
pub fn dataset_names() -> Vec<String> {
    let mut names: Vec<String> = detailed().iter().map(|a| a.name().to_owned()).collect();
    names.extend(fleet::FLEET.iter().map(|(name, _)| (*name).to_owned()));
    names
}

/// Deterministic shard `index` of `of` over the dataset: apps whose
/// dataset position is congruent to `index` mod `of`. Sharding lets
/// several sweep processes split the fleet and share one database.
///
/// # Panics
///
/// Panics when `of` is zero or `index >= of`.
pub fn shard(index: usize, of: usize) -> Vec<Box<dyn AppModel>> {
    assert!(of > 0, "shard count must be positive");
    assert!(index < of, "shard index out of range");
    dataset()
        .into_iter()
        .enumerate()
        .filter(|(i, _)| i % of == index)
        .map(|(_, app)| app)
        .collect()
}

/// Looks an application up by name across the dataset and the variants.
pub fn find(name: &str) -> Option<Box<dyn AppModel>> {
    dataset()
        .into_iter()
        .chain(variants())
        .find(|a| a.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_holds_116_unique_apps() {
        let apps = dataset();
        assert_eq!(apps.len(), 116);
        let names: std::collections::BTreeSet<_> =
            apps.iter().map(|a| a.name().to_owned()).collect();
        assert_eq!(names.len(), 116);
    }

    #[test]
    fn cloud_apps_hold_15() {
        assert_eq!(cloud_apps().len(), 15);
    }

    #[test]
    fn find_resolves_detailed_fleet_and_variant_names() {
        assert!(find("nginx").is_some());
        assert!(find("etcd").is_some());
        assert!(find("nginx-0.3.19-glibc2.3.2").is_some());
        assert!(find("hello-musl-static").is_some());
        assert!(find("no-such-app").is_none());
    }

    #[test]
    fn dataset_names_match_instantiated_models() {
        let names = dataset_names();
        let built: Vec<String> = dataset().iter().map(|a| a.name().to_owned()).collect();
        assert_eq!(names, built);
    }

    #[test]
    fn shards_partition_the_dataset() {
        let of = 4;
        let mut seen = Vec::new();
        for i in 0..of {
            for app in shard(i, of) {
                seen.push(app.name().to_owned());
            }
        }
        seen.sort();
        let mut all: Vec<String> = dataset().iter().map(|a| a.name().to_owned()).collect();
        all.sort();
        assert_eq!(seen, all, "shards cover every app exactly once");
    }

    #[test]
    fn specs_are_consistent_with_names() {
        for app in dataset() {
            assert_eq!(app.spec().name, app.name());
        }
    }
}
