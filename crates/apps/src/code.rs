//! The static-analysis view of an application.
//!
//! Static analysers cannot run code; they see everything that is *present*:
//! dead code, error paths, configuration branches that a given deployment
//! never takes, plus — at the binary level — the whole reachable libc.
//! [`AppCode`] captures that surface for each app model so the
//! `loupe-static` analysers can reproduce the over-estimation the paper
//! quantifies in Figs. 4 and 5.

use std::collections::BTreeMap;

use loupe_syscalls::{Sysno, SysnoSet};
use serde::{Deserialize, Serialize};

use crate::libc::LibcFlavor;

/// The code-level (as opposed to behaviour-level) description of an app.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppCode {
    /// Syscall wrappers invoked anywhere in the *application sources*:
    /// everything the behaviour model can execute, plus error-handling and
    /// configuration branches no standard workload reaches.
    pub source_syscalls: SysnoSet,
    /// Extra syscalls a *binary-level* analyser attributes to the app due
    /// to over-approximated indirect calls and linked non-libc libraries
    /// (the libc itself is added by the analyser from
    /// [`LibcFlavor::code_superset`]).
    pub binary_extra: SysnoSet,
    /// For each wrapper used in the sources: does user code check the
    /// return value? (Fig. 7's manual-inspection ground truth.)
    pub return_checks: BTreeMap<Sysno, bool>,
    /// Raw `syscall(N)` invocations in the sources: the number is a
    /// literal, but compiled code loads it into a register, so only an
    /// analysis with intraprocedural constant propagation resolves the
    /// site — a naive binary analysis must expand it to the full table.
    #[serde(default)]
    pub raw_syscalls: SysnoSet,
}

impl AppCode {
    /// Creates an empty code descriptor.
    pub fn new() -> AppCode {
        AppCode::default()
    }

    /// Adds syscalls present in the sources, all with checked returns.
    pub fn with_checked(mut self, syscalls: &[Sysno]) -> AppCode {
        for &s in syscalls {
            self.source_syscalls.insert(s);
            self.return_checks.insert(s, true);
        }
        self
    }

    /// Adds syscalls present in the sources whose returns are *not*
    /// checked by user code.
    pub fn with_unchecked(mut self, syscalls: &[Sysno]) -> AppCode {
        for &s in syscalls {
            self.source_syscalls.insert(s);
            self.return_checks.insert(s, false);
        }
        self
    }

    /// Adds binary-level over-approximation extras.
    pub fn with_binary_extra(mut self, syscalls: &[Sysno]) -> AppCode {
        for &s in syscalls {
            self.binary_extra.insert(s);
        }
        self
    }

    /// Adds raw `syscall(N)` invocations (number in a register,
    /// resolvable only by constant propagation).
    pub fn with_raw(mut self, syscalls: &[Sysno]) -> AppCode {
        for &s in syscalls {
            self.raw_syscalls.insert(s);
        }
        self
    }

    /// The set a source-level static analyser reports: application sources
    /// plus the libc calls a source analyser resolves through headers.
    pub fn source_view(&self, libc: LibcFlavor) -> SysnoSet {
        // Source analysis sees the app code and the libc init calls that
        // headers/crt0 pull in, but not the whole libc. Raw syscall(N)
        // literals are visible in source form.
        let mut set = self.source_syscalls.union(&self.raw_syscalls);
        for (s, _) in libc.init_sequence() {
            set.insert(s);
        }
        set.insert(Sysno::exit_group);
        set
    }

    /// The set a binary-level static analyser reports: sources + linked
    /// libc superset + indirect-call over-approximation.
    pub fn binary_view(&self, libc: LibcFlavor) -> SysnoSet {
        self.source_view(libc)
            .union(&self.binary_extra)
            .union(&libc.code_superset())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates() {
        let code = AppCode::new()
            .with_checked(&[Sysno::socket, Sysno::bind])
            .with_unchecked(&[Sysno::close])
            .with_binary_extra(&[Sysno::shmget]);
        assert_eq!(code.source_syscalls.len(), 3);
        assert!(code.return_checks[&Sysno::socket]);
        assert!(!code.return_checks[&Sysno::close]);
        assert!(code.binary_extra.contains(Sysno::shmget));
    }

    #[test]
    fn binary_view_is_superset_of_source_view() {
        let code = AppCode::new().with_checked(&[Sysno::socket]);
        let src = code.source_view(LibcFlavor::GlibcDynamic);
        let bin = code.binary_view(LibcFlavor::GlibcDynamic);
        assert!(src.is_subset(&bin));
        assert!(bin.len() > src.len() + 50, "libc superset dominates");
    }

    #[test]
    fn source_view_includes_init_sequence() {
        let code = AppCode::new();
        let src = code.source_view(LibcFlavor::GlibcDynamic);
        assert!(src.contains(Sysno::arch_prctl));
        assert!(src.contains(Sysno::exit_group));
    }
}
