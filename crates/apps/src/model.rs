//! The application-model interface and its metadata types.

use std::collections::BTreeMap;
use std::fmt;

use loupe_kernel::LinuxSim;
use serde::{Deserialize, Serialize};

use crate::code::AppCode;
use crate::env::Env;
use crate::libc::LibcFlavor;
use crate::workload::Workload;

/// How an application run ended.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Exit {
    /// Normal termination.
    Clean,
    /// The application aborted (e.g. a fatal error path like Fig. 6b's
    /// `exit(2)` after `prctl` failure).
    Crash(String),
    /// The application stopped making progress (e.g. event loop starved).
    Hung(String),
}

impl Exit {
    /// Whether the run terminated normally.
    pub fn is_clean(&self) -> bool {
        matches!(self, Exit::Clean)
    }
}

impl fmt::Display for Exit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Exit::Clean => write!(f, "clean exit"),
            Exit::Crash(why) => write!(f, "crash: {why}"),
            Exit::Hung(why) => write!(f, "hang: {why}"),
        }
    }
}

/// Broad application kind (used by the fleet generator and reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AppKind {
    /// HTTP/web servers.
    WebServer,
    /// Key-value stores and caches.
    KeyValue,
    /// Databases.
    Database,
    /// Proxies and load balancers.
    Proxy,
    /// Network tools and benchmarks.
    NetTool,
    /// Message queues and brokers.
    Queue,
    /// Language runtimes and interpreters.
    Runtime,
    /// Command-line utilities.
    Utility,
}

impl AppKind {
    /// All kinds.
    pub const ALL: &'static [AppKind] = &[
        AppKind::WebServer,
        AppKind::KeyValue,
        AppKind::Database,
        AppKind::Proxy,
        AppKind::NetTool,
        AppKind::Queue,
        AppKind::Runtime,
        AppKind::Utility,
    ];
}

/// Static metadata about an application model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppSpec {
    /// Application name (unique within the registry).
    pub name: String,
    /// Modelled release version.
    pub version: String,
    /// Release year (used by the evolution experiment, Fig. 8).
    pub year: u32,
    /// Listening port, for server applications.
    pub port: Option<u16>,
    /// Application kind.
    pub kind: AppKind,
    /// The libc the model is "linked" against.
    pub libc: LibcFlavor,
}

/// The outcome of a complete application run, evaluated by test scripts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppOutcome {
    /// How the run ended.
    pub exit: Exit,
    /// Responses verified end-to-end by the embedded test script.
    pub responses: u64,
    /// Virtual time elapsed during the run.
    pub elapsed: u64,
    /// Feature health flags recorded during the run
    /// (e.g. `"access-logging" -> false` when the log stayed empty).
    pub features: BTreeMap<String, bool>,
    /// Application-detected failures (log lines a test script would grep).
    pub failures: Vec<String>,
}

impl AppOutcome {
    /// Throughput in responses per 1000 time units (the benchmark metric).
    pub fn throughput(&self) -> f64 {
        if self.elapsed == 0 {
            return 0.0;
        }
        self.responses as f64 * 1000.0 / self.elapsed as f64
    }
}

/// A runnable application model.
///
/// Implementations are stateless: each analysis run calls [`AppModel::run`]
/// on a fresh kernel, mirroring Loupe's containerised replicas (§3.1).
pub trait AppModel: Send + Sync {
    /// Application name.
    fn name(&self) -> &str;

    /// Static metadata.
    fn spec(&self) -> AppSpec;

    /// Pre-populates the filesystem (config files, content roots) before
    /// the run — the Dockerfile analogue.
    fn provision(&self, _sim: &mut LinuxSim) {}

    /// Executes the application under `workload`. Returns `Err` for crash
    /// or hang; `Ok(())` is a clean exit.
    fn run(&self, env: &mut Env<'_>, workload: Workload) -> Result<(), Exit>;

    /// The static-analysis view of the application's code.
    fn code(&self) -> AppCode;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_display_and_predicates() {
        assert!(Exit::Clean.is_clean());
        assert!(!Exit::Crash("x".into()).is_clean());
        assert_eq!(Exit::Crash("tls".into()).to_string(), "crash: tls");
        assert_eq!(
            Exit::Hung("no events".into()).to_string(),
            "hang: no events"
        );
    }

    #[test]
    fn throughput_handles_zero_time() {
        let o = AppOutcome {
            exit: Exit::Clean,
            responses: 10,
            elapsed: 0,
            features: BTreeMap::new(),
            failures: vec![],
        };
        assert_eq!(o.throughput(), 0.0);
        let o2 = AppOutcome { elapsed: 500, ..o };
        assert!((o2.throughput() - 20.0).abs() < 1e-9);
    }
}
