//! C-standard-library models.
//!
//! §5.6 of the paper shows the libc dominates an application's syscall
//! footprint: its init sequence is the floor every binary pays (Table 4),
//! and its choice of alternatives (`openat` vs `open`, `write` vs `writev`)
//! shapes the rest. This module models glibc and musl — dynamic and static,
//! modern and 2003-era 32-bit — at that level of detail, plus the runtime
//! behaviours the Table 2 experiments rely on (the brk→mmap allocator
//! fallback, pthread locking via futex, stdio).

use loupe_syscalls::{Sysno, SysnoSet};
use serde::{Deserialize, Serialize};

use crate::env::Env;
use crate::model::Exit;

/// How the application is linked against its libc.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Linking {
    /// Dynamically linked: the loader maps the libc at startup.
    Dynamic,
    /// Statically linked.
    Static,
}

/// A concrete libc build an application model is "linked" against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LibcFlavor {
    /// Modern glibc (2.28/2.31), dynamically linked, x86-64.
    GlibcDynamic,
    /// Modern glibc, statically linked, x86-64.
    GlibcStatic,
    /// musl 1.2.x, dynamically linked, x86-64.
    MuslDynamic,
    /// musl 1.2.x, statically linked, x86-64.
    MuslStatic,
    /// glibc 2.3.2 (2003), 32-bit x86 build (Table 3's old Nginx).
    OldGlibc32,
}

impl LibcFlavor {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            LibcFlavor::GlibcDynamic => "glibc 2.31 (dynamic)",
            LibcFlavor::GlibcStatic => "glibc 2.31 (static)",
            LibcFlavor::MuslDynamic => "musl 1.2.2 (dynamic)",
            LibcFlavor::MuslStatic => "musl 1.2.2 (static)",
            LibcFlavor::OldGlibc32 => "glibc 2.3.2 (32-bit)",
        }
    }

    /// The init sequence: `(syscall, invocation count)` pairs executed from
    /// the entry point to `main` (Table 4).
    pub fn init_sequence(self) -> Vec<(Sysno, u32)> {
        use Sysno as S;
        match self {
            LibcFlavor::GlibcDynamic => vec![
                (S::execve, 1),
                (S::brk, 3),
                (S::arch_prctl, 1),
                (S::access, 1),
                (S::openat, 2),
                (S::read, 1),
                (S::fstat, 3),
                (S::mmap, 7),
                (S::close, 2),
                (S::mprotect, 4),
                (S::munmap, 1),
            ],
            LibcFlavor::GlibcStatic => vec![
                (S::execve, 1),
                (S::arch_prctl, 1),
                (S::brk, 4),
                (S::fstat, 1),
                (S::uname, 1),
                (S::readlink, 1),
            ],
            LibcFlavor::MuslDynamic => vec![
                (S::execve, 1),
                (S::brk, 2),
                (S::arch_prctl, 1),
                (S::mmap, 1),
                (S::mprotect, 2),
                (S::ioctl, 1),
                (S::set_tid_address, 1),
            ],
            LibcFlavor::MuslStatic => vec![
                (S::execve, 1),
                (S::arch_prctl, 1),
                (S::ioctl, 1),
                (S::set_tid_address, 1),
            ],
            LibcFlavor::OldGlibc32 => vec![
                (S::execve, 1),
                (S::brk, 3),
                (S::uname, 1),
                (S::access, 1),
                (S::open, 2),
                (S::read, 1),
                (S::fstat, 3),
                (S::mmap, 4),
                (S::close, 2),
                (S::set_thread_area, 1),
            ],
        }
    }

    /// The syscall `printf` bottoms out in (§5.6: glibc uses `write`, musl
    /// uses `writev`).
    pub fn printf_syscall(self) -> Sysno {
        match self {
            LibcFlavor::MuslDynamic | LibcFlavor::MuslStatic => Sysno::writev,
            _ => Sysno::write,
        }
    }

    /// The syscall used to probe whether stdout is a TTY (glibc: `fstat`,
    /// musl: `ioctl`).
    pub fn tty_probe_syscall(self) -> Sysno {
        match self {
            LibcFlavor::MuslDynamic | LibcFlavor::MuslStatic => Sysno::ioctl,
            _ => Sysno::fstat,
        }
    }

    /// Which open-family call the libc uses (modern libcs route `open`
    /// through `openat`, §5.3).
    pub fn open_syscall(self) -> Sysno {
        match self {
            LibcFlavor::OldGlibc32 => Sysno::open,
            _ => Sysno::openat,
        }
    }

    /// Which rlimit getter the libc wrappers use.
    pub fn rlimit_syscall(self) -> Sysno {
        match self {
            LibcFlavor::OldGlibc32 => Sysno::getrlimit,
            _ => Sysno::prlimit64,
        }
    }

    /// Whether this is a 32-bit build.
    pub fn is_32bit(self) -> bool {
        matches!(self, LibcFlavor::OldGlibc32)
    }

    /// Every syscall present in the libc's *code* (reachable from its
    /// public symbols) — what a binary-level static analyser sees once the
    /// libc is linked in. A superset of anything actually executed.
    pub fn code_superset(self) -> SysnoSet {
        use Sysno as S;
        let common: &[Sysno] = &[
            S::read,
            S::write,
            S::open,
            S::close,
            S::stat,
            S::fstat,
            S::lstat,
            S::poll,
            S::lseek,
            S::mmap,
            S::mprotect,
            S::munmap,
            S::brk,
            S::rt_sigaction,
            S::rt_sigprocmask,
            S::rt_sigreturn,
            S::ioctl,
            S::pread64,
            S::pwrite64,
            S::readv,
            S::writev,
            S::access,
            S::pipe,
            S::select,
            S::sched_yield,
            S::mremap,
            S::msync,
            S::mincore,
            S::madvise,
            S::dup,
            S::dup2,
            S::pause,
            S::nanosleep,
            S::getitimer,
            S::alarm,
            S::setitimer,
            S::getpid,
            S::sendfile,
            S::socket,
            S::connect,
            S::accept,
            S::sendto,
            S::recvfrom,
            S::sendmsg,
            S::recvmsg,
            S::shutdown,
            S::bind,
            S::listen,
            S::getsockname,
            S::getpeername,
            S::socketpair,
            S::setsockopt,
            S::getsockopt,
            S::clone,
            S::fork,
            S::vfork,
            S::execve,
            S::exit,
            S::wait4,
            S::kill,
            S::uname,
            S::fcntl,
            S::flock,
            S::fsync,
            S::fdatasync,
            S::truncate,
            S::ftruncate,
            S::getdents,
            S::getcwd,
            S::chdir,
            S::fchdir,
            S::rename,
            S::mkdir,
            S::rmdir,
            S::creat,
            S::link,
            S::unlink,
            S::symlink,
            S::readlink,
            S::chmod,
            S::fchmod,
            S::chown,
            S::fchown,
            S::lchown,
            S::umask,
            S::gettimeofday,
            S::getrlimit,
            S::getrusage,
            S::sysinfo,
            S::times,
            S::getuid,
            S::syslog,
            S::getgid,
            S::setuid,
            S::setgid,
            S::geteuid,
            S::getegid,
            S::setpgid,
            S::getppid,
            S::getpgrp,
            S::setsid,
            S::setreuid,
            S::setregid,
            S::getgroups,
            S::setgroups,
            S::setresuid,
            S::getresuid,
            S::setresgid,
            S::getresgid,
            S::getpgid,
            S::getsid,
            S::rt_sigpending,
            S::rt_sigtimedwait,
            S::rt_sigsuspend,
            S::sigaltstack,
            S::utime,
            S::mknod,
            S::statfs,
            S::fstatfs,
            S::getpriority,
            S::setpriority,
            S::mlock,
            S::munlock,
            S::mlockall,
            S::munlockall,
            S::prctl,
            S::arch_prctl,
            S::setrlimit,
            S::chroot,
            S::sync,
            S::gettid,
            S::futex,
            S::sched_setaffinity,
            S::sched_getaffinity,
            S::getdents64,
            S::set_tid_address,
            S::fadvise64,
            S::clock_settime,
            S::clock_gettime,
            S::clock_getres,
            S::clock_nanosleep,
            S::exit_group,
            S::tgkill,
            S::utimes,
            S::waitid,
            S::openat,
            S::mkdirat,
            S::mknodat,
            S::fchownat,
            S::newfstatat,
            S::unlinkat,
            S::renameat,
            S::linkat,
            S::symlinkat,
            S::readlinkat,
            S::fchmodat,
            S::faccessat,
            S::pselect6,
            S::ppoll,
            S::set_robust_list,
            S::utimensat,
            S::fallocate,
            S::accept4,
            S::eventfd2,
            S::epoll_create1,
            S::dup3,
            S::pipe2,
            S::preadv,
            S::pwritev,
            S::prlimit64,
            S::sendmmsg,
            S::getrandom,
            S::memfd_create,
            S::statx,
            S::copy_file_range,
        ];
        let mut set: SysnoSet = common.iter().copied().collect();
        match self {
            LibcFlavor::MuslDynamic | LibcFlavor::MuslStatic => {
                // musl is leaner: drop some glibc-only surface.
                for s in [
                    S::sysinfo,
                    S::syslog,
                    S::mlockall,
                    S::munlockall,
                    S::sendmmsg,
                    S::memfd_create,
                    S::statx,
                    S::copy_file_range,
                    S::fadvise64,
                ] {
                    set.remove(s);
                }
            }
            LibcFlavor::OldGlibc32 => {
                // 2003-era glibc predates the *at family and modern fds.
                for s in [
                    S::openat,
                    S::mkdirat,
                    S::mknodat,
                    S::fchownat,
                    S::newfstatat,
                    S::unlinkat,
                    S::renameat,
                    S::linkat,
                    S::symlinkat,
                    S::readlinkat,
                    S::fchmodat,
                    S::faccessat,
                    S::pselect6,
                    S::ppoll,
                    S::set_robust_list,
                    S::utimensat,
                    S::fallocate,
                    S::accept4,
                    S::eventfd2,
                    S::epoll_create1,
                    S::dup3,
                    S::pipe2,
                    S::preadv,
                    S::pwritev,
                    S::prlimit64,
                    S::sendmmsg,
                    S::getrandom,
                    S::memfd_create,
                    S::statx,
                    S::copy_file_range,
                    S::set_tid_address,
                    S::futex,
                    S::arch_prctl,
                ] {
                    set.remove(s);
                }
                set.insert(S::set_thread_area);
            }
            _ => {}
        }
        set
    }
}

/// Maps an x86-64 syscall of the old 32-bit build to the 32-bit name(s) it
/// shows up as in a trace (Table 3's italicised entries).
pub fn names_32bit(sysno: Sysno) -> Vec<&'static str> {
    match sysno {
        Sysno::mmap => vec!["mmap2", "old_mmap"],
        Sysno::fstat => vec!["fstat64"],
        Sysno::stat => vec!["stat64"],
        Sysno::fcntl => vec!["fcntl64"],
        Sysno::lseek => vec!["_llseek"],
        Sysno::pread64 => vec!["pread"],
        Sysno::pwrite64 => vec!["pwrite"],
        Sysno::geteuid => vec!["geteuid32"],
        Sysno::setuid => vec!["setuid32"],
        Sysno::setgid => vec!["setgid32"],
        Sysno::setgroups => vec!["setgroups32"],
        Sysno::recvfrom => vec!["recv"],
        other => vec![other.name()],
    }
}

/// Outcome of a pthread-style lock acquisition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockOutcome {
    /// Took the fast path: the lock was free.
    Acquired,
    /// Contended, waited via futex, acquired consistently.
    AcquiredContended,
    /// The futex "wait" returned without the holder having had time to
    /// release — the caller barged into a held critical section. This is
    /// the signature of a faked/stubbed `futex` (Table 2: Redis core
    /// functioning breaks).
    Corrupted,
}

/// The runtime half of the libc model: allocator, stdio, threads, locks.
///
/// Created by [`LibcRuntime::init`], which replays the flavor's init
/// sequence against the kernel — the part of every trace that exists
/// before `main` runs.
#[derive(Debug)]
pub struct LibcRuntime {
    flavor: LibcFlavor,
    brk_works: bool,
    brk_top: u64,
    tty_probed: bool,
    /// Chunk size the mmap fallback allocates in (coarser than brk, which
    /// is what makes the fallback cost memory — Table 2).
    fallback_chunk: u64,
}

impl LibcRuntime {
    /// Runs the libc initialisation sequence.
    ///
    /// # Errors
    ///
    /// Returns `Exit::Crash` when a load-bearing init syscall fails:
    /// `execve`, TLS setup (`arch_prctl(ARCH_SET_FS)` / `set_thread_area`),
    /// or — for dynamic linking — mapping the libc itself (`openat`,
    /// `read`, `fstat`, `mmap`). Everything else in the sequence tolerates
    /// failure, which is precisely why so much of it can be stubbed (§5.2).
    pub fn init(env: &mut Env<'_>, flavor: LibcFlavor) -> Result<LibcRuntime, Exit> {
        use Sysno as S;
        let dynamic = matches!(
            flavor,
            LibcFlavor::GlibcDynamic | LibcFlavor::MuslDynamic | LibcFlavor::OldGlibc32
        );
        let mut rt = LibcRuntime {
            flavor,
            brk_works: true,
            brk_top: 0,
            tty_probed: false,
            fallback_chunk: 256 * 1024,
        };
        for (sysno, count) in flavor.init_sequence() {
            for i in 0..count {
                match sysno {
                    S::execve => {
                        let r = env.sys_path(S::execve, [0; 6], "/usr/bin/app");
                        // A faked execve "succeeds" without loading the
                        // image: nothing to run.
                        if r.is_err() || !matches!(r.payload, loupe_kernel::Payload::Text(_)) {
                            return Err(Exit::Crash("execve failed".into()));
                        }
                    }
                    S::arch_prctl => {
                        // ARCH_SET_FS: thread-local storage base (§5.4:
                        // the single arch_prctl feature everything needs).
                        let r = env.sys(S::arch_prctl, [0x1002, 0x7fff_0000, 0, 0, 0, 0]);
                        if r.is_err() {
                            return Err(Exit::Crash("cannot set up TLS (arch_prctl)".into()));
                        }
                        // First TLS access: faults unless the base was
                        // really installed (a faked call cannot help).
                        if env.mem_load(0x7fff_0000) != 0x715 {
                            return Err(Exit::Crash("segfault on first TLS access".into()));
                        }
                    }
                    S::set_thread_area => {
                        let r = env.sys(S::set_thread_area, [0; 6]);
                        if r.is_err() {
                            return Err(Exit::Crash("cannot set up TLS (set_thread_area)".into()));
                        }
                    }
                    S::brk => {
                        if i == 0 {
                            // Query current break.
                            let r = env.sys(S::brk, [0; 6]);
                            match r.payload.as_u64() {
                                Some(cur) if !r.is_err() => rt.brk_top = cur,
                                _ => {
                                    // Early-allocator fallback engages
                                    // immediately: mmap arenas replace the
                                    // heap (Table 2's +memory rows).
                                    rt.brk_works = false;
                                    env.sys(S::mmap, [0, 1 << 20, 3, 0x22, u64::MAX, 0]);
                                }
                            }
                        } else if rt.brk_works {
                            let want = rt.brk_top + 132 * 1024;
                            let r = env.sys(S::brk, [want, 0, 0, 0, 0, 0]);
                            if r.is_err() || r.payload.as_u64() != Some(want) {
                                // Early-allocator fallback: switch the heap
                                // to mmap arenas (coarser; costs memory).
                                rt.brk_works = false;
                                env.sys(S::mmap, [0, 1 << 20, 3, 0x22, u64::MAX, 0]);
                            } else {
                                rt.brk_top = want;
                            }
                        }
                    }
                    S::openat | S::open => {
                        let r = env.sys_path(sysno, [0, 0, 0, 0, 0, 0], "/lib/libc.so.6");
                        if r.is_err() && dynamic && r.ret != -2 {
                            // ENOSYS/EPERM on the loader path is fatal;
                            // ENOENT is handled by search-path retries.
                            return Err(Exit::Crash(
                                "error while loading shared libraries: libc.so.6".into(),
                            ));
                        }
                    }
                    S::read => {
                        let r = env.sys(S::read, [3, 0, 832, 0, 0, 0]);
                        if r.is_err() && dynamic {
                            return Err(Exit::Crash("cannot read ELF header".into()));
                        }
                    }
                    S::fstat => {
                        let r = env.sys(S::fstat, [3, 0, 0, 0, 0, 0]);
                        if r.is_err() && dynamic && flavor != LibcFlavor::MuslDynamic {
                            return Err(Exit::Crash("cannot fstat libc.so.6".into()));
                        }
                    }
                    S::mmap => {
                        let r = env.sys(S::mmap, [0, 512 * 1024, 5, 0x802, 3, 0]);
                        if (r.is_err() || r.ret <= 0) && dynamic {
                            return Err(Exit::Crash("cannot map libc.so.6".into()));
                        }
                    }
                    // Hardening, probing and cleanup: failure-oblivious.
                    S::mprotect
                    | S::munmap
                    | S::close
                    | S::access
                    | S::ioctl
                    | S::set_tid_address
                    | S::uname
                    | S::readlink => {
                        let _ = env.sys(sysno, [3, 0, 0, 0, 0, 0]);
                    }
                    other => {
                        let _ = env.sys(other, [0; 6]);
                    }
                }
            }
        }
        // The init sequences above already include the stdout probe
        // (glibc's fstat / musl's ioctl), so printf won't repeat it —
        // keeping Table 4's invocation counts exact.
        rt.tty_probed = true;
        Ok(rt)
    }

    /// The flavor this runtime models.
    pub fn flavor(&self) -> LibcFlavor {
        self.flavor
    }

    /// Whether the heap still runs on `brk` (false after the mmap
    /// fallback engaged).
    pub fn brk_works(&self) -> bool {
        self.brk_works
    }

    /// `malloc(3)`: returns the address of a new allocation.
    ///
    /// Uses `brk` while it works; otherwise mmap arenas rounded up to
    /// the fallback chunk size — the granularity loss behind Table 2's
    /// "+17% memory" rows.
    pub fn malloc(&mut self, env: &mut Env<'_>, size: u64) -> u64 {
        use Sysno as S;
        if self.brk_works {
            let want = self.brk_top + size;
            let r = env.sys(S::brk, [want, 0, 0, 0, 0, 0]);
            if !r.is_err() && r.payload.as_u64() == Some(want) {
                let addr = self.brk_top;
                self.brk_top = want;
                return addr;
            }
            self.brk_works = false;
        }
        let chunk = size.div_ceil(self.fallback_chunk) * self.fallback_chunk;
        let r = env.sys(S::mmap, [0, chunk, 3, 0x22, u64::MAX, 0]);
        if r.ret > 0 {
            r.ret as u64
        } else {
            0
        }
    }

    /// `free(3)` for an mmap-backed allocation of `size` bytes at `addr`.
    /// (Heap frees via brk are modelled as no-ops, as in real allocators
    /// that keep the heap for reuse.)
    pub fn free_mapped(&mut self, env: &mut Env<'_>, addr: u64, size: u64) {
        let chunk = size.div_ceil(self.fallback_chunk) * self.fallback_chunk;
        let _ = env.sys(Sysno::munmap, [addr, chunk, 0, 0, 0, 0]);
    }

    /// `printf(3)`-style output to stdout.
    pub fn printf(&mut self, env: &mut Env<'_>, text: &str) {
        if !self.tty_probed {
            self.tty_probed = true;
            let _ = env.sys(self.flavor.tty_probe_syscall(), [1, 0x5401, 0, 0, 0, 0]);
        }
        let _ = env.sys_data(
            self.flavor.printf_syscall(),
            [1, 0, 0, 0, 0, 0],
            text.as_bytes().to_vec(),
        );
    }

    /// Spawns a pthread: returns the clone return value (positive tid for
    /// the parent; 0 means "we are the child" — which, under a *faked*
    /// `clone`, happens in the original process, reproducing Nginx's
    /// master-runs-the-worker-loop behaviour from Table 2).
    pub fn start_thread(&mut self, env: &mut Env<'_>) -> i64 {
        if self.flavor != LibcFlavor::OldGlibc32 {
            // Robust futex lists postdate the 2003 threading model.
            let _ = env.sys(Sysno::set_robust_list, [0x7000, 24, 0, 0, 0, 0]);
        }
        env.sys(Sysno::clone, [0x50f00, 0, 0, 0, 0, 0]).ret
    }

    /// pthread mutex lock over the futex word at `addr`.
    pub fn lock(&mut self, env: &mut Env<'_>, addr: u64) -> LockOutcome {
        if env.mem_load(addr) == 0 {
            env.mem_store(addr, 1);
            return LockOutcome::Acquired;
        }
        // Contended: wait in the kernel. A real FUTEX_WAIT gives the
        // holder time to release (observable as virtual-time progress).
        let before = env.now();
        let r = env.sys(Sysno::futex, [addr, 0 /* FUTEX_WAIT */, 1, 0, 0, 0]);
        let waited = env.now() - before;
        if r.ret == 0 && waited >= 40 {
            env.mem_store(addr, 1);
            return LockOutcome::AcquiredContended;
        }
        if r.errno() == Some(loupe_syscalls::Errno::EAGAIN) {
            // The word changed under us: holder already released.
            env.mem_store(addr, 1);
            return LockOutcome::AcquiredContended;
        }
        // Stubbed (ENOSYS) or faked (instant 0): we resume while the lock
        // is still logically held.
        LockOutcome::Corrupted
    }

    /// pthread mutex unlock.
    pub fn unlock(&mut self, env: &mut Env<'_>, addr: u64) {
        env.mem_store(addr, 0);
        let _ = env.sys(Sysno::futex, [addr, 1 /* FUTEX_WAKE */, 1, 0, 0, 0]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loupe_kernel::LinuxSim;

    fn with_env<T>(f: impl FnOnce(&mut Env<'_>) -> T) -> T {
        let mut k = LinuxSim::new();
        k.vfs.add_file("/lib/libc.so.6", vec![0x7f; 1024]);
        let mut env = Env::new(&mut k);
        f(&mut env)
    }

    #[test]
    fn init_counts_match_table4() {
        // Invocation totals from Table 4 (init portion: total minus the
        // hello-world's write/writev and exit_group).
        let totals: &[(LibcFlavor, u32)] = &[
            (LibcFlavor::GlibcDynamic, 26),
            (LibcFlavor::GlibcStatic, 9),
            (LibcFlavor::MuslDynamic, 9),
            (LibcFlavor::MuslStatic, 4),
        ];
        for &(flavor, expect) in totals {
            let n: u32 = flavor.init_sequence().iter().map(|(_, c)| c).sum();
            assert_eq!(n, expect, "{}", flavor.name());
        }
    }

    #[test]
    fn init_succeeds_on_full_kernel() {
        for flavor in [
            LibcFlavor::GlibcDynamic,
            LibcFlavor::GlibcStatic,
            LibcFlavor::MuslDynamic,
            LibcFlavor::MuslStatic,
            LibcFlavor::OldGlibc32,
        ] {
            with_env(|env| {
                let rt = LibcRuntime::init(env, flavor).expect("init on full kernel");
                assert!(rt.brk_works(), "{}", flavor.name());
            });
        }
    }

    #[test]
    fn malloc_uses_brk_then_exact_size() {
        with_env(|env| {
            let mut rt = LibcRuntime::init(env, LibcFlavor::GlibcDynamic).unwrap();
            let a = rt.malloc(env, 1000);
            let b = rt.malloc(env, 1000);
            assert_eq!(b, a + 1000, "brk heap is exact");
        });
    }

    #[test]
    fn printf_uses_flavor_specific_syscall() {
        assert_eq!(LibcFlavor::GlibcDynamic.printf_syscall(), Sysno::write);
        assert_eq!(LibcFlavor::MuslStatic.printf_syscall(), Sysno::writev);
        assert_eq!(LibcFlavor::MuslDynamic.tty_probe_syscall(), Sysno::ioctl);
        assert_eq!(LibcFlavor::GlibcStatic.tty_probe_syscall(), Sysno::fstat);
    }

    #[test]
    fn lock_uncontended_and_contended() {
        with_env(|env| {
            let mut rt = LibcRuntime::init(env, LibcFlavor::GlibcDynamic).unwrap();
            assert_eq!(rt.lock(env, 0x1000), LockOutcome::Acquired);
            // Now held (value 1): a second lock contends and waits.
            assert_eq!(rt.lock(env, 0x1000), LockOutcome::AcquiredContended);
            rt.unlock(env, 0x1000);
            assert_eq!(env.mem_load(0x1000), 0);
        });
    }

    #[test]
    fn supersets_are_large_and_flavor_specific() {
        let glibc = LibcFlavor::GlibcDynamic.code_superset();
        let musl = LibcFlavor::MuslDynamic.code_superset();
        let old = LibcFlavor::OldGlibc32.code_superset();
        assert!(glibc.len() > 150, "glibc superset: {}", glibc.len());
        assert!(musl.len() < glibc.len(), "musl is leaner");
        assert!(!old.contains(Sysno::openat), "2003 glibc predates openat");
        assert!(old.contains(Sysno::set_thread_area));
        assert!(glibc.contains(Sysno::openat));
    }

    #[test]
    fn thirty_two_bit_name_mapping() {
        assert_eq!(names_32bit(Sysno::mmap), vec!["mmap2", "old_mmap"]);
        assert_eq!(names_32bit(Sysno::fstat), vec!["fstat64"]);
        assert_eq!(names_32bit(Sysno::read), vec!["read"]);
        // Every mapped name is in the i386 table.
        for s in [
            Sysno::mmap,
            Sysno::fstat,
            Sysno::fcntl,
            Sysno::geteuid,
            Sysno::recvfrom,
        ] {
            for n in names_32bit(s) {
                assert!(
                    loupe_syscalls::i386::Sysno32::from_name(n).is_some(),
                    "{n} missing from i386 table"
                );
            }
        }
    }
}
