//! The profile-generated application fleet.
//!
//! The paper's dataset holds 116 applications; twelve are modelled in
//! detail in [`crate::apps`]. This module generates the remaining 104 from
//! seeded profiles with realistic syscall mixes, so aggregate experiments
//! (API importance, support plans, effort savings) run over a full-size
//! population. Generation is deterministic: the same name always produces
//! the same profile, which keeps replicated analyses and the shared
//! database consistent.

use loupe_kernel::LinuxSim;
use loupe_syscalls::Sysno;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::code::AppCode;
use crate::env::Env;
use crate::libc::{LibcFlavor, LibcRuntime};
use crate::model::{AppKind, AppModel, AppSpec, Exit};
use crate::runtime::{
    self, event_setup, listen_socket, locked_section, serve_requests, EventApi, ResponsePath,
    ServeCfg,
};
use crate::workload::Workload;

/// How a profile app reacts when one of its extra syscalls fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailMode {
    /// Checked, fatal on error return — stub kills it, fake passes.
    Fatal,
    /// The call's *out-of-band result* is consumed — neither stub nor fake
    /// works (required).
    NeedsPayload,
    /// Unchecked or explicitly tolerated — stubbable.
    Ignore,
    /// Failure disables a named optional feature — stubbable.
    Feature(&'static str),
}

/// One extra syscall in a profile, with its failure semantics.
#[derive(Debug, Clone, Copy)]
pub struct ProfileCall {
    /// The syscall issued.
    pub sysno: Sysno,
    /// Failure reaction.
    pub mode: FailMode,
    /// Issued at init (true) or every k-th request (false).
    pub at_init: bool,
}

/// A generated application.
#[derive(Debug, Clone)]
pub struct ProfileApp {
    name: &'static str,
    kind: AppKind,
    year: u32,
    port: Option<u16>,
    libc: LibcFlavor,
    threads: bool,
    privileges: bool,
    logging: bool,
    calls: Vec<ProfileCall>,
    work_per_request: u64,
    response: ResponsePath,
}

/// Syscalls whose failure the generated apps tolerate silently (§5.2's
/// ignore-resilience pool).
const IGNORE_POOL: &[Sysno] = &[
    Sysno::sysinfo,
    Sysno::getrusage,
    Sysno::madvise,
    Sysno::ioctl,
    Sysno::uname,
    Sysno::times,
    Sysno::getpriority,
    Sysno::sched_getaffinity,
    Sysno::getcwd,
    Sysno::umask,
    Sysno::readlink,
    Sysno::alarm,
    Sysno::getppid,
    Sysno::capget,
    Sysno::utime,
    Sysno::sched_yield,
    Sysno::setpriority,
    Sysno::mlock,
    Sysno::getsid,
    Sysno::getpgrp,
    Sysno::sync,
    Sysno::fadvise64,
    Sysno::inotify_init1,
    Sysno::getegid,
    Sysno::getresuid,
];

/// Syscalls the generated apps check and abort on (fakeable, unstubbable).
const FATAL_POOL: &[Sysno] = &[
    Sysno::ftruncate,
    Sysno::flock,
    Sysno::eventfd2,
    Sysno::timerfd_create,
    Sysno::socketpair,
    Sysno::dup,
    Sysno::access,
    Sysno::fdatasync,
    Sysno::fsync,
    Sysno::setsockopt,
    Sysno::rt_sigaction,
    Sysno::sigaltstack,
    Sysno::set_tid_address,
    Sysno::statfs,
    Sysno::mincore,
    Sysno::clock_getres,
    Sysno::mknod,
    Sysno::setitimer,
];

/// Syscalls whose payload the generated apps consume (required).
const PAYLOAD_POOL: &[Sysno] = &[
    Sysno::pread64,
    Sysno::getrandom,
    Sysno::pipe2,
    Sysno::newfstatat,
    Sysno::getdents64,
    Sysno::clock_gettime,
    Sysno::stat,
    Sysno::fstat,
    Sysno::uname,
    Sysno::getcwd,
    Sysno::sysinfo,
    Sysno::getrusage,
    Sysno::sched_getaffinity,
    Sysno::clock_getres,
    Sysno::getrlimit,
    Sysno::prlimit64,
    Sysno::socketpair,
    Sysno::mincore,
    Sysno::rt_sigtimedwait,
    Sysno::gettimeofday,
];

/// Issues one payload-consuming call against real kernel objects (a file
/// or directory fd where needed), returning the outcome to judge.
fn issue_payload_call(env: &mut Env<'_>, sysno: Sysno) -> loupe_kernel::SysOutcome {
    match sysno {
        Sysno::pread64 => {
            let f = env.sys_path(Sysno::openat, [0; 6], "/data/input.dat");
            if f.ret < 0 {
                return f;
            }
            let r = env.sys(Sysno::pread64, [f.ret as u64, 0, 512, 0, 0, 0]);
            let _ = env.sys(Sysno::close, [f.ret as u64, 0, 0, 0, 0, 0]);
            r
        }
        Sysno::getdents64 => {
            let d = env.sys_path(Sysno::openat, [0; 6], "/etc");
            if d.ret < 0 {
                return d;
            }
            let r = env.sys(Sysno::getdents64, [d.ret as u64, 0, 1024, 0, 0, 0]);
            let _ = env.sys(Sysno::close, [d.ret as u64, 0, 0, 0, 0, 0]);
            r
        }
        Sysno::getrandom => env.sys(Sysno::getrandom, [0, 16, 0, 0, 0, 0]),
        Sysno::stat | Sysno::newfstatat => env.sys_path(sysno, [0; 6], "/etc/hosts"),
        s => env.sys(s, [1, 1, 1, 0, 0, 0]),
    }
}

/// Feature-gated extras (failure turns a feature off).
const FEATURE_POOL: &[(Sysno, &str)] = &[
    (Sysno::chown, "ownership"),
    (Sysno::fallocate, "preallocation"),
    (Sysno::utimensat, "timestamps"),
    (Sysno::symlink, "symlinks"),
    (Sysno::fchmod, "permissions"),
    (Sysno::mlockall, "memory-pinning"),
    (Sysno::inotify_add_watch, "file-watching"),
    (Sysno::setsid, "daemonization"),
    (Sysno::nanosleep, "rate-limiting"),
    (Sysno::msync, "durable-flush"),
];

/// `(name, kind)` for the 104 generated applications. Names follow the
/// paper's sources (OpenBenchmarking.org, OSv-apps, Unikraft catalogs).
pub const FLEET: &[(&str, AppKind)] = &[
    ("postgres", AppKind::Database),
    ("mysql", AppKind::Database),
    ("mariadb", AppKind::Database),
    ("influxdb", AppKind::Database),
    ("couchdb", AppKind::Database),
    ("cassandra", AppKind::Database),
    ("leveldb-bench", AppKind::Database),
    ("rocksdb-bench", AppKind::Database),
    ("etcd", AppKind::KeyValue),
    ("consul", AppKind::KeyValue),
    ("keydb", AppKind::KeyValue),
    ("ssdb", AppKind::KeyValue),
    ("dragonfly", AppKind::KeyValue),
    ("tarantool", AppKind::KeyValue),
    ("aerospike", AppKind::KeyValue),
    ("riak", AppKind::KeyValue),
    ("caddy", AppKind::WebServer),
    ("traefik", AppKind::WebServer),
    ("tomcat", AppKind::WebServer),
    ("jetty", AppKind::WebServer),
    ("cherokee", AppKind::WebServer),
    ("hiawatha", AppKind::WebServer),
    ("monkey-httpd", AppKind::WebServer),
    ("thttpd", AppKind::WebServer),
    ("boa", AppKind::WebServer),
    ("darkhttpd", AppKind::WebServer),
    ("mini-httpd", AppKind::WebServer),
    ("civetweb", AppKind::WebServer),
    ("mongoose-ws", AppKind::WebServer),
    ("uwsgi", AppKind::WebServer),
    ("gunicorn", AppKind::WebServer),
    ("puma", AppKind::WebServer),
    ("unit", AppKind::WebServer),
    ("openresty", AppKind::WebServer),
    ("varnish", AppKind::Proxy),
    ("squid", AppKind::Proxy),
    ("envoy", AppKind::Proxy),
    ("pgbouncer", AppKind::Proxy),
    ("twemproxy", AppKind::Proxy),
    ("dnsmasq", AppKind::Proxy),
    ("bind9", AppKind::Proxy),
    ("unbound", AppKind::Proxy),
    ("coredns", AppKind::Proxy),
    ("stunnel", AppKind::Proxy),
    ("socat", AppKind::NetTool),
    ("netperf", AppKind::NetTool),
    ("nuttcp", AppKind::NetTool),
    ("sockperf", AppKind::NetTool),
    ("tcpdump", AppKind::NetTool),
    ("nmap", AppKind::NetTool),
    ("curl", AppKind::NetTool),
    ("wget", AppKind::NetTool),
    ("openssh-server", AppKind::NetTool),
    ("mosquitto", AppKind::Queue),
    ("rabbitmq", AppKind::Queue),
    ("nats-server", AppKind::Queue),
    ("zeromq-bench", AppKind::Queue),
    ("beanstalkd", AppKind::Queue),
    ("gearmand", AppKind::Queue),
    ("nsqd", AppKind::Queue),
    ("kafka-lite", AppKind::Queue),
    ("activemq", AppKind::Queue),
    ("python3", AppKind::Runtime),
    ("node", AppKind::Runtime),
    ("ruby", AppKind::Runtime),
    ("perl", AppKind::Runtime),
    ("php-fpm", AppKind::Runtime),
    ("lua", AppKind::Runtime),
    ("openjdk-app", AppKind::Runtime),
    ("erlang-beam", AppKind::Runtime),
    ("deno", AppKind::Runtime),
    ("bun", AppKind::Runtime),
    ("micropython", AppKind::Runtime),
    ("guile", AppKind::Runtime),
    ("tcl", AppKind::Runtime),
    ("ffmpeg", AppKind::Utility),
    ("imagemagick", AppKind::Utility),
    ("graphicsmagick", AppKind::Utility),
    ("gzip", AppKind::Utility),
    ("zstd", AppKind::Utility),
    ("xz", AppKind::Utility),
    ("brotli", AppKind::Utility),
    ("p7zip", AppKind::Utility),
    ("openssl-speed", AppKind::Utility),
    ("john-the-ripper", AppKind::Utility),
    ("blender-bench", AppKind::Utility),
    ("x264", AppKind::Utility),
    ("x265", AppKind::Utility),
    ("vpxenc", AppKind::Utility),
    ("dav1d", AppKind::Utility),
    ("rav1e", AppKind::Utility),
    ("git", AppKind::Utility),
    ("rsync", AppKind::Utility),
    ("sqlite-bench", AppKind::Utility),
    ("stress-ng", AppKind::Utility),
    ("sysbench", AppKind::Utility),
    ("fio", AppKind::Utility),
    ("iozone", AppKind::Utility),
    ("bonnie", AppKind::Utility),
    ("dbench", AppKind::Utility),
    ("pbzip2", AppKind::Utility),
    ("lz4", AppKind::Utility),
    ("jq", AppKind::Utility),
    ("pandoc-lite", AppKind::Utility),
];

fn seed_of(name: &str) -> u64 {
    // FNV-1a, stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl ProfileApp {
    /// Generates the profile for `name` (deterministic in the name).
    pub fn generate(name: &'static str, kind: AppKind, index: usize) -> ProfileApp {
        let mut rng = StdRng::seed_from_u64(seed_of(name));
        let is_server = !matches!(kind, AppKind::Utility) || rng.random_bool(0.2);
        let mut calls = Vec::new();

        let n_ignore = rng.random_range(4..=10);
        for _ in 0..n_ignore {
            let s = IGNORE_POOL[rng.random_range(0..IGNORE_POOL.len())];
            calls.push(ProfileCall {
                sysno: s,
                mode: FailMode::Ignore,
                at_init: rng.random_bool(0.6),
            });
        }
        let n_fatal = rng.random_range(2..=6);
        for _ in 0..n_fatal {
            let s = FATAL_POOL[rng.random_range(0..FATAL_POOL.len())];
            calls.push(ProfileCall {
                sysno: s,
                mode: FailMode::Fatal,
                at_init: true,
            });
        }
        let n_payload = rng.random_range(2..=6);
        for _ in 0..n_payload {
            let s = PAYLOAD_POOL[rng.random_range(0..PAYLOAD_POOL.len())];
            calls.push(ProfileCall {
                sysno: s,
                mode: FailMode::NeedsPayload,
                at_init: rng.random_bool(0.5),
            });
        }
        let n_feature = rng.random_range(1..=4);
        for _ in 0..n_feature {
            let (s, f) = FEATURE_POOL[rng.random_range(0..FEATURE_POOL.len())];
            calls.push(ProfileCall {
                sysno: s,
                mode: FailMode::Feature(f),
                at_init: true,
            });
        }

        ProfileApp {
            name,
            kind,
            year: rng.random_range(2014..=2022),
            port: is_server.then(|| 10000 + index as u16),
            libc: if rng.random_bool(0.15) {
                LibcFlavor::MuslDynamic
            } else {
                LibcFlavor::GlibcDynamic
            },
            threads: rng.random_bool(0.55),
            privileges: is_server && rng.random_bool(0.35),
            logging: is_server && rng.random_bool(0.5),
            calls,
            work_per_request: rng.random_range(30..=150),
            response: match rng.random_range(0..3) {
                0 => ResponsePath::Write,
                1 => ResponsePath::Writev,
                _ => ResponsePath::Sendto,
            },
        }
    }

    fn issue(&self, env: &mut Env<'_>, call: &ProfileCall) -> Result<(), Exit> {
        let r = if call.mode == FailMode::NeedsPayload {
            issue_payload_call(env, call.sysno)
        } else {
            match call.sysno {
                Sysno::stat | Sysno::newfstatat | Sysno::access | Sysno::readlink => {
                    env.sys_path(call.sysno, [0; 6], "/etc/hosts")
                }
                Sysno::statfs => env.sys_path(Sysno::statfs, [0; 6], "/"),
                // flock needs a real file descriptor.
                Sysno::flock => {
                    let f = env.sys_path(Sysno::openat, [0; 6], "/data/input.dat");
                    if f.ret < 0 {
                        f
                    } else {
                        let r = env.sys(Sysno::flock, [f.ret as u64, 2, 0, 0, 0, 0]);
                        let _ = env.sys(Sysno::close, [f.ret as u64, 0, 0, 0, 0, 0]);
                        r
                    }
                }
                s => env.sys(s, [1, 1, 1, 0, 0, 0]),
            }
        };
        match call.mode {
            FailMode::Ignore => Ok(()),
            FailMode::Fatal => {
                if r.ret < 0 {
                    Err(Exit::Crash(format!(
                        "{}: {} failed",
                        self.name,
                        call.sysno.name()
                    )))
                } else {
                    Ok(())
                }
            }
            FailMode::NeedsPayload => {
                let has_payload = !matches!(r.payload, loupe_kernel::Payload::None);
                if r.ret < 0 || !has_payload {
                    Err(Exit::Crash(format!(
                        "{}: no usable result from {}",
                        self.name,
                        call.sysno.name()
                    )))
                } else {
                    Ok(())
                }
            }
            FailMode::Feature(f) => {
                if r.ret < 0 {
                    env.feature(f, false);
                }
                Ok(())
            }
        }
    }
}

impl AppModel for ProfileApp {
    fn name(&self) -> &str {
        self.name
    }

    fn spec(&self) -> AppSpec {
        AppSpec {
            name: self.name.to_owned(),
            version: "1.0".into(),
            year: self.year,
            port: self.port,
            kind: self.kind,
            libc: self.libc,
        }
    }

    fn provision(&self, sim: &mut LinuxSim) {
        runtime::provision_base(sim);
        sim.vfs.add_file("/data/input.dat", vec![0xab; 8192]);
    }

    fn run(&self, env: &mut Env<'_>, workload: Workload) -> Result<(), Exit> {
        let mut libc = LibcRuntime::init(env, self.libc)?;

        for call in self.calls.iter().filter(|c| c.at_init) {
            self.issue(env, call)?;
        }
        if self.privileges {
            runtime::drop_privileges(env, false)?;
        }
        if self.threads {
            let _ = libc.start_thread(env);
        }
        let log_fd = if self.logging {
            let r = env.sys_path(
                Sysno::openat,
                [0, 0, 0x440, 0, 0, 0],
                "/var/log/app/access.log",
            );
            if r.ret >= 0 {
                Some(r.ret as u64)
            } else {
                env.feature("logging", false);
                None
            }
        } else {
            None
        };

        let loop_calls: Vec<&ProfileCall> = self.calls.iter().filter(|c| !c.at_init).collect();
        let n = workload.requests();

        match self.port {
            Some(port) => {
                let listen_fd = listen_socket(env, port, false, true)?;
                let ep = event_setup(env, EventApi::Epoll, &[listen_fd])?;
                let cfg = ServeCfg {
                    port,
                    listen_fd,
                    epoll_fd: ep,
                    fallback_api: EventApi::Epoll,
                    read_syscall: Sysno::read,
                    response: self.response,
                    response_len: 200,
                    work_per_request: self.work_per_request,
                    access_log_fd: log_fd,
                    accept4: self.year >= 2012,
                    close_every: 8,
                };
                let threads = self.threads;
                serve_requests(env, &cfg, n, |env, i, _| {
                    for (k, call) in loop_calls.iter().enumerate() {
                        if (i as usize).is_multiple_of(3 + k) {
                            self.issue(env, call)?;
                        }
                    }
                    if threads && i % 6 == 5 && !locked_section(env, &mut libc, 0x8000, true) {
                        env.charge(300);
                        env.fail("lock corruption detected");
                    }
                    Ok(())
                })?;
            }
            None => {
                // Utility: process an input file per "request".
                let f = env.sys_path(Sysno::openat, [0; 6], "/data/input.dat");
                if f.ret < 0 {
                    return Err(Exit::Crash("cannot open input".into()));
                }
                let fd = f.ret as u64;
                for i in 0..n {
                    let r = env.sys(Sysno::read, [fd, 0, 4096, 0, 0, 0]);
                    env.charge(self.work_per_request);
                    for (k, call) in loop_calls.iter().enumerate() {
                        if (i as usize).is_multiple_of(3 + k) {
                            self.issue(env, call)?;
                        }
                    }
                    if self.threads && i % 6 == 5 && !locked_section(env, &mut libc, 0x8000, true) {
                        env.charge(300);
                        env.fail("lock corruption detected");
                    }
                    let w = env.sys_data(Sysno::write, [1, 0, 0, 0, 0, 0], vec![b'o'; 64]);
                    if r.ret >= 0 && w.ret > 0 {
                        env.record_response();
                    } else {
                        env.fail("pipeline I/O failed");
                    }
                    let _ = env.sys(Sysno::lseek, [fd, 0, 0, 0, 0, 0]);
                }
                let _ = env.sys(Sysno::close, [fd, 0, 0, 0, 0, 0]);
            }
        }

        let _ = env.sys0(Sysno::exit_group);
        Ok(())
    }

    fn code(&self) -> AppCode {
        use Sysno as S;
        let mut code = AppCode::new().with_checked(&[
            S::openat,
            S::read,
            S::write,
            S::close,
            S::mmap,
            S::munmap,
            S::brk,
            S::fstat,
            S::lseek,
            S::exit_group,
        ]);
        if self.port.is_some() {
            code = code.with_checked(&[
                S::socket,
                S::bind,
                S::listen,
                S::accept,
                S::accept4,
                S::fcntl,
                S::epoll_create1,
                // The shared runtime's event_setup falls back to the
                // legacy call when epoll_create1 fails — a branch any
                // source analyser of this code would see.
                S::epoll_create,
                S::epoll_ctl,
                S::epoll_wait,
                S::writev,
                S::sendto,
                S::setsockopt,
            ]);
        }
        if self.threads {
            code = code.with_checked(&[S::clone, S::futex, S::set_robust_list]);
        }
        if self.privileges {
            code = code.with_checked(&[S::setuid, S::setgid, S::setgroups]);
        }
        for call in &self.calls {
            let checked = !matches!(call.mode, FailMode::Ignore);
            if checked {
                code = code.with_checked(&[call.sysno]);
            } else {
                code = code.with_unchecked(&[call.sysno]);
            }
        }
        // A deterministic slice of the fleet performs raw syscall(N)
        // invocations (thread-id probes the libc has no wrapper for):
        // resolvable by constant propagation, opaque to naive binary
        // analysis — the L1→L2 rung of the static precision ladder.
        if crate::program::fnv1a(self.name).is_multiple_of(8) {
            code = code.with_raw(&[S::gettid, S::sched_yield]);
        }
        // Dead/error-path extras every real binary carries.
        code.with_binary_extra(&[
            S::shmget,
            S::semget,
            S::msgget,
            S::personality,
            S::swapon,
            S::chroot,
            S::setrlimit,
            S::getrlimit,
        ])
    }
}

/// Generates the full 104-app fleet.
pub fn generate_fleet() -> Vec<ProfileApp> {
    FLEET
        .iter()
        .enumerate()
        .map(|(i, (name, kind))| ProfileApp::generate(name, *kind, i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_has_104_unique_names() {
        let fleet = generate_fleet();
        assert_eq!(fleet.len(), 104);
        let names: std::collections::BTreeSet<_> = fleet.iter().map(|a| a.name).collect();
        assert_eq!(names.len(), 104);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = ProfileApp::generate("etcd", AppKind::KeyValue, 3);
        let b = ProfileApp::generate("etcd", AppKind::KeyValue, 3);
        assert_eq!(a.calls.len(), b.calls.len());
        assert_eq!(a.year, b.year);
        assert_eq!(a.threads, b.threads);
    }

    #[test]
    fn every_fleet_app_runs_clean_on_the_full_kernel() {
        for app in generate_fleet() {
            let mut sim = LinuxSim::new();
            app.provision(&mut sim);
            let mut env = Env::new(&mut sim);
            let res = app.run(&mut env, Workload::HealthCheck);
            assert!(res.is_ok(), "{}: {:?}", app.name, res.err());
            let out = env.finish(Exit::Clean);
            assert!(out.responses >= 1, "{} produced no output", app.name);
            assert!(out.failures.is_empty(), "{}: {:?}", app.name, out.failures);
        }
    }

    #[test]
    fn profiles_differ_between_apps() {
        let a = ProfileApp::generate("postgres", AppKind::Database, 0);
        let b = ProfileApp::generate("varnish", AppKind::Proxy, 1);
        let sa: Vec<_> = a.calls.iter().map(|c| c.sysno).collect();
        let sb: Vec<_> = b.calls.iter().map(|c| c.sysno).collect();
        assert_ne!(sa, sb);
    }
}
