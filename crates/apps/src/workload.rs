//! Workloads: what the test script exercises (§3.2).
//!
//! Each workload corresponds to a different level of application-stability
//! guarantee: a health check shows the app boots and answers once, a
//! benchmark exercises the hot path under load, and a test suite covers the
//! broader feature set (and thus traces more system calls — Fig. 4 shows
//! suites requiring roughly twice the syscalls of benchmarks).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The workload driven by a test script.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Workload {
    /// A single end-to-end probe ("can the server answer one request?").
    HealthCheck,
    /// A standard performance benchmark (`wrk`, `redis-benchmark`, iPerf).
    Benchmark,
    /// The application's test suite: core paths plus auxiliary features.
    TestSuite,
}

impl Workload {
    /// All workloads, for iteration.
    pub const ALL: &'static [Workload] = &[
        Workload::HealthCheck,
        Workload::Benchmark,
        Workload::TestSuite,
    ];

    /// Number of client requests the embedded test script drives.
    pub fn requests(self) -> u32 {
        match self {
            Workload::HealthCheck => 1,
            Workload::Benchmark => 200,
            Workload::TestSuite => 60,
        }
    }

    /// Whether auxiliary features (logging, persistence, reload, ...) are
    /// exercised and checked, not just the hot path.
    pub fn checks_aux_features(self) -> bool {
        matches!(self, Workload::TestSuite)
    }

    /// Short label used in reports (matches the paper's figure axes).
    pub fn label(self) -> &'static str {
        match self {
            Workload::HealthCheck => "health",
            Workload::Benchmark => "bench",
            Workload::TestSuite => "suite",
        }
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_scale_with_workload_depth() {
        assert_eq!(Workload::HealthCheck.requests(), 1);
        assert!(Workload::Benchmark.requests() > Workload::TestSuite.requests());
    }

    #[test]
    fn only_suites_check_aux_features() {
        assert!(!Workload::HealthCheck.checks_aux_features());
        assert!(!Workload::Benchmark.checks_aux_features());
        assert!(Workload::TestSuite.checks_aux_features());
    }

    #[test]
    fn labels() {
        assert_eq!(Workload::Benchmark.to_string(), "bench");
        assert_eq!(Workload::ALL.len(), 3);
    }
}
