//! Synthetic whole-program representation for static analysis.
//!
//! Real static syscall analyzers (Tsai et al., sysfilter, the Unikraft
//! analysers) do not union declared sets: they build a call graph over
//! the program *and everything linked into it*, resolve indirect calls
//! against the address-taken function set, and walk reachability from
//! the entry point to every `syscall` site. [`ProgramGraph`] lowers an
//! app model (and its [`LibcFlavor`]) into exactly that shape:
//!
//! * one function per libc syscall wrapper (each in its own `.o`, the
//!   classic static-linking granularity), holding a constant-number
//!   syscall site;
//! * PLT-style direct edges from the application functions into the
//!   wrappers its sources reference, plus crt0 entry/init/exit chains;
//! * indirect call sites in `main` typed by signature class, with the
//!   address-taken wrapper population as the candidate target space;
//! * error-path branches (`error_path` functions) that static analysis
//!   sees but no dynamic execution enters;
//! * raw `syscall(N)` sites whose number operand is either a constant
//!   or an unknown register (resolvable only by constant propagation).
//!
//! The analyzers in `loupe-static` run graph reachability over this
//! representation at four precision levels; [`ProgramGraph::validate`]
//! enforces the well-formedness rules that make the containment chain
//! *dynamic ⊆ L3 ⊆ L2 ⊆ L1 ⊆ L0* a theorem rather than a hope.

use std::collections::{BTreeMap, BTreeSet};

use loupe_syscalls::{Category, Sysno, SysnoSet};

use crate::libc::LibcFlavor;
use crate::model::AppModel;

/// Index of a function in [`ProgramGraph::functions`].
pub type FuncId = usize;

/// The signature class of a function or indirect call site — the
/// arity/type bucket a signature-pruning analysis matches on. Derived
/// from the syscall's [`Category`], which groups calls with similar
/// prototypes (file I/O, memory, network, ...).
pub fn sig_class(s: Sysno) -> u8 {
    let cat = Category::of(s);
    Category::ALL
        .iter()
        .position(|&c| c == cat)
        .unwrap_or(Category::ALL.len() - 1) as u8
}

/// One outgoing call edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallEdge {
    /// A direct call: the target is known statically.
    Direct {
        /// Callee.
        target: FuncId,
    },
    /// An indirect call through a function pointer of signature class
    /// `sig`. Static analysis must over-approximate the target set;
    /// `actual` is the function the pointer holds at runtime (if the
    /// call executes at all), used only by dynamic reachability.
    Indirect {
        /// Signature class of the pointer.
        sig: u8,
        /// Runtime target, if this call dynamically executes.
        actual: Option<FuncId>,
    },
}

/// The number operand of a syscall site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NumberOperand {
    /// `syscall` instruction with a constant number: every level
    /// attributes exactly this syscall.
    Const(Sysno),
    /// The number lives in a register. A naive analysis must expand the
    /// site to the full syscall table; intraprocedural constant
    /// propagation recovers `resolvable` when the register is loaded
    /// from a literal in the same function (`syscall(N)` idiom).
    Register {
        /// The constant a propagating analysis recovers, if any.
        resolvable: Option<Sysno>,
    },
}

/// A syscall instruction inside a function body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyscallSite {
    /// The number operand.
    pub number: NumberOperand,
}

/// One function of the lowered program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Unique symbol name (`crt::_start`, `app::use_read`,
    /// `libc::openat`, `deps::shmget`, ...).
    pub name: String,
    /// The object file the symbol lives in. Source-level analysis drops
    /// whole objects that nothing references (`--gc-sections` at `.o`
    /// granularity); each libc wrapper gets its own object.
    pub object: String,
    /// Whether building from source links this object at all. Binary
    /// analysis sees every function; source analysis only the linked
    /// ones.
    pub source_linked: bool,
    /// Whether the function's address escapes (stored in a table,
    /// passed as a callback): the indirect-call candidate set.
    pub address_taken: bool,
    /// Signature class, matched against indirect call sites.
    pub sig: u8,
    /// Whether the function is only reachable on error paths — code
    /// static analysis sees but no healthy execution enters.
    pub error_path: bool,
    /// Outgoing calls.
    pub calls: Vec<CallEdge>,
    /// Syscall sites in the body.
    pub sites: Vec<SyscallSite>,
}

/// The lowered whole-program call graph of one application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramGraph {
    /// Application name.
    pub app: String,
    /// The libc flavor linked in.
    pub libc: LibcFlavor,
    /// Entry point (`_start`).
    pub entry: FuncId,
    /// All functions, direct-call targets by index.
    pub functions: Vec<Function>,
}

/// Fraction (percent) of libc wrapper objects whose address escapes
/// into tables a binary analyser must treat as indirect-call targets.
/// Calibrated so the naive L0 attribution lands in the paper's 2–5×
/// overestimation band for the detailed apps (see
/// `docs/STATIC_VS_DYNAMIC.md`).
const ADDRESS_TAKEN_PCT: u64 = 45;

/// Signature classes a program plausibly stores function pointers of:
/// I/O, event and IPC handlers end up in callback tables; memory
/// management, process control and the other privileged classes are
/// called directly. Indirect call sites are only lowered for these, so
/// signature pruning (L1) always has classes left to exclude.
const CALLBACK_CATEGORIES: &[Category] = &[
    Category::FileIo,
    Category::Network,
    Category::EventIo,
    Category::Ipc,
    Category::Sync,
    Category::Time,
    Category::Misc,
];

/// FNV-1a, the repo's stock deterministic string hash.
pub(crate) fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl ProgramGraph {
    /// Lowers an app model into its whole-program graph: crt0 entry
    /// chain, application functions calling PLT wrappers, the full
    /// linked libc wrapper population (one object each), linked non-libc
    /// dependency objects (`binary_extra`), error-path branches, and raw
    /// `syscall(N)` sites.
    pub fn lower(app: &dyn AppModel) -> ProgramGraph {
        let spec = app.spec();
        let code = app.code();
        let flavor = spec.libc;

        let init_set: SysnoSet = flavor.init_sequence().iter().map(|&(s, _)| s).collect();
        // Everything the app sources reference resolves to a linked
        // wrapper object; the rest of the libc is linked (binary level)
        // but dead at source level.
        let referenced: SysnoSet = code
            .source_syscalls
            .union(&init_set)
            .union(&[Sysno::exit_group].into_iter().collect());
        let wrappers: SysnoSet = flavor.code_superset().union(&referenced);

        let mut b = GraphBuilder::new(spec.name.clone(), flavor);

        // crt0: _start -> libc_start_main (init syscalls) -> main; exit.
        let start = b.func("crt::_start", "crt/crt1.o", true, false, 0, false);
        let init = b.func("crt::libc_start_main", "crt/crt1.o", true, false, 0, false);
        let exit = b.func("crt::exit", "crt/exit.o", true, false, 0, false);
        let main = b.func("app::main", "app/main.o", true, false, 0, false);
        b.direct(start, init);
        for s in init_set.iter() {
            b.site(init, NumberOperand::Const(s));
        }
        b.direct(init, main);
        b.direct(init, exit);

        // The shared error-path handler: reached only from return-value
        // checks, so dynamic execution never enters it, but every static
        // level walks into it.
        let on_error = b.func("app::on_error", "app/error.o", true, false, 0, true);

        // One application function per referenced wrapper, direct-calling
        // its PLT stub; checked returns branch into the error handler.
        for s in code.source_syscalls.iter() {
            let f = b.func(
                &format!("app::use_{}", s.name()),
                &format!("app/{}.o", s.name()),
                true,
                false,
                sig_class(s),
                false,
            );
            b.direct(main, f);
            let w = b.wrapper(s, &referenced);
            b.direct(f, w);
            if code.return_checks.get(&s).copied().unwrap_or(false) {
                b.direct(f, on_error);
            }
        }

        // Raw syscall(N) sites: the number is a literal in the source,
        // but compiled code loads it into a register — only constant
        // propagation (L2+) recovers it; a naive analysis must expand
        // the site to the whole table.
        for s in code.raw_syscalls.iter() {
            let f = b.func(
                &format!("app::raw_{}", s.name()),
                "app/raw.o",
                true,
                false,
                sig_class(s),
                false,
            );
            b.direct(main, f);
            b.site(
                f,
                NumberOperand::Register {
                    resolvable: Some(s),
                },
            );
        }

        // The error handler logs and aborts through the libc.
        let log = b.wrapper(flavor.printf_syscall(), &referenced);
        let abort = b.wrapper(Sysno::exit_group, &referenced);
        b.direct(on_error, log);
        b.direct(on_error, abort);

        // Indirect call sites in main: one per signature class the app
        // actually stores function pointers of (its own syscall
        // categories), restricted to callback-plausible classes — real
        // programs route I/O, event and IPC work through handler
        // tables, not memory management or process control. The
        // runtime target is unknown to static analysis.
        let cats: BTreeSet<u8> = code
            .source_syscalls
            .iter()
            .map(sig_class)
            .filter(|&sig| CALLBACK_CATEGORIES.contains(&Category::ALL[sig as usize]))
            .collect();
        for sig in cats {
            b.indirect(main, sig, None);
        }

        // Linked non-libc dependency objects: present in the binary and
        // address-taken (plugin/vtable style), absent from the source
        // build's link line.
        for s in code.binary_extra.iter() {
            let f = b.func(
                &format!("deps::{}", s.name()),
                "deps/libdeps.so",
                false,
                true,
                sig_class(s),
                false,
            );
            b.site(f, NumberOperand::Const(s));
        }

        // The full linked libc wrapper population (referenced wrappers
        // were already created on demand above; the rest are dead at
        // source level).
        for s in wrappers.iter() {
            b.wrapper(s, &referenced);
        }

        let g = b.finish(start);
        debug_assert_eq!(g.validate(), Ok(()));
        g
    }

    /// The function index of `name`, if present.
    pub fn find(&self, name: &str) -> Option<FuncId> {
        self.functions.iter().position(|f| f.name == name)
    }

    /// The syscalls an actual execution of this program can invoke:
    /// reachability over direct edges (skipping error-path branches) and
    /// the *actual* runtime targets of indirect calls, collecting
    /// constant sites and runtime-resolved register sites.
    pub fn dynamic_reachable(&self) -> SysnoSet {
        let mut out = SysnoSet::new();
        let mut seen = vec![false; self.functions.len()];
        let mut stack = vec![self.entry];
        seen[self.entry] = true;
        while let Some(f) = stack.pop() {
            let func = &self.functions[f];
            for site in &func.sites {
                match site.number {
                    NumberOperand::Const(s) => {
                        out.insert(s);
                    }
                    NumberOperand::Register { resolvable } => {
                        if let Some(s) = resolvable {
                            out.insert(s);
                        }
                    }
                }
            }
            let follow = |t: FuncId, seen: &mut Vec<bool>, stack: &mut Vec<FuncId>| {
                if !self.functions[t].error_path && !seen[t] {
                    seen[t] = true;
                    stack.push(t);
                }
            };
            for edge in &func.calls {
                match *edge {
                    CallEdge::Direct { target } => follow(target, &mut seen, &mut stack),
                    CallEdge::Indirect { actual, .. } => {
                        if let Some(t) = actual {
                            follow(t, &mut seen, &mut stack);
                        }
                    }
                }
            }
        }
        out
    }

    /// Well-formedness: the structural rules under which the analyzer
    /// containment chain *dynamic ⊆ L3 ⊆ L2 ⊆ L1 ⊆ L0* is guaranteed
    /// for **any** graph, not just lowered app models.
    ///
    /// * the entry exists, is source-linked and not error-path;
    /// * function names are unique (witness paths address by name);
    /// * every direct target and indirect `actual` is in bounds;
    /// * every indirect `actual` is address-taken, matches the site's
    ///   signature class and is source-linked and not error-path (a
    ///   runtime pointer can only hold a live, linked function every
    ///   precision level keeps in its candidate set);
    /// * every dynamically-reachable function is source-linked (code
    ///   that executes cannot live in a dead object).
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violated rule.
    pub fn validate(&self) -> Result<(), String> {
        if self.functions.is_empty() {
            return Err("graph has no functions".into());
        }
        if self.entry >= self.functions.len() {
            return Err(format!("entry {} out of bounds", self.entry));
        }
        let entry = &self.functions[self.entry];
        if entry.error_path || !entry.source_linked {
            return Err(format!(
                "entry `{}` must be source-linked and not error-path",
                entry.name
            ));
        }
        let mut names = BTreeSet::new();
        for f in &self.functions {
            if !names.insert(&f.name) {
                return Err(format!("duplicate function name `{}`", f.name));
            }
        }
        for f in &self.functions {
            for edge in &f.calls {
                match *edge {
                    CallEdge::Direct { target } => {
                        if target >= self.functions.len() {
                            return Err(format!("`{}`: direct target out of bounds", f.name));
                        }
                    }
                    CallEdge::Indirect { sig, actual } => {
                        if let Some(t) = actual {
                            if t >= self.functions.len() {
                                return Err(format!("`{}`: indirect actual out of bounds", f.name));
                            }
                            let g = &self.functions[t];
                            if !g.address_taken || g.sig != sig || !g.source_linked || g.error_path
                            {
                                return Err(format!(
                                    "`{}`: indirect actual `{}` is not a live candidate \
                                     (address_taken={}, sig {} vs {}, source_linked={}, \
                                     error_path={})",
                                    f.name,
                                    g.name,
                                    g.address_taken,
                                    g.sig,
                                    sig,
                                    g.source_linked,
                                    g.error_path
                                ));
                            }
                        }
                    }
                }
            }
        }
        // Dynamic walk stays inside linked code.
        let mut seen = vec![false; self.functions.len()];
        let mut stack = vec![self.entry];
        seen[self.entry] = true;
        while let Some(f) = stack.pop() {
            if !self.functions[f].source_linked {
                return Err(format!(
                    "`{}` is dynamically reachable but not source-linked",
                    self.functions[f].name
                ));
            }
            for edge in &self.functions[f].calls {
                let t = match *edge {
                    CallEdge::Direct { target } => Some(target),
                    CallEdge::Indirect { actual, .. } => actual,
                };
                if let Some(t) = t {
                    if !self.functions[t].error_path && !seen[t] {
                        seen[t] = true;
                        stack.push(t);
                    }
                }
            }
        }
        Ok(())
    }
}

/// Incremental builder used by [`ProgramGraph::lower`].
struct GraphBuilder {
    app: String,
    libc: LibcFlavor,
    functions: Vec<Function>,
    by_name: BTreeMap<String, FuncId>,
}

impl GraphBuilder {
    fn new(app: String, libc: LibcFlavor) -> GraphBuilder {
        GraphBuilder {
            app,
            libc,
            functions: Vec::new(),
            by_name: BTreeMap::new(),
        }
    }

    fn func(
        &mut self,
        name: &str,
        object: &str,
        source_linked: bool,
        address_taken: bool,
        sig: u8,
        error_path: bool,
    ) -> FuncId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = self.functions.len();
        self.functions.push(Function {
            name: name.to_owned(),
            object: object.to_owned(),
            source_linked,
            address_taken,
            sig,
            error_path,
            calls: Vec::new(),
            sites: Vec::new(),
        });
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// The libc wrapper function for syscall `s`, created on first use:
    /// its own object, a constant syscall site, source-linked iff the
    /// app sources reference it, address-taken per the deterministic
    /// escape model.
    fn wrapper(&mut self, s: Sysno, referenced: &SysnoSet) -> FuncId {
        let name = format!("libc::{}", s.name());
        if let Some(&id) = self.by_name.get(&name) {
            return id;
        }
        let address_taken = fnv1a(&name) % 100 < ADDRESS_TAKEN_PCT;
        let id = self.func(
            &name,
            &format!("libc/{}.o", s.name()),
            referenced.contains(s),
            address_taken,
            sig_class(s),
            false,
        );
        self.site(id, NumberOperand::Const(s));
        id
    }

    fn direct(&mut self, from: FuncId, to: FuncId) {
        let edge = CallEdge::Direct { target: to };
        if !self.functions[from].calls.contains(&edge) {
            self.functions[from].calls.push(edge);
        }
    }

    fn indirect(&mut self, from: FuncId, sig: u8, actual: Option<FuncId>) {
        self.functions[from]
            .calls
            .push(CallEdge::Indirect { sig, actual });
    }

    fn site(&mut self, f: FuncId, number: NumberOperand) {
        self.functions[f].sites.push(SyscallSite { number });
    }

    fn finish(self, entry: FuncId) -> ProgramGraph {
        ProgramGraph {
            app: self.app,
            libc: self.libc,
            entry,
            functions: self.functions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;

    #[test]
    fn lowered_graphs_validate_for_the_whole_dataset() {
        for app in registry::dataset() {
            let g = ProgramGraph::lower(app.as_ref());
            assert_eq!(g.validate(), Ok(()), "{}", app.name());
            assert_eq!(g.app, app.name());
            assert!(g.functions.len() > 100, "{}: libc population", app.name());
        }
    }

    #[test]
    fn dynamic_reachability_covers_sources_and_init_but_not_dead_code() {
        let app = registry::find("redis").unwrap();
        let g = ProgramGraph::lower(app.as_ref());
        let dynamic = g.dynamic_reachable();
        let spec = app.spec();
        // Everything the sources call plus the init floor is dynamically
        // reachable in the graph...
        for (s, _) in spec.libc.init_sequence() {
            assert!(dynamic.contains(s), "init {}", s.name());
        }
        assert!(dynamic.contains(Sysno::exit_group));
        // ...but linked-dead dependency code is not.
        for s in app.code().binary_extra.iter() {
            if !app.code().source_syscalls.contains(s) {
                assert!(!dynamic.contains(s), "dead dep {} executed", s.name());
            }
        }
    }

    #[test]
    fn error_paths_exist_statically_but_not_dynamically() {
        let app = registry::find("nginx").unwrap();
        let g = ProgramGraph::lower(app.as_ref());
        let err = g.find("app::on_error").expect("error handler");
        assert!(g.functions[err].error_path);
        // It has incoming edges (checked returns)...
        assert!(g
            .functions
            .iter()
            .any(|f| f.calls.contains(&CallEdge::Direct { target: err })));
        // ...but the dynamic walk never enters it (its exclusive callees
        // would otherwise be attributed).
        let mut g2 = g.clone();
        g2.functions[err].sites.push(SyscallSite {
            number: NumberOperand::Const(Sysno::acct),
        });
        assert!(!g2.dynamic_reachable().contains(Sysno::acct));
    }

    #[test]
    fn validate_rejects_malformed_graphs() {
        let app = registry::find("weborf").unwrap();
        let mut g = ProgramGraph::lower(app.as_ref());
        g.entry = g.functions.len();
        assert!(g.validate().is_err());

        let mut g = ProgramGraph::lower(app.as_ref());
        let dead = g
            .functions
            .iter()
            .position(|f| !f.source_linked)
            .expect("a dead dep or libc object");
        let main = g.find("app::main").unwrap();
        g.functions[main]
            .calls
            .push(CallEdge::Direct { target: dead });
        let err = g.validate().unwrap_err();
        assert!(err.contains("not source-linked"), "{err}");

        let mut g = ProgramGraph::lower(app.as_ref());
        let not_taken = g
            .functions
            .iter()
            .position(|f| !f.address_taken && f.source_linked)
            .unwrap();
        let sig = g.functions[not_taken].sig;
        let main = g.find("app::main").unwrap();
        g.functions[main].calls.push(CallEdge::Indirect {
            sig,
            actual: Some(not_taken),
        });
        let err = g.validate().unwrap_err();
        assert!(err.contains("not a live candidate"), "{err}");
    }

    #[test]
    fn lowering_is_deterministic() {
        let app = registry::find("redis").unwrap();
        assert_eq!(
            ProgramGraph::lower(app.as_ref()),
            ProgramGraph::lower(app.as_ref())
        );
    }
}
