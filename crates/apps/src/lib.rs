//! Modelled applications for the Loupe reproduction.
//!
//! The paper measures 116 real Linux applications. Those binaries (and
//! their Docker/test-suite harnesses) are not available here, so this crate
//! provides the closest synthetic equivalent (see `DESIGN.md`):
//!
//! * **Detailed models** ([`apps`]) of the cloud applications the paper
//!   analyses in depth — Nginx, Redis, Memcached, SQLite, HAProxy,
//!   Lighttpd, Weborf, iPerf3, MongoDB, H2O, Apache httpd, webfsd — written
//!   as imperative Rust against the simulated kernel, with per-syscall
//!   failure-resilience logic transcribed from the behaviours the paper
//!   documents (Fig. 6, §5.2, §5.3, Table 2).
//! * **A profile-generated fleet** ([`fleet`]) filling the dataset out to
//!   116 applications for the aggregate experiments (Fig. 3, support
//!   plans).
//! * **Libc models** ([`libc`]) — glibc/musl, dynamic/static, modern and
//!   2003-era — whose init sequences reproduce Tables 3 and 4.
//!
//! Every model exposes three views: a *runnable* behaviour (`run`), a
//! *static-analysis* view ([`code::AppCode`]: the syscalls present in
//! source and binary, including dead and error-path code), and metadata
//! (version/year/libc) used by the evolution experiments (Fig. 8).

pub mod apps;
pub mod code;
pub mod env;
pub mod fleet;
pub mod libc;
pub mod model;
pub mod program;
pub mod registry;
pub mod runtime;
pub mod workload;

pub use code::AppCode;
pub use env::Env;
pub use model::{AppKind, AppModel, AppSpec, Exit};
pub use program::ProgramGraph;
pub use workload::Workload;
