//! Kerla-style compatibility-table ingestion.
//!
//! Real OSes publish their syscall coverage as markdown tables (Kerla's
//! `Documentation/compatibility.md` is the exemplar: `No | Name |
//! Implementation Status | Release | Notes` rows with statuses `Full`,
//! `Partially`, `Unimplemented`). This module parses that format into an
//! [`OsSpec`] — including per-flag holes for `Partially` rows — and
//! renders specs back out, byte-stably, so vendored upstream snapshots
//! can be diffed against the curated [`crate::os::db`] entries.
//!
//! A `Partially` row says *some* sub-operations are missing without
//! saying which. Ingestion is therefore pessimistic: every modeled
//! sub-feature of the syscall ([`SubFeature::for_sysno`]) is seeded as a
//! hole, and a curated overrides file (`supported fcntl:F_SETFL` /
//! `hole ioctl:0x5423` lines) refines the seed with what upstream
//! actually supports.

use crate::os::OsSpec;
use loupe_syscalls::{SubFeature, SubFeatureKey, Sysno, SysnoSet};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The canonical column headers of a compatibility table.
const HEADERS: [&str; 5] = ["No", "Name", "Implementation Status", "Release", "Notes"];

/// Implementation status of one syscall row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SupportStatus {
    /// Fully implemented.
    Full,
    /// Implemented with sub-feature holes.
    Partially,
    /// Not implemented at all.
    Unimplemented,
}

impl SupportStatus {
    /// Canonical rendering (what Kerla's table uses).
    pub fn as_str(self) -> &'static str {
        match self {
            SupportStatus::Full => "Full",
            SupportStatus::Partially => "Partially",
            SupportStatus::Unimplemented => "Unimplemented",
        }
    }

    fn parse(s: &str) -> Option<SupportStatus> {
        match s {
            "Full" => Some(SupportStatus::Full),
            "Partially" | "Partial" => Some(SupportStatus::Partially),
            "Unimplemented" => Some(SupportStatus::Unimplemented),
            _ => None,
        }
    }
}

/// One row of a compatibility table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompatRow {
    /// The syscall (row `No` must match its number).
    pub sysno: Sysno,
    /// Implementation status.
    pub status: SupportStatus,
    /// Release the syscall landed in (stored without the backticks the
    /// markdown wraps it in; empty for unimplemented rows).
    pub release: String,
    /// Free-form notes column.
    pub notes: String,
}

/// A parsed compatibility table: preamble text kept verbatim plus the
/// syscall rows.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompatTable {
    /// Everything before the table header, verbatim (so vendored
    /// upstream files round-trip byte-stably).
    pub preamble: String,
    /// Table rows, in file order.
    pub rows: Vec<CompatRow>,
}

/// A parse error, attributed to a 1-based line of the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestError {
    /// 1-based line number in the source file.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl IngestError {
    fn new(line: usize, message: impl Into<String>) -> IngestError {
        IngestError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for IngestError {}

/// Splits a markdown table line into trimmed cells. Returns `None` when
/// the line is not a table row.
fn cells(line: &str) -> Option<Vec<&str>> {
    let line = line.trim_end();
    let inner = line.strip_prefix('|')?;
    let inner = inner.strip_suffix('|').unwrap_or(inner);
    Some(inner.split('|').map(str::trim).collect())
}

fn is_separator(parts: &[&str]) -> bool {
    !parts.is_empty()
        && parts.iter().all(|p| {
            let p = p.trim_start_matches(':').trim_end_matches(':');
            !p.is_empty() && p.bytes().all(|b| b == b'-')
        })
}

impl CompatTable {
    /// Parses a kerla-style markdown file. Tolerates arbitrary preamble
    /// text before the table and both prettified (aligned) and compact
    /// column spacing; rejects malformed rows, duplicate syscalls,
    /// unknown names and number/name mismatches with the offending line
    /// number.
    pub fn parse(text: &str) -> Result<CompatTable, IngestError> {
        let lines: Vec<&str> = text.lines().collect();
        let header_at = lines
            .iter()
            .position(|l| cells(l).is_some_and(|c| c == HEADERS))
            .ok_or_else(|| {
                IngestError::new(
                    lines.len().max(1),
                    format!("no `| {} |` header row found", HEADERS.join(" | ")),
                )
            })?;
        let mut preamble = lines[..header_at].join("\n");
        if header_at > 0 {
            preamble.push('\n');
        }
        let sep = lines
            .get(header_at + 1)
            .and_then(|l| cells(l))
            .filter(|c| is_separator(c))
            .ok_or_else(|| {
                IngestError::new(header_at + 2, "expected `|---|...` separator after header")
            })?;
        if sep.len() != HEADERS.len() {
            return Err(IngestError::new(
                header_at + 2,
                format!("separator has {} columns, expected {}", sep.len(), 5),
            ));
        }

        let mut rows = Vec::new();
        let mut seen = SysnoSet::new();
        for (idx, line) in lines.iter().enumerate().skip(header_at + 2) {
            let lineno = idx + 1;
            if line.trim().is_empty() {
                // The table ends at the first blank line; anything after
                // it must be blank too (the table is the final section).
                for (rest_idx, rest) in lines.iter().enumerate().skip(idx) {
                    if !rest.trim().is_empty() {
                        return Err(IngestError::new(
                            rest_idx + 1,
                            "unexpected content after the syscall table",
                        ));
                    }
                }
                break;
            }
            let parts = cells(line)
                .ok_or_else(|| IngestError::new(lineno, "expected a `| ... |` table row"))?;
            if parts.len() != HEADERS.len() {
                return Err(IngestError::new(
                    lineno,
                    format!("row has {} columns, expected {}", parts.len(), 5),
                ));
            }
            let no: u32 = parts[0].parse().map_err(|_| {
                IngestError::new(lineno, format!("`{}` is not a syscall number", parts[0]))
            })?;
            let sysno = Sysno::from_name(parts[1]).ok_or_else(|| {
                IngestError::new(lineno, format!("unknown system call `{}`", parts[1]))
            })?;
            if sysno.raw() != no {
                return Err(IngestError::new(
                    lineno,
                    format!("`{}` is syscall {}, not {}", parts[1], sysno.raw(), no),
                ));
            }
            if !seen.insert(sysno) {
                return Err(IngestError::new(
                    lineno,
                    format!("duplicate row for `{}`", parts[1]),
                ));
            }
            let status = SupportStatus::parse(parts[2]).ok_or_else(|| {
                IngestError::new(
                    lineno,
                    format!(
                        "unknown status `{}` (expected Full, Partially or Unimplemented)",
                        parts[2]
                    ),
                )
            })?;
            let release = parts[3].trim_matches('`').to_owned();
            rows.push(CompatRow {
                sysno,
                status,
                release,
                notes: parts[4].to_owned(),
            });
        }
        Ok(CompatTable { preamble, rows })
    }

    /// Renders the canonical markdown form: preamble verbatim, then the
    /// table with every column padded to its widest cell (kerla keeps
    /// its table prettified the same way). `parse(render(t)) == t`, and
    /// a file that is already canonical survives `render(parse(file))`
    /// byte-for-byte.
    pub fn render(&self) -> String {
        let rendered: Vec<[String; 5]> = self
            .rows
            .iter()
            .map(|r| {
                [
                    r.sysno.raw().to_string(),
                    r.sysno.name().to_owned(),
                    r.status.as_str().to_owned(),
                    if r.release.is_empty() {
                        String::new()
                    } else {
                        format!("`{}`", r.release)
                    },
                    r.notes.clone(),
                ]
            })
            .collect();
        let mut widths = [0usize; 5];
        for (i, h) in HEADERS.iter().enumerate() {
            widths[i] = h.len();
        }
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = self.preamble.clone();
        let line = |cells: [&str; 5]| {
            let mut l = String::from("|");
            for (i, c) in cells.iter().enumerate() {
                l.push(' ');
                l.push_str(c);
                l.push_str(&" ".repeat(widths[i] - c.len() + 1));
                l.push('|');
            }
            l.push('\n');
            l
        };
        out.push_str(&line([
            HEADERS[0], HEADERS[1], HEADERS[2], HEADERS[3], HEADERS[4],
        ]));
        let mut sep = String::from("|");
        for w in widths {
            sep.push_str(&"-".repeat(w + 2));
            sep.push('|');
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &rendered {
            out.push_str(&line([&row[0], &row[1], &row[2], &row[3], &row[4]]));
        }
        out
    }

    /// Converts the table (plus curated overrides) into an [`OsSpec`].
    ///
    /// `Full` and `Partially` rows join the supported set; each
    /// `Partially` row seeds per-flag holes pessimistically from every
    /// modeled sub-feature of the syscall, which the overrides then
    /// refine. Overrides that reference syscalls the table does not
    /// support are an error (they would silently do nothing).
    pub fn to_spec(
        &self,
        name: &str,
        version: &str,
        overrides: &[OverrideLine],
    ) -> Result<OsSpec, IngestError> {
        let mut supported = SysnoSet::new();
        let mut holes: BTreeMap<Sysno, BTreeSet<SubFeatureKey>> = BTreeMap::new();
        for row in &self.rows {
            match row.status {
                SupportStatus::Full => {
                    supported.insert(row.sysno);
                }
                SupportStatus::Partially => {
                    supported.insert(row.sysno);
                    holes.insert(
                        row.sysno,
                        SubFeature::for_sysno(row.sysno)
                            .into_iter()
                            .map(SubFeature::key)
                            .collect(),
                    );
                }
                SupportStatus::Unimplemented => {}
            }
        }
        for (i, ov) in overrides.iter().enumerate() {
            let key = ov.key();
            if !supported.contains(key.sysno()) {
                return Err(IngestError::new(
                    i + 1,
                    format!(
                        "override `{key}` targets `{}`, which the table does not support",
                        key.sysno().name()
                    ),
                ));
            }
            match ov {
                OverrideLine::Supported(k) => {
                    holes.entry(k.sysno()).or_default().remove(k);
                }
                OverrideLine::Hole(k) => {
                    holes.entry(k.sysno()).or_default().insert(*k);
                }
            }
        }
        let mut spec = OsSpec::new(name, version, supported);
        spec.partial = holes
            .into_iter()
            .filter(|(_, set)| !set.is_empty())
            .map(|(s, set)| (s, set.into_iter().collect()))
            .collect();
        Ok(spec)
    }

    /// The inverse of [`Self::to_spec`]: renders a spec as table rows
    /// (`Partially` wherever the spec has holes). Together with
    /// [`overrides_for_spec`] this makes `ingest ∘ render` the identity
    /// on specs — the round-trip property the conformance tests pin.
    pub fn from_spec(spec: &OsSpec, preamble: impl Into<String>) -> CompatTable {
        let mut rows: Vec<CompatRow> = spec
            .supported
            .iter()
            .map(|s| CompatRow {
                sysno: s,
                status: if spec.holes_for(s).is_empty() {
                    SupportStatus::Full
                } else {
                    SupportStatus::Partially
                },
                release: spec.version.clone(),
                notes: String::new(),
            })
            .collect();
        rows.sort_by_key(|r| r.sysno.raw());
        CompatTable {
            preamble: preamble.into(),
            rows,
        }
    }
}

/// One line of a curated overrides file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OverrideLine {
    /// `supported <key>`: upstream does implement this flag — remove it
    /// from the pessimistic seed.
    Supported(SubFeatureKey),
    /// `hole <key>`: upstream is missing this flag (possibly an
    /// unmodeled raw selector) — add it.
    Hole(SubFeatureKey),
}

impl OverrideLine {
    /// The sub-feature the override talks about.
    pub fn key(&self) -> SubFeatureKey {
        match self {
            OverrideLine::Supported(k) | OverrideLine::Hole(k) => *k,
        }
    }
}

/// Parses an overrides file: one `supported <key>` or `hole <key>`
/// directive per line, `#` comments and blank lines ignored. Keys use
/// the [`SubFeatureKey`] display syntax (`fcntl:F_SETFL`,
/// `ioctl:0x5423`).
pub fn parse_overrides(text: &str) -> Result<Vec<OverrideLine>, IngestError> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (directive, rest) = line
            .split_once(char::is_whitespace)
            .ok_or_else(|| IngestError::new(lineno, format!("`{line}` is missing a key")))?;
        let key = SubFeatureKey::parse(rest.trim()).ok_or_else(|| {
            IngestError::new(
                lineno,
                format!(
                    "`{}` is not a sub-feature key (syscall:SELECTOR)",
                    rest.trim()
                ),
            )
        })?;
        match directive {
            "supported" => out.push(OverrideLine::Supported(key)),
            "hole" => out.push(OverrideLine::Hole(key)),
            other => {
                return Err(IngestError::new(
                    lineno,
                    format!("unknown directive `{other}` (expected supported/hole)"),
                ));
            }
        }
    }
    Ok(out)
}

/// Renders the overrides that, applied to [`CompatTable::from_spec`]'s
/// pessimistic seed, reproduce exactly `spec.partial`: `supported`
/// lines for modeled flags the spec does *not* hole, `hole` lines for
/// holes outside the modeled table (raw selectors).
pub fn overrides_for_spec(spec: &OsSpec) -> String {
    let mut out = String::from("# Curated refinements over the seeded-pessimistic holes.\n");
    for (sysno, holes) in &spec.partial {
        for feature in SubFeature::for_sysno(*sysno) {
            if !holes.contains(&feature.key()) {
                out.push_str(&format!("supported {}\n", feature.key()));
            }
        }
        for hole in holes {
            if SubFeature::from_parts(hole.sysno(), hole.selector()).is_none() {
                out.push_str(&format!("hole {hole}\n"));
            }
        }
    }
    out
}

/// The vendored Kerla compatibility snapshot (commit `73a1873`) the
/// curated [`crate::os::db`] entry is built from.
pub const KERLA_COMPATIBILITY_MD: &str = include_str!("../data/kerla_compatibility.md");

/// Curated per-flag refinements for the Kerla snapshot.
pub const KERLA_OVERRIDES: &str = include_str!("../data/kerla_overrides.txt");

/// Builds the Kerla [`OsSpec`] from the vendored snapshot + overrides.
/// Panics only if the vendored data is corrupt (covered by tests).
pub fn kerla_spec() -> OsSpec {
    let table = CompatTable::parse(KERLA_COMPATIBILITY_MD).expect("vendored kerla table parses");
    let overrides = parse_overrides(KERLA_OVERRIDES).expect("vendored kerla overrides parse");
    table
        .to_spec("kerla", "73a1873", &overrides)
        .expect("vendored kerla overrides apply")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_table() -> String {
        "\
# Compatibility

Some preamble prose.

| No | Name | Implementation Status | Release | Notes |
|----|------|-----------------------|---------|-------|
| 0 | read | Full | `v0.0.1` | |
| 72 | fcntl | Partially | `v0.0.2` | locks missing |
| 61 | wait4 | Unimplemented | | |
"
        .to_owned()
    }

    #[test]
    fn parses_preamble_rows_and_statuses() {
        let t = CompatTable::parse(&small_table()).unwrap();
        assert!(t.preamble.contains("Some preamble prose."));
        assert_eq!(t.rows.len(), 3);
        assert_eq!(t.rows[0].sysno, Sysno::read);
        assert_eq!(t.rows[0].status, SupportStatus::Full);
        assert_eq!(t.rows[0].release, "v0.0.1");
        assert_eq!(t.rows[1].status, SupportStatus::Partially);
        assert_eq!(t.rows[1].notes, "locks missing");
        assert_eq!(t.rows[2].status, SupportStatus::Unimplemented);
        assert!(t.rows[2].release.is_empty());
    }

    #[test]
    fn parse_render_is_identity_on_tables() {
        let t = CompatTable::parse(&small_table()).unwrap();
        let back = CompatTable::parse(&t.render()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn render_is_byte_stable_on_canonical_input() {
        let canonical = CompatTable::parse(&small_table()).unwrap().render();
        let again = CompatTable::parse(&canonical).unwrap().render();
        assert_eq!(canonical, again);
    }

    #[test]
    fn compact_and_prettified_spacing_parse_identically() {
        let compact =
            "|No|Name|Implementation Status|Release|Notes|\n|-|-|-|-|-|\n|0|read|Full|`v1`||\n";
        let pretty =
            "| No  | Name   | Implementation Status | Release | Notes |\n|-----|--------|----|----|----|\n| 0   | read   | Full       | `v1`    |       |\n";
        assert_eq!(
            CompatTable::parse(compact).unwrap().rows,
            CompatTable::parse(pretty).unwrap().rows
        );
    }

    #[test]
    fn malformed_rows_fail_with_line_numbers() {
        // Wrong column count.
        let e = CompatTable::parse(
            &small_table().replace("| 0 | read | Full | `v0.0.1` | |", "| 0 | read | Full |"),
        )
        .unwrap_err();
        assert_eq!(e.line, 7);
        assert!(e.message.contains("columns"), "{e}");

        // Unknown syscall name.
        let e = CompatTable::parse(&small_table().replace("read", "frobnicate")).unwrap_err();
        assert_eq!(e.line, 7);
        assert!(e.message.contains("frobnicate"), "{e}");

        // Number/name mismatch.
        let e = CompatTable::parse(&small_table().replace("| 0 | read", "| 1 | read")).unwrap_err();
        assert_eq!(e.line, 7);
        assert!(e.message.contains("syscall 0"), "{e}");

        // Unknown status.
        let e = CompatTable::parse(&small_table().replace("Full", "Sometimes")).unwrap_err();
        assert_eq!(e.line, 7);
        assert!(e.message.contains("Sometimes"), "{e}");

        // Duplicate row.
        let dup = small_table() + "| 0 | read | Full | `v0.0.1` | |\n";
        let e = CompatTable::parse(&dup).unwrap_err();
        assert_eq!(e.line, 10);
        assert!(e.message.contains("duplicate"), "{e}");

        // Garbage number.
        let e = CompatTable::parse(&small_table().replace("| 0 |", "| zero |")).unwrap_err();
        assert_eq!(e.line, 7);
        assert!(e.message.contains("not a syscall number"), "{e}");
    }

    #[test]
    fn missing_header_and_trailing_content_are_errors() {
        let e = CompatTable::parse("no table here\n").unwrap_err();
        assert!(e.message.contains("header"), "{e}");

        let trailing = small_table() + "\nA trailing section.\n";
        let e = CompatTable::parse(&trailing).unwrap_err();
        assert!(e.message.contains("after the syscall table"), "{e}");
    }

    #[test]
    fn to_spec_seeds_pessimistic_holes_and_applies_overrides() {
        let t = CompatTable::parse(&small_table()).unwrap();
        let spec = t.to_spec("toy", "1", &[]).unwrap();
        assert!(spec.supported.contains(Sysno::read));
        assert!(spec.supported.contains(Sysno::fcntl));
        assert!(!spec.supported.contains(Sysno::wait4));
        // Every modeled fcntl command is seeded as a hole.
        let fcntl_holes = spec.holes_for(Sysno::fcntl);
        assert_eq!(fcntl_holes.len(), SubFeature::for_sysno(Sysno::fcntl).len());

        let overrides =
            parse_overrides("supported fcntl:F_SETFL\nsupported fcntl:F_GETFL\nhole fcntl:0x400\n")
                .unwrap();
        let spec = t.to_spec("toy", "1", &overrides).unwrap();
        let holes = spec.holes_for(Sysno::fcntl);
        assert!(!holes.contains(&SubFeature::F_SETFL.key()));
        assert!(!holes.contains(&SubFeature::F_GETFL.key()));
        assert!(holes.contains(&SubFeature::F_SETLK.key()));
        assert!(holes.contains(&SubFeatureKey::new(Sysno::fcntl, 0x400)));
    }

    #[test]
    fn overrides_on_unsupported_syscalls_are_rejected() {
        let t = CompatTable::parse(&small_table()).unwrap();
        let overrides = parse_overrides("supported futex:FUTEX_WAIT\n").unwrap();
        let e = t.to_spec("toy", "1", &overrides).unwrap_err();
        assert!(e.message.contains("futex"), "{e}");
    }

    #[test]
    fn override_parse_errors_carry_line_numbers() {
        let e =
            parse_overrides("# ok\nsupported fcntl:F_SETFL\nbogus fcntl:F_SETFL\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("bogus"), "{e}");

        let e = parse_overrides("supported nonsense\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("sub-feature key"), "{e}");

        let e = parse_overrides("supported\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("missing a key"), "{e}");
    }

    #[test]
    fn spec_roundtrips_through_markdown_and_overrides() {
        let spec = kerla_spec();
        let table = CompatTable::from_spec(&spec, "# Test\n\n");
        let overrides = parse_overrides(&overrides_for_spec(&spec)).unwrap();
        let back = table
            .to_spec(&spec.name, &spec.version, &overrides)
            .unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn vendored_kerla_table_is_canonical() {
        let t = CompatTable::parse(KERLA_COMPATIBILITY_MD).unwrap();
        assert_eq!(
            t.render(),
            KERLA_COMPATIBILITY_MD,
            "vendored kerla table must render byte-stably \
             (run the regen helper below after editing it)"
        );
    }

    #[test]
    fn vendored_kerla_spec_shape() {
        let spec = kerla_spec();
        assert_eq!(spec.supported.len(), 58);
        // The four vectored syscalls kerla implements partially.
        let partial: Vec<Sysno> = spec.partial.iter().map(|(s, _)| *s).collect();
        assert_eq!(
            partial,
            vec![Sysno::mmap, Sysno::ioctl, Sysno::fcntl, Sysno::arch_prctl]
        );
        // Overrides keep TLS setup and anonymous mmap working: musl
        // binaries boot on kerla.
        assert!(!spec
            .holes_for(Sysno::arch_prctl)
            .contains(&SubFeature::ARCH_SET_FS.key()));
        assert!(!spec
            .holes_for(Sysno::mmap)
            .contains(&SubFeature::MAP_ANONYMOUS.key()));
        assert!(spec
            .holes_for(Sysno::mmap)
            .contains(&SubFeature::MAP_FILE_BACKED.key()));
        assert!(spec
            .holes_for(Sysno::fcntl)
            .contains(&SubFeature::F_SETLK.key()));
    }

    /// Regenerates the vendored data files. Run with
    /// `LOUPE_REGEN_DATA=1 cargo test -p loupe-plan regen_vendored -- --ignored`
    /// after changing the popularity prefix or the hole curation.
    #[test]
    #[ignore = "writes vendored data files; run explicitly with LOUPE_REGEN_DATA=1"]
    fn regen_vendored_kerla_table() {
        if std::env::var("LOUPE_REGEN_DATA").is_err() {
            return;
        }
        // Build from the popularity prefix directly (not from the
        // curated spec, which is itself derived from these files).
        let mut spec = OsSpec::new("kerla", "73a1873", crate::os::prefix(58));
        spec.partial = [Sysno::mmap, Sysno::ioctl, Sysno::fcntl, Sysno::arch_prctl]
            .into_iter()
            .map(|s| {
                (
                    s,
                    SubFeature::for_sysno(s)
                        .into_iter()
                        .map(SubFeature::key)
                        .collect(),
                )
            })
            .collect();
        let preamble = "\
# Compatibility with Linux kernel

Vendored snapshot of Kerla's `Documentation/compatibility.md` (commit
`73a1873`), trimmed to the system-call table `loupe ingest` consumes.
Status legend, as upstream documents it:

- **Full:** implemented.
- **Partially:** implemented, but some operations (flags, commands) are
  not yet supported.
- **Unimplemented:** not yet implemented.

## System Calls

";
        let mut table = CompatTable::from_spec(&spec, preamble);
        for row in &mut table.rows {
            row.release = "v0.0.1".into();
            if row.status == SupportStatus::Partially {
                row.notes = "see kerla_overrides.txt".into();
            }
        }
        // A few Unimplemented rows for realism: popular syscalls just
        // past kerla's 58-call layer.
        for s in [
            Sysno::wait4,
            Sysno::kill,
            Sysno::futex,
            Sysno::sched_yield,
            Sysno::getrandom,
            Sysno::epoll_create,
            Sysno::openat,
            Sysno::set_tid_address,
        ] {
            table.rows.push(CompatRow {
                sysno: s,
                status: SupportStatus::Unimplemented,
                release: String::new(),
                notes: String::new(),
            });
        }
        table.rows.sort_by_key(|r| r.sysno.raw());
        let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/data");
        std::fs::write(format!("{dir}/kerla_compatibility.md"), table.render()).unwrap();
    }
}
