//! Support-plan generation and engineering-effort analysis (§4, §5.1).
//!
//! Given (1) the system calls an OS under development already supports and
//! (2) Loupe measurements for a set of target applications, this crate
//! computes:
//!
//! * **incremental support plans** (Table 1): the order in which to
//!   implement / stub / fake missing syscalls so that applications unlock
//!   as early as possible;
//! * **engineering-effort curves** (Fig. 2): apps-supported vs
//!   syscalls-implemented under a Loupe-optimised plan, an "organic"
//!   historical order, and naive trace-everything dynamic analysis;
//! * **API importance** (Fig. 3): the fraction of applications requiring
//!   each syscall, under naive and Loupe definitions of "required";
//! * **empirical plan validation** ([`validate`]): replaying a support
//!   plan step-by-step on a restricted kernel that emulates the target
//!   OS, proving each step really unlocks its application — and no
//!   earlier.

pub mod importance;
pub mod ingest;
pub mod matrix;
pub mod os;
pub mod plan;
pub mod requirement;
pub mod savings;
pub mod validate;

pub use importance::{api_importance, importance_fractions, ImportancePoint};
pub use ingest::{CompatRow, CompatTable, IngestError, OverrideLine, SupportStatus};
pub use matrix::{
    measure_cell, remediation_profile, vanilla_profile, MatrixCell, Tier, TierOutcome,
};
pub use os::OsSpec;
pub use plan::{PlanStep, SupportPlan};
pub use requirement::AppRequirement;
pub use savings::{curve_points, SavingsCurve, SavingsPoint};
pub use validate::{InitialVerdict, PlanValidation, PlanValidator, StepVerdict, ValidateError};
