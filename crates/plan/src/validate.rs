//! Empirical support-plan validation: replay a [`SupportPlan`] on a
//! restricted kernel and check that every step delivers what it claims.
//!
//! The paper's Table 1 plans are *predictions* derived from per-feature
//! measurements. This module closes the loop: for each step *k* it
//! builds the cumulative [`KernelProfile`] — everything implemented,
//! stubbed and faked up to and including step *k*, on top of what the
//! target OS already supports — and runs the unlocked application's
//! workload on a [`RestrictedKernel`](loupe_kernel::RestrictedKernel)
//! enforcing that profile:
//!
//! * the app must **pass** its test script at step *k* (the step really
//!   unlocks it) — the correctness gate, and
//! * is also checked at step *k−1*: failing there means the plan is
//!   *tight* (the step is listed exactly when needed); passing there is
//!   an *early unlock* — the planner over-estimated the app's cost
//!   because a "required" syscall sat behind a code path other stubbed
//!   features disabled. Early unlocks are reported, not fatal. Steps
//!   that add no observable kernel behaviour — a stub-only step, on a
//!   kernel where unimplemented already means `-ENOSYS` — have nothing
//!   to compare and are marked free.
//!
//! Applications supported before any work (step 0) are checked under
//! the bare OS surface plus the fake shims the planner assumes
//! providable for them.

use loupe_apps::model::AppOutcome;
use loupe_apps::{AppModel, Workload};
use loupe_core::exec::{run_app, ExecEnv};
use loupe_core::TestScript;
#[cfg(test)]
use loupe_syscalls::SysnoSet;
use serde::{Deserialize, Serialize};
use std::fmt;

use crate::matrix::vanilla_profile;
use crate::os::OsSpec;
use crate::plan::SupportPlan;
use crate::requirement::AppRequirement;

/// Verdict for one application supported before any plan work.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InitialVerdict {
    /// Application name.
    pub app: String,
    /// The app passed its test script on the bare OS surface (plus its
    /// assumed-providable fake shims).
    pub passes: bool,
}

/// Verdict for one plan step.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StepVerdict {
    /// 1-based step index (matches [`crate::PlanStep::index`]).
    pub index: usize,
    /// The application the step claims to unlock.
    pub app: String,
    /// The app passed its test script under the cumulative profile of
    /// this step — the unlock really happens.
    pub unlocked: bool,
    /// The app *failed* under the previous step's profile — the step is
    /// not listed later than needed. `None` when the step adds no
    /// observable kernel behaviour (nothing implemented or faked), so
    /// the two profiles answer identically.
    pub locked_before: Option<bool>,
}

impl StepVerdict {
    /// The step's unlock claim holds.
    pub fn holds(&self) -> bool {
        self.unlocked
    }

    /// The app already ran one step earlier: the planner over-estimated
    /// its cost. A "required" classification is measured with only that
    /// one feature interposed; on a kernel stubbing *many* features at
    /// once, the code path needing it may never run (a guarded path
    /// behind another stubbed call), so the app unlocks early. The plan
    /// still works — it is just not *tight* here.
    pub fn early(&self) -> bool {
        self.locked_before == Some(false)
    }
}

/// The outcome of replaying one plan on a restricted kernel.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanValidation {
    /// Target OS name.
    pub os: String,
    /// Workload the plan (and its measurements) were built for.
    pub workload: Workload,
    /// The validated plan, embedded so the verdicts stay interpretable
    /// without re-deriving it.
    pub plan: SupportPlan,
    /// Verdicts for the initially supported applications.
    pub initial: Vec<InitialVerdict>,
    /// Per-step verdicts, in plan order.
    pub steps: Vec<StepVerdict>,
}

impl PlanValidation {
    /// Every unlock claim held: initially supported apps run with zero
    /// work, and every step's app passes under that step's profile.
    pub fn unlocks_hold(&self) -> bool {
        self.initial.iter().all(|v| v.passes) && self.steps.iter().all(|v| v.unlocked)
    }

    /// No behaviour-adding step unlocks its app one step early. An
    /// efficiency property, not a correctness one: an early unlock
    /// means the planner scheduled more work for the app than this
    /// (deterministic) replay needed — see [`StepVerdict::early`].
    pub fn is_tight(&self) -> bool {
        self.steps.iter().all(|v| !v.early())
    }

    /// The plan's promises hold end to end: every listed unlock really
    /// happens. (Tightness is reported separately by [`Self::is_tight`].)
    pub fn is_valid(&self) -> bool {
        self.unlocks_hold()
    }

    /// Steps whose unlock claim does not hold, for diagnostics.
    pub fn failing_steps(&self) -> Vec<&StepVerdict> {
        self.steps.iter().filter(|v| !v.holds()).collect()
    }

    /// Steps that unlocked their app one step early (plan not tight).
    pub fn early_steps(&self) -> Vec<&StepVerdict> {
        self.steps.iter().filter(|v| v.early()).collect()
    }

    /// Renders the verdicts as an aligned text table (CLI output).
    pub fn to_table(&self) -> String {
        let tightness = match self.early_steps().len() {
            0 => String::new(),
            n => format!(" (not tight: {n} early unlocks)"),
        };
        let mut out = format!(
            "validation of {} plan ({} workload): {}{tightness}\n",
            self.os,
            self.workload.label(),
            if self.is_valid() { "VALID" } else { "INVALID" },
        );
        for v in &self.initial {
            out.push_str(&format!(
                "step 0    | {:<24} | {}\n",
                v.app,
                if v.passes {
                    "runs with zero work"
                } else {
                    "FAILS despite being listed as initially supported"
                }
            ));
        }
        for v in &self.steps {
            let before = match v.locked_before {
                None => "free step",
                Some(true) => "locked at k-1",
                Some(false) => "unlocked early (plan not tight here)",
            };
            out.push_str(&format!(
                "step {:<4} | {:<24} | {} | {}\n",
                v.index,
                v.app,
                if v.unlocked { "unlocks" } else { "STILL FAILS" },
                before
            ));
        }
        out
    }
}

/// Errors during plan validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// The plan references an application the resolver cannot produce a
    /// runnable model for.
    UnknownApp(String),
    /// The plan references an application with no stored requirement —
    /// the plan and the measurement set are out of sync.
    MissingRequirement(String),
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::UnknownApp(app) => {
                write!(f, "no runnable model for application `{app}`")
            }
            ValidateError::MissingRequirement(app) => {
                write!(f, "no measured requirement for application `{app}`")
            }
        }
    }
}

impl std::error::Error for ValidateError {}

/// Replays support plans on restricted kernels.
#[derive(Debug, Clone, Default)]
pub struct PlanValidator {
    script: TestScript,
}

impl PlanValidator {
    /// A validator using the default pass/fail policy.
    pub fn new() -> PlanValidator {
        PlanValidator::default()
    }

    /// A validator with an explicit test script.
    pub fn with_script(script: TestScript) -> PlanValidator {
        PlanValidator { script }
    }

    fn passes(&self, env: &ExecEnv, app: &dyn AppModel, workload: Workload) -> bool {
        let outcome: AppOutcome = run_app(env, app, workload);
        self.script.evaluate(&outcome, workload, None).success
    }

    /// Validates `plan` (generated for `reqs` on the OS whose supported
    /// set seeds the plan) by replaying every step under `workload`.
    /// `resolve` turns an application name into its runnable model —
    /// typically `loupe_apps::registry::find`.
    ///
    /// # Errors
    ///
    /// [`ValidateError::UnknownApp`] when an app named by the plan has
    /// no runnable model; [`ValidateError::MissingRequirement`] when an
    /// initially supported app has no entry in `reqs` (its fake-shim
    /// overlay cannot be derived).
    pub fn validate(
        &self,
        os: &OsSpec,
        plan: &SupportPlan,
        reqs: &[AppRequirement],
        workload: Workload,
        resolve: impl Fn(&str) -> Option<Box<dyn AppModel>>,
    ) -> Result<PlanValidation, ValidateError> {
        let find = |name: &str| -> Result<Box<dyn AppModel>, ValidateError> {
            resolve(name).ok_or_else(|| ValidateError::UnknownApp(name.to_owned()))
        };

        // Step 0: the bare OS surface — per-flag holes included. The
        // planner treats stub/fake layers for already-supported apps as
        // providable (§4.1), so each initially supported app gets
        // exactly the fake shims its own measurement demands — at both
        // granularities — and nothing from any later step.
        let mut initial = Vec::new();
        for name in &plan.initially_supported {
            let req = reqs
                .iter()
                .find(|r| &r.app == name)
                .ok_or_else(|| ValidateError::MissingRequirement(name.clone()))?;
            let app = find(name)?;
            let mut profile = vanilla_profile(os);
            profile.name = format!("{} @ step 0", plan.os);
            profile.faked = req.fake_only.difference(&os.supported);
            let holes = os.all_holes();
            profile.faked_flags = req
                .fake_only_flags
                .iter()
                .filter(|k| holes.contains(k))
                .copied()
                .collect();
            let env = ExecEnv::Restricted(profile);
            initial.push(InitialVerdict {
                app: name.clone(),
                passes: self.passes(&env, app.as_ref(), workload),
            });
        }

        // Steps 1..n: cumulative profiles. `previous` trails one step
        // behind `cumulative` for the tightness check.
        let mut cumulative = vanilla_profile(os);
        cumulative.name = plan.os.clone();
        let mut steps = Vec::new();
        for step in &plan.steps {
            let previous = cumulative.clone();
            cumulative.name = format!("{} @ step {}", plan.os, step.index);
            cumulative.implemented.extend(step.implement.iter());
            cumulative.stubbed.extend(step.stub.iter());
            cumulative.faked.extend(step.fake.iter());
            for key in &step.implement_flags {
                cumulative.plug_hole(*key);
            }
            cumulative
                .stubbed_flags
                .extend(step.stub_flags.iter().copied());
            cumulative
                .faked_flags
                .extend(step.fake_flags.iter().copied());

            let app = find(&step.unlocks)?;
            let unlocked = self.passes(
                &ExecEnv::Restricted(cumulative.clone()),
                app.as_ref(),
                workload,
            );
            // A stub-only (or empty) step changes nothing observable:
            // on a restricted kernel, unimplemented already means
            // `-ENOSYS`, and a stubbed flag hole rejects exactly like an
            // untouched one. Only implementing or faking — a syscall or
            // a flag — moves behaviour.
            let adds_behaviour = !step.implement.is_empty()
                || !step.fake.is_empty()
                || !step.implement_flags.is_empty()
                || !step.fake_flags.is_empty();
            let locked_before = adds_behaviour
                .then(|| !self.passes(&ExecEnv::Restricted(previous), app.as_ref(), workload));
            steps.push(StepVerdict {
                index: step.index,
                app: step.unlocks.clone(),
                unlocked,
                locked_before,
            });
        }

        Ok(PlanValidation {
            os: plan.os.clone(),
            workload,
            plan: plan.clone(),
            initial,
            steps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::os;
    use loupe_apps::registry;
    use loupe_core::{AnalysisConfig, Engine};
    use loupe_syscalls::Sysno;

    fn cloud_requirements(workload: Workload) -> Vec<AppRequirement> {
        let engine = Engine::new(AnalysisConfig::fast());
        registry::cloud_apps()
            .iter()
            .map(|app| {
                let report = engine.analyze(app.as_ref(), workload).unwrap();
                AppRequirement::from_report(&report)
            })
            .collect()
    }

    #[test]
    fn kerla_plan_validates_end_to_end() {
        let workload = Workload::HealthCheck;
        let reqs = cloud_requirements(workload);
        let spec = os::find("kerla").unwrap();
        let plan = SupportPlan::generate(&spec, &reqs);
        assert!(!plan.steps.is_empty(), "kerla needs work for cloud apps");
        let validation = PlanValidator::new()
            .validate(&spec, &plan, &reqs, workload, registry::find)
            .unwrap();
        assert!(
            validation.is_valid(),
            "every step must unlock its app:\n{}",
            validation.to_table()
        );
        assert!(
            validation.is_tight(),
            "no cloud app unlocks early on kerla:\n{}",
            validation.to_table()
        );
        // At least one behaviour-adding step exercised the tightness leg.
        assert!(
            validation
                .steps
                .iter()
                .any(|v| v.locked_before == Some(true)),
            "{:?}",
            validation.steps
        );
    }

    #[test]
    fn corrupted_plan_is_caught() {
        // Dropping a required syscall from the step that implements it
        // must flip that step's verdict: the app cannot run without it.
        let workload = Workload::HealthCheck;
        let reqs = cloud_requirements(workload);
        let spec = os::find("kerla").unwrap();
        let mut plan = SupportPlan::generate(&spec, &reqs);
        let (step_idx, dropped) = plan
            .steps
            .iter()
            .enumerate()
            .find_map(|(i, s)| s.implement.iter().next().map(|sysno| (i, sysno)))
            .expect("some step implements something");
        plan.steps[step_idx].implement.remove(dropped);
        let validation = PlanValidator::new()
            .validate(&spec, &plan, &reqs, workload, registry::find)
            .unwrap();
        assert!(
            !validation.steps[step_idx].unlocked,
            "dropping `{dropped}` must break step {}:\n{}",
            step_idx + 1,
            validation.to_table()
        );
        assert!(!validation.is_valid());
        assert!(!validation.failing_steps().is_empty());
    }

    #[test]
    fn full_linux_spec_agrees_with_supported_by() {
        // On an OS that implements everything, every app is initially
        // supported (supported_by == true) and every verdict passes.
        let workload = Workload::HealthCheck;
        let reqs = cloud_requirements(workload);
        let full: SysnoSet = Sysno::all().collect();
        let spec = crate::OsSpec::new("linux-full", "all", full);
        let plan = SupportPlan::generate(&spec, &reqs);
        assert!(plan.steps.is_empty());
        assert_eq!(plan.initially_supported.len(), reqs.len());
        for req in &reqs {
            assert!(req.supported_by(&spec.supported));
        }
        let validation = PlanValidator::new()
            .validate(&spec, &plan, &reqs, workload, registry::find)
            .unwrap();
        assert!(validation.is_valid(), "{}", validation.to_table());
        assert_eq!(validation.initial.len(), reqs.len());
    }

    #[test]
    fn unknown_app_is_an_error() {
        let spec = os::find("kerla").unwrap();
        let reqs = vec![AppRequirement {
            app: "ghost".into(),
            required: [Sysno::read].into_iter().collect(),
            stubbable: SysnoSet::new(),
            fake_only: SysnoSet::new(),
            traced: [Sysno::read].into_iter().collect(),
            ..AppRequirement::default()
        }];
        let plan = SupportPlan::generate(&spec, &reqs);
        let err = PlanValidator::new()
            .validate(&spec, &plan, &reqs, Workload::HealthCheck, |_| None)
            .unwrap_err();
        assert_eq!(err, ValidateError::UnknownApp("ghost".into()));
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn validation_serde_roundtrip() {
        let validation = PlanValidation {
            os: "kerla".into(),
            workload: Workload::Benchmark,
            plan: SupportPlan {
                os: "kerla".into(),
                initially_supported: vec!["hello".into()],
                steps: vec![],
            },
            initial: vec![InitialVerdict {
                app: "hello".into(),
                passes: true,
            }],
            steps: vec![StepVerdict {
                index: 1,
                app: "redis".into(),
                unlocked: true,
                locked_before: Some(true),
            }],
        };
        let json = serde_json::to_string(&validation).unwrap();
        let back: PlanValidation = serde_json::from_str(&json).unwrap();
        assert_eq!(validation, back);
        assert!(back.is_valid());
    }
}
