//! API importance (§5.1, Fig. 3): the probability that a syscall is
//! needed by at least one application — here computed per-syscall as the
//! fraction of applications whose set contains it, then ranked.

use loupe_syscalls::{Sysno, SysnoSet};
use serde::{Deserialize, Serialize};

/// One ranked point of an API-importance curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImportancePoint {
    /// Rank (1 = most important).
    pub rank: usize,
    /// The syscall.
    pub sysno: Sysno,
    /// Fraction of applications that include it (0..=1).
    pub importance: f64,
}

/// The shared importance core: for each syscall, the fraction of `sets`
/// that contain it, sorted descending by fraction (ascending syscall
/// number on ties). This is the *one* implementation of the metric —
/// the dynamic Fig. 3 curve and the static Tsai-style ranking
/// (`loupe_static::api_importance`) are both thin wrappers — and it
/// sorts with [`f64::total_cmp`], so it is total even on NaN (which a
/// fraction `c/total` with `total ≥ 1` cannot produce, but a partial
/// comparator would still panic on).
///
/// Accepts any iterator of borrowed sets (`&[SysnoSet]`, a `Vec` of
/// them, or a `.map(|r| &r.syscalls)` projection), so callers holding
/// sets inside report structs never clone them to rank them.
pub fn importance_fractions<'a, I>(sets: I) -> Vec<(Sysno, f64)>
where
    I: IntoIterator<Item = &'a SysnoSet>,
{
    use std::collections::BTreeMap;
    let mut counts: BTreeMap<Sysno, usize> = BTreeMap::new();
    let mut total_sets = 0usize;
    for set in sets {
        total_sets += 1;
        for s in set.iter() {
            *counts.entry(s).or_insert(0) += 1;
        }
    }
    let total = total_sets.max(1) as f64;
    let mut points: Vec<(Sysno, f64)> = counts
        .into_iter()
        .map(|(s, c)| (s, c as f64 / total))
        .collect();
    points.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    points
}

/// Computes the ranked importance curve for a family of per-app sets
/// (traced sets → the "naive dynamic" curve; required sets → the "Loupe"
/// curve).
pub fn api_importance(sets: &[SysnoSet]) -> Vec<ImportancePoint> {
    importance_fractions(sets)
        .into_iter()
        .enumerate()
        .map(|(i, (sysno, importance))| ImportancePoint {
            rank: i + 1,
            sysno,
            importance,
        })
        .collect()
}

/// Number of syscalls needed to cover 100% of applications (the curve's
/// support size: Fig. 3 reports 148 for Loupe vs 180 for naive).
pub fn total_distinct(sets: &[SysnoSet]) -> usize {
    let mut union = SysnoSet::new();
    for s in sets {
        union = union.union(s);
    }
    union.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(names: &[&str]) -> SysnoSet {
        names.iter().map(|n| Sysno::from_name(n).unwrap()).collect()
    }

    #[test]
    fn ranks_by_frequency() {
        let sets = vec![
            set(&["read", "write", "mmap"]),
            set(&["read", "write"]),
            set(&["read"]),
        ];
        let imp = api_importance(&sets);
        assert_eq!(imp[0].sysno, Sysno::read);
        assert!((imp[0].importance - 1.0).abs() < 1e-9);
        assert_eq!(imp[0].rank, 1);
        assert!((imp[1].importance - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(imp.last().unwrap().sysno, Sysno::mmap);
    }

    #[test]
    fn distinct_union() {
        let sets = vec![set(&["read", "write"]), set(&["write", "mmap"])];
        assert_eq!(total_distinct(&sets), 3);
    }

    #[test]
    fn empty_input() {
        assert!(api_importance(&[]).is_empty());
        assert_eq!(total_distinct(&[]), 0);
    }
}
