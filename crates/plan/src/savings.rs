//! Engineering-effort savings (§4.2, Fig. 2): apps supported as a
//! function of syscalls implemented, under three development strategies.

use loupe_syscalls::SysnoSet;
use serde::{Deserialize, Serialize};

use crate::os::OsSpec;
use crate::plan::SupportPlan;
use crate::requirement::AppRequirement;

/// One point of an effort curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SavingsPoint {
    /// Cumulative distinct syscalls implemented.
    pub syscalls_implemented: usize,
    /// Applications supported at that point.
    pub apps_supported: usize,
}

/// A labelled effort curve.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SavingsCurve {
    /// Strategy label ("loupe", "organic", "naive").
    pub strategy: String,
    /// Monotone points, one per application unlocked.
    pub points: Vec<SavingsPoint>,
}

impl SavingsCurve {
    /// Syscalls needed to support `target` applications (∞ → `None`).
    pub fn cost_to_support(&self, target: usize) -> Option<usize> {
        self.points
            .iter()
            .find(|p| p.apps_supported >= target)
            .map(|p| p.syscalls_implemented)
    }
}

/// Builds the effort curve for apps supported *in the given order*, where
/// each app's implementation cost is `cost_set(app)` (required-only for
/// stub/fake-aware strategies, full traced set for the naive one).
pub fn curve_points(
    label: &str,
    apps_in_order: &[&AppRequirement],
    cost_set: impl Fn(&AppRequirement) -> SysnoSet,
) -> SavingsCurve {
    let mut implemented = SysnoSet::new();
    let mut points = Vec::new();
    for (i, app) in apps_in_order.iter().enumerate() {
        implemented = implemented.union(&cost_set(app));
        points.push(SavingsPoint {
            syscalls_implemented: implemented.len(),
            apps_supported: i + 1,
        });
    }
    SavingsCurve {
        strategy: label.to_owned(),
        points,
    }
}

/// The "organic" strategy: apps in their historical (folder-creation)
/// order, implementing each app's required set (devs use stubs/fakes as
/// much as possible — the paper's OSv assumption).
pub fn organic_curve(apps_in_historical_order: &[AppRequirement]) -> SavingsCurve {
    let refs: Vec<&AppRequirement> = apps_in_historical_order.iter().collect();
    curve_points("organic", &refs, |a| a.required.clone())
}

/// The "naive dynamic" strategy: same historical order, but every traced
/// syscall is implemented (no stubbing/faking).
pub fn naive_curve(apps_in_historical_order: &[AppRequirement]) -> SavingsCurve {
    let refs: Vec<&AppRequirement> = apps_in_historical_order.iter().collect();
    curve_points("naive", &refs, |a| a.traced.clone())
}

/// The Loupe strategy: greedy cheapest-first ordering from an empty OS,
/// required sets only.
pub fn loupe_curve(apps: &[AppRequirement]) -> SavingsCurve {
    let empty = OsSpec::new("empty", "0", SysnoSet::new());
    let plan = SupportPlan::generate(&empty, apps);
    let by_name = |name: &str| apps.iter().find(|a| a.app == name).expect("planned app");
    let ordered: Vec<&AppRequirement> = plan.steps.iter().map(|s| by_name(&s.unlocks)).collect();
    curve_points("loupe", &ordered, |a| a.required.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use loupe_syscalls::Sysno;

    fn req(name: &str, required: &[&str], extra_traced: &[&str]) -> AppRequirement {
        let required: SysnoSet = required
            .iter()
            .map(|n| Sysno::from_name(n).unwrap())
            .collect();
        let stub: SysnoSet = extra_traced
            .iter()
            .map(|n| Sysno::from_name(n).unwrap())
            .collect();
        AppRequirement {
            app: name.into(),
            traced: required.union(&stub),
            required,
            stubbable: stub,
            fake_only: SysnoSet::new(),
            ..AppRequirement::default()
        }
    }

    fn sample() -> Vec<AppRequirement> {
        vec![
            req(
                "big",
                &["read", "write", "mmap", "futex", "clone"],
                &["sysinfo"],
            ),
            req("small", &["read"], &["uname", "ioctl"]),
            req("mid", &["read", "write"], &["madvise"]),
        ]
    }

    #[test]
    fn loupe_orders_small_first() {
        let apps = sample();
        let loupe = loupe_curve(&apps);
        assert_eq!(loupe.points[0].syscalls_implemented, 1, "small app first");
        assert_eq!(loupe.points.len(), 3);
    }

    #[test]
    fn naive_costs_dominate_organic() {
        let apps = sample();
        let organic = organic_curve(&apps);
        let naive = naive_curve(&apps);
        for (o, n) in organic.points.iter().zip(&naive.points) {
            assert!(n.syscalls_implemented >= o.syscalls_implemented);
        }
    }

    #[test]
    fn loupe_reaches_half_cheaper_than_bad_organic_order() {
        // Historical order puts the big app first: organic pays 5 syscalls
        // before any app works; Loupe pays 1.
        let apps = sample();
        let organic = organic_curve(&apps);
        let loupe = loupe_curve(&apps);
        assert!(loupe.cost_to_support(1).unwrap() < organic.cost_to_support(1).unwrap());
        assert_eq!(
            loupe.cost_to_support(3),
            organic.cost_to_support(3),
            "endpoints agree: same union of required sets"
        );
        assert_eq!(loupe.cost_to_support(4), None);
    }
}
