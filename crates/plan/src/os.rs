//! OS support descriptors: which syscalls an OS under development already
//! implements.
//!
//! The paper feeds Loupe "a simple text file with one line per supported
//! system call" (§4.1). [`OsSpec::from_csv`] parses that format, and
//! [`db()`] curates specs for the 11 OSes the paper generates plans for,
//! with support-set sizes matching Table 1 and §4.1 (Unikraft 174,
//! Fuchsia 152, Kerla 58, ...). Membership is derived from a popularity
//! prefix plus the per-OS gaps Table 1 documents.

use loupe_syscalls::{SubFeatureKey, Sysno, SysnoSet};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A syscall-support descriptor for one OS.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OsSpec {
    /// OS name.
    pub name: String,
    /// Version or commit the spec describes.
    pub version: String,
    /// Implemented system calls.
    pub supported: SysnoSet,
    /// Per-flag holes of partially implemented syscalls: for each
    /// entry, the syscall *is* in `supported` but the listed
    /// sub-features are not answered (§5.4 partial fidelity). Sorted by
    /// syscall; empty for specs stored before partial fidelity existed.
    #[serde(default)]
    pub partial: Vec<(Sysno, Vec<SubFeatureKey>)>,
}

impl OsSpec {
    /// Creates a spec from parts (no partial holes).
    pub fn new(name: impl Into<String>, version: impl Into<String>, supported: SysnoSet) -> OsSpec {
        OsSpec {
            name: name.into(),
            version: version.into(),
            supported,
            partial: Vec::new(),
        }
    }

    /// The sub-feature holes of one syscall (empty when fully
    /// implemented).
    pub fn holes_for(&self, sysno: Sysno) -> &[SubFeatureKey] {
        self.partial
            .iter()
            .find(|(s, _)| *s == sysno)
            .map(|(_, holes)| holes.as_slice())
            .unwrap_or(&[])
    }

    /// All sub-feature holes across the spec, sorted.
    pub fn all_holes(&self) -> Vec<SubFeatureKey> {
        let mut holes: Vec<SubFeatureKey> = self
            .partial
            .iter()
            .flat_map(|(_, h)| h.iter().copied())
            .collect();
        holes.sort();
        holes
    }

    /// Parses the paper's CSV format: one syscall name (or number) per
    /// line; blank lines and `#` comments ignored.
    ///
    /// # Errors
    ///
    /// Returns the offending line on unknown syscalls.
    pub fn from_csv(name: &str, version: &str, text: &str) -> Result<OsSpec, ParseOsSpecError> {
        let mut supported = SysnoSet::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let token = line.split(',').next().unwrap_or(line).trim();
            let sysno = token.parse::<Sysno>().map_err(|_| ParseOsSpecError {
                line: lineno + 1,
                token: token.to_owned(),
            })?;
            supported.insert(sysno);
        }
        Ok(OsSpec::new(name, version, supported))
    }

    /// Serialises back to the CSV format.
    pub fn to_csv(&self) -> String {
        let mut out = format!(
            "# {} {} — {} syscalls\n",
            self.name,
            self.version,
            self.supported.len()
        );
        for s in self.supported.iter() {
            out.push_str(s.name());
            out.push('\n');
        }
        out
    }
}

/// Error parsing an [`OsSpec`] CSV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseOsSpecError {
    /// 1-based line number.
    pub line: usize,
    /// The unrecognised token.
    pub token: String,
}

impl fmt::Display for ParseOsSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "line {}: unknown system call `{}`",
            self.line, self.token
        )
    }
}

impl std::error::Error for ParseOsSpecError {}

/// System calls in rough order of how early a compatibility layer needs
/// them (fundamental services first, modern/rare tail last). OS specs are
/// prefixes of this order, adjusted by the per-OS gaps below.
pub const POPULARITY: &[&str] = &[
    // Process bring-up and memory: nothing runs without these.
    "execve",
    "exit",
    "exit_group",
    "brk",
    "mmap",
    "munmap",
    "mprotect",
    "arch_prctl",
    "read",
    "write",
    "open",
    "close",
    "fstat",
    "stat",
    "lseek",
    "access",
    "getpid",
    "gettid",
    "getppid",
    "getuid",
    "geteuid",
    "getgid",
    "getegid",
    "rt_sigaction",
    "rt_sigprocmask",
    "rt_sigreturn",
    "ioctl",
    "fcntl",
    "dup",
    "dup2",
    "pipe",
    "select",
    "poll",
    "nanosleep",
    "gettimeofday",
    "clock_gettime",
    "time",
    "socket",
    "connect",
    "accept",
    "bind",
    "listen",
    "sendto",
    "recvfrom",
    "writev",
    "readv",
    "setsockopt",
    "getsockopt",
    "uname",
    "getcwd",
    "chdir",
    "mkdir",
    "unlink",
    "rename",
    "getrlimit",
    "setrlimit",
    "umask",
    "getdents64",
    "clone",
    "fork",
    // ~here ends the Kerla-class minimal layer (58).
    "wait4",
    "kill",
    "futex",
    "sched_yield",
    "getrandom",
    "lstat",
    "pread64",
    "pwrite64",
    "sendmsg",
    "recvmsg",
    "shutdown",
    "socketpair",
    "getsockname",
    "getpeername",
    "epoll_create",
    "epoll_ctl",
    "epoll_wait",
    "sendfile",
    // ~here ends a nolibc-class layer (~76).
    "set_tid_address",
    "set_robust_list",
    "sigaltstack",
    "madvise",
    "mremap",
    "getrusage",
    "sysinfo",
    "times",
    "getpriority",
    "setpriority",
    "sched_getaffinity",
    "sched_setaffinity",
    "setuid",
    "setgid",
    "setgroups",
    "setsid",
    "setpgid",
    "getpgrp",
    "getsid",
    "setreuid",
    "setregid",
    "getgroups",
    "chmod",
    "fchmod",
    "chown",
    "fchown",
    "ftruncate",
    "truncate",
    "fsync",
    "fdatasync",
    "flock",
    "statfs",
    "fstatfs",
    "symlink",
    "readlink",
    "link",
    "rmdir",
    "creat",
    "utime",
    "utimes",
    "alarm",
    "getitimer",
    "setitimer",
    "pause",
    "rt_sigsuspend",
    "rt_sigpending",
    "rt_sigtimedwait",
    "sigaltstack",
    "mincore",
    "mlock",
    "munlock",
    // ~HermiTux-class (~128).
    "openat",
    "mkdirat",
    "newfstatat",
    "unlinkat",
    "renameat",
    "faccessat",
    "readlinkat",
    "fchmodat",
    "fchownat",
    "linkat",
    "symlinkat",
    "pselect6",
    "ppoll",
    "accept4",
    "epoll_create1",
    "eventfd2",
    "dup3",
    "pipe2",
    "inotify_init1",
    "prlimit64",
    "utimensat",
    "epoll_pwait",
    "signalfd4",
    "eventfd",
    "timerfd_create",
    "timerfd_settime",
    "timerfd_gettime",
    "fallocate",
    "preadv",
    "pwritev",
    // ~Gramine/Fuchsia-class (~158).
    "clock_getres",
    "clock_nanosleep",
    "clock_settime",
    "settimeofday",
    "capget",
    "capset",
    "prctl",
    "tgkill",
    "tkill",
    "waitid",
    "vfork",
    "setresuid",
    "setresgid",
    "getresuid",
    "getresgid",
    "setfsuid",
    "setfsgid",
    "personality",
    "sync",
    "syncfs",
    "sync_file_range",
    "readahead",
    "fadvise64",
    "getdents",
    // ~Unikraft-class (~182).
    "splice",
    "tee",
    "vmsplice",
    "copy_file_range",
    "memfd_create",
    "getcpu",
    "sched_setscheduler",
    "sched_getscheduler",
    "sched_setparam",
    "sched_getparam",
    "sched_rr_get_interval",
    "sched_get_priority_max",
    "sched_get_priority_min",
    "mlockall",
    "munlockall",
    "msync",
    "mbind",
    "set_mempolicy",
    "get_mempolicy",
    "shmget",
    "shmat",
    "shmctl",
    "shmdt",
    "semget",
    "semop",
    "semctl",
    "msgget",
    "msgsnd",
    "msgrcv",
    "msgctl",
    "mq_open",
    "mq_unlink",
    "mq_timedsend",
    "mq_timedreceive",
    "mq_notify",
    "mq_getsetattr",
    "inotify_init",
    "inotify_add_watch",
    "inotify_rm_watch",
    "fanotify_init",
    "fanotify_mark",
    "name_to_handle_at",
    "open_by_handle_at",
    "setxattr",
    "getxattr",
    "listxattr",
    "removexattr",
    "fsetxattr",
    "fgetxattr",
    "flistxattr",
    "fremovexattr",
    "lsetxattr",
    "lgetxattr",
    "llistxattr",
    "lremovexattr",
    "statx",
    "membarrier",
    "rseq",
    "seccomp",
    "bpf",
    "perf_event_open",
    "userfaultfd",
    "process_vm_readv",
    "process_vm_writev",
    "kcmp",
    "sethostname",
    "setdomainname",
    "chroot",
    "pivot_root",
    "mount",
    "umount2",
    "swapon",
    "swapoff",
    "reboot",
    "syslog",
    "ptrace",
    "_sysctl",
    "ustat",
    "sysfs",
    "io_setup",
    "io_destroy",
    "io_submit",
    "io_getevents",
    "io_cancel",
    "restart_syscall",
    "modify_ldt",
    "iopl",
    "ioperm",
];

/// Parses the popularity table into sysnos (panics are impossible: the
/// table is covered by tests).
fn popularity_sysnos() -> Vec<Sysno> {
    let mut seen = SysnoSet::new();
    POPULARITY
        .iter()
        .filter_map(|n| Sysno::from_name(n))
        .filter(|s| seen.insert(*s))
        .collect()
}

/// The first `n` syscalls of the popularity order, as a set. Crate-public
/// so the vendored-data regeneration helper can rebuild the kerla table
/// from the same prefix the curated specs use.
pub(crate) fn prefix(n: usize) -> SysnoSet {
    popularity_sysnos().into_iter().take(n).collect()
}

fn spec(name: &str, version: &str, size: usize, remove: &[Sysno], add: &[Sysno]) -> OsSpec {
    let mut set = prefix(size);
    for &s in remove {
        set.remove(s);
    }
    for &s in add {
        set.insert(s);
    }
    OsSpec::new(name, version, set)
}

/// Adds curated partial-support holes to a spec: each entry is a
/// syscall the OS *does* list as implemented whose named sub-features
/// it nonetheless rejects (§5.4). Keys are the symbolic
/// [`SubFeatureKey`] spellings; panics on typos (covered by tests).
fn with_holes(mut spec: OsSpec, holes: &[(&str, &[&str])]) -> OsSpec {
    for (sysno_name, keys) in holes {
        let sysno = Sysno::from_name(sysno_name).expect("curated hole syscall");
        assert!(
            spec.supported.contains(sysno),
            "{}: curated holes only refine supported syscalls ({sysno_name})",
            spec.name
        );
        let parsed: Vec<SubFeatureKey> = keys
            .iter()
            .map(|k| SubFeatureKey::parse(&format!("{sysno_name}:{k}")).expect("curated hole key"))
            .collect();
        spec.partial.push((sysno, parsed));
    }
    spec.partial.sort_by_key(|(s, _)| s.raw());
    spec
}

/// Curated support specs for the 11 OSes of §4.1, sized per the paper.
pub fn db() -> Vec<OsSpec> {
    use Sysno as S;
    vec![
        // Unikraft commit 7d6707f: 174 syscalls, with the Table 1 gaps
        // (eventfd2 290, set_tid_address 218, timerfd_create 283,
        // mincore 27, epoll on, gettid missing).
        with_holes(
            spec(
                "unikraft",
                "7d6707f",
                178,
                &[
                    S::eventfd2,
                    S::set_tid_address,
                    S::timerfd_create,
                    S::mincore,
                ],
                &[],
            ),
            // POSIX record locks and capability toggling are unwired in
            // the unikernel's vfscore/process shims.
            &[("fcntl", &["F_SETLK"]), ("prctl", &["PR_SET_KEEPCAPS"])],
        ),
        // Fuchsia (starnix) commit 5d20758: 152 syscalls, Table 1 gaps:
        // dup2 33, rt_sigtimedwait 128, sysinfo 99, mincore 27, setuid 105,
        // sendfile 40, prlimit64 302, eventfd2 302?, epoll variants.
        with_holes(
            spec(
                "fuchsia",
                "5d20758",
                161,
                &[
                    S::dup2,
                    S::rt_sigtimedwait,
                    S::sysinfo,
                    S::mincore,
                    S::sendfile,
                    S::eventfd2,
                    S::prlimit64,
                    S::epoll_create1,
                    S::timerfd_create,
                ],
                &[],
            ),
            // starnix answers fcntl but file locks hit an unimplemented
            // path in its VFS translation.
            &[("fcntl", &["F_SETLK", "F_SETLKW"])],
        ),
        // Kerla commit 73a1873: 58 syscalls, ingested from the vendored
        // compatibility.md snapshot plus curated per-flag overrides
        // (mmap/ioctl/fcntl/arch_prctl are Partially implemented).
        crate::ingest::kerla_spec(),
        // OSv: a mature research libOS.
        with_holes(
            spec("osv", "v0.56", 132, &[], &[]),
            // Single-address-space libOS: advisory file locking is a
            // stub that errors out.
            &[("fcntl", &["F_SETLK"])],
        ),
        // HermiTux.
        spec("hermitux", "master", 100, &[], &[]),
        // gVisor: broad production coverage.
        with_holes(
            spec("gvisor", "release-2021", 211, &[], &[]),
            // Sentry-mediated gaps: POSIX record locks and the
            // keep-capabilities prctl are rejected inside otherwise
            // implemented syscalls.
            &[
                ("fcntl", &["F_SETLK", "F_SETLKW"]),
                ("prctl", &["PR_SET_KEEPCAPS"]),
            ],
        ),
        // Gramine.
        with_holes(
            spec("gramine", "v1.0", 150, &[], &[]),
            // Enclave file handling: byte-range locks and the
            // file-descriptor rlimit resize are unsupported inside SGX.
            &[
                ("fcntl", &["F_SETLK", "F_SETLKW"]),
                ("prlimit64", &["RLIMIT_NOFILE"]),
            ],
        ),
        // FreeBSD Linuxulator.
        with_holes(
            spec("linuxulator", "13.0", 186, &[], &[]),
            // Emulation-layer gaps: Linux-flavoured record locks and the
            // NOFILE prlimit are not translated to their FreeBSD
            // counterparts.
            &[
                ("fcntl", &["F_SETLK", "F_SETLKW"]),
                ("prlimit64", &["RLIMIT_NOFILE"]),
            ],
        ),
        // Browsix: Unix in the browser.
        spec("browsix", "master", 45, &[], &[]),
        // Zephyr POSIX layer.
        spec("zephyr", "v2.7", 55, &[], &[]),
        // Linux nolibc userspace.
        spec("nolibc", "5.15", 76, &[], &[]),
    ]
}

/// Looks up one of the curated specs by name.
pub fn find(name: &str) -> Option<OsSpec> {
    db().into_iter().find(|o| o.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn popularity_names_are_all_valid_and_unique_enough() {
        let parsed = popularity_sysnos();
        assert!(parsed.len() >= 190, "parsed {}", parsed.len());
        // Every name resolves (sigaltstack appears twice by design; the
        // dedup in popularity_sysnos handles it).
        for n in POPULARITY {
            assert!(Sysno::from_name(n).is_some(), "{n}");
        }
    }

    #[test]
    fn curated_sizes_match_the_paper() {
        let sizes: std::collections::BTreeMap<String, usize> = db()
            .into_iter()
            .map(|o| (o.name, o.supported.len()))
            .collect();
        assert_eq!(sizes["unikraft"], 174);
        assert_eq!(sizes["fuchsia"], 152);
        assert_eq!(sizes["kerla"], 58);
        assert!(sizes["gvisor"] > sizes["unikraft"]);
        assert!(sizes["browsix"] < sizes["kerla"]);
    }

    #[test]
    fn maturity_ordering_is_nested() {
        let kerla = find("kerla").unwrap();
        let unikraft = find("unikraft").unwrap();
        // The minimal layer is (nearly) contained in the mature one.
        let overlap = kerla.supported.intersection(&unikraft.supported);
        assert!(overlap.len() >= kerla.supported.len() - 4);
    }

    #[test]
    fn csv_roundtrip() {
        let spec = find("kerla").unwrap();
        let csv = spec.to_csv();
        let back = OsSpec::from_csv("kerla", "73a1873", &csv).unwrap();
        assert_eq!(spec.supported, back.supported);
    }

    #[test]
    fn csv_rejects_unknown_syscalls() {
        let err = OsSpec::from_csv("x", "1", "read\nbogus_call\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("bogus_call"));
    }

    #[test]
    fn csv_accepts_numbers_and_comments() {
        let spec = OsSpec::from_csv("x", "1", "# header\n0\nwrite\n\n").unwrap();
        assert_eq!(spec.supported.len(), 2);
    }
}
