//! Incremental support-plan generation (§4.1, Table 1).
//!
//! Greedy strategy: at every step, unlock the application whose remaining
//! *required* set is cheapest to implement (ties: fewer stubs/fakes, then
//! name). Work done for one application counts towards all later ones,
//! which is what makes ">80% of steps require implementing only 1–3
//! system calls".

use loupe_syscalls::{SubFeatureKey, SysnoSet};
use serde::{Deserialize, Serialize};

use crate::os::OsSpec;
use crate::requirement::AppRequirement;

/// One step of a support plan: what to implement/stub/fake, and which
/// application it unlocks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanStep {
    /// 1-based step index.
    pub index: usize,
    /// Syscalls to implement for real.
    pub implement: SysnoSet,
    /// Syscalls to stub (`-ENOSYS`).
    pub stub: SysnoSet,
    /// Syscalls to fake (success without work).
    pub fake: SysnoSet,
    /// Sub-feature holes to implement for real (flags of already-
    /// implemented syscalls the next app *requires*, §5.4). Empty for
    /// plans stored before partial fidelity existed.
    #[serde(default)]
    pub implement_flags: Vec<SubFeatureKey>,
    /// Holes to leave rejecting, now as a recorded decision (the app
    /// tolerates the rejection — behaviourally free).
    #[serde(default)]
    pub stub_flags: Vec<SubFeatureKey>,
    /// Holes to answer with a fake success (rejection measured
    /// insufficient, fake sufficient).
    #[serde(default)]
    pub fake_flags: Vec<SubFeatureKey>,
    /// The application this step unlocks.
    pub unlocks: String,
}

/// A complete incremental plan for one OS and a set of target apps.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SupportPlan {
    /// Target OS.
    pub os: String,
    /// Applications already supported before any work (step 0).
    pub initially_supported: Vec<String>,
    /// The ordered steps.
    pub steps: Vec<PlanStep>,
}

/// How many of `keys` are open holes not yet covered by `done`.
fn count_new(keys: &[SubFeatureKey], holes: &[SubFeatureKey], done: &[SubFeatureKey]) -> usize {
    keys.iter()
        .filter(|k| holes.contains(k) && !done.contains(k))
        .count()
}

impl SupportPlan {
    /// Generates the plan. The OS's per-flag holes are scheduled like
    /// missing syscalls, one level finer: a hole an app *requires* is
    /// implemented in that app's step; holes on tolerated flags are
    /// recorded as stub/fake decisions (no implementation work).
    pub fn generate(os: &OsSpec, apps: &[AppRequirement]) -> SupportPlan {
        let mut implemented = os.supported.clone();
        let mut stubbed = SysnoSet::new();
        let mut faked = SysnoSet::new();
        let mut holes = os.all_holes();
        let mut stubbed_flags: Vec<SubFeatureKey> = Vec::new();
        let mut faked_flags: Vec<SubFeatureKey> = Vec::new();

        let mut remaining: Vec<&AppRequirement> = Vec::new();
        let mut initially_supported = Vec::new();
        for app in apps {
            if app.supported_by_surface(&implemented, &holes) {
                initially_supported.push(app.app.clone());
            } else {
                remaining.push(app);
            }
        }

        let mut steps = Vec::new();
        while !remaining.is_empty() {
            // Cheapest app: fewest missing required syscalls *and*
            // required flag holes, then fewest missing stubs/fakes
            // (again at both granularities), then name.
            let (pos, _) = remaining
                .iter()
                .enumerate()
                .min_by_key(|&(_, app)| {
                    let miss_req = app.missing_required(&implemented).len()
                        + app.missing_required_flags(&holes).len();
                    let miss_stub = app
                        .stubbable
                        .difference(&implemented)
                        .difference(&stubbed)
                        .len()
                        + count_new(&app.stubbable_flags, &holes, &stubbed_flags);
                    let miss_fake = app
                        .fake_only
                        .difference(&implemented)
                        .difference(&faked)
                        .len()
                        + count_new(&app.fake_only_flags, &holes, &faked_flags);
                    (miss_req, miss_stub + miss_fake, app.app.as_str())
                })
                .expect("remaining non-empty");
            let app = remaining.remove(pos);

            let implement = app.missing_required(&implemented);
            let stub = app
                .stubbable
                .difference(&implemented)
                .difference(&stubbed)
                .difference(&implement);
            let fake = app
                .fake_only
                .difference(&implemented)
                .difference(&faked)
                .difference(&implement);
            let implement_flags = app.missing_required_flags(&holes);
            let stub_flags: Vec<SubFeatureKey> = app
                .stubbable_flags
                .iter()
                .filter(|k| holes.contains(k) && !stubbed_flags.contains(k))
                .copied()
                .collect();
            let fake_flags: Vec<SubFeatureKey> = app
                .fake_only_flags
                .iter()
                .filter(|k| holes.contains(k) && !faked_flags.contains(k))
                .copied()
                .collect();

            implemented.extend(implement.iter());
            stubbed.extend(stub.iter());
            faked.extend(fake.iter());
            holes.retain(|k| !implement_flags.contains(k));
            stubbed_flags.extend(stub_flags.iter().copied());
            faked_flags.extend(fake_flags.iter().copied());

            steps.push(PlanStep {
                index: steps.len() + 1,
                implement,
                stub,
                fake,
                implement_flags,
                stub_flags,
                fake_flags,
                unlocks: app.app.clone(),
            });
        }

        SupportPlan {
            os: os.name.clone(),
            initially_supported,
            steps,
        }
    }

    /// Total syscalls implemented across all steps (whole syscalls;
    /// flag holes plugged ride on `total_implemented_flags`).
    pub fn total_implemented(&self) -> usize {
        self.steps.iter().map(|s| s.implement.len()).sum()
    }

    /// Total sub-feature holes implemented across all steps.
    pub fn total_implemented_flags(&self) -> usize {
        self.steps.iter().map(|s| s.implement_flags.len()).sum()
    }

    /// Fraction of steps whose implementation work — syscalls plus flag
    /// holes plugged — is at most `k` items (the paper's ">80% of steps
    /// implement 1–3 syscalls" observation).
    pub fn small_step_fraction(&self, k: usize) -> f64 {
        if self.steps.is_empty() {
            return 1.0;
        }
        let small = self
            .steps
            .iter()
            .filter(|s| s.implement.len() + s.implement_flags.len() <= k)
            .count();
        small as f64 / self.steps.len() as f64
    }

    /// Renders the plan as a Table 1-style text table.
    pub fn to_table(&self) -> String {
        let mut out = format!(
            "{} (supports {} apps initially)\nStep | Implement | Stub | Fake | Support for...\n",
            self.os,
            self.initially_supported.len()
        );
        out.push_str(&format!(
            "0    | -         | -    | -    | ({} apps)\n",
            self.initially_supported.len()
        ));
        for step in &self.steps {
            // Syscalls and flag holes render in the same column: the
            // step's work items, whatever their granularity.
            let fmt = |set: &SysnoSet, flags: &[SubFeatureKey]| {
                let items: Vec<String> = set
                    .iter()
                    .map(|s| s.name().to_owned())
                    .chain(flags.iter().map(|k| k.to_string()))
                    .collect();
                if items.is_empty() {
                    "-".to_owned()
                } else if items.len() > 6 {
                    format!("({} items)", items.len())
                } else {
                    items.join(", ")
                }
            };
            out.push_str(&format!(
                "{:<4} | {} | {} | {} | + {}\n",
                step.index,
                fmt(&step.implement, &step.implement_flags),
                fmt(&step.stub, &step.stub_flags),
                fmt(&step.fake, &step.fake_flags),
                step.unlocks
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loupe_syscalls::Sysno;

    fn req(name: &str, required: &[Sysno], stub: &[Sysno]) -> AppRequirement {
        AppRequirement {
            app: name.into(),
            required: required.iter().copied().collect(),
            stubbable: stub.iter().copied().collect(),
            fake_only: SysnoSet::new(),
            traced: required.iter().chain(stub).copied().collect(),
            ..AppRequirement::default()
        }
    }

    #[test]
    fn greedy_orders_cheapest_first() {
        let os = OsSpec::new(
            "toy",
            "1",
            [Sysno::read, Sysno::write].into_iter().collect(),
        );
        let apps = vec![
            req(
                "expensive",
                &[Sysno::read, Sysno::mmap, Sysno::futex, Sysno::clone],
                &[],
            ),
            req("cheap", &[Sysno::read, Sysno::write, Sysno::openat], &[]),
            req("free", &[Sysno::read], &[]),
        ];
        let plan = SupportPlan::generate(&os, &apps);
        assert_eq!(plan.initially_supported, vec!["free"]);
        assert_eq!(plan.steps[0].unlocks, "cheap");
        assert_eq!(plan.steps[0].implement.len(), 1);
        assert_eq!(plan.steps[1].unlocks, "expensive");
        assert_eq!(plan.total_implemented(), 4);
    }

    #[test]
    fn work_is_shared_across_steps() {
        let os = OsSpec::new("toy", "1", SysnoSet::new());
        let apps = vec![
            req("a", &[Sysno::read], &[]),
            req("b", &[Sysno::read, Sysno::write], &[]),
            req("c", &[Sysno::read, Sysno::write, Sysno::mmap], &[]),
        ];
        let plan = SupportPlan::generate(&os, &apps);
        // Each step implements exactly one new syscall.
        assert!(plan.steps.iter().all(|s| s.implement.len() == 1));
        assert_eq!(plan.total_implemented(), 3);
    }

    #[test]
    fn stubs_are_listed_once() {
        let os = OsSpec::new("toy", "1", [Sysno::read].into_iter().collect());
        let apps = vec![
            req("a", &[Sysno::read], &[Sysno::sysinfo]),
            req("b", &[Sysno::write], &[Sysno::sysinfo]),
        ];
        let plan = SupportPlan::generate(&os, &apps);
        let total_stubs: usize = plan.steps.iter().map(|s| s.stub.len()).sum();
        assert_eq!(total_stubs, 1, "sysinfo stubbed once, reused after");
    }

    #[test]
    fn required_flag_holes_are_scheduled_once_and_plugged() {
        use loupe_syscalls::SubFeature;
        let setfl = SubFeature::F_SETFL.key();
        let setfd = SubFeature::F_SETFD.key();
        let mut os = OsSpec::new(
            "toy",
            "1",
            [Sysno::read, Sysno::fcntl].into_iter().collect(),
        );
        os.partial = vec![(Sysno::fcntl, vec![setfd, setfl])];
        let mut a = req("a", &[Sysno::read, Sysno::fcntl], &[]);
        a.required_flags = vec![setfl];
        a.stubbable_flags = vec![setfd];
        let mut b = req("b", &[Sysno::read, Sysno::fcntl], &[]);
        b.required_flags = vec![setfl];
        let plan = SupportPlan::generate(&os, &[a, b]);
        assert!(
            plan.initially_supported.is_empty(),
            "a required hole blocks initial support even though the syscall is implemented"
        );
        // b is cheaper (no flag stubs to record) and goes first, plugging
        // the hole; a then needs no implementation work at all.
        assert_eq!(plan.steps[0].unlocks, "b");
        assert_eq!(plan.steps[0].implement_flags, vec![setfl]);
        assert!(plan.steps[0].implement.is_empty());
        assert_eq!(plan.steps[1].unlocks, "a");
        assert!(
            plan.steps[1].implement_flags.is_empty(),
            "the plugged hole is not re-scheduled"
        );
        assert_eq!(plan.steps[1].stub_flags, vec![setfd]);
        assert_eq!(plan.total_implemented(), 0);
        assert_eq!(plan.total_implemented_flags(), 1);
        let table = plan.to_table();
        assert!(table.contains("fcntl:F_SETFL"), "{table}");
    }

    #[test]
    fn table_rendering_mentions_every_step() {
        let os = OsSpec::new("toy", "1", SysnoSet::new());
        let apps = vec![req("a", &[Sysno::read], &[])];
        let plan = SupportPlan::generate(&os, &apps);
        let table = plan.to_table();
        assert!(table.contains("+ a"));
        assert!(table.contains("Step"));
        assert!(
            table.contains("read") && !table.contains(" 0 | "),
            "syscalls render by name, not raw number: {table}"
        );
    }
}
