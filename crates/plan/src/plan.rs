//! Incremental support-plan generation (§4.1, Table 1).
//!
//! Greedy strategy: at every step, unlock the application whose remaining
//! *required* set is cheapest to implement (ties: fewer stubs/fakes, then
//! name). Work done for one application counts towards all later ones,
//! which is what makes ">80% of steps require implementing only 1–3
//! system calls".

use loupe_syscalls::SysnoSet;
use serde::{Deserialize, Serialize};

use crate::os::OsSpec;
use crate::requirement::AppRequirement;

/// One step of a support plan: what to implement/stub/fake, and which
/// application it unlocks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanStep {
    /// 1-based step index.
    pub index: usize,
    /// Syscalls to implement for real.
    pub implement: SysnoSet,
    /// Syscalls to stub (`-ENOSYS`).
    pub stub: SysnoSet,
    /// Syscalls to fake (success without work).
    pub fake: SysnoSet,
    /// The application this step unlocks.
    pub unlocks: String,
}

/// A complete incremental plan for one OS and a set of target apps.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SupportPlan {
    /// Target OS.
    pub os: String,
    /// Applications already supported before any work (step 0).
    pub initially_supported: Vec<String>,
    /// The ordered steps.
    pub steps: Vec<PlanStep>,
}

impl SupportPlan {
    /// Generates the plan.
    pub fn generate(os: &OsSpec, apps: &[AppRequirement]) -> SupportPlan {
        let mut implemented = os.supported.clone();
        let mut stubbed = SysnoSet::new();
        let mut faked = SysnoSet::new();

        let mut remaining: Vec<&AppRequirement> = Vec::new();
        let mut initially_supported = Vec::new();
        for app in apps {
            if app.supported_by(&implemented) {
                initially_supported.push(app.app.clone());
            } else {
                remaining.push(app);
            }
        }

        let mut steps = Vec::new();
        while !remaining.is_empty() {
            // Cheapest app: fewest missing required syscalls, then fewest
            // missing stubs/fakes, then name.
            let (pos, _) = remaining
                .iter()
                .enumerate()
                .min_by_key(|&(_, app)| {
                    let miss_req = app.missing_required(&implemented).len();
                    let miss_stub = app
                        .stubbable
                        .difference(&implemented)
                        .difference(&stubbed)
                        .len();
                    let miss_fake = app
                        .fake_only
                        .difference(&implemented)
                        .difference(&faked)
                        .len();
                    (miss_req, miss_stub + miss_fake, app.app.as_str())
                })
                .expect("remaining non-empty");
            let app = remaining.remove(pos);

            let implement = app.missing_required(&implemented);
            let stub = app
                .stubbable
                .difference(&implemented)
                .difference(&stubbed)
                .difference(&implement);
            let fake = app
                .fake_only
                .difference(&implemented)
                .difference(&faked)
                .difference(&implement);

            implemented.extend(implement.iter());
            stubbed.extend(stub.iter());
            faked.extend(fake.iter());

            steps.push(PlanStep {
                index: steps.len() + 1,
                implement,
                stub,
                fake,
                unlocks: app.app.clone(),
            });
        }

        SupportPlan {
            os: os.name.clone(),
            initially_supported,
            steps,
        }
    }

    /// Total syscalls implemented across all steps.
    pub fn total_implemented(&self) -> usize {
        self.steps.iter().map(|s| s.implement.len()).sum()
    }

    /// Fraction of steps that implement at most `k` syscalls (the paper's
    /// ">80% of steps implement 1–3 syscalls" observation).
    pub fn small_step_fraction(&self, k: usize) -> f64 {
        if self.steps.is_empty() {
            return 1.0;
        }
        let small = self.steps.iter().filter(|s| s.implement.len() <= k).count();
        small as f64 / self.steps.len() as f64
    }

    /// Renders the plan as a Table 1-style text table.
    pub fn to_table(&self) -> String {
        let mut out = format!(
            "{} (supports {} apps initially)\nStep | Implement | Stub | Fake | Support for...\n",
            self.os,
            self.initially_supported.len()
        );
        out.push_str(&format!(
            "0    | -         | -    | -    | ({} apps)\n",
            self.initially_supported.len()
        ));
        for step in &self.steps {
            let fmt_set = |set: &SysnoSet| {
                if set.is_empty() {
                    "-".to_owned()
                } else if set.len() > 6 {
                    format!("({} syscalls)", set.len())
                } else {
                    set.iter()
                        .map(|s| s.name().to_owned())
                        .collect::<Vec<_>>()
                        .join(", ")
                }
            };
            out.push_str(&format!(
                "{:<4} | {} | {} | {} | + {}\n",
                step.index,
                fmt_set(&step.implement),
                fmt_set(&step.stub),
                fmt_set(&step.fake),
                step.unlocks
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loupe_syscalls::Sysno;

    fn req(name: &str, required: &[Sysno], stub: &[Sysno]) -> AppRequirement {
        AppRequirement {
            app: name.into(),
            required: required.iter().copied().collect(),
            stubbable: stub.iter().copied().collect(),
            fake_only: SysnoSet::new(),
            traced: required.iter().chain(stub).copied().collect(),
        }
    }

    #[test]
    fn greedy_orders_cheapest_first() {
        let os = OsSpec::new(
            "toy",
            "1",
            [Sysno::read, Sysno::write].into_iter().collect(),
        );
        let apps = vec![
            req(
                "expensive",
                &[Sysno::read, Sysno::mmap, Sysno::futex, Sysno::clone],
                &[],
            ),
            req("cheap", &[Sysno::read, Sysno::write, Sysno::openat], &[]),
            req("free", &[Sysno::read], &[]),
        ];
        let plan = SupportPlan::generate(&os, &apps);
        assert_eq!(plan.initially_supported, vec!["free"]);
        assert_eq!(plan.steps[0].unlocks, "cheap");
        assert_eq!(plan.steps[0].implement.len(), 1);
        assert_eq!(plan.steps[1].unlocks, "expensive");
        assert_eq!(plan.total_implemented(), 4);
    }

    #[test]
    fn work_is_shared_across_steps() {
        let os = OsSpec::new("toy", "1", SysnoSet::new());
        let apps = vec![
            req("a", &[Sysno::read], &[]),
            req("b", &[Sysno::read, Sysno::write], &[]),
            req("c", &[Sysno::read, Sysno::write, Sysno::mmap], &[]),
        ];
        let plan = SupportPlan::generate(&os, &apps);
        // Each step implements exactly one new syscall.
        assert!(plan.steps.iter().all(|s| s.implement.len() == 1));
        assert_eq!(plan.total_implemented(), 3);
    }

    #[test]
    fn stubs_are_listed_once() {
        let os = OsSpec::new("toy", "1", [Sysno::read].into_iter().collect());
        let apps = vec![
            req("a", &[Sysno::read], &[Sysno::sysinfo]),
            req("b", &[Sysno::write], &[Sysno::sysinfo]),
        ];
        let plan = SupportPlan::generate(&os, &apps);
        let total_stubs: usize = plan.steps.iter().map(|s| s.stub.len()).sum();
        assert_eq!(total_stubs, 1, "sysinfo stubbed once, reused after");
    }

    #[test]
    fn table_rendering_mentions_every_step() {
        let os = OsSpec::new("toy", "1", SysnoSet::new());
        let apps = vec![req("a", &[Sysno::read], &[])];
        let plan = SupportPlan::generate(&os, &apps);
        let table = plan.to_table();
        assert!(table.contains("+ a"));
        assert!(table.contains("Step"));
        assert!(
            table.contains("read") && !table.contains(" 0 | "),
            "syscalls render by name, not raw number: {table}"
        );
    }
}
