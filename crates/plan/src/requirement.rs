//! Distilled per-application requirements, derived from engine reports.

use loupe_core::AppReport;
use loupe_syscalls::{SubFeatureKey, SysnoSet};
use serde::{Deserialize, Serialize};

/// What one application needs from a compatibility layer, for one
/// workload: the planner's unit of work.
///
/// Requirements exist at two granularities. The syscall-level sets
/// (`required` / `stubbable` / `fake_only`) mirror the paper's binary
/// view; the `*_flags` vectors refine it to [`SubFeatureKey`]
/// granularity for vectored syscalls (§5.4), so a profile that
/// implements `fcntl` but not `F_SETFL` is held to the flag, not the
/// syscall. The flag vectors are sorted and deduplicated, and default
/// to empty when deserialising requirements stored before partial
/// fidelity existed.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppRequirement {
    /// Application name.
    pub app: String,
    /// Syscalls that must be implemented.
    pub required: SysnoSet,
    /// Traced syscalls that pass when stubbed (cheapest to provide).
    pub stubbable: SysnoSet,
    /// Traced syscalls that need faking (stub fails, fake passes).
    pub fake_only: SysnoSet,
    /// Everything the workload traced.
    pub traced: SysnoSet,
    /// Sub-features that must be answered by a real implementation
    /// (their stub *and* fake probes both failed the workload).
    #[serde(default)]
    pub required_flags: Vec<SubFeatureKey>,
    /// Sub-features the workload tolerates failing (stub probe passed).
    #[serde(default)]
    pub stubbable_flags: Vec<SubFeatureKey>,
    /// Sub-features that need a fake success (stub failed, fake passed).
    #[serde(default)]
    pub fake_only_flags: Vec<SubFeatureKey>,
}

impl AppRequirement {
    /// Distils a requirement from an engine report. The required set is
    /// [`AppReport::plan_required`]: the required classes *plus* the
    /// fallback syscalls the confirmed combined policy exercised — on a
    /// kernel that stubs/fakes the avoidable set, those fallback paths
    /// are the ones that run, so an OS following the plan must implement
    /// them too. Flag-granular classes come straight from the report's
    /// sub-feature probes.
    pub fn from_report(report: &AppReport) -> AppRequirement {
        let required = report.plan_required();
        let stubbable = report.stubbable();
        let fake_only = report.fakeable().difference(&stubbable);
        let mut required_flags = Vec::new();
        let mut stubbable_flags = Vec::new();
        let mut fake_only_flags = Vec::new();
        for (key, class) in &report.sub_features {
            if class.stub_ok {
                stubbable_flags.push(*key);
            } else if class.fake_ok {
                fake_only_flags.push(*key);
            } else {
                required_flags.push(*key);
            }
        }
        for v in [
            &mut required_flags,
            &mut stubbable_flags,
            &mut fake_only_flags,
        ] {
            v.sort();
            v.dedup();
        }
        AppRequirement {
            app: report.app.clone(),
            required,
            stubbable,
            fake_only,
            traced: report.traced().union(&report.fallbacks),
            required_flags,
            stubbable_flags,
            fake_only_flags,
        }
    }

    /// Syscalls still missing before this app runs on an OS that
    /// implements `implemented`.
    pub fn missing_required(&self, implemented: &SysnoSet) -> SysnoSet {
        self.required.difference(implemented)
    }

    /// Required sub-features of this app that sit in `holes` — the
    /// flag-granular counterpart of [`Self::missing_required`]. Sorted.
    pub fn missing_required_flags(&self, holes: &[SubFeatureKey]) -> Vec<SubFeatureKey> {
        self.required_flags
            .iter()
            .filter(|k| holes.contains(k))
            .copied()
            .collect()
    }

    /// Whether the app is supported by `implemented` (stub/fake layers are
    /// assumed providable for the avoidable remainder). Flag-blind: see
    /// [`Self::supported_by_surface`] for the partial-fidelity check.
    pub fn supported_by(&self, implemented: &SysnoSet) -> bool {
        self.required.is_subset(implemented)
    }

    /// Whether the app is supported by an OS surface with per-flag
    /// `holes`: every required syscall implemented *and* no required
    /// sub-feature falls into a hole.
    pub fn supported_by_surface(&self, implemented: &SysnoSet, holes: &[SubFeatureKey]) -> bool {
        self.supported_by(implemented) && self.missing_required_flags(holes).is_empty()
    }
}

impl From<&AppReport> for AppRequirement {
    fn from(report: &AppReport) -> Self {
        AppRequirement::from_report(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loupe_syscalls::{SubFeature, Sysno};

    fn req(required: &[Sysno], stub: &[Sysno]) -> AppRequirement {
        AppRequirement {
            app: "t".into(),
            required: required.iter().copied().collect(),
            stubbable: stub.iter().copied().collect(),
            fake_only: SysnoSet::new(),
            traced: required.iter().chain(stub).copied().collect(),
            ..AppRequirement::default()
        }
    }

    #[test]
    fn support_check() {
        let r = req(&[Sysno::read, Sysno::write], &[Sysno::sysinfo]);
        let os: SysnoSet = [Sysno::read].into_iter().collect();
        assert!(!r.supported_by(&os));
        assert_eq!(r.missing_required(&os).len(), 1);
        let os: SysnoSet = [Sysno::read, Sysno::write].into_iter().collect();
        assert!(
            r.supported_by(&os),
            "stubbable syscalls do not block support"
        );
    }

    #[test]
    fn flag_holes_block_support_only_when_required() {
        let setfl = SubFeature::F_SETFL.key();
        let setfd = SubFeature::F_SETFD.key();
        let mut r = req(&[Sysno::fcntl], &[]);
        r.required_flags = vec![setfl];
        r.stubbable_flags = vec![setfd];
        let os: SysnoSet = [Sysno::fcntl].into_iter().collect();
        assert!(r.supported_by_surface(&os, &[]));
        assert!(
            r.supported_by_surface(&os, &[setfd]),
            "a hole on a tolerated flag does not block"
        );
        assert!(!r.supported_by_surface(&os, &[setfl]));
        assert_eq!(r.missing_required_flags(&[setfl, setfd]), vec![setfl]);
    }

    #[test]
    fn requirements_stored_before_flags_deserialise() {
        let legacy = r#"{"app":"t","required":[0],"stubbable":[],"fake_only":[],"traced":[0]}"#;
        let back: AppRequirement = serde_json::from_str(legacy).unwrap();
        assert!(back.required_flags.is_empty());
        assert!(back.stubbable_flags.is_empty() && back.fake_only_flags.is_empty());
    }
}
