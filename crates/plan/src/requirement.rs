//! Distilled per-application requirements, derived from engine reports.

use loupe_core::AppReport;
use loupe_syscalls::SysnoSet;
use serde::{Deserialize, Serialize};

/// What one application needs from a compatibility layer, for one
/// workload: the planner's unit of work.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppRequirement {
    /// Application name.
    pub app: String,
    /// Syscalls that must be implemented.
    pub required: SysnoSet,
    /// Traced syscalls that pass when stubbed (cheapest to provide).
    pub stubbable: SysnoSet,
    /// Traced syscalls that need faking (stub fails, fake passes).
    pub fake_only: SysnoSet,
    /// Everything the workload traced.
    pub traced: SysnoSet,
}

impl AppRequirement {
    /// Distils a requirement from an engine report. The required set is
    /// [`AppReport::plan_required`]: the required classes *plus* the
    /// fallback syscalls the confirmed combined policy exercised — on a
    /// kernel that stubs/fakes the avoidable set, those fallback paths
    /// are the ones that run, so an OS following the plan must implement
    /// them too.
    pub fn from_report(report: &AppReport) -> AppRequirement {
        let required = report.plan_required();
        let stubbable = report.stubbable();
        let fake_only = report.fakeable().difference(&stubbable);
        AppRequirement {
            app: report.app.clone(),
            required,
            stubbable,
            fake_only,
            traced: report.traced().union(&report.fallbacks),
        }
    }

    /// Syscalls still missing before this app runs on an OS that
    /// implements `implemented`.
    pub fn missing_required(&self, implemented: &SysnoSet) -> SysnoSet {
        self.required.difference(implemented)
    }

    /// Whether the app is supported by `implemented` (stub/fake layers are
    /// assumed providable for the avoidable remainder).
    pub fn supported_by(&self, implemented: &SysnoSet) -> bool {
        self.required.is_subset(implemented)
    }
}

impl From<&AppReport> for AppRequirement {
    fn from(report: &AppReport) -> Self {
        AppRequirement::from_report(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loupe_syscalls::Sysno;

    fn req(required: &[Sysno], stub: &[Sysno]) -> AppRequirement {
        AppRequirement {
            app: "t".into(),
            required: required.iter().copied().collect(),
            stubbable: stub.iter().copied().collect(),
            fake_only: SysnoSet::new(),
            traced: required.iter().chain(stub).copied().collect(),
        }
    }

    #[test]
    fn support_check() {
        let r = req(&[Sysno::read, Sysno::write], &[Sysno::sysinfo]);
        let os: SysnoSet = [Sysno::read].into_iter().collect();
        assert!(!r.supported_by(&os));
        assert_eq!(r.missing_required(&os).len(), 1);
        let os: SysnoSet = [Sysno::read, Sysno::write].into_iter().collect();
        assert!(
            r.supported_by(&os),
            "stubbable syscalls do not block support"
        );
    }
}
