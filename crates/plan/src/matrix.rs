//! The fleet × OS compatibility-matrix cell: one application, one
//! workload, one curated OS, measured *empirically* under remediation
//! tiers (§5 at production scale).
//!
//! `plan --os X` answers the paper's headline question analytically:
//! plans are derived from full-Linux measurements. This module closes
//! the loop per application by **executing** the question on a
//! [`RestrictedKernel`](loupe_kernel::RestrictedKernel):
//!
//! * **vanilla** — the app's workload runs on exactly the syscall
//!   surface the OS implements today ([`vanilla_profile`]); everything
//!   else answers `-ENOSYS`. Passing means "works out of the box".
//! * **planned** — the OS additionally applies the cheap remediation
//!   its support plan prescribes for this app: the measured stubbable
//!   classes stay `-ENOSYS` (deliberately now), the fake-only classes
//!   get fake shims ([`remediation_profile`]). No new syscalls are
//!   *implemented* — this is the "stub/fake work is enough" tier. An
//!   app that already passes vanilla needs no remediation, so its
//!   planned verdict is its vanilla verdict; the planned pass rate is
//!   therefore ≥ the vanilla rate per OS **by construction** (and a
//!   property test proves the aggregation preserves that).
//! * **full Linux** — the reference: the app's stored baseline already
//!   proved the workload passes on the full kernel. An app that fails
//!   even there can never be credited to a restricted tier.
//!
//! Each tier records the restricted kernel's boundary observations —
//! rejection/fake-hit counters and the *first rejected syscall* — so a
//! failing cell names its cause, and the analytical gap
//! ([`MatrixCell::missing_required`]) rides along for cross-checking.

use loupe_apps::{AppModel, Workload};
use loupe_core::exec::{run_app_observed, ExecEnv};
use loupe_core::TestScript;
use loupe_kernel::{KernelObservations, KernelProfile};
use loupe_syscalls::{SubFeatureKey, Sysno, SysnoSet};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

use crate::os::OsSpec;
use crate::requirement::AppRequirement;

/// A remediation tier of the compatibility matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Tier {
    /// Only the OS's implemented syscalls; everything else `-ENOSYS`.
    Vanilla,
    /// Vanilla plus the support plan's stub/fake guidance for the app.
    Planned,
}

impl Tier {
    /// Both tiers, in measurement order.
    pub const ALL: [Tier; 2] = [Tier::Vanilla, Tier::Planned];

    /// Short label used in CLI flags and report columns.
    pub fn label(self) -> &'static str {
        match self {
            Tier::Vanilla => "vanilla",
            Tier::Planned => "planned",
        }
    }

    /// Parses a CLI label.
    pub fn from_label(label: &str) -> Option<Tier> {
        match label {
            "vanilla" => Some(Tier::Vanilla),
            "planned" => Some(Tier::Planned),
            _ => None,
        }
    }
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The measured outcome of one tier of one matrix cell.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TierOutcome {
    /// The workload passed its test script under this tier's kernel.
    pub pass: bool,
    /// Per-syscall `-ENOSYS` rejections at the profile boundary.
    pub rejections: BTreeMap<Sysno, u64>,
    /// Per-syscall fake-overlay hits.
    pub fake_hits: BTreeMap<Sysno, u64>,
    /// The first rejected syscall — the failure cause to read first.
    pub first_rejection: Option<Sysno>,
    /// Per-sub-feature rejections: invocations whose decoded selector
    /// hit a hole of an otherwise-forwarded syscall (§5.4). Empty for
    /// cells stored before partial fidelity existed.
    #[serde(default)]
    pub flag_rejections: Vec<(SubFeatureKey, u64)>,
    /// Per-sub-feature fake-overlay hits.
    #[serde(default)]
    pub flag_fake_hits: Vec<(SubFeatureKey, u64)>,
    /// The first sub-feature rejected at the boundary — when the failure
    /// cause is a flag of an implemented syscall, this names it (and
    /// `first_rejection` may be `None`: the syscall itself was fine).
    #[serde(default)]
    pub first_rejected_flag: Option<SubFeatureKey>,
}

impl TierOutcome {
    /// Bundles a pass/fail verdict with the kernel's observations.
    pub fn new(pass: bool, observations: Option<KernelObservations>) -> TierOutcome {
        let obs = observations.unwrap_or_default();
        TierOutcome {
            pass,
            rejections: obs.rejections,
            fake_hits: obs.fake_hits,
            first_rejection: obs.first_rejection,
            flag_rejections: obs.flag_rejections,
            flag_fake_hits: obs.flag_fake_hits,
            first_rejected_flag: obs.first_rejected_flag,
        }
    }

    /// The failure cause to display: the first rejected *flag* when the
    /// boundary saw one before (or instead of) a whole-syscall
    /// rejection, else the first rejected syscall. A flag rejection is
    /// the more precise attribution — "`fcntl:F_SETFL`", not "`fcntl`".
    pub fn first_cause(&self) -> Option<String> {
        self.first_rejected_flag
            .map(|k| k.to_string())
            .or_else(|| self.first_rejection.map(|s| s.name().to_owned()))
    }
}

/// One cell of the fleet × OS compatibility matrix: the empirical
/// verdicts for `(os, app, workload)` under every measured tier.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatrixCell {
    /// Target OS (a curated [`OsSpec`] name).
    pub os: String,
    /// Application name.
    pub app: String,
    /// Workload measured.
    pub workload: Workload,
    /// The full-Linux reference: the stored baseline measurement passed.
    /// A cell with `linux_pass == false` never credits a restricted
    /// tier — broken-on-Linux software says nothing about the OS.
    pub linux_pass: bool,
    /// Required syscalls (plan-required, incl. fallbacks) the OS does
    /// not implement — the *analytical* failure cause next to the
    /// empirical one.
    pub missing_required: SysnoSet,
    /// Required sub-features that fall into the OS's per-flag holes —
    /// the flag-granular analytical gap. Non-empty exactly when the OS
    /// implements a syscall the app needs but not the *operation* the
    /// app needs it for.
    #[serde(default)]
    pub missing_required_flags: Vec<SubFeatureKey>,
    /// The vanilla-tier verdict, when that tier was measured.
    pub vanilla: Option<TierOutcome>,
    /// The planned-tier verdict, when that tier was measured.
    pub planned: Option<TierOutcome>,
}

impl MatrixCell {
    /// Whether the tier passed (`false` when unmeasured).
    pub fn passes(&self, tier: Tier) -> bool {
        let outcome = match tier {
            Tier::Vanilla => &self.vanilla,
            Tier::Planned => &self.planned,
        };
        outcome.as_ref().is_some_and(|t| t.pass)
    }

    /// The best-known planned-tier verdict: the measured planned outcome
    /// when present, otherwise the vanilla outcome as a **lower bound**
    /// (applying the plan never removes behaviour, so an app passing
    /// vanilla passes planned; an unmeasured planned tier of a
    /// vanilla-failing app stays "not passing" until measured). This is
    /// what aggregation reports, so a `--tier vanilla` sweep can never
    /// make the "with plan" rate dip below "out of the box".
    pub fn planned_at_least(&self) -> bool {
        match &self.planned {
            Some(t) => t.pass,
            None => self.passes(Tier::Vanilla),
        }
    }

    /// The structural invariants every stored cell honours: a restricted
    /// tier never passes where full Linux fails, and the planned tier
    /// never regresses below vanilla.
    pub fn invariants_hold(&self) -> bool {
        let tiers_ok =
            self.linux_pass || (!self.passes(Tier::Vanilla) && !self.passes(Tier::Planned));
        let monotone = !self.passes(Tier::Vanilla) || self.planned_at_least();
        tiers_ok && monotone
    }
}

/// The vanilla-tier kernel profile for an OS: exactly its implemented
/// syscalls — with the spec's per-flag holes carried over — and nothing
/// stubbed or faked on purpose.
pub fn vanilla_profile(os: &OsSpec) -> KernelProfile {
    let mut profile = KernelProfile::new(os.name.clone(), os.supported.clone());
    for (sysno, holes) in &os.partial {
        profile.set_partial(*sysno, holes.clone());
    }
    profile
}

/// The planned-tier kernel profile for one app on an OS: the support
/// plan's stub/fake guidance translated into the kernel's overlay sets.
/// Measured stubbable classes the OS lacks are stubbed (answering
/// `-ENOSYS` deliberately — behaviourally identical to vanilla, but now
/// a recorded decision), fake-only classes get fake shims. Nothing new
/// is implemented: that is precisely what makes this tier *cheap*.
/// At flag granularity the same logic applies to the OS's holes: holes
/// on measured-stubbable flags are recorded as deliberate stubs (a hole
/// already answers a rejection, so behaviour is unchanged — the plan
/// merely signs off on it), holes on fake-only flags get fake shims.
/// Holes on *required* flags stay open: no cheap remediation fixes
/// those, and the planned tier is allowed to fail on them.
pub fn remediation_profile(os: &OsSpec, req: &AppRequirement) -> KernelProfile {
    let mut profile = KernelProfile::new(
        format!("{}+plan[{}]", os.name, req.app),
        os.supported.clone(),
    );
    profile.stubbed = req.stubbable.difference(&os.supported);
    profile.faked = req.fake_only.difference(&os.supported);
    for (sysno, holes) in &os.partial {
        profile.set_partial(*sysno, holes.clone());
    }
    let holes = os.all_holes();
    profile.stubbed_flags = req
        .stubbable_flags
        .iter()
        .filter(|k| holes.contains(k))
        .copied()
        .collect();
    profile.faked_flags = req
        .fake_only_flags
        .iter()
        .filter(|k| holes.contains(k))
        .copied()
        .collect();
    profile
}

/// Measures one matrix cell: runs the vanilla tier and — unless
/// `tier` restricts the measurement to vanilla only — the planned tier.
/// `linux_pass` is the stored full-Linux baseline verdict; when it is
/// `false` the restricted tiers are recorded as failing without running
/// (nothing a compatibility layer does can fix broken software).
///
/// `baseline_features` is the full-Linux baseline's feature-health map
/// (`AppReport::baseline.features`): on suite workloads, a restricted
/// run that breaks a baseline-healthy feature fails the cell — exactly
/// the judgement the measuring engine applied when classifying the
/// syscall, so matrix verdicts and classifications agree.
///
/// The planned tier reuses the vanilla verdict when vanilla already
/// passes: the plan prescribes no work for an app that runs out of the
/// box, so its planned kernel *is* the vanilla kernel.
#[allow(clippy::too_many_arguments)]
pub fn measure_cell(
    os: &OsSpec,
    req: &AppRequirement,
    app: &dyn AppModel,
    workload: Workload,
    linux_pass: bool,
    tier: Option<Tier>,
    script: &TestScript,
    baseline_features: Option<&BTreeMap<String, bool>>,
) -> MatrixCell {
    let run = |profile: KernelProfile| -> TierOutcome {
        if !linux_pass {
            // Broken-on-Linux software says nothing about the OS: record
            // the failure without running (and without attributing a
            // spurious "first rejection" to the profile).
            return TierOutcome::default();
        }
        let env = ExecEnv::Restricted(profile);
        let (outcome, obs) = run_app_observed(&env, app, workload);
        let pass = script
            .evaluate(&outcome, workload, baseline_features)
            .success;
        TierOutcome::new(pass, obs)
    };

    let vanilla = run(vanilla_profile(os));
    let planned = match tier {
        Some(Tier::Vanilla) => None,
        _ if vanilla.pass => Some(vanilla.clone()),
        _ => Some(run(remediation_profile(os, req))),
    };
    MatrixCell {
        os: os.name.clone(),
        app: req.app.clone(),
        workload,
        linux_pass,
        missing_required: req.required.difference(&os.supported),
        missing_required_flags: req.missing_required_flags(&os.all_holes()),
        vanilla: Some(vanilla),
        planned,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::os;
    use loupe_apps::registry;
    use loupe_core::{AnalysisConfig, Engine};

    fn requirement(app: &str, workload: Workload) -> AppRequirement {
        let model = registry::find(app).unwrap();
        let report = Engine::new(AnalysisConfig::fast())
            .analyze(model.as_ref(), workload)
            .unwrap();
        AppRequirement::from_report(&report)
    }

    #[test]
    fn tier_labels_roundtrip() {
        for tier in Tier::ALL {
            assert_eq!(Tier::from_label(tier.label()), Some(tier));
        }
        assert_eq!(Tier::from_label("nosuch"), None);
        assert_eq!(Tier::Vanilla.to_string(), "vanilla");
    }

    #[test]
    fn remediation_profile_translates_plan_guidance() {
        let spec = os::find("kerla").unwrap();
        let req = requirement("redis", Workload::HealthCheck);
        let profile = remediation_profile(&spec, &req);
        assert_eq!(
            profile.implemented, spec.supported,
            "nothing new implemented"
        );
        assert!(profile.stubbed.is_subset(&req.stubbable));
        assert!(profile.faked.is_subset(&req.fake_only));
        assert!(
            profile.stubbed.intersection(&spec.supported).is_empty(),
            "already-implemented syscalls are not shimmed"
        );
        assert!(profile.faked.intersection(&spec.supported).is_empty());
    }

    #[test]
    fn redis_on_kerla_fails_vanilla_with_a_named_cause() {
        let spec = os::find("kerla").unwrap();
        let workload = Workload::HealthCheck;
        let req = requirement("redis", workload);
        let app = registry::find("redis").unwrap();
        let cell = measure_cell(
            &spec,
            &req,
            app.as_ref(),
            workload,
            true,
            None,
            &TestScript::new(),
            None,
        );
        let vanilla = cell.vanilla.as_ref().unwrap();
        assert!(!vanilla.pass, "kerla's 58 syscalls do not run redis");
        assert!(
            vanilla.first_rejection.is_some(),
            "the failure names the first rejected syscall"
        );
        assert!(!cell.missing_required.is_empty());
        assert!(cell.invariants_hold());
        let json = serde_json::to_string(&cell).unwrap();
        let back: MatrixCell = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cell);
    }

    #[test]
    fn a_full_surface_os_passes_both_tiers_and_reuses_vanilla() {
        let full = OsSpec::new("everything", "1", Sysno::all().collect());
        let workload = Workload::HealthCheck;
        let req = requirement("weborf", workload);
        let app = registry::find("weborf").unwrap();
        let cell = measure_cell(
            &full,
            &req,
            app.as_ref(),
            workload,
            true,
            None,
            &TestScript::new(),
            None,
        );
        assert!(cell.passes(Tier::Vanilla));
        assert!(cell.passes(Tier::Planned));
        assert_eq!(
            cell.vanilla, cell.planned,
            "no remediation needed: planned is the vanilla verdict"
        );
        assert!(cell.missing_required.is_empty());
        assert!(cell.invariants_hold());
    }

    #[test]
    fn a_linux_failure_discredits_every_restricted_tier() {
        let full = OsSpec::new("everything", "1", Sysno::all().collect());
        let workload = Workload::HealthCheck;
        let req = requirement("weborf", workload);
        let app = registry::find("weborf").unwrap();
        let cell = measure_cell(
            &full,
            &req,
            app.as_ref(),
            workload,
            false,
            None,
            &TestScript::new(),
            None,
        );
        assert!(!cell.linux_pass);
        assert!(!cell.passes(Tier::Vanilla));
        assert!(!cell.passes(Tier::Planned));
        assert!(!cell.planned_at_least());
        assert!(cell.invariants_hold());
        // The restricted runs are skipped entirely: no boundary counters
        // are attributed to a profile the app never meaningfully ran on.
        let vanilla = cell.vanilla.as_ref().unwrap();
        assert!(vanilla.rejections.is_empty() && vanilla.first_rejection.is_none());
    }

    #[test]
    fn tier_filter_skips_the_planned_run() {
        let spec = os::find("kerla").unwrap();
        let workload = Workload::HealthCheck;
        let req = requirement("redis", workload);
        let app = registry::find("redis").unwrap();
        let cell = measure_cell(
            &spec,
            &req,
            app.as_ref(),
            workload,
            true,
            Some(Tier::Vanilla),
            &TestScript::new(),
            None,
        );
        assert!(cell.vanilla.is_some());
        assert!(cell.planned.is_none());
        assert!(!cell.passes(Tier::Planned), "unmeasured tier never passes");
    }
}
