//! Property tests for the support-plan invariants: whatever the fleet's
//! measured requirements look like, a generated plan must cover every
//! app's needs by its unlock step, never schedule the same work twice,
//! grow its small-step fraction monotonically, and — on an OS that
//! implements everything — agree with `supported_by` and validate
//! empirically against the real application models.

use loupe_apps::{registry, Workload};
use loupe_plan::{OsSpec, PlanValidator, SupportPlan};
use loupe_syscalls::{Sysno, SysnoSet};
use proptest::prelude::*;

use loupe_plan::AppRequirement;

/// The sampling pool: every defined syscall number below 330 (dense
/// x86-64 range), so random sets overlap enough to exercise sharing.
fn pool() -> Vec<Sysno> {
    (0u32..330).filter_map(Sysno::from_raw).collect()
}

/// Builds one requirement from sampled indices; the three class sets are
/// made disjoint the same way the engine guarantees (a syscall has one
/// classification per app).
fn req(
    name: usize,
    required: &[usize],
    stubbable: &[usize],
    fake_only: &[usize],
) -> AppRequirement {
    let pool = pool();
    let pick = |idxs: &[usize]| -> SysnoSet { idxs.iter().map(|i| pool[i % pool.len()]).collect() };
    let required = pick(required);
    let stubbable = pick(stubbable).difference(&required);
    let fake_only = pick(fake_only).difference(&required).difference(&stubbable);
    AppRequirement {
        app: format!("app-{name}"),
        traced: required.union(&stubbable).union(&fake_only),
        required,
        stubbable,
        fake_only,
    }
}

/// Samples a small fleet of requirements plus an OS support prefix.
fn fleet(seed: &[usize]) -> (OsSpec, Vec<AppRequirement>) {
    let pool = pool();
    let chunks: Vec<&[usize]> = seed.chunks(9).collect();
    let apps: Vec<AppRequirement> = chunks
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let (a, rest) = c.split_at(c.len() / 3);
            let (b, d) = rest.split_at(rest.len() / 2);
            req(i, a, b, d)
        })
        .collect();
    let os_size = seed.first().copied().unwrap_or(0) % pool.len();
    let supported: SysnoSet = pool.into_iter().take(os_size).collect();
    (OsSpec::new("prop-os", "1", supported), apps)
}

proptest! {
    #[test]
    fn unlock_steps_cover_every_need(seed in proptest::collection::vec(0usize..4000, 9..72)) {
        let (os, apps) = fleet(&seed);
        let plan = SupportPlan::generate(&os, &apps);

        // Replay the cumulative sets and check coverage at each unlock.
        let mut implemented = os.supported.clone();
        let mut stubbed = SysnoSet::new();
        let mut faked = SysnoSet::new();
        for step in &plan.steps {
            implemented.extend(step.implement.iter());
            stubbed.extend(step.stub.iter());
            faked.extend(step.fake.iter());
            let app = apps.iter().find(|a| a.app == step.unlocks).expect("unlocks a real app");
            prop_assert!(
                app.required.is_subset(&implemented),
                "step {}: required not fully implemented", step.index
            );
            // Every stubbable syscall is implemented or (explicitly or
            // implicitly) answered -ENOSYS; every fake-only syscall is
            // implemented or faked.
            for s in app.stubbable.iter() {
                prop_assert!(
                    implemented.contains(s) || stubbed.contains(s),
                    "step {}: stubbable {s} unscheduled", step.index
                );
            }
            for s in app.fake_only.iter() {
                prop_assert!(
                    implemented.contains(s) || faked.contains(s),
                    "step {}: fake-only {s} unshimmed", step.index
                );
            }
        }
        // Every app ends up either initially supported or unlocked.
        prop_assert_eq!(plan.initially_supported.len() + plan.steps.len(), apps.len());
    }

    #[test]
    fn no_work_is_scheduled_twice(seed in proptest::collection::vec(0usize..4000, 9..72)) {
        let (os, apps) = fleet(&seed);
        let plan = SupportPlan::generate(&os, &apps);
        let mut implemented = os.supported.clone();
        let mut stubbed = SysnoSet::new();
        let mut faked = SysnoSet::new();
        for step in &plan.steps {
            for s in step.implement.iter() {
                prop_assert!(implemented.insert(s), "{s} implemented twice");
            }
            for s in step.stub.iter() {
                prop_assert!(!implemented.contains(s), "{s} stubbed after implementing");
                prop_assert!(stubbed.insert(s), "{s} stubbed twice");
            }
            for s in step.fake.iter() {
                prop_assert!(!implemented.contains(s), "{s} faked after implementing");
                prop_assert!(faked.insert(s), "{s} faked twice");
            }
        }
    }

    #[test]
    fn small_step_fraction_is_monotone_in_k(seed in proptest::collection::vec(0usize..4000, 9..72)) {
        let (os, apps) = fleet(&seed);
        let plan = SupportPlan::generate(&os, &apps);
        let mut prev = 0.0f64;
        for k in 0..12 {
            let f = plan.small_step_fraction(k);
            prop_assert!(f >= prev, "fraction shrank at k={k}: {f} < {prev}");
            prop_assert!((0.0..=1.0).contains(&f));
            prev = f;
        }
        prop_assert_eq!(plan.small_step_fraction(usize::MAX), 1.0);
    }

    #[test]
    fn full_linux_plan_agrees_with_supported_by_and_validates(n in 1usize..8) {
        // On a spec implementing every syscall, supported_by is true for
        // every app, the plan is all step-0, and the empirical replay
        // (real app models on a restricted-but-complete kernel) agrees.
        let workload = Workload::HealthCheck;
        let engine = loupe_core::Engine::new(loupe_core::AnalysisConfig::fast());
        let reqs: Vec<AppRequirement> = registry::detailed()
            .into_iter()
            .take(n)
            .map(|app| {
                let report = engine.analyze(app.as_ref(), workload).unwrap();
                AppRequirement::from_report(&report)
            })
            .collect();
        let full: SysnoSet = Sysno::all().collect();
        let spec = OsSpec::new("linux-full", "all", full);
        for r in &reqs {
            prop_assert!(r.supported_by(&spec.supported));
        }
        let plan = SupportPlan::generate(&spec, &reqs);
        prop_assert!(plan.steps.is_empty());
        prop_assert_eq!(plan.initially_supported.len(), reqs.len());
        let validation = PlanValidator::new()
            .validate(&spec.supported, &plan, &reqs, workload, registry::find)
            .unwrap();
        prop_assert!(validation.is_valid(), "{}", validation.to_table());
        prop_assert!(validation.initial.iter().all(|v| v.passes));
    }

    #[test]
    fn growing_a_kernel_profile_is_monotone_in_vanilla_passes(
        lo in 0usize..200,
        hi in 0usize..200,
    ) {
        // The matrix invariant behind "more syscalls, more apps": for
        // nested OS surfaces A ⊆ B, every app passing its vanilla tier
        // on A also passes on B — implementing a syscall can only turn
        // `-ENOSYS` answers into real behaviour, never break a passing
        // run. Surfaces are popularity-order prefixes, so random sizes
        // give nested profiles; checked by executing real app models.
        use loupe_core::exec::{run_app, ExecEnv};
        use loupe_core::TestScript;
        use loupe_kernel::KernelProfile;
        use loupe_plan::os::POPULARITY;

        let (lo, hi) = (lo.min(hi), lo.max(hi));
        let mut seen = SysnoSet::new();
        let order: Vec<Sysno> = POPULARITY
            .iter()
            .filter_map(|n| Sysno::from_name(n))
            .filter(|s| seen.insert(*s))
            .collect();
        let small: SysnoSet = order.iter().take(lo).copied().collect();
        let large: SysnoSet = order.iter().take(hi).copied().collect();
        prop_assert!(small.is_subset(&large));

        let workload = Workload::HealthCheck;
        let script = TestScript::default();
        let mut passes = (0usize, 0usize);
        for app in registry::detailed().into_iter().take(6) {
            let run = |surface: &SysnoSet| {
                let env = ExecEnv::Restricted(KernelProfile::new("prop", surface.clone()));
                let outcome = run_app(&env, app.as_ref(), workload);
                script.evaluate(&outcome, workload, None).success
            };
            let on_small = run(&small);
            let on_large = run(&large);
            prop_assert!(
                !on_small || on_large,
                "{}: passes on {} syscalls but fails on {}",
                app.name(),
                small.len(),
                large.len()
            );
            passes.0 += usize::from(on_small);
            passes.1 += usize::from(on_large);
        }
        prop_assert!(passes.0 <= passes.1, "pass count monotone: {passes:?}");
    }
}
