//! Property tests for the support-plan invariants: whatever the fleet's
//! measured requirements look like, a generated plan must cover every
//! app's needs by its unlock step, never schedule the same work twice,
//! grow its small-step fraction monotonically, and — on an OS that
//! implements everything — agree with `supported_by` and validate
//! empirically against the real application models.

use loupe_apps::{registry, Workload};
use loupe_plan::{OsSpec, PlanValidator, SupportPlan};
use loupe_syscalls::{Sysno, SysnoSet};
use proptest::prelude::*;

use loupe_plan::AppRequirement;

/// The sampling pool: every defined syscall number below 330 (dense
/// x86-64 range), so random sets overlap enough to exercise sharing.
fn pool() -> Vec<Sysno> {
    (0u32..330).filter_map(Sysno::from_raw).collect()
}

/// Builds one requirement from sampled indices; the three class sets are
/// made disjoint the same way the engine guarantees (a syscall has one
/// classification per app).
fn req(
    name: usize,
    required: &[usize],
    stubbable: &[usize],
    fake_only: &[usize],
) -> AppRequirement {
    let pool = pool();
    let pick = |idxs: &[usize]| -> SysnoSet { idxs.iter().map(|i| pool[i % pool.len()]).collect() };
    let required = pick(required);
    let stubbable = pick(stubbable).difference(&required);
    let fake_only = pick(fake_only).difference(&required).difference(&stubbable);
    AppRequirement {
        app: format!("app-{name}"),
        traced: required.union(&stubbable).union(&fake_only),
        required,
        stubbable,
        fake_only,
        ..AppRequirement::default()
    }
}

/// Samples a small fleet of requirements plus an OS support prefix.
fn fleet(seed: &[usize]) -> (OsSpec, Vec<AppRequirement>) {
    let pool = pool();
    let chunks: Vec<&[usize]> = seed.chunks(9).collect();
    let apps: Vec<AppRequirement> = chunks
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let (a, rest) = c.split_at(c.len() / 3);
            let (b, d) = rest.split_at(rest.len() / 2);
            req(i, a, b, d)
        })
        .collect();
    let os_size = seed.first().copied().unwrap_or(0) % pool.len();
    let supported: SysnoSet = pool.into_iter().take(os_size).collect();
    (OsSpec::new("prop-os", "1", supported), apps)
}

proptest! {
    #[test]
    fn unlock_steps_cover_every_need(seed in proptest::collection::vec(0usize..4000, 9..72)) {
        let (os, apps) = fleet(&seed);
        let plan = SupportPlan::generate(&os, &apps);

        // Replay the cumulative sets and check coverage at each unlock.
        let mut implemented = os.supported.clone();
        let mut stubbed = SysnoSet::new();
        let mut faked = SysnoSet::new();
        for step in &plan.steps {
            implemented.extend(step.implement.iter());
            stubbed.extend(step.stub.iter());
            faked.extend(step.fake.iter());
            let app = apps.iter().find(|a| a.app == step.unlocks).expect("unlocks a real app");
            prop_assert!(
                app.required.is_subset(&implemented),
                "step {}: required not fully implemented", step.index
            );
            // Every stubbable syscall is implemented or (explicitly or
            // implicitly) answered -ENOSYS; every fake-only syscall is
            // implemented or faked.
            for s in app.stubbable.iter() {
                prop_assert!(
                    implemented.contains(s) || stubbed.contains(s),
                    "step {}: stubbable {s} unscheduled", step.index
                );
            }
            for s in app.fake_only.iter() {
                prop_assert!(
                    implemented.contains(s) || faked.contains(s),
                    "step {}: fake-only {s} unshimmed", step.index
                );
            }
        }
        // Every app ends up either initially supported or unlocked.
        prop_assert_eq!(plan.initially_supported.len() + plan.steps.len(), apps.len());
    }

    #[test]
    fn no_work_is_scheduled_twice(seed in proptest::collection::vec(0usize..4000, 9..72)) {
        let (os, apps) = fleet(&seed);
        let plan = SupportPlan::generate(&os, &apps);
        let mut implemented = os.supported.clone();
        let mut stubbed = SysnoSet::new();
        let mut faked = SysnoSet::new();
        for step in &plan.steps {
            for s in step.implement.iter() {
                prop_assert!(implemented.insert(s), "{s} implemented twice");
            }
            for s in step.stub.iter() {
                prop_assert!(!implemented.contains(s), "{s} stubbed after implementing");
                prop_assert!(stubbed.insert(s), "{s} stubbed twice");
            }
            for s in step.fake.iter() {
                prop_assert!(!implemented.contains(s), "{s} faked after implementing");
                prop_assert!(faked.insert(s), "{s} faked twice");
            }
        }
    }

    #[test]
    fn small_step_fraction_is_monotone_in_k(seed in proptest::collection::vec(0usize..4000, 9..72)) {
        let (os, apps) = fleet(&seed);
        let plan = SupportPlan::generate(&os, &apps);
        let mut prev = 0.0f64;
        for k in 0..12 {
            let f = plan.small_step_fraction(k);
            prop_assert!(f >= prev, "fraction shrank at k={k}: {f} < {prev}");
            prop_assert!((0.0..=1.0).contains(&f));
            prev = f;
        }
        prop_assert_eq!(plan.small_step_fraction(usize::MAX), 1.0);
    }

    #[test]
    fn full_linux_plan_agrees_with_supported_by_and_validates(n in 1usize..8) {
        // On a spec implementing every syscall, supported_by is true for
        // every app, the plan is all step-0, and the empirical replay
        // (real app models on a restricted-but-complete kernel) agrees.
        let workload = Workload::HealthCheck;
        let engine = loupe_core::Engine::new(loupe_core::AnalysisConfig::fast());
        let reqs: Vec<AppRequirement> = registry::detailed()
            .into_iter()
            .take(n)
            .map(|app| {
                let report = engine.analyze(app.as_ref(), workload).unwrap();
                AppRequirement::from_report(&report)
            })
            .collect();
        let full: SysnoSet = Sysno::all().collect();
        let spec = OsSpec::new("linux-full", "all", full);
        for r in &reqs {
            prop_assert!(r.supported_by(&spec.supported));
        }
        let plan = SupportPlan::generate(&spec, &reqs);
        prop_assert!(plan.steps.is_empty());
        prop_assert_eq!(plan.initially_supported.len(), reqs.len());
        let validation = PlanValidator::new()
            .validate(&spec, &plan, &reqs, workload, registry::find)
            .unwrap();
        prop_assert!(validation.is_valid(), "{}", validation.to_table());
        prop_assert!(validation.initial.iter().all(|v| v.passes));
    }

    #[test]
    fn growing_a_kernel_profile_is_monotone_in_vanilla_passes(
        lo in 0usize..200,
        hi in 0usize..200,
    ) {
        // The matrix invariant behind "more syscalls, more apps": for
        // nested OS surfaces A ⊆ B, every app passing its vanilla tier
        // on A also passes on B — implementing a syscall can only turn
        // `-ENOSYS` answers into real behaviour, never break a passing
        // run. Surfaces are popularity-order prefixes, so random sizes
        // give nested profiles; checked by executing real app models.
        use loupe_core::exec::{run_app, ExecEnv};
        use loupe_core::TestScript;
        use loupe_kernel::KernelProfile;
        use loupe_plan::os::POPULARITY;

        let (lo, hi) = (lo.min(hi), lo.max(hi));
        let mut seen = SysnoSet::new();
        let order: Vec<Sysno> = POPULARITY
            .iter()
            .filter_map(|n| Sysno::from_name(n))
            .filter(|s| seen.insert(*s))
            .collect();
        let small: SysnoSet = order.iter().take(lo).copied().collect();
        let large: SysnoSet = order.iter().take(hi).copied().collect();
        prop_assert!(small.is_subset(&large));

        let workload = Workload::HealthCheck;
        let script = TestScript::default();
        let mut passes = (0usize, 0usize);
        for app in registry::detailed().into_iter().take(6) {
            let run = |surface: &SysnoSet| {
                let env = ExecEnv::Restricted(KernelProfile::new("prop", surface.clone()));
                let outcome = run_app(&env, app.as_ref(), workload);
                script.evaluate(&outcome, workload, None).success
            };
            let on_small = run(&small);
            let on_large = run(&large);
            prop_assert!(
                !on_small || on_large,
                "{}: passes on {} syscalls but fails on {}",
                app.name(),
                small.len(),
                large.len()
            );
            passes.0 += usize::from(on_small);
            passes.1 += usize::from(on_large);
        }
        prop_assert!(passes.0 <= passes.1, "pass count monotone: {passes:?}");
    }
}

/// Builds an arbitrary-but-valid compatibility table from sampled
/// indices: unique sysnos from the pool, one of the three statuses
/// each, release/notes cells with awkward-but-legal content.
fn arb_table(seed: &[usize]) -> loupe_plan::CompatTable {
    use loupe_plan::{CompatRow, CompatTable, SupportStatus};
    let pool = pool();
    let mut seen = SysnoSet::new();
    let rows: Vec<CompatRow> = seed
        .iter()
        .enumerate()
        .filter_map(|(i, &idx)| {
            let sysno = pool[idx % pool.len()];
            if !seen.insert(sysno) {
                return None;
            }
            let status = match idx % 3 {
                0 => SupportStatus::Full,
                1 => SupportStatus::Partially,
                _ => SupportStatus::Unimplemented,
            };
            Some(CompatRow {
                sysno,
                status,
                release: if idx % 2 == 0 {
                    format!("v{}.{}", i % 9, idx % 7)
                } else {
                    String::new()
                },
                notes: match idx % 4 {
                    0 => "works".to_owned(),
                    1 => format!("since build {idx}"),
                    _ => String::new(),
                },
            })
        })
        .collect();
    let mut rows = rows;
    rows.sort_by_key(|r| r.sysno.raw());
    CompatTable {
        preamble: "# Generated fixture\n\nArbitrary preamble text.\n\n".to_owned(),
        rows,
    }
}

proptest! {
    /// Tentpole round-trip at table granularity: rendering any valid
    /// table and parsing it back is the identity, and the rendered form
    /// is canonical (a second render changes nothing).
    #[test]
    fn ingest_parse_inverts_render_on_arbitrary_tables(
        seed in proptest::collection::vec(0usize..4000, 1..48),
    ) {
        use loupe_plan::CompatTable;
        let table = arb_table(&seed);
        let text = table.render();
        let back = CompatTable::parse(&text).expect("rendered tables parse");
        prop_assert_eq!(&back, &table);
        prop_assert_eq!(back.render(), text, "render is canonical");
    }

    /// And at spec granularity: an ingested spec survives the full
    /// markdown + overrides round trip (the invariant that lets the
    /// vendored kerla snapshot BE the curated spec).
    #[test]
    fn ingested_specs_survive_the_markdown_roundtrip(
        seed in proptest::collection::vec(0usize..4000, 1..48),
    ) {
        use loupe_plan::ingest::{overrides_for_spec, parse_overrides};
        use loupe_plan::CompatTable;
        let table = arb_table(&seed);
        let spec = table.to_spec("prop-os", "1", &[]).expect("valid tables ingest");
        let rendered = CompatTable::from_spec(&spec, "# Prop\n\n");
        let overrides = parse_overrides(&overrides_for_spec(&spec)).unwrap();
        let back = CompatTable::parse(&rendered.render())
            .unwrap()
            .to_spec("prop-os", "1", &overrides)
            .unwrap();
        prop_assert_eq!(back.supported, spec.supported);
        prop_assert_eq!(back.partial, spec.partial);
    }

    /// Flag-granular monotonicity: plugging a hole (flipping one flag
    /// from unsupported to fully supported) never turns a passing
    /// vanilla run into a failure, app by app, and never shrinks the
    /// fleet-wide vanilla pass count.
    #[test]
    fn plugging_a_flag_hole_is_monotone_in_vanilla_passes(which in 0usize..13) {
        use loupe_core::exec::{run_app, ExecEnv};
        use loupe_core::TestScript;
        use loupe_plan::{os, vanilla_profile};

        let spec = os::find("kerla").unwrap();
        let holes = spec.all_holes();
        let key = holes[which % holes.len()];
        let mut plugged_spec = spec.clone();
        plugged_spec.partial = spec
            .partial
            .iter()
            .map(|(s, ks)| {
                (*s, ks.iter().copied().filter(|k| *k != key).collect())
            })
            .collect();

        let workload = Workload::HealthCheck;
        let script = TestScript::default();
        let mut passes = (0usize, 0usize);
        for app in registry::detailed().into_iter().take(8) {
            let run = |spec: &loupe_plan::OsSpec| {
                let env = ExecEnv::Restricted(vanilla_profile(spec));
                let outcome = run_app(&env, app.as_ref(), workload);
                script.evaluate(&outcome, workload, None).success
            };
            let before = run(&spec);
            let after = run(&plugged_spec);
            prop_assert!(
                !before || after,
                "{}: passed with hole {key} open but fails with it plugged",
                app.name()
            );
            passes.0 += usize::from(before);
            passes.1 += usize::from(after);
        }
        prop_assert!(passes.0 <= passes.1);
    }

    /// The matrix ordering invariant survives flag granularity: on
    /// every hole-carrying curated OS, each measured cell's planned
    /// tier is at least its vanilla tier.
    #[test]
    fn planned_never_regresses_vanilla_on_hole_carrying_oses(n in 1usize..6) {
        use loupe_core::TestScript;
        use loupe_plan::{measure_cell, os, Tier};

        let workload = Workload::HealthCheck;
        let engine = loupe_core::Engine::new(loupe_core::AnalysisConfig::fast());
        let script = TestScript::default();
        let holey: Vec<_> = os::db()
            .into_iter()
            .filter(|s| !s.all_holes().is_empty())
            .collect();
        prop_assert!(holey.len() >= 7, "kerla + six curated hole sets");
        for app in registry::detailed().into_iter().take(n) {
            let rep = engine.analyze(app.as_ref(), workload).unwrap();
            let req = AppRequirement::from_report(&rep);
            for spec in &holey {
                let cell = measure_cell(
                    spec,
                    &req,
                    app.as_ref(),
                    workload,
                    true,
                    None,
                    &script,
                    Some(&rep.baseline.features),
                );
                prop_assert!(cell.invariants_hold());
                prop_assert!(
                    !cell.passes(Tier::Vanilla) || cell.passes(Tier::Planned),
                    "{} on {}: vanilla pass must imply planned pass",
                    app.name(),
                    spec.name
                );
            }
        }
    }
}
