//! Property tests for the conformance-suite invariants: whatever the
//! measured classification looks like, the generated suite is *minimal*
//! (every constraint case is load-bearing — dropping the syscall it
//! probes from an otherwise-satisfying profile fails exactly that
//! case), *monotone* (growing a kernel profile never flips a passing
//! suite to failing — all constraints are positive set memberships),
//! and its serialized form round-trips exactly.

use loupe_apps::Workload;
use loupe_gentests::{
    CaseExpectation, CaseOrigin, ConformanceCase, ConformanceSuite, ExpectedVerdicts,
};
use loupe_kernel::KernelProfile;
use loupe_syscalls::{Sysno, SysnoSet};
use proptest::prelude::*;

/// The sampling pool: every defined syscall number below 330 (dense
/// x86-64 range), so random sets overlap enough to exercise sharing.
fn pool() -> Vec<Sysno> {
    (0u32..330).filter_map(Sysno::from_raw).collect()
}

/// Builds a suite from sampled indices exactly the way the generator
/// does: disjoint required / fake-only / stubbable classes, implemented
/// constraints first (hottest syscalls first), fake tolerances next,
/// the harness check last. Field-for-field this is what
/// [`ConformanceSuite::generate`] emits for a corpus with these
/// classes; building it directly lets the property quantify over the
/// whole classification space instead of the 116 stored corpora.
fn suite(required: &[usize], fake_only: &[usize], stubbable: &[usize]) -> ConformanceSuite {
    let pool = pool();
    let pick = |idxs: &[usize]| -> SysnoSet { idxs.iter().map(|i| pool[i % pool.len()]).collect() };
    let required = pick(required);
    let fake_only = pick(fake_only).difference(&required);
    let stubbable = pick(stubbable).difference(&required).difference(&fake_only);

    let case = |sysno: Sysno, expectation, origin, calls| ConformanceCase {
        sysno,
        expectation,
        origin,
        calls,
        impact: None,
        sub_feature: None,
    };
    let block = |set: &SysnoSet, expectation, origin| -> Vec<ConformanceCase> {
        let mut cases: Vec<ConformanceCase> = set
            .iter()
            .map(|s| case(s, expectation, origin, u64::from(s.raw()) % 7))
            .collect();
        cases.sort_by(|a, b| b.calls.cmp(&a.calls).then(a.sysno.cmp(&b.sysno)));
        cases
    };

    let mut cases = block(
        &required,
        CaseExpectation::Implemented,
        CaseOrigin::Required,
    );
    cases.extend(block(
        &fake_only,
        CaseExpectation::ImplementedOrFaked,
        CaseOrigin::FakeOnly,
    ));
    cases.push(case(
        Sysno::getpid,
        CaseExpectation::HelperBypass,
        CaseOrigin::Harness,
        0,
    ));

    ConformanceSuite {
        os: "prop-os".into(),
        app: "prop-app".into(),
        workload: Workload::HealthCheck,
        linux_pass: true,
        tolerated_stub_flags: Vec::new(),
        tolerated_stubs: stubbable,
        expected: ExpectedVerdicts::default(),
        cases,
    }
}

/// The profile that satisfies every constraint the cheapest way:
/// implemented constraints implemented, fake tolerances faked, nothing
/// else — in particular none of the tolerated stubs.
fn satisfying_profile(suite: &ConformanceSuite) -> KernelProfile {
    let mut profile = KernelProfile::new("satisfies-all", suite.must_implement());
    profile.faked = suite.may_fake();
    profile
}

proptest! {
    /// Minimality, both directions. A profile meeting every constraint
    /// passes even though it implements *none* of the tolerated stubs
    /// (they carry no case, so they constrain nothing). And every
    /// constraint case is load-bearing: weakening the satisfying
    /// profile at exactly one case's syscall — dropping an implemented
    /// constraint to a fake, or a fake tolerance to `-ENOSYS` — fails
    /// the suite precisely at that case.
    #[test]
    fn every_constraint_case_is_load_bearing_and_stubs_constrain_nothing(
        required in proptest::collection::vec(0usize..4000, 0..12),
        fake_only in proptest::collection::vec(0usize..4000, 0..12),
        stubbable in proptest::collection::vec(0usize..4000, 0..12),
    ) {
        let suite = suite(&required, &fake_only, &stubbable);
        let full = satisfying_profile(&suite);
        prop_assert!(suite.run_on_profile(&full).pass, "satisfying profile passes");

        let constraints: Vec<ConformanceCase> = suite.constraint_cases().cloned().collect();
        for case in &constraints {
            let mut weakened = full.clone();
            match case.expectation {
                CaseExpectation::Implemented => {
                    // Demote to a fake: still answered, but not by a
                    // real implementation.
                    weakened.implemented.remove(case.sysno);
                    weakened.faked.insert(case.sysno);
                }
                CaseExpectation::ImplementedOrFaked => {
                    // Remove the fake shim: the probe now hits -ENOSYS.
                    weakened.faked.remove(case.sysno);
                }
                CaseExpectation::HelperBypass => unreachable!("not a constraint case"),
            }
            let run = suite.run_on_profile(&weakened);
            prop_assert!(!run.pass, "dropping {} must fail the suite", case.sysno);
            prop_assert_eq!(
                run.first_failure(), Some(case.sysno),
                "the failure is exactly the weakened case"
            );
            let failures = run.cases.iter().filter(|c| !c.pass).count();
            prop_assert_eq!(failures, 1, "no other case notices the weakening");
        }
    }

    /// Monotonicity: every suite constraint is a positive membership
    /// (of the implemented set, or of implemented ∪ faked), so *growing*
    /// a profile — implementing more syscalls, faking more syscalls,
    /// promoting fakes to implementations — can never flip a passing
    /// suite to failing. This is what lets a compatibility-layer
    /// developer burn the suite into CI and add syscalls fearlessly.
    #[test]
    fn growing_a_profile_never_flips_a_passing_suite_to_failing(
        required in proptest::collection::vec(0usize..4000, 0..12),
        fake_only in proptest::collection::vec(0usize..4000, 0..12),
        base_impl in proptest::collection::vec(0usize..4000, 0..40),
        base_fake in proptest::collection::vec(0usize..4000, 0..40),
        grow_impl in proptest::collection::vec(0usize..4000, 0..40),
        grow_fake in proptest::collection::vec(0usize..4000, 0..40),
    ) {
        let suite = suite(&required, &fake_only, &[]);
        let pool = pool();
        let pick = |idxs: &[usize]| -> SysnoSet {
            idxs.iter().map(|i| pool[i % pool.len()]).collect()
        };

        let mut base = KernelProfile::new("base", pick(&base_impl));
        base.faked = pick(&base_fake);
        let before = suite.run_on_profile(&base);

        let mut grown = base.clone();
        grown.implemented.extend(pick(&grow_impl).iter());
        grown.faked.extend(pick(&grow_fake).iter());
        let after = suite.run_on_profile(&grown);

        prop_assert!(
            !before.pass || after.pass,
            "growth flipped pass → fail (base {:?}/{:?})",
            base.implemented.len(), base.faked.len()
        );
        // Stronger, per case: growth never loses a passing case.
        for (b, a) in before.cases.iter().zip(&after.cases) {
            prop_assert!(!b.pass || a.pass, "case {} regressed under growth", b.sysno);
        }
    }

    /// The wire format is lossless: any generated-shaped suite (with
    /// and without impact annotations) survives a JSON round-trip
    /// exactly, cases in order.
    #[test]
    fn suite_json_roundtrips_exactly(
        required in proptest::collection::vec(0usize..4000, 0..12),
        fake_only in proptest::collection::vec(0usize..4000, 0..12),
        stubbable in proptest::collection::vec(0usize..4000, 0..12),
        linux_pass in proptest::bool::ANY,
        flags in proptest::collection::vec(proptest::bool::ANY, 5..6),
    ) {
        let mut suite = suite(&required, &fake_only, &stubbable);
        suite.linux_pass = linux_pass;
        suite.expected = ExpectedVerdicts {
            vanilla: flags[0].then_some(flags[1]),
            planned: flags[2].then_some(flags[3]),
        };
        let annotate = flags[4];
        if annotate {
            if let Some(case) = suite
                .cases
                .iter_mut()
                .find(|c| c.expectation == CaseExpectation::ImplementedOrFaked)
            {
                case.impact = Some("fake passes but moves throughput -12%".into());
            }
        }

        let json = serde_json::to_string(&suite).unwrap();
        let back: ConformanceSuite = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&back, &suite);

        // And per-case, the unit the db stores inside every suite file.
        for case in &suite.cases {
            let case_json = serde_json::to_string(case).unwrap();
            let case_back: ConformanceCase = serde_json::from_str(&case_json).unwrap();
            prop_assert_eq!(&case_back, case);
        }
    }
}
