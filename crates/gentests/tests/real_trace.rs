//! The real-trace bridge: a conformance suite built not from the
//! simulated corpus but from a *real* `ptrace` trace of a real binary.
//! This is the paper's end-to-end loop in miniature — observe an
//! application's actual syscall surface (§3.1), compile it into an
//! executable suite, and hold kernel profiles to it.
//!
//! Linux-only by nature, and skipped gracefully where `ptrace` is
//! unavailable (seccomp-confined CI sandboxes, containers without
//! `SYS_PTRACE`).

#![cfg(target_os = "linux")]

use loupe_apps::Workload;
use loupe_gentests::{CaseExpectation, CaseOrigin, ConformanceSuite};
use loupe_kernel::KernelProfile;
use loupe_syscalls::{Sysno, SysnoSet};
use loupe_trace::{trace_command, TracePolicy};

/// `ptrace` needs kernel cooperation the test environment may deny.
fn ptrace_available() -> bool {
    trace_command(&["true"], &TracePolicy::allow_all()).is_ok()
}

/// Trace `/bin/true`, compile the observed counts into a suite, and
/// check the suite passes exactly on profiles implementing the whole
/// observed surface: the full profile passes, the empty profile fails
/// on the trace's hottest syscall, and dropping any single observed
/// syscall from the full profile fails its case.
#[test]
fn suite_from_a_real_ptrace_trace_gates_on_the_observed_surface() {
    if !ptrace_available() {
        eprintln!("skipping: ptrace unavailable in this environment");
        return;
    }
    let result = trace_command(&["true"], &TracePolicy::allow_all()).unwrap();
    assert_eq!(result.exit_code, Some(0), "/bin/true exits 0 under trace");
    let counts = result.by_sysno();
    assert!(
        !counts.is_empty(),
        "even /bin/true issues syscalls (execve at minimum)"
    );

    let suite = ConformanceSuite::from_observed_counts("true", Workload::HealthCheck, &counts);
    assert_eq!(suite.cases.len(), counts.len());
    assert!(
        suite
            .cases
            .iter()
            .all(|c| c.expectation == CaseExpectation::Implemented
                && c.origin == CaseOrigin::Required)
    );
    // Trace-driven ordering: the hottest observed syscall is probed first.
    let hottest = counts
        .iter()
        .max_by_key(|(s, n)| (**n, std::cmp::Reverse(**s)))
        .map(|(s, _)| *s)
        .unwrap();
    assert_eq!(suite.cases[0].sysno, hottest);

    // A kernel implementing everything satisfies the real trace.
    let full = KernelProfile::new("full", Sysno::all().collect());
    assert!(suite.run_on_profile(&full).pass);

    // An empty kernel fails immediately, naming the hottest syscall.
    let empty = KernelProfile::new("empty", SysnoSet::new());
    let run = suite.run_on_profile(&empty);
    assert!(!run.pass);
    assert_eq!(run.first_failure(), Some(hottest));

    // Every observed syscall is load-bearing: implementing all but one
    // fails exactly that one's case.
    for &missing in counts.keys() {
        let mut profile = KernelProfile::new("partial", Sysno::all().collect());
        profile.implemented.remove(missing);
        let run = suite.run_on_profile(&profile);
        assert!(!run.pass, "dropping {missing} must fail the suite");
        assert_eq!(run.first_failure(), Some(missing));
    }
}

/// The interposition side: stubbing an observed-but-optional syscall in
/// the *real* tracer mirrors what a generated suite's tolerated-stub
/// set records — the run still succeeds, so the syscall earns no case.
#[test]
fn real_stub_tolerance_maps_to_an_uncased_tolerated_stub() {
    if !ptrace_available() {
        eprintln!("skipping: ptrace unavailable in this environment");
        return;
    }
    // /bin/true tolerates losing set_robust_list (glibc startup issues
    // it but ignores the failure) — the live analogue of a measured
    // stubbable classification.
    let policy =
        TracePolicy::allow_all().with(Sysno::set_robust_list, loupe_trace::TraceAction::Stub);
    let Ok(result) = trace_command(&["true"], &policy) else {
        eprintln!("skipping: stub trace failed to start");
        return;
    };
    if result.exit_code != Some(0) {
        eprintln!("skipping: this libc does not tolerate the stub");
        return;
    }

    // Rebuild the suite from the observed counts *minus* the tolerated
    // stub, recording it in tolerated_stubs — exactly the shape
    // `generate` produces for a stubbable classification.
    let mut counts = result.by_sysno();
    let stubbed_was_observed = counts.remove(&Sysno::set_robust_list).is_some();
    let mut suite = ConformanceSuite::from_observed_counts("true", Workload::HealthCheck, &counts);
    suite.tolerated_stubs.insert(Sysno::set_robust_list);

    // Minimality carries over from the simulation to the real trace: a
    // profile without the stubbed syscall still passes the suite.
    let mut profile = KernelProfile::new("no-robust-list", Sysno::all().collect());
    profile.implemented.remove(Sysno::set_robust_list);
    assert!(suite.run_on_profile(&profile).pass);
    assert!(!suite.must_implement().contains(Sysno::set_robust_list));
    if stubbed_was_observed {
        assert!(result.intercepted > 0, "the tracer answered the stub");
    }
}
