//! Trace-driven conformance test generation: measurement corpora
//! compiled into *executable* per-application compatibility suites.
//!
//! The dynamic pipeline ends its life in rendered documentation
//! (`COMPATIBILITY.md`, `OS_MATRIX.md`). This crate turns the same
//! corpus — baseline traces, per-syscall stub/fake classifications,
//! fallback requirements and impact annotations — into something a
//! compatibility-layer developer can *run* against their kernel: a
//! minimal, deterministic [`ConformanceSuite`] of ordered
//! [`ConformanceCase`]s, each probing one syscall with an explicit
//! expectation.
//!
//! The suite is **minimal** by construction: only constraint-bearing
//! syscalls carry a case. Measured-required syscalls (and the fallback
//! requirements the combined stub/fake policy exercised) must be
//! *implemented*; fake-only syscalls may be implemented **or** shimmed
//! with a fake success value; stubbable syscalls carry no case at all —
//! `-ENOSYS` is tolerated everywhere, so probing them constrains
//! nothing. One harness case per suite additionally checks that
//! test-script helper invocations (`helper:` notes) bypass the profile
//! restriction, mirroring Loupe's measurement-host whitelist.
//!
//! Because every constraint is *positive* (membership of the profile's
//! implemented or implemented∪faked sets), growing a [`KernelProfile`]
//! can never flip a passing suite to failing — the monotonicity the
//! property tests pin down. And because the cases are generated from
//! the same classification the fleet × OS matrix executed, running the
//! suite on an OS's kernel profile must reproduce the matrix verdict
//! exactly — the self-validation the `loupe gentests` sweep stage and
//! the conformance meta-test enforce.

use serde::{Deserialize, Serialize};

use loupe_apps::Workload;
use loupe_core::AppReport;
use loupe_kernel::{Invocation, Kernel, KernelProfile, LinuxSim, RestrictedKernel};
use loupe_plan::{vanilla_profile, MatrixCell, OsSpec, Tier};
use loupe_syscalls::{Errno, SubFeatureKey, Sysno, SysnoSet};

/// The note tag of the suite's helper-bypass harness case. Anything
/// starting with `helper:` is whitelisted by [`RestrictedKernel`].
pub const HELPER_NOTE: &str = "helper:conformance";

/// Error margin above which a measured stub/fake impact is worth
/// annotating on a case (matches the report renderer's Table 2 margin).
const IMPACT_EPSILON: f64 = 0.03;

/// What a [`ConformanceCase`] demands of the kernel under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CaseExpectation {
    /// The syscall must be answered by a real implementation — neither
    /// `-ENOSYS` nor a fake shim satisfies the app here.
    Implemented,
    /// A real implementation or a fake success shim both pass (the
    /// measured fake tolerance); `-ENOSYS` does not.
    ImplementedOrFaked,
    /// A harness invocation tagged [`HELPER_NOTE`] must reach the
    /// backing kernel unrestricted (the measurement-host whitelist).
    HelperBypass,
}

/// Where a case came from in the measurement corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CaseOrigin {
    /// Classified required: stub and fake runs both failed.
    Required,
    /// A fallback requirement: untraced in the baseline, exercised by
    /// the confirmed combined stub/fake policy (e.g. `epoll_create`
    /// once `epoll_create1` is stubbed).
    Fallback,
    /// Classified fake-only: the stub run failed, the fake run passed.
    FakeOnly,
    /// Emitted by the generator's harness, not the app's measurements.
    Harness,
}

/// One executable conformance check: probe `sysno` and hold the kernel
/// to `expectation`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConformanceCase {
    /// The syscall probed.
    pub sysno: Sysno,
    /// What the kernel under test must do with it.
    pub expectation: CaseExpectation,
    /// Which part of the corpus demanded it.
    pub origin: CaseOrigin,
    /// Baseline invocation count (0 for fallback/harness cases) — the
    /// trace-driven ordering key: hot syscalls are probed first.
    pub calls: u64,
    /// A notable measured impact of the tolerated shim, when stored
    /// (e.g. a fake that passes tests but moves throughput).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub impact: Option<String>,
    /// When set, the case probes one *sub-feature* of `sysno` instead of
    /// the syscall as a whole (§5.4 partial fidelity): the probe places
    /// the key's selector in the decoding register, and the expectation
    /// is held against the flag's answer. `None` for suites stored
    /// before partial fidelity existed.
    #[serde(default)]
    pub sub_feature: Option<SubFeatureKey>,
}

impl ConformanceCase {
    /// The probe invocation this case issues.
    pub fn probe(&self) -> Invocation {
        let inv = match self.sub_feature {
            Some(key) => Invocation::for_sub_feature(key),
            None => Invocation::new(self.sysno, [0; 6]),
        };
        match self.expectation {
            CaseExpectation::HelperBypass => inv.with_note(HELPER_NOTE),
            _ => inv,
        }
    }
}

/// The two empirical verdicts the source matrix cell recorded, carried
/// inside the suite so it can re-validate itself anywhere.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExpectedVerdicts {
    /// The vanilla-tier verdict, when that tier was measured.
    pub vanilla: Option<bool>,
    /// The planned-tier verdict (the vanilla one stands in when the
    /// planned tier was unmeasured but vanilla passed — applying the
    /// plan never removes behaviour).
    pub planned: Option<bool>,
}

/// A generated, executable conformance suite for one `(os, app,
/// workload)` cell of the compatibility matrix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConformanceSuite {
    /// Target OS the suite was generated against.
    pub os: String,
    /// Application whose corpus was compiled.
    pub app: String,
    /// Workload measured.
    pub workload: Workload,
    /// The stored full-Linux baseline verdict: a suite for software
    /// that fails even on Linux fails by fiat (nothing a compatibility
    /// layer does can fix it).
    pub linux_pass: bool,
    /// Syscalls the workload traced whose stub (`-ENOSYS`) is measured
    /// tolerable — deliberately **without** cases: the suite is minimal,
    /// and these constrain no profile. Recorded so the planned-tier
    /// profile can be reconstructed from the suite alone.
    pub tolerated_stubs: SysnoSet,
    /// Sub-features whose stub probe passed — the flag-granular
    /// tolerated set, case-free for the same minimality reason.
    /// Recorded (sorted) so the planned-tier profile's flag overlays can
    /// be reconstructed from the suite alone.
    #[serde(default)]
    pub tolerated_stub_flags: Vec<SubFeatureKey>,
    /// The matrix cell's empirical verdicts, for self-validation.
    pub expected: ExpectedVerdicts,
    /// The ordered cases: implemented-constraints first (hottest
    /// syscalls first), then fake tolerances, then the harness check.
    pub cases: Vec<ConformanceCase>,
}

/// What the kernel under test did with one case's probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseObservation {
    /// Forwarded to a real implementation.
    Forwarded,
    /// Answered by the fake overlay.
    Faked,
    /// Rejected with `-ENOSYS` at the profile boundary.
    Rejected,
}

/// One executed case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseRun {
    /// The syscall probed.
    pub sysno: Sysno,
    /// The sub-feature probed, for flag-granular cases.
    pub sub_feature: Option<SubFeatureKey>,
    /// The expectation held against it.
    pub expectation: CaseExpectation,
    /// What the kernel did.
    pub observed: CaseObservation,
    /// Whether the observation satisfies the expectation.
    pub pass: bool,
}

/// One executed suite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuiteRun {
    /// Overall verdict: the Linux baseline passed and every case passed.
    pub pass: bool,
    /// Per-case outcomes, in suite order.
    pub cases: Vec<CaseRun>,
}

impl SuiteRun {
    /// The first failing case's syscall — "what did it trip on?".
    pub fn first_failure(&self) -> Option<Sysno> {
        self.cases.iter().find(|c| !c.pass).map(|c| c.sysno)
    }

    /// The first failing case, flag-precise: `fcntl:F_SETFL` when the
    /// trip was a sub-feature case, the syscall name otherwise.
    pub fn first_failure_cause(&self) -> Option<String> {
        self.cases
            .iter()
            .find(|c| !c.pass)
            .map(|c| match c.sub_feature {
                Some(key) => key.to_string(),
                None => c.sysno.name().to_owned(),
            })
    }
}

impl ConformanceSuite {
    /// Compiles an application's measurement corpus into a suite for
    /// one OS. `report` must be the stored full-Linux baseline the
    /// matrix cell was measured against; `cell` supplies the empirical
    /// verdicts the suite will validate itself against (`None` leaves
    /// the expectations open, e.g. for an OS the matrix has not swept).
    pub fn generate(
        os: &OsSpec,
        report: &AppReport,
        cell: Option<&MatrixCell>,
    ) -> ConformanceSuite {
        let required = report.required();
        let stubbable = report.stubbable();
        let fake_only = report.fake_only();
        let impacts: Vec<(Sysno, String)> = report
            .notable_impacts(IMPACT_EPSILON)
            .into_iter()
            .filter_map(|(s, rec)| {
                rec.fake
                    .filter(|i| i.success && i.is_notable(IMPACT_EPSILON))
                    .map(|i| {
                        (
                            s,
                            format!(
                                "fake passes but moves throughput {:+.0}%, rss {:+.0}%, fds {:+.0}%",
                                i.perf_delta * 100.0,
                                i.rss_delta * 100.0,
                                i.fd_delta * 100.0
                            ),
                        )
                    })
            })
            .collect();

        // Partition the measured sub-feature classes exactly as
        // `AppRequirement::from_report` does, so the suite's flag cases
        // mirror the planner's flag requirement sets.
        let mut required_flags: Vec<SubFeatureKey> = Vec::new();
        let mut tolerated_stub_flags: Vec<SubFeatureKey> = Vec::new();
        let mut fake_only_flags: Vec<SubFeatureKey> = Vec::new();
        for (key, class) in &report.sub_features {
            if class.stub_ok {
                tolerated_stub_flags.push(*key);
            } else if class.fake_ok {
                fake_only_flags.push(*key);
            } else {
                required_flags.push(*key);
            }
        }
        for v in [
            &mut required_flags,
            &mut tolerated_stub_flags,
            &mut fake_only_flags,
        ] {
            v.sort();
            v.dedup();
        }

        let calls_of = |s: Sysno| report.traced.get(&s).copied().unwrap_or(0);
        let mut implemented: Vec<ConformanceCase> = required
            .iter()
            .map(|s| ConformanceCase {
                sysno: s,
                expectation: CaseExpectation::Implemented,
                origin: CaseOrigin::Required,
                calls: calls_of(s),
                impact: None,
                sub_feature: None,
            })
            .chain(report.fallbacks.iter().map(|s| ConformanceCase {
                sysno: s,
                expectation: CaseExpectation::Implemented,
                origin: CaseOrigin::Fallback,
                calls: calls_of(s),
                impact: None,
                sub_feature: None,
            }))
            .collect();
        implemented.sort_by(|a, b| b.calls.cmp(&a.calls).then(a.sysno.cmp(&b.sysno)));
        // Flag-granular Implemented cases ride after the syscall-level
        // block, busiest parent syscall first.
        let mut implemented_flags: Vec<ConformanceCase> = required_flags
            .iter()
            .map(|key| ConformanceCase {
                sysno: key.sysno(),
                expectation: CaseExpectation::Implemented,
                origin: CaseOrigin::Required,
                calls: calls_of(key.sysno()),
                impact: None,
                sub_feature: Some(*key),
            })
            .collect();
        implemented_flags.sort_by(|a, b| {
            b.calls
                .cmp(&a.calls)
                .then(a.sub_feature.cmp(&b.sub_feature))
        });
        implemented.extend(implemented_flags);

        let mut faked: Vec<ConformanceCase> = fake_only
            .iter()
            .map(|s| ConformanceCase {
                sysno: s,
                expectation: CaseExpectation::ImplementedOrFaked,
                origin: CaseOrigin::FakeOnly,
                calls: calls_of(s),
                impact: impacts
                    .iter()
                    .find(|(is, _)| *is == s)
                    .map(|(_, note)| note.clone()),
                sub_feature: None,
            })
            .collect();
        faked.sort_by(|a, b| b.calls.cmp(&a.calls).then(a.sysno.cmp(&b.sysno)));
        let mut faked_flags: Vec<ConformanceCase> = fake_only_flags
            .iter()
            .map(|key| ConformanceCase {
                sysno: key.sysno(),
                expectation: CaseExpectation::ImplementedOrFaked,
                origin: CaseOrigin::FakeOnly,
                calls: calls_of(key.sysno()),
                impact: None,
                sub_feature: Some(*key),
            })
            .collect();
        faked_flags.sort_by(|a, b| {
            b.calls
                .cmp(&a.calls)
                .then(a.sub_feature.cmp(&b.sub_feature))
        });
        faked.extend(faked_flags);

        let mut cases = implemented;
        cases.extend(faked);
        cases.push(ConformanceCase {
            sysno: Sysno::getpid,
            expectation: CaseExpectation::HelperBypass,
            origin: CaseOrigin::Harness,
            calls: 0,
            impact: None,
            sub_feature: None,
        });

        let expected = cell
            .map(|c| ExpectedVerdicts {
                vanilla: c.vanilla.as_ref().map(|t| t.pass),
                planned: match &c.planned {
                    Some(t) => Some(t.pass),
                    // The stored lower bound: a vanilla pass is a planned
                    // pass; a vanilla failure leaves planned open.
                    None => c.vanilla.as_ref().filter(|t| t.pass).map(|t| t.pass),
                },
            })
            .unwrap_or_default();

        ConformanceSuite {
            os: os.name.clone(),
            app: report.app.clone(),
            workload: report.workload,
            linux_pass: cell.map(|c| c.linux_pass).unwrap_or(true),
            tolerated_stubs: stubbable,
            tolerated_stub_flags,
            expected,
            cases,
        }
    }

    /// Builds a suite straight from observed per-syscall invocation
    /// counts — the bridge from a *real* trace (the `ptrace` backend's
    /// [`by_sysno`](../loupe_trace/struct.TraceResult.html#method.by_sysno)
    /// counts) to an executable suite. With no classification available
    /// every observed syscall is held to [`CaseExpectation::Implemented`];
    /// such a suite passes exactly on kernels implementing the whole
    /// observed surface.
    pub fn from_observed_counts(
        app: impl Into<String>,
        workload: Workload,
        counts: &std::collections::BTreeMap<Sysno, u64>,
    ) -> ConformanceSuite {
        let mut cases: Vec<ConformanceCase> = counts
            .iter()
            .map(|(&sysno, &calls)| ConformanceCase {
                sysno,
                expectation: CaseExpectation::Implemented,
                origin: CaseOrigin::Required,
                calls,
                impact: None,
                sub_feature: None,
            })
            .collect();
        cases.sort_by(|a, b| b.calls.cmp(&a.calls).then(a.sysno.cmp(&b.sysno)));
        ConformanceSuite {
            os: "trace".into(),
            app: app.into(),
            workload,
            linux_pass: true,
            tolerated_stubs: SysnoSet::new(),
            tolerated_stub_flags: Vec::new(),
            expected: ExpectedVerdicts::default(),
            cases,
        }
    }

    /// The cases that actually constrain a profile (everything but the
    /// harness check) — the set the minimality property quantifies over.
    pub fn constraint_cases(&self) -> impl Iterator<Item = &ConformanceCase> {
        self.cases
            .iter()
            .filter(|c| c.expectation != CaseExpectation::HelperBypass)
    }

    /// Syscalls held to [`CaseExpectation::Implemented`] as a whole
    /// (flag-granular cases constrain their selector, not the syscall).
    pub fn must_implement(&self) -> SysnoSet {
        self.cases
            .iter()
            .filter(|c| c.expectation == CaseExpectation::Implemented && c.sub_feature.is_none())
            .map(|c| c.sysno)
            .collect()
    }

    /// Syscalls held to [`CaseExpectation::ImplementedOrFaked`].
    pub fn may_fake(&self) -> SysnoSet {
        self.cases
            .iter()
            .filter(|c| {
                c.expectation == CaseExpectation::ImplementedOrFaked && c.sub_feature.is_none()
            })
            .map(|c| c.sysno)
            .collect()
    }

    /// Sub-features held to [`CaseExpectation::Implemented`], sorted.
    pub fn must_implement_flags(&self) -> Vec<SubFeatureKey> {
        let mut keys: Vec<SubFeatureKey> = self
            .cases
            .iter()
            .filter(|c| c.expectation == CaseExpectation::Implemented)
            .filter_map(|c| c.sub_feature)
            .collect();
        keys.sort();
        keys
    }

    /// Sub-features held to [`CaseExpectation::ImplementedOrFaked`],
    /// sorted.
    pub fn may_fake_flags(&self) -> Vec<SubFeatureKey> {
        let mut keys: Vec<SubFeatureKey> = self
            .cases
            .iter()
            .filter(|c| c.expectation == CaseExpectation::ImplementedOrFaked)
            .filter_map(|c| c.sub_feature)
            .collect();
        keys.sort();
        keys
    }

    /// The planned-tier kernel profile reconstructed *from the suite
    /// alone*: the OS surface plus the plan's stub/fake remediation —
    /// tolerated stubs answered `-ENOSYS` deliberately, fake tolerances
    /// shimmed. Byte-equivalent to
    /// [`loupe_plan::remediation_profile`] for the requirement the suite
    /// was generated from.
    pub fn planned_profile(&self, os: &OsSpec) -> KernelProfile {
        let mut profile = KernelProfile::new(
            format!("{}+plan[{}]", os.name, self.app),
            os.supported.clone(),
        );
        profile.stubbed = self.tolerated_stubs.difference(&os.supported);
        profile.faked = self.may_fake().difference(&os.supported);
        for (sysno, holes) in &os.partial {
            profile.set_partial(*sysno, holes.clone());
        }
        let holes = os.all_holes();
        profile.stubbed_flags = self
            .tolerated_stub_flags
            .iter()
            .filter(|k| holes.contains(k))
            .copied()
            .collect();
        profile.faked_flags = self
            .may_fake_flags()
            .into_iter()
            .filter(|k| holes.contains(k))
            .collect();
        profile
    }

    /// Runs the suite on a [`KernelProfile`] — the authoritative runner.
    /// Each probe is classified at the restriction boundary via the
    /// kernel's observation counters, so a fake shim can never satisfy
    /// an [`CaseExpectation::Implemented`] case (on a bare [`Kernel`]
    /// the two answers are indistinguishable; see [`run_cases`]).
    pub fn run_on_profile(&self, profile: &KernelProfile) -> SuiteRun {
        let mut kernel = RestrictedKernel::new(LinuxSim::new(), profile.clone());
        let mut cases = Vec::with_capacity(self.cases.len());
        for case in &self.cases {
            let rejections = kernel.observations().total_rejections();
            let fake_hits = kernel.observations().total_fake_hits();
            let flag_rejections = kernel.observations().total_flag_rejections();
            let flag_fake_hits = kernel.observations().total_flag_fake_hits();
            kernel.syscall(&case.probe());
            // Flag counters are disjoint from syscall counters: a probe
            // tripping a partial-support hole charges the *flag*, a probe
            // on an unimplemented syscall charges the syscall — either
            // way the case saw a rejection (or a fake).
            let observed = if kernel.observations().total_rejections() > rejections
                || kernel.observations().total_flag_rejections() > flag_rejections
            {
                CaseObservation::Rejected
            } else if kernel.observations().total_fake_hits() > fake_hits
                || kernel.observations().total_flag_fake_hits() > flag_fake_hits
            {
                CaseObservation::Faked
            } else {
                CaseObservation::Forwarded
            };
            let pass = match case.expectation {
                CaseExpectation::Implemented | CaseExpectation::HelperBypass => {
                    observed == CaseObservation::Forwarded
                }
                CaseExpectation::ImplementedOrFaked => observed != CaseObservation::Rejected,
            };
            cases.push(CaseRun {
                sysno: case.sysno,
                sub_feature: case.sub_feature,
                expectation: case.expectation,
                observed,
                pass,
            });
        }
        SuiteRun {
            pass: self.linux_pass && cases.iter().all(|c| c.pass),
            cases,
        }
    }

    /// Runs the suite's probes against any [`Kernel`] implementation.
    /// Without a restriction boundary to observe, a case passes when the
    /// kernel answers anything but `-ENOSYS` — a fake success is
    /// indistinguishable from a real one here, so
    /// [`CaseExpectation::Implemented`] degrades to "answered". Use
    /// [`ConformanceSuite::run_on_profile`] when the kernel under test
    /// is profile-shaped.
    pub fn run_cases(&self, kernel: &mut dyn Kernel) -> SuiteRun {
        let mut cases = Vec::with_capacity(self.cases.len());
        for case in &self.cases {
            let outcome = kernel.syscall(&case.probe());
            let rejected = outcome.errno() == Some(Errno::ENOSYS);
            let observed = if rejected {
                CaseObservation::Rejected
            } else {
                CaseObservation::Forwarded
            };
            cases.push(CaseRun {
                sysno: case.sysno,
                sub_feature: case.sub_feature,
                expectation: case.expectation,
                observed,
                pass: !rejected,
            });
        }
        SuiteRun {
            pass: self.linux_pass && cases.iter().all(|c| c.pass),
            cases,
        }
    }

    /// The suite's verdict for one remediation tier of an OS: vanilla
    /// runs on exactly the OS surface, planned on the surface plus the
    /// suite's own stub/fake remediation.
    pub fn verdict(&self, os: &OsSpec, tier: Tier) -> bool {
        let profile = match tier {
            Tier::Vanilla => vanilla_profile(os),
            Tier::Planned => self.planned_profile(os),
        };
        self.run_on_profile(&profile).pass
    }

    /// Compares the suite's executed verdicts against the matrix cell
    /// verdicts it carries; returns the disagreeing tiers (empty means
    /// the generator, the matrix sweep and the planner agree on this
    /// cell). Tiers the matrix never measured are not compared.
    pub fn disagreements(&self, os: &OsSpec) -> Vec<(Tier, bool, bool)> {
        let mut out = Vec::new();
        for (tier, expected) in [
            (Tier::Vanilla, self.expected.vanilla),
            (Tier::Planned, self.expected.planned),
        ] {
            if let Some(matrix_pass) = expected {
                let suite_pass = self.verdict(os, tier);
                if suite_pass != matrix_pass {
                    out.push((tier, suite_pass, matrix_pass));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loupe_apps::registry;
    use loupe_core::TestScript;
    use loupe_core::{AnalysisConfig, Engine};
    use loupe_plan::{measure_cell, os};

    fn report(app: &str, workload: Workload) -> AppReport {
        let model = registry::find(app).unwrap();
        Engine::new(AnalysisConfig::fast())
            .analyze(model.as_ref(), workload)
            .unwrap()
    }

    #[test]
    fn generated_suite_is_minimal_ordered_and_self_describing() {
        let workload = Workload::HealthCheck;
        let rep = report("redis", workload);
        let spec = os::find("kerla").unwrap();
        let suite = ConformanceSuite::generate(&spec, &rep, None);

        assert_eq!(suite.os, "kerla");
        assert_eq!(suite.app, "redis");
        // Minimality: exactly one case per constraint, none for stubs.
        assert_eq!(suite.must_implement(), rep.required().union(&rep.fallbacks));
        assert_eq!(suite.may_fake(), rep.fake_only());
        for case in suite.constraint_cases() {
            assert!(
                !suite.tolerated_stubs.contains(case.sysno)
                    || case.expectation != CaseExpectation::Implemented,
                "stubbable syscalls carry no implemented-constraint"
            );
        }
        // Trace-driven ordering: within the syscall-level implemented
        // block, hotter syscalls come first.
        let implemented: Vec<&ConformanceCase> = suite
            .cases
            .iter()
            .take_while(|c| c.expectation == CaseExpectation::Implemented)
            .filter(|c| c.sub_feature.is_none())
            .collect();
        for w in implemented.windows(2) {
            assert!(
                w[0].calls > w[1].calls || (w[0].calls == w[1].calls && w[0].sysno < w[1].sysno),
                "deterministic order: calls desc then sysno"
            );
        }
        // Flag-granular Implemented cases follow the syscall-level
        // block and mirror the measured required sub-features exactly.
        let flag_cases: Vec<&ConformanceCase> = suite
            .cases
            .iter()
            .take_while(|c| c.expectation == CaseExpectation::Implemented)
            .filter(|c| c.sub_feature.is_some())
            .collect();
        let required_flags: Vec<SubFeatureKey> = {
            let mut keys: Vec<SubFeatureKey> = rep
                .sub_features
                .iter()
                .filter(|(_, class)| !class.stub_ok && !class.fake_ok)
                .map(|(key, _)| *key)
                .collect();
            keys.sort();
            keys.dedup();
            keys
        };
        assert_eq!(suite.must_implement_flags(), required_flags);
        assert!(!flag_cases.is_empty(), "redis requires sub-features");
        let first_flag = suite
            .cases
            .iter()
            .position(|c| c.sub_feature.is_some())
            .unwrap();
        let last_plain_implemented = suite
            .cases
            .iter()
            .rposition(|c| c.sub_feature.is_none() && c.expectation == CaseExpectation::Implemented)
            .unwrap();
        assert!(
            last_plain_implemented < first_flag,
            "flag cases ride after the syscall-level implemented block"
        );
        for case in &flag_cases {
            assert_eq!(case.sub_feature.unwrap().sysno(), case.sysno);
            assert_eq!(case.probe().sub_feature(), case.sub_feature);
        }
        // Stub-tolerated flags carry no case, only the recorded set.
        for key in &suite.tolerated_stub_flags {
            assert!(suite.cases.iter().all(|c| c.sub_feature != Some(*key)));
        }
        // The harness case comes last.
        assert_eq!(
            suite.cases.last().unwrap().expectation,
            CaseExpectation::HelperBypass
        );
    }

    #[test]
    fn suite_verdicts_reproduce_measured_cell_verdicts_for_redis() {
        let workload = Workload::HealthCheck;
        let rep = report("redis", workload);
        let req = loupe_plan::AppRequirement::from_report(&rep);
        let app = registry::find("redis").unwrap();
        let script = TestScript::default();
        for spec in [os::find("kerla").unwrap(), os::find("gvisor").unwrap()] {
            let cell = measure_cell(
                &spec,
                &req,
                app.as_ref(),
                workload,
                true,
                None,
                &script,
                Some(&rep.baseline.features),
            );
            let suite = ConformanceSuite::generate(&spec, &rep, Some(&cell));
            assert_eq!(
                suite.verdict(&spec, Tier::Vanilla),
                cell.passes(Tier::Vanilla),
                "vanilla disagreement on {}",
                spec.name
            );
            assert_eq!(
                suite.verdict(&spec, Tier::Planned),
                cell.passes(Tier::Planned),
                "planned disagreement on {}",
                spec.name
            );
            assert!(suite.disagreements(&spec).is_empty());
        }
    }

    /// The core equivalence the meta-test scales up: for every detailed
    /// app on every catalogued OS, the generated suite's executed
    /// verdicts equal the matrix cell's measured verdicts on both tiers.
    #[test]
    fn suite_verdicts_reproduce_cell_verdicts_across_the_os_catalog() {
        let workload = Workload::HealthCheck;
        let engine = Engine::new(AnalysisConfig::fast());
        let script = TestScript::default();
        let mut checked = 0;
        for app in registry::detailed() {
            let rep = engine.analyze(app.as_ref(), workload).unwrap();
            let req = loupe_plan::AppRequirement::from_report(&rep);
            for spec in os::db() {
                let cell = measure_cell(
                    &spec,
                    &req,
                    app.as_ref(),
                    workload,
                    true,
                    None,
                    &script,
                    Some(&rep.baseline.features),
                );
                let suite = ConformanceSuite::generate(&spec, &rep, Some(&cell));
                assert_eq!(
                    suite.disagreements(&spec),
                    Vec::new(),
                    "suite vs matrix on {} × {}",
                    spec.name,
                    rep.app
                );
                checked += 1;
            }
        }
        assert!(checked >= 100, "the catalog sweep covered {checked} cells");
    }

    #[test]
    fn planned_profile_matches_the_planners_remediation() {
        let workload = Workload::HealthCheck;
        let rep = report("nginx", workload);
        let req = loupe_plan::AppRequirement::from_report(&rep);
        let spec = os::find("fuchsia").unwrap();
        let suite = ConformanceSuite::generate(&spec, &rep, None);
        assert_eq!(
            suite.planned_profile(&spec),
            loupe_plan::remediation_profile(&spec, &req)
        );
    }

    #[test]
    fn fake_shims_satisfy_fake_tolerances_but_not_implemented_constraints() {
        let mut suite = ConformanceSuite::from_observed_counts(
            "t",
            Workload::HealthCheck,
            &[(Sysno::read, 5), (Sysno::write, 9)].into_iter().collect(),
        );
        suite.cases[0].expectation = CaseExpectation::ImplementedOrFaked; // write (hotter)
                                                                          // A profile faking both: the fake tolerance passes, the
                                                                          // implemented constraint does not.
        let mut profile = KernelProfile::new("fakes-only", SysnoSet::new());
        profile.faked.insert(Sysno::read);
        profile.faked.insert(Sysno::write);
        let run = suite.run_on_profile(&profile);
        assert!(!run.pass);
        let write_run = run.cases.iter().find(|c| c.sysno == Sysno::write).unwrap();
        let read_run = run.cases.iter().find(|c| c.sysno == Sysno::read).unwrap();
        assert_eq!(write_run.observed, CaseObservation::Faked);
        assert!(write_run.pass, "fake satisfies ImplementedOrFaked");
        assert_eq!(read_run.observed, CaseObservation::Faked);
        assert!(!read_run.pass, "fake does not satisfy Implemented");
        assert_eq!(run.first_failure(), Some(Sysno::read));
        // On a bare kernel the distinction is impossible: both answered.
        let mut bare = RestrictedKernel::new(LinuxSim::new(), profile);
        let bare_run = suite.run_cases(&mut bare);
        assert!(bare_run.pass, "bare-kernel runner accepts any answer");
    }

    #[test]
    fn helper_bypass_reaches_the_backing_kernel_on_an_empty_profile() {
        let rep = report("weborf", Workload::HealthCheck);
        let spec = OsSpec::new("nothing", "0", SysnoSet::new());
        let suite = ConformanceSuite::generate(&spec, &rep, None);
        let run = suite.run_on_profile(&vanilla_profile(&spec));
        let harness = run
            .cases
            .iter()
            .find(|c| c.expectation == CaseExpectation::HelperBypass)
            .unwrap();
        assert_eq!(harness.observed, CaseObservation::Forwarded);
        assert!(harness.pass, "helpers bypass even an empty profile");
        assert!(!run.pass, "the constraint cases still fail");
    }

    #[test]
    fn linux_failure_fails_the_suite_by_fiat() {
        let mut suite = ConformanceSuite::from_observed_counts(
            "broken",
            Workload::HealthCheck,
            &std::collections::BTreeMap::new(),
        );
        suite.linux_pass = false;
        let full = OsSpec::new("everything", "1", Sysno::all().collect());
        assert!(!suite.run_on_profile(&vanilla_profile(&full)).pass);
    }

    #[test]
    fn suite_json_roundtrip_is_exact() {
        let rep = report("redis", Workload::HealthCheck);
        let spec = os::find("unikraft").unwrap();
        let suite = ConformanceSuite::generate(&spec, &rep, None);
        let json = serde_json::to_string_pretty(&suite).unwrap();
        let back: ConformanceSuite = serde_json::from_str(&json).unwrap();
        assert_eq!(back, suite);
    }
}
