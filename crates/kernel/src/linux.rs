//! `LinuxSim`: the reference kernel implementing the [`Kernel`] trait.
//!
//! Roughly one hundred system calls get real semantics backed by the FD
//! table, VFS, memory manager, network, signal, futex and rlimit models;
//! the rest return generic success. The fidelity bar is behavioural: the
//! consequences of *not* running a syscall (because the Loupe engine
//! stubbed or faked it) must match what the paper observed on real Linux.
//!
//! ## ABI liberties
//!
//! The model has no user address space, so pointer-typed arguments are
//! replaced by their *values*:
//!
//! * path arguments travel in [`Invocation::path`],
//! * write buffers travel in [`Invocation::data`],
//! * `bind` takes the port directly in `args[1]`,
//! * out-parameters come back in [`SysOutcome::payload`].

use bytes::Bytes;
use loupe_syscalls::{Errno, Sysno};

use crate::clock::{base_cost, VirtualClock, BYTES_PER_UNIT};
use crate::fd::{FdEntry, FdKind, FdTable};
use crate::futex::{FutexTable, FUTEX_WAIT, FUTEX_WAKE};
use crate::invocation::{Invocation, Payload, SysOutcome};
use crate::limits::RlimitTable;
use crate::mem::MemoryManager;
use crate::net::{ConnId, HostPort, PipeTable};
use crate::resources::ResourceUsage;
use crate::signals::SignalState;
use crate::vfs::Vfs;
use crate::{err, ok, Kernel};

/// `O_CREAT`.
pub const O_CREAT: u64 = 0x40;
/// `O_APPEND`.
pub const O_APPEND: u64 = 0x400;
/// `O_NONBLOCK`.
pub const O_NONBLOCK: u64 = 0x800;

const FIONBIO: u64 = 0x5421;
const FIOASYNC: u64 = 0x5452;
const TCGETS: u64 = 0x5401;
const TCSETS: u64 = 0x5402;
const TIOCGWINSZ: u64 = 0x5413;

/// The simulated Linux kernel.
///
/// # Examples
///
/// ```
/// use loupe_kernel::{Invocation, Kernel, LinuxSim};
/// use loupe_syscalls::Sysno;
///
/// let mut k = LinuxSim::new();
/// let fd = k
///     .syscall(&Invocation::new(Sysno::openat, [0, 0, 0x40, 0, 0, 0]).with_path("/tmp/x"))
///     .ret;
/// assert!(fd >= 3);
/// ```
#[derive(Debug)]
pub struct LinuxSim {
    clock: VirtualClock,
    usage: ResourceUsage,
    fds: FdTable,
    /// The filesystem, public so app models can pre-populate content.
    pub vfs: Vfs,
    mem: MemoryManager,
    net: HostPort,
    pipes: PipeTable,
    signals: SignalState,
    futexes: FutexTable,
    limits: RlimitTable,
    pid: i64,
    next_tid: i64,
    uid: u64,
    gid: u64,
    euid: u64,
    egid: u64,
    sid: i64,
    tls_fs: u64,
    prctl_flags: std::collections::BTreeMap<u64, u64>,
    tid_address: u64,
    robust_list: u64,
    children: Vec<i64>,
    rng_state: u64,
}

impl Default for LinuxSim {
    fn default() -> Self {
        LinuxSim::new()
    }
}

impl LinuxSim {
    /// Creates a fresh kernel with an empty VFS and default limits.
    pub fn new() -> LinuxSim {
        LinuxSim {
            clock: VirtualClock::new(),
            usage: ResourceUsage::new(),
            fds: FdTable::new(),
            vfs: Vfs::new(),
            mem: MemoryManager::new(),
            net: HostPort::new(),
            pipes: PipeTable::default(),
            signals: SignalState::new(),
            futexes: FutexTable::new(),
            limits: RlimitTable::new(),
            pid: 4242,
            next_tid: 4243,
            uid: 0,
            gid: 0,
            euid: 0,
            egid: 0,
            sid: 0,
            tls_fs: 0,
            prctl_flags: std::collections::BTreeMap::new(),
            tid_address: 0,
            robust_list: 0,
            children: Vec::new(),
            rng_state: 0x5eed_1234_abcd_0001,
        }
    }

    /// Read-only view of futex statistics (diagnostics for tests).
    pub fn futexes(&self) -> &FutexTable {
        &self.futexes
    }

    /// Read-only view of the FD table (diagnostics for tests).
    pub fn fd_table(&self) -> &FdTable {
        &self.fds
    }

    /// Read-only view of the memory manager (diagnostics for tests).
    pub fn memory(&self) -> &MemoryManager {
        &self.mem
    }

    fn alloc_fd(&mut self, entry: FdEntry) -> SysOutcome {
        match self.fds.alloc(entry, self.limits.nofile()) {
            Some(fd) => {
                self.usage.add_fd();
                ok(fd as i64)
            }
            None => err(Errno::EMFILE),
        }
    }

    fn do_open(&mut self, inv: &Invocation, flags: u64) -> SysOutcome {
        let Some(path) = inv.path.clone() else {
            return err(Errno::EFAULT);
        };
        if path == "/dev/tty" {
            return self.alloc_fd(FdEntry::new(FdKind::Tty));
        }
        if !self.vfs.exists(&path) {
            if flags & O_CREAT == 0 {
                return err(Errno::ENOENT);
            }
            self.vfs.add_file(&path, Vec::new());
        }
        if self.vfs.is_dir(&path) && flags & O_CREAT != 0 {
            return err(Errno::EISDIR);
        }
        let mut entry = FdEntry::new(FdKind::File {
            path,
            offset: 0,
            append: flags & O_APPEND != 0,
        });
        entry.nonblocking = flags & O_NONBLOCK != 0;
        self.alloc_fd(entry)
    }

    fn do_read(&mut self, fd: i32, len: u64) -> SysOutcome {
        let Some(entry) = self.fds.get_mut(fd) else {
            return err(Errno::EBADF);
        };
        match &mut entry.kind {
            FdKind::Tty => ok(0), // EOF on stdin
            FdKind::File { path, offset, .. } => {
                let p = path.clone();
                let off = *offset;
                match self.vfs.read_at(&p, off, len) {
                    Some(bytes) => {
                        let n = bytes.len() as i64;
                        if let Some(FdKind::File { offset, .. }) =
                            self.fds.get_mut(fd).map(|e| &mut e.kind)
                        {
                            *offset += n as u64;
                        }
                        self.clock.advance(n as u64 / BYTES_PER_UNIT);
                        SysOutcome::with_payload(n, Payload::Bytes(bytes))
                    }
                    None => err(Errno::EISDIR),
                }
            }
            FdKind::Conn(id) => {
                let id = *id;
                match self.net.app_recv(id) {
                    Some(bytes) => {
                        let n = bytes.len() as i64;
                        self.clock.advance(n as u64 / BYTES_PER_UNIT);
                        SysOutcome::with_payload(n, Payload::Bytes(bytes))
                    }
                    None => err(Errno::EAGAIN),
                }
            }
            FdKind::PipeRead(id) => {
                let id = *id;
                match self.pipes.read(id) {
                    Some(Some(bytes)) => {
                        let n = bytes.len() as i64;
                        SysOutcome::with_payload(n, Payload::Bytes(bytes))
                    }
                    Some(None) => err(Errno::EAGAIN),
                    None => err(Errno::EBADF),
                }
            }
            FdKind::EventFd(count) => {
                if *count > 0 {
                    let v = *count;
                    *count = 0;
                    SysOutcome::with_payload(8, Payload::U64(v))
                } else {
                    err(Errno::EAGAIN)
                }
            }
            FdKind::Listener { .. } | FdKind::Epoll(_) | FdKind::PipeWrite(_) => err(Errno::EINVAL),
            _ => ok(0),
        }
    }

    fn do_write(&mut self, fd: i32, inv: &Invocation) -> SysOutcome {
        // Cap the synthesised buffer when the caller passed only a length
        // (a real kernel would fault on unmapped user memory instead).
        let data = inv
            .data
            .clone()
            .unwrap_or_else(|| Bytes::from(vec![0u8; inv.args[2].min(1 << 20) as usize]));
        let len = data.len() as u64;
        self.clock.advance(len / BYTES_PER_UNIT);
        let Some(entry) = self.fds.get_mut(fd) else {
            return err(Errno::EBADF);
        };
        match &mut entry.kind {
            FdKind::Tty => {
                let text = String::from_utf8_lossy(&data).into_owned();
                self.net.console.push(text);
                ok(len as i64)
            }
            FdKind::File {
                path,
                offset,
                append,
            } => {
                let p = path.clone();
                let off = if *append {
                    self.vfs.size(&p).unwrap_or(0)
                } else {
                    *offset
                };
                match self.vfs.write_at(&p, off, &data) {
                    Some(n) => {
                        if let Some(FdKind::File { offset, .. }) =
                            self.fds.get_mut(fd).map(|e| &mut e.kind)
                        {
                            *offset = off + n;
                        }
                        ok(n as i64)
                    }
                    None => err(Errno::EISDIR),
                }
            }
            FdKind::Conn(id) => {
                let id = *id;
                match self.net.app_send(id, data) {
                    Some(n) => ok(n as i64),
                    None => err(Errno::EPIPE),
                }
            }
            FdKind::PipeWrite(id) => {
                let id = *id;
                match self.pipes.write(id, data) {
                    Some(n) => ok(n as i64),
                    None => err(Errno::EPIPE),
                }
            }
            FdKind::EventFd(count) => {
                *count += 1;
                ok(8)
            }
            // An outbound *connected* client socket: the remote end is
            // outside the simulation, so writes are sinked. Writing to an
            // unconnected socket is ENOTCONN — which is how a faked
            // `connect` surfaces (HAProxy's backend path).
            FdKind::Listener {
                connected: true, ..
            } => ok(len as i64),
            FdKind::Listener { .. } => err(Errno::ENOTCONN),
            _ => err(Errno::EINVAL),
        }
    }

    fn do_close(&mut self, fd: i32) -> SysOutcome {
        match self.fds.close(fd) {
            Some(entry) => {
                self.usage.release_fd();
                match entry.kind {
                    FdKind::Conn(id) => self.net.app_close(id),
                    FdKind::PipeRead(id) => self.pipes.close_end(id, true),
                    FdKind::PipeWrite(id) => self.pipes.close_end(id, false),
                    _ => {}
                }
                ok(0)
            }
            None => err(Errno::EBADF),
        }
    }

    fn fd_ready(&self, fd: i32) -> bool {
        match self.fds.get(fd).map(|e| &e.kind) {
            Some(FdKind::Listener {
                port,
                listening: true,
                ..
            }) => self.net.app_has_backlog(*port),
            Some(FdKind::Conn(id)) => self.net.app_has_data(*id),
            Some(FdKind::PipeRead(id)) => self.pipes.has_data(*id),
            Some(FdKind::EventFd(count)) => *count > 0,
            _ => false,
        }
    }

    fn do_epoll_wait(&mut self, epfd: i32) -> SysOutcome {
        let interest: Vec<i32> = match self.fds.get(epfd).map(|e| &e.kind) {
            Some(FdKind::Epoll(set)) => set.iter().copied().collect(),
            _ => return err(Errno::EBADF),
        };
        let ready: Vec<u64> = interest
            .into_iter()
            .filter(|&fd| self.fd_ready(fd))
            .map(|fd| fd as u64)
            .collect();
        if ready.is_empty() {
            // Model a short blocking wait.
            self.clock.advance(20);
            return ok(0);
        }
        SysOutcome::with_payload(ready.len() as i64, Payload::List(ready))
    }

    fn do_accept(&mut self, fd: i32) -> SysOutcome {
        let port = match self.fds.get(fd).map(|e| &e.kind) {
            Some(FdKind::Listener {
                port,
                listening: true,
                ..
            }) => *port,
            Some(FdKind::Listener { .. }) => return err(Errno::EINVAL),
            Some(_) => return err(Errno::ENOTSOCK),
            None => return err(Errno::EBADF),
        };
        match self.net.app_accept(port) {
            Some(conn) => self.alloc_fd(FdEntry::new(FdKind::Conn(conn))),
            None => err(Errno::EAGAIN),
        }
    }

    fn do_fcntl(&mut self, inv: &Invocation) -> SysOutcome {
        let fd = inv.args[0] as i32;
        let cmd = inv.args[1];
        if self.fds.get(fd).is_none() {
            return err(Errno::EBADF);
        }
        match cmd {
            0 | 1030 => {
                // F_DUPFD / F_DUPFD_CLOEXEC
                let entry = self.fds.get(fd).cloned().expect("checked above");
                match self
                    .fds
                    .alloc_from(entry, inv.args[2] as usize, self.limits.nofile())
                {
                    Some(nfd) => {
                        self.usage.add_fd();
                        ok(nfd as i64)
                    }
                    None => err(Errno::EMFILE),
                }
            }
            1 => ok(self.fds.get(fd).expect("checked").cloexec as i64), // F_GETFD
            2 => {
                self.fds.get_mut(fd).expect("checked").cloexec = inv.args[2] & 1 != 0; // F_SETFD
                ok(0)
            }
            3 => {
                let nb = self.fds.get(fd).expect("checked").nonblocking;
                ok(if nb { O_NONBLOCK as i64 } else { 0 }) // F_GETFL
            }
            4 => {
                self.fds.get_mut(fd).expect("checked").nonblocking = inv.args[2] & O_NONBLOCK != 0; // F_SETFL
                ok(0)
            }
            5..=7 => ok(0), // F_GETLK / F_SETLK / F_SETLKW
            _ => err(Errno::EINVAL),
        }
    }

    fn do_ioctl(&mut self, inv: &Invocation) -> SysOutcome {
        let fd = inv.args[0] as i32;
        let req = inv.args[1];
        let Some(entry) = self.fds.get_mut(fd) else {
            return err(Errno::EBADF);
        };
        let is_tty = matches!(entry.kind, FdKind::Tty);
        match req {
            TCGETS | TCSETS => {
                if is_tty {
                    SysOutcome::with_payload(0, Payload::U64(80))
                } else {
                    err(Errno::ENOTTY)
                }
            }
            TIOCGWINSZ => {
                if is_tty {
                    SysOutcome::with_payload(0, Payload::Pair(80, 24))
                } else {
                    err(Errno::ENOTTY)
                }
            }
            FIONBIO => {
                entry.nonblocking = inv.args[2] != 0;
                ok(0)
            }
            FIOASYNC => ok(0),
            _ => err(Errno::EINVAL),
        }
    }

    fn do_futex(&mut self, inv: &Invocation) -> SysOutcome {
        let addr = inv.args[0];
        let op = inv.args[1] & 0x7f;
        let val = inv.args[2] as u32;
        match op {
            FUTEX_WAIT | 9 => match self.futexes.wait(addr, val) {
                Ok(wait_cost) => {
                    self.clock.advance(wait_cost);
                    ok(0)
                }
                Err(()) => err(Errno::EAGAIN),
            },
            FUTEX_WAKE | 10 => ok(self.futexes.wake(addr, val) as i64),
            _ => ok(0),
        }
    }

    fn next_random(&mut self) -> u64 {
        // xorshift64*, deterministic across replicas.
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn dispatch(&mut self, inv: &Invocation) -> SysOutcome {
        use Sysno as S;
        let a = inv.args;
        match inv.sysno {
            S::read | S::pread64 | S::readv | S::preadv | S::recvfrom | S::recvmsg => {
                self.do_read(a[0] as i32, a[2].max(a[1]).max(1))
            }
            S::write | S::pwrite64 | S::writev | S::pwritev | S::sendto | S::sendmsg => {
                self.do_write(a[0] as i32, inv)
            }
            S::open | S::creat => self.do_open(inv, a[1]),
            S::openat | S::openat2 => self.do_open(inv, a[2]),
            S::close => self.do_close(a[0] as i32),
            S::sendfile => {
                let (out_fd, in_fd, count) = (a[0] as i32, a[1] as i32, a[3]);
                let content = match self.fds.get(in_fd).map(|e| &e.kind) {
                    Some(FdKind::File { path, offset, .. }) => {
                        self.vfs.read_at(&path.clone(), *offset, count)
                    }
                    _ => None,
                };
                match content {
                    Some(bytes) => {
                        let forged = Invocation::new(S::write, [out_fd as u64, 0, 0, 0, 0, 0])
                            .with_data(bytes);
                        self.do_write(out_fd, &forged)
                    }
                    None => err(Errno::EBADF),
                }
            }
            S::socket => self.alloc_fd(FdEntry::new(FdKind::Listener {
                port: 0,
                listening: false,
                connected: false,
                sockopt: false,
            })),
            S::bind => {
                let fd = a[0] as i32;
                let port = a[1] as u16;
                match self.fds.get_mut(fd).map(|e| &mut e.kind) {
                    Some(FdKind::Listener { port: p, .. }) => {
                        *p = port;
                        ok(0)
                    }
                    Some(_) => err(Errno::ENOTSOCK),
                    None => err(Errno::EBADF),
                }
            }
            S::listen => {
                let fd = a[0] as i32;
                match self.fds.get_mut(fd).map(|e| &mut e.kind) {
                    Some(FdKind::Listener {
                        port, listening, ..
                    }) => {
                        *listening = true;
                        let port = *port;
                        self.net.app_listen(port);
                        ok(0)
                    }
                    Some(_) => err(Errno::ENOTSOCK),
                    None => err(Errno::EBADF),
                }
            }
            S::accept | S::accept4 => self.do_accept(a[0] as i32),
            S::connect => match self.fds.get_mut(a[0] as i32).map(|e| &mut e.kind) {
                Some(FdKind::Listener { connected, .. }) => {
                    *connected = true;
                    ok(0)
                }
                Some(_) => err(Errno::ENOTSOCK),
                None => err(Errno::EBADF),
            },
            S::setsockopt => {
                if let Some(FdKind::Listener { sockopt, .. }) =
                    self.fds.get_mut(a[0] as i32).map(|e| &mut e.kind)
                {
                    *sockopt = true;
                }
                ok(0)
            }
            S::getsockopt => {
                // Reads back whether options were applied — the check
                // Apache-style servers use, which a faked setsockopt
                // cannot satisfy.
                match self.fds.get(a[0] as i32).map(|e| &e.kind) {
                    Some(FdKind::Listener { sockopt, .. }) => {
                        SysOutcome::with_payload(0, Payload::U64(u64::from(*sockopt)))
                    }
                    Some(_) => SysOutcome::with_payload(0, Payload::U64(0)),
                    None => err(Errno::EBADF),
                }
            }
            S::getsockname | S::getpeername => ok(0),
            S::shutdown => {
                if let Some(FdKind::Conn(id)) = self.fds.get(a[0] as i32).map(|e| &e.kind) {
                    self.net.app_close(*id);
                }
                ok(0)
            }
            S::socketpair | S::pipe | S::pipe2 => {
                let pipe = self.pipes.create();
                let limit = self.limits.nofile();
                let Some(rfd) = self.fds.alloc(FdEntry::new(FdKind::PipeRead(pipe)), limit) else {
                    return err(Errno::EMFILE);
                };
                self.usage.add_fd();
                let Some(wfd) = self.fds.alloc(FdEntry::new(FdKind::PipeWrite(pipe)), limit) else {
                    return err(Errno::EMFILE);
                };
                self.usage.add_fd();
                SysOutcome::with_payload(0, Payload::Fds([rfd, wfd]))
            }
            S::epoll_create | S::epoll_create1 => {
                self.alloc_fd(FdEntry::new(FdKind::Epoll(Default::default())))
            }
            S::epoll_ctl => {
                let (epfd, op, fd) = (a[0] as i32, a[1], a[2] as i32);
                if self.fds.get(fd).is_none() {
                    return err(Errno::EBADF);
                }
                match self.fds.get_mut(epfd).map(|e| &mut e.kind) {
                    Some(FdKind::Epoll(set)) => {
                        match op {
                            1 => {
                                set.insert(fd); // EPOLL_CTL_ADD
                            }
                            2 => {
                                set.remove(&fd); // EPOLL_CTL_DEL
                            }
                            3 => {
                                set.insert(fd); // EPOLL_CTL_MOD
                            }
                            _ => return err(Errno::EINVAL),
                        }
                        ok(0)
                    }
                    _ => err(Errno::EBADF),
                }
            }
            S::epoll_wait | S::epoll_pwait => self.do_epoll_wait(a[0] as i32),
            S::poll | S::ppoll | S::select | S::pselect6 => {
                if self.net.any_pending_work() {
                    ok(1)
                } else {
                    self.clock.advance(20);
                    ok(0)
                }
            }
            S::dup => {
                let Some(entry) = self.fds.get(a[0] as i32).cloned() else {
                    return err(Errno::EBADF);
                };
                self.alloc_fd(entry)
            }
            S::dup2 | S::dup3 => {
                let Some(entry) = self.fds.get(a[0] as i32).cloned() else {
                    return err(Errno::EBADF);
                };
                let newfd = a[1] as i32;
                if self.fds.install(newfd, entry).is_none() {
                    self.usage.add_fd();
                }
                ok(newfd as i64)
            }
            S::fcntl => self.do_fcntl(inv),
            S::ioctl => self.do_ioctl(inv),

            S::mmap => {
                // Cap at 1 TiB: larger requests would not be satisfiable
                // and would overflow the page-rounding arithmetic.
                let len = a[1].min(1 << 40);
                let addr = self.mem.mmap(len);
                self.usage.add_rss(len.div_ceil(4096) * 4096);
                ok(addr as i64)
            }
            S::munmap => match self.mem.munmap(a[0]) {
                Some(freed) => {
                    self.usage.release_rss(freed);
                    ok(0)
                }
                None => err(Errno::EINVAL),
            },
            S::mremap => match self.mem.mremap(a[0], a[2]) {
                Some((new_addr, delta)) => {
                    if delta >= 0 {
                        self.usage.add_rss(delta as u64);
                    } else {
                        self.usage.release_rss((-delta) as u64);
                    }
                    ok(new_addr as i64)
                }
                None => err(Errno::EFAULT),
            },
            S::brk => {
                if a[0] == 0 {
                    return SysOutcome::with_payload(
                        self.mem.brk_query() as i64,
                        Payload::U64(self.mem.brk_query()),
                    );
                }
                let (new_brk, delta) = self.mem.brk_set(a[0]);
                if delta >= 0 {
                    self.usage.add_rss(delta as u64);
                } else {
                    self.usage.release_rss((-delta) as u64);
                }
                SysOutcome::with_payload(new_brk as i64, Payload::U64(new_brk))
            }
            // mprotect echoes the protection it applied (observable via
            // /proc/self/maps on real Linux); a fake cannot produce it.
            S::mprotect => SysOutcome::with_payload(0, Payload::U64(a[2])),
            S::madvise | S::msync | S::mlock | S::munlock => ok(0),
            // mincore fills a residency vector — out-of-band data a fake
            // cannot provide.
            S::mincore => {
                let pages = a[1].div_ceil(4096).clamp(1, 4096) as usize;
                SysOutcome::with_payload(0, Payload::Bytes(Bytes::from(vec![1u8; pages])))
            }

            S::getrlimit => {
                let (cur, max) = self.limits.get(a[0]);
                SysOutcome::with_payload(0, Payload::Pair(cur, max))
            }
            S::setrlimit => {
                if self.limits.set(a[0], a[1], a[2].max(a[1])) {
                    ok(0)
                } else {
                    err(Errno::EPERM)
                }
            }
            S::prlimit64 => {
                let res = a[1];
                let (old_cur, old_max) = self.limits.get(res);
                if a[2] != 0 && !self.limits.set(res, a[2], a[3].max(a[2])) {
                    return err(Errno::EPERM);
                }
                SysOutcome::with_payload(0, Payload::Pair(old_cur, old_max))
            }
            S::getrusage => SysOutcome::with_payload(0, Payload::U64(self.usage.cur_rss)),
            S::sysinfo => SysOutcome::with_payload(0, Payload::U64(16 << 30)),
            S::times => ok(self.clock.now() as i64),
            S::sched_getaffinity => SysOutcome::with_payload(0, Payload::U64(0b1111)),
            S::sched_yield
            | S::sched_setaffinity
            | S::setpriority
            | S::getpriority
            | S::sched_setscheduler
            | S::sched_getscheduler
            | S::sched_setparam
            | S::sched_getparam => ok(0),
            S::nanosleep | S::clock_nanosleep => {
                self.clock.advance(50);
                ok(0)
            }
            S::clock_gettime | S::gettimeofday => {
                SysOutcome::with_payload(0, Payload::U64(self.clock.now()))
            }
            S::time => ok(self.clock.now() as i64),
            S::clock_getres => SysOutcome::with_payload(0, Payload::U64(1)),

            S::rt_sigaction => {
                let old = self.signals.set_handler(a[0] as i32, a[1]);
                SysOutcome::with_payload(0, Payload::U64(old))
            }
            S::rt_sigprocmask => {
                let old = self.signals.set_mask(a[0], a[1]);
                SysOutcome::with_payload(0, Payload::U64(old))
            }
            S::rt_sigsuspend | S::pause => {
                if !self.net.any_pending_work() {
                    // Sleep a quantum waiting for a signal; cheap because
                    // the process is off-CPU.
                    self.clock.advance(5);
                }
                err(Errno::EINTR)
            }
            S::sigaltstack => {
                self.signals.install_altstack();
                ok(0)
            }
            S::rt_sigpending | S::rt_sigreturn => ok(0),
            // rt_sigtimedwait delivers the signal number plus siginfo.
            S::rt_sigtimedwait => SysOutcome::with_payload(15, Payload::U64(15)),

            S::futex => self.do_futex(inv),
            S::set_tid_address => {
                self.tid_address = a[0];
                ok(self.pid)
            }
            S::set_robust_list => {
                self.robust_list = a[0];
                ok(0)
            }
            S::get_robust_list => SysOutcome::with_payload(0, Payload::U64(self.robust_list)),

            S::arch_prctl => match a[0] {
                0x1002 => {
                    self.tls_fs = a[1];
                    // Plant the TLS canary: user code "reads %fs:0" via
                    // mem_load; a faked ARCH_SET_FS leaves it unmapped and
                    // the first TLS access faults (§5.4: the one
                    // arch_prctl feature everything needs).
                    self.futexes.set_value(a[1], 0x715);
                    ok(0)
                }
                0x1003 => SysOutcome::with_payload(0, Payload::U64(self.tls_fs)),
                _ => err(Errno::EINVAL),
            },
            S::prctl => {
                self.prctl_flags.insert(a[0], a[1]);
                ok(0)
            }

            S::clone | S::clone3 | S::fork | S::vfork => {
                let tid = self.next_tid;
                self.next_tid += 1;
                self.children.push(tid);
                // Thread stacks are resident memory.
                self.usage.add_rss(512 * 1024);
                ok(tid)
            }
            // A successful execve never returns; the model signals "image
            // loaded" through the payload, which a *faked* execve cannot
            // produce — execve is therefore never fakeable, like on real
            // hardware.
            S::execve | S::execveat => {
                SysOutcome::with_payload(0, Payload::Text("image-loaded".into()))
            }
            S::wait4 | S::waitid => match self.children.pop() {
                Some(tid) => ok(tid),
                None => err(Errno::ECHILD),
            },
            S::exit | S::exit_group => ok(0),
            S::kill | S::tkill | S::tgkill => ok(0),

            S::getpid => ok(self.pid),
            S::gettid => ok(self.pid),
            S::getppid => ok(1),
            S::getpgrp | S::getpgid => ok(self.pid),
            S::setpgid => ok(0),
            S::getuid => ok(self.uid as i64),
            S::geteuid => ok(self.euid as i64),
            S::getgid => ok(self.gid as i64),
            S::getegid => ok(self.egid as i64),
            S::setuid => {
                self.uid = a[0];
                self.euid = a[0];
                ok(0)
            }
            S::setgid => {
                self.gid = a[0];
                self.egid = a[0];
                ok(0)
            }
            S::setreuid
            | S::setregid
            | S::setresuid
            | S::setresgid
            | S::setgroups
            | S::setfsuid
            | S::setfsgid => ok(0),
            S::getgroups | S::getresuid | S::getresgid => ok(0),
            S::setsid => {
                self.sid = self.pid;
                ok(self.sid)
            }
            S::getsid => ok(self.sid),
            S::capget | S::capset => ok(0),

            S::uname => {
                SysOutcome::with_payload(0, Payload::Text("Linux 5.15.0-sim x86_64".into()))
            }
            S::getcwd => SysOutcome::with_payload(0, Payload::Text("/".into())),
            S::chdir | S::fchdir => ok(0),
            S::umask => ok(self.vfs.set_umask(a[0] as u32) as i64),
            S::getrandom => {
                let len = a[1].min(4096);
                let mut buf = Vec::with_capacity(len as usize);
                while buf.len() < len as usize {
                    buf.extend_from_slice(&self.next_random().to_le_bytes());
                }
                buf.truncate(len as usize);
                SysOutcome::with_payload(len as i64, Payload::Bytes(Bytes::from(buf)))
            }

            S::stat
            | S::lstat
            | S::statx
            | S::newfstatat
            | S::access
            | S::faccessat
            | S::faccessat2 => {
                let Some(path) = inv.path.as_deref() else {
                    return err(Errno::EFAULT);
                };
                match self.vfs.size(path) {
                    Some(size) => SysOutcome::with_payload(0, Payload::U64(size)),
                    None => err(Errno::ENOENT),
                }
            }
            S::fstat => {
                let fd = a[0] as i32;
                match self.fds.get(fd).map(|e| &e.kind) {
                    Some(FdKind::File { path, .. }) => {
                        let size = self.vfs.size(path).unwrap_or(0);
                        SysOutcome::with_payload(0, Payload::U64(size))
                    }
                    Some(_) => SysOutcome::with_payload(0, Payload::U64(0)),
                    None => err(Errno::EBADF),
                }
            }
            S::statfs | S::fstatfs => SysOutcome::with_payload(0, Payload::U64(1 << 30)),
            S::lseek => {
                let fd = a[0] as i32;
                let pos = a[1];
                match self.fds.get_mut(fd).map(|e| &mut e.kind) {
                    Some(FdKind::File { offset, .. }) => {
                        *offset = pos;
                        ok(pos as i64)
                    }
                    Some(_) => err(Errno::ESPIPE),
                    None => err(Errno::EBADF),
                }
            }
            S::mkdir | S::mkdirat => {
                if let Some(path) = inv.path.as_deref() {
                    self.vfs.mkdir(path);
                }
                ok(0)
            }
            S::rmdir => ok(0),
            S::unlink | S::unlinkat => {
                let Some(path) = inv.path.as_deref() else {
                    return err(Errno::EFAULT);
                };
                if self.vfs.unlink(path) {
                    ok(0)
                } else {
                    err(Errno::ENOENT)
                }
            }
            S::rename | S::renameat | S::renameat2 => ok(0),
            S::link | S::symlink | S::symlinkat | S::linkat => ok(0),
            S::readlink | S::readlinkat => {
                if inv.path.as_deref() == Some("/proc/self/exe") {
                    SysOutcome::with_payload(12, Payload::Text("/usr/bin/app".into()))
                } else {
                    err(Errno::EINVAL)
                }
            }
            S::getdents | S::getdents64 => {
                let fd = a[0] as i32;
                match self.fds.get(fd).map(|e| &e.kind) {
                    Some(FdKind::File { path, .. }) => {
                        let names = self.vfs.list(&path.clone()).join("\n");
                        let n = names.len() as i64;
                        SysOutcome::with_payload(n, Payload::Text(names))
                    }
                    Some(_) => err(Errno::ENOTDIR),
                    None => err(Errno::EBADF),
                }
            }
            // flock hands back a lock handle (the in-kernel lock record);
            // a faked lock has nothing to hand back.
            S::flock => match self.fds.get(a[0] as i32).map(|e| &e.kind) {
                Some(FdKind::File { .. }) => SysOutcome::with_payload(0, Payload::U64(1)),
                Some(_) => err(Errno::EINVAL),
                None => err(Errno::EBADF),
            },
            S::ftruncate
            | S::truncate
            | S::fallocate
            | S::fsync
            | S::fdatasync
            | S::fadvise64
            | S::sync
            | S::syncfs
            | S::utime
            | S::utimes
            | S::utimensat
            | S::futimesat
            | S::chmod
            | S::fchmod
            | S::fchmodat
            | S::chown
            | S::fchown
            | S::fchownat
            | S::lchown => ok(0),

            S::eventfd | S::eventfd2 => self.alloc_fd(FdEntry::new(FdKind::EventFd(a[0]))),
            S::timerfd_create => self.alloc_fd(FdEntry::new(FdKind::TimerFd)),
            S::timerfd_settime | S::timerfd_gettime => {
                match self.fds.get(a[0] as i32).map(|e| &e.kind) {
                    Some(FdKind::TimerFd) => ok(0),
                    Some(_) => err(Errno::EINVAL),
                    None => err(Errno::EBADF),
                }
            }
            S::signalfd | S::signalfd4 => self.alloc_fd(FdEntry::new(FdKind::SignalFd)),
            S::inotify_init | S::inotify_init1 => self.alloc_fd(FdEntry::new(FdKind::Inotify)),
            S::inotify_add_watch => ok(1),
            S::inotify_rm_watch => ok(0),
            S::memfd_create => self.alloc_fd(FdEntry::new(FdKind::MemFd(0))),

            S::io_setup | S::io_destroy | S::io_submit | S::io_getevents | S::io_cancel => ok(0),
            S::alarm
            | S::getitimer
            | S::setitimer
            | S::timer_create
            | S::timer_settime
            | S::timer_gettime
            | S::timer_delete => ok(0),
            S::personality | S::_sysctl | S::sysfs | S::syslog | S::ustat => ok(0),
            S::membarrier | S::rseq | S::getcpu | S::seccomp => ok(0),

            // Everything else: generic success. The interposition layer is
            // what decides whether these are interesting.
            _ => ok(0),
        }
    }
}

impl Kernel for LinuxSim {
    fn syscall(&mut self, inv: &Invocation) -> SysOutcome {
        self.usage.total_syscalls += 1;
        self.clock.advance(base_cost(inv.sysno));
        self.dispatch(inv)
    }

    fn charge(&mut self, cost: u64) {
        self.clock.advance(cost);
    }

    fn now(&self) -> u64 {
        self.clock.now()
    }

    fn usage(&self) -> ResourceUsage {
        self.usage
    }

    fn host_mut(&mut self) -> &mut HostPort {
        &mut self.net
    }

    fn mem_store(&mut self, addr: u64, val: u32) {
        self.futexes.set_value(addr, val);
    }

    fn mem_load(&self, addr: u64) -> u32 {
        self.futexes.value(addr)
    }
}

/// Extension helpers app models use for futex words (standing in for
/// user-space atomic memory, which the simulator does not have).
impl LinuxSim {
    /// Reads a futex word.
    pub fn futex_value(&self, addr: u64) -> u32 {
        self.futexes.value(addr)
    }

    /// Writes a futex word (an app-side atomic store).
    pub fn set_futex_value(&mut self, addr: u64, val: u32) {
        self.futexes.set_value(addr, val);
    }

    /// Pre-populates a connected client, bypassing the host API (tests).
    pub fn debug_connect(&mut self, port: u16) -> Option<ConnId> {
        self.net.connect(port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inv(s: Sysno, args: [u64; 6]) -> Invocation {
        Invocation::new(s, args)
    }

    #[test]
    fn open_read_write_close_cycle() {
        let mut k = LinuxSim::new();
        k.vfs.add_file("/srv/index.html", b"hello world".to_vec());
        let fd = k
            .syscall(&inv(Sysno::openat, [0; 6]).with_path("/srv/index.html"))
            .ret;
        assert!(fd >= 3);
        let out = k.syscall(&inv(Sysno::read, [fd as u64, 0, 5, 0, 0, 0]));
        assert_eq!(out.ret, 5);
        assert_eq!(&out.payload.as_bytes().unwrap()[..], b"hello");
        // Sequential read continues at the offset.
        let out = k.syscall(&inv(Sysno::read, [fd as u64, 0, 64, 0, 0, 0]));
        assert_eq!(out.ret, 6);
        assert_eq!(
            k.syscall(&inv(Sysno::close, [fd as u64, 0, 0, 0, 0, 0]))
                .ret,
            0
        );
        assert_eq!(k.usage().cur_fds, 0);
        assert_eq!(k.usage().peak_fds, 1);
    }

    #[test]
    fn missing_file_is_enoent_unless_creating() {
        let mut k = LinuxSim::new();
        let r = k.syscall(&inv(Sysno::openat, [0; 6]).with_path("/no/such"));
        assert_eq!(Errno::from_ret(r.ret), Some(Errno::ENOENT));
        let r = k.syscall(&inv(Sysno::openat, [0, 0, O_CREAT, 0, 0, 0]).with_path("/tmp/new"));
        assert!(r.ret >= 0);
    }

    #[test]
    fn append_mode_appends() {
        let mut k = LinuxSim::new();
        k.vfs.add_file("/var/log/access.log", b"line1\n".to_vec());
        let fd = k
            .syscall(
                &inv(Sysno::openat, [0, 0, O_APPEND, 0, 0, 0]).with_path("/var/log/access.log"),
            )
            .ret as u64;
        k.syscall(&inv(Sysno::write, [fd, 0, 0, 0, 0, 0]).with_data(&b"line2\n"[..]));
        assert_eq!(k.vfs.size("/var/log/access.log"), Some(12));
    }

    #[test]
    fn socket_lifecycle_serves_a_request() {
        let mut k = LinuxSim::new();
        let sfd = k.syscall(&inv(Sysno::socket, [2, 1, 0, 0, 0, 0])).ret as u64;
        assert_eq!(k.syscall(&inv(Sysno::bind, [sfd, 8080, 0, 0, 0, 0])).ret, 0);
        assert_eq!(
            k.syscall(&inv(Sysno::listen, [sfd, 128, 0, 0, 0, 0])).ret,
            0
        );

        // Client connects and sends a request.
        let conn = k.host_mut().connect(8080).unwrap();
        k.host_mut().send(conn, "GET /");

        let cfd = k.syscall(&inv(Sysno::accept4, [sfd, 0, 0, 0, 0, 0])).ret;
        assert!(cfd > 0);
        let req = k.syscall(&inv(Sysno::read, [cfd as u64, 0, 64, 0, 0, 0]));
        assert_eq!(&req.payload.as_bytes().unwrap()[..], b"GET /");
        k.syscall(&inv(Sysno::write, [cfd as u64, 0, 0, 0, 0, 0]).with_data(&b"200 OK"[..]));
        assert_eq!(&k.host_mut().recv(conn).unwrap()[..], b"200 OK");
    }

    #[test]
    fn accept_without_backlog_is_eagain() {
        let mut k = LinuxSim::new();
        let sfd = k.syscall(&inv(Sysno::socket, [0; 6])).ret as u64;
        k.syscall(&inv(Sysno::bind, [sfd, 80, 0, 0, 0, 0]));
        k.syscall(&inv(Sysno::listen, [sfd, 0, 0, 0, 0, 0]));
        let r = k.syscall(&inv(Sysno::accept, [sfd, 0, 0, 0, 0, 0]));
        assert_eq!(Errno::from_ret(r.ret), Some(Errno::EAGAIN));
    }

    #[test]
    fn epoll_reports_readiness() {
        let mut k = LinuxSim::new();
        let sfd = k.syscall(&inv(Sysno::socket, [0; 6])).ret as u64;
        k.syscall(&inv(Sysno::bind, [sfd, 80, 0, 0, 0, 0]));
        k.syscall(&inv(Sysno::listen, [sfd, 0, 0, 0, 0, 0]));
        let ep = k.syscall(&inv(Sysno::epoll_create1, [0; 6])).ret as u64;
        assert_eq!(
            k.syscall(&inv(Sysno::epoll_ctl, [ep, 1, sfd, 0, 0, 0])).ret,
            0
        );

        // Nothing ready yet.
        let r = k.syscall(&inv(Sysno::epoll_wait, [ep, 0, 0, 0, 0, 0]));
        assert_eq!(r.ret, 0);

        k.host_mut().connect(80).unwrap();
        let r = k.syscall(&inv(Sysno::epoll_wait, [ep, 0, 0, 0, 0, 0]));
        assert_eq!(r.ret, 1);
        assert_eq!(r.payload, Payload::List(vec![sfd]));
    }

    #[test]
    fn pipe_roundtrip_and_fd_accounting() {
        let mut k = LinuxSim::new();
        let r = k.syscall(&inv(Sysno::pipe2, [0; 6]));
        let [rfd, wfd] = r.payload.as_fds().unwrap();
        assert_eq!(k.usage().cur_fds, 2);
        k.syscall(&inv(Sysno::write, [wfd as u64, 0, 0, 0, 0, 0]).with_data(&b"msg"[..]));
        let out = k.syscall(&inv(Sysno::read, [rfd as u64, 0, 16, 0, 0, 0]));
        assert_eq!(&out.payload.as_bytes().unwrap()[..], b"msg");
    }

    #[test]
    fn brk_and_mmap_account_memory() {
        let mut k = LinuxSim::new();
        let cur = k
            .syscall(&inv(Sysno::brk, [0; 6]))
            .payload
            .as_u64()
            .unwrap();
        k.syscall(&inv(Sysno::brk, [cur + 8192, 0, 0, 0, 0, 0]));
        assert_eq!(k.usage().cur_rss, 8192);
        let addr = k.syscall(&inv(Sysno::mmap, [0, 4096, 3, 0x22, 0, 0])).ret as u64;
        assert_eq!(k.usage().cur_rss, 8192 + 4096);
        assert_eq!(
            k.syscall(&inv(Sysno::munmap, [addr, 4096, 0, 0, 0, 0])).ret,
            0
        );
        assert_eq!(k.usage().cur_rss, 8192);
        assert_eq!(k.usage().peak_rss, 8192 + 4096);
    }

    #[test]
    fn munmap_of_unknown_region_is_einval() {
        let mut k = LinuxSim::new();
        let r = k.syscall(&inv(Sysno::munmap, [0xdead_0000, 4096, 0, 0, 0, 0]));
        assert_eq!(Errno::from_ret(r.ret), Some(Errno::EINVAL));
    }

    #[test]
    fn rlimits_via_prlimit64() {
        let mut k = LinuxSim::new();
        let r = k.syscall(&inv(Sysno::prlimit64, [0, 7, 0, 0, 0, 0]));
        assert_eq!(r.payload, Payload::Pair(1024, 1048576));
        // Set NOFILE soft limit to 4096.
        let r = k.syscall(&inv(Sysno::prlimit64, [0, 7, 4096, 1048576, 0, 0]));
        assert_eq!(r.ret, 0);
        let r = k.syscall(&inv(Sysno::getrlimit, [7, 0, 0, 0, 0, 0]));
        assert_eq!(r.payload, Payload::Pair(4096, 1048576));
    }

    #[test]
    fn fd_limit_enforced() {
        let mut k = LinuxSim::new();
        k.syscall(&inv(Sysno::prlimit64, [0, 7, 5, 1048576, 0, 0]));
        k.vfs.add_file("/tmp/f", vec![]);
        let a = k.syscall(&inv(Sysno::openat, [0; 6]).with_path("/tmp/f"));
        assert!(a.ret >= 0);
        let b = k.syscall(&inv(Sysno::openat, [0; 6]).with_path("/tmp/f"));
        assert!(b.ret >= 0);
        let c = k.syscall(&inv(Sysno::openat, [0; 6]).with_path("/tmp/f"));
        assert_eq!(Errno::from_ret(c.ret), Some(Errno::EMFILE));
    }

    #[test]
    fn fcntl_nonblocking_flag() {
        let mut k = LinuxSim::new();
        let fd = k.syscall(&inv(Sysno::socket, [0; 6])).ret as u64;
        assert_eq!(
            k.syscall(&inv(Sysno::fcntl, [fd, 4, O_NONBLOCK, 0, 0, 0]))
                .ret,
            0
        );
        let fl = k.syscall(&inv(Sysno::fcntl, [fd, 3, 0, 0, 0, 0])).ret;
        assert_eq!(fl as u64 & O_NONBLOCK, O_NONBLOCK);
    }

    #[test]
    fn ioctl_tty_vs_socket() {
        let mut k = LinuxSim::new();
        // stdout is a TTY.
        let r = k.syscall(&inv(Sysno::ioctl, [1, TCGETS, 0, 0, 0, 0]));
        assert_eq!(r.ret, 0);
        let sfd = k.syscall(&inv(Sysno::socket, [0; 6])).ret as u64;
        let r = k.syscall(&inv(Sysno::ioctl, [sfd, TCGETS, 0, 0, 0, 0]));
        assert_eq!(Errno::from_ret(r.ret), Some(Errno::ENOTTY));
        assert_eq!(
            k.syscall(&inv(Sysno::ioctl, [sfd, FIONBIO, 1, 0, 0, 0]))
                .ret,
            0
        );
    }

    #[test]
    fn futex_wait_charges_time_and_releases() {
        let mut k = LinuxSim::new();
        k.set_futex_value(0x1000, 1);
        let before = k.now();
        let r = k.syscall(&inv(Sysno::futex, [0x1000, FUTEX_WAIT, 1, 0, 0, 0]));
        assert_eq!(r.ret, 0);
        assert!(k.now() - before >= 40, "wait advanced virtual time");
        assert_eq!(k.futex_value(0x1000), 0);
    }

    #[test]
    fn sigsuspend_returns_eintr() {
        let mut k = LinuxSim::new();
        let r = k.syscall(&inv(Sysno::rt_sigsuspend, [0; 6]));
        assert_eq!(Errno::from_ret(r.ret), Some(Errno::EINTR));
    }

    #[test]
    fn clone_returns_child_tid_and_charges_memory() {
        let mut k = LinuxSim::new();
        let rss0 = k.usage().cur_rss;
        let tid = k.syscall(&inv(Sysno::clone, [0; 6])).ret;
        assert!(tid > k.syscall(&inv(Sysno::getpid, [0; 6])).ret);
        assert!(k.usage().cur_rss > rss0);
        let waited = k.syscall(&inv(Sysno::wait4, [0; 6])).ret;
        assert_eq!(waited, tid);
    }

    #[test]
    fn identity_calls() {
        let mut k = LinuxSim::new();
        assert_eq!(k.syscall(&inv(Sysno::getuid, [0; 6])).ret, 0);
        k.syscall(&inv(Sysno::setuid, [1000, 0, 0, 0, 0, 0]));
        assert_eq!(k.syscall(&inv(Sysno::geteuid, [0; 6])).ret, 1000);
        let sid = k.syscall(&inv(Sysno::setsid, [0; 6])).ret;
        assert_eq!(sid, 4242);
    }

    #[test]
    fn getrandom_is_deterministic_per_instance() {
        let mut k1 = LinuxSim::new();
        let mut k2 = LinuxSim::new();
        let a = k1.syscall(&inv(Sysno::getrandom, [0, 16, 0, 0, 0, 0]));
        let b = k2.syscall(&inv(Sysno::getrandom, [0, 16, 0, 0, 0, 0]));
        assert_eq!(a.payload, b.payload, "replicated runs must agree");
    }

    #[test]
    fn pseudo_file_reads_work() {
        let mut k = LinuxSim::new();
        let fd = k
            .syscall(&inv(Sysno::openat, [0; 6]).with_path("/proc/self/status"))
            .ret as u64;
        let out = k.syscall(&inv(Sysno::read, [fd, 0, 256, 0, 0, 0]));
        assert!(out.ret > 0);
        assert!(
            String::from_utf8_lossy(out.payload.as_bytes().unwrap()).contains("VmRSS"),
            "pseudo /proc content served"
        );
    }

    #[test]
    fn stdio_write_goes_to_console() {
        let mut k = LinuxSim::new();
        k.syscall(&inv(Sysno::write, [1, 0, 0, 0, 0, 0]).with_data(&b"Hello, world!\n"[..]));
        assert_eq!(k.host_mut().console, vec!["Hello, world!\n"]);
    }

    #[test]
    fn syscall_counter_and_clock_move() {
        let mut k = LinuxSim::new();
        let t0 = k.now();
        k.syscall(&inv(Sysno::getpid, [0; 6]));
        k.syscall(&inv(Sysno::getpid, [0; 6]));
        assert_eq!(k.usage().total_syscalls, 2);
        assert!(k.now() > t0);
        k.charge(100);
        assert_eq!(k.now(), t0 + 2 * 2 + 100);
    }
}
