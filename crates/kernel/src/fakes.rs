//! Syscall-specific fake success values (§2: "returning a success code —
//! typically system-call specific — without implementing the feature").
//!
//! The table mirrors the conventions visible in real compatibility layers
//! (HermiTux, OSv, Unikraft): `0` for most calls, the byte count for the
//! write family, `0` for `clone` (which tells the caller "you are the
//! child" — the source of Nginx's master-runs-the-worker behaviour in
//! Table 2), and a small plausible descriptor number for fd-returning
//! calls.

use crate::invocation::Invocation;
use loupe_syscalls::Sysno;

/// The value a *faked* invocation returns.
pub fn fake_value(inv: &Invocation) -> i64 {
    use Sysno as S;
    match inv.sysno {
        // Write family: pretend everything was written.
        S::write | S::pwrite64 | S::writev | S::pwritev | S::sendto | S::sendmsg | S::sendfile => {
            inv.args[2].max(inv.args[3]) as i64
        }
        // Read family: pretend EOF.
        S::read | S::pread64 | S::readv | S::recvfrom | S::recvmsg => 0,
        // fd-returning calls: a plausible low descriptor.
        S::open
        | S::openat
        | S::creat
        | S::socket
        | S::accept
        | S::accept4
        | S::dup
        | S::epoll_create
        | S::epoll_create1
        | S::eventfd
        | S::eventfd2
        | S::timerfd_create
        | S::signalfd
        | S::signalfd4
        | S::inotify_init
        | S::inotify_init1
        | S::memfd_create => 3,
        S::dup2 | S::dup3 => inv.args[1] as i64,
        // "You are the child."
        S::clone | S::clone3 | S::fork | S::vfork => 0,
        // Identity getters: root-ish defaults.
        S::getuid | S::geteuid | S::getgid | S::getegid => 0,
        S::getpid | S::gettid | S::getppid | S::setsid | S::getsid | S::getpgrp => 1,
        // Counts and sizes.
        S::getrandom => inv.args[1] as i64,
        S::epoll_wait | S::epoll_pwait | S::poll | S::ppoll | S::select | S::pselect6 => 0,
        S::lseek => inv.args[1] as i64,
        // Everything else: plain success.
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_fakes_report_full_length() {
        let inv = Invocation::new(Sysno::write, [1, 0, 512, 0, 0, 0]);
        assert_eq!(fake_value(&inv), 512);
        let inv = Invocation::new(Sysno::sendfile, [3, 4, 0, 65536, 0, 0]);
        assert_eq!(fake_value(&inv), 65536);
    }

    #[test]
    fn clone_fake_claims_to_be_the_child() {
        assert_eq!(fake_value(&Invocation::new(Sysno::clone, [0; 6])), 0);
    }

    #[test]
    fn fd_returning_calls_fake_a_low_fd() {
        assert_eq!(fake_value(&Invocation::new(Sysno::openat, [0; 6])), 3);
        assert_eq!(fake_value(&Invocation::new(Sysno::accept4, [0; 6])), 3);
        assert_eq!(
            fake_value(&Invocation::new(Sysno::dup2, [5, 9, 0, 0, 0, 0])),
            9
        );
    }

    #[test]
    fn read_fakes_eof_and_waits_fake_no_events() {
        assert_eq!(
            fake_value(&Invocation::new(Sysno::read, [0, 0, 100, 0, 0, 0])),
            0
        );
        assert_eq!(fake_value(&Invocation::new(Sysno::epoll_wait, [0; 6])), 0);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(
            fake_value(&Invocation::new(Sysno::prctl, [8, 1, 0, 0, 0, 0])),
            0
        );
        assert_eq!(
            fake_value(&Invocation::new(Sysno::brk, [0x1000, 0, 0, 0, 0, 0])),
            0
        );
    }
}
