//! Resource-usage accounting, mirroring Loupe's `/proc`-based recording of
//! maximum resident set size and open file descriptors (§3.2).

use serde::{Deserialize, Serialize};

/// A snapshot of resource usage, taken at the end of a run.
///
/// Loupe compares these across runs to detect the resource-usage effects of
/// stubbing/faking (Table 2: faking `close` → ×8 FDs for Redis, stubbing
/// `brk` → +17% memory for Nginx, ...).
///
/// # Examples
///
/// ```
/// use loupe_kernel::ResourceUsage;
///
/// let mut u = ResourceUsage::default();
/// u.add_rss(1024);
/// u.add_rss(1024);
/// u.release_rss(512);
/// assert_eq!(u.cur_rss, 1536);
/// assert_eq!(u.peak_rss, 2048);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceUsage {
    /// Current resident set size, in bytes.
    pub cur_rss: u64,
    /// Peak resident set size, in bytes.
    pub peak_rss: u64,
    /// Currently open file descriptors.
    pub cur_fds: u32,
    /// Peak simultaneously open file descriptors.
    pub peak_fds: u32,
    /// Total system calls dispatched to the kernel.
    pub total_syscalls: u64,
}

impl ResourceUsage {
    /// Creates a zeroed accounting record.
    pub fn new() -> ResourceUsage {
        ResourceUsage::default()
    }

    /// Accounts an RSS increase of `bytes`.
    pub fn add_rss(&mut self, bytes: u64) {
        self.cur_rss = self.cur_rss.saturating_add(bytes);
        self.peak_rss = self.peak_rss.max(self.cur_rss);
    }

    /// Accounts an RSS decrease of `bytes`.
    pub fn release_rss(&mut self, bytes: u64) {
        self.cur_rss = self.cur_rss.saturating_sub(bytes);
    }

    /// Accounts a newly opened file descriptor.
    pub fn add_fd(&mut self) {
        self.cur_fds = self.cur_fds.saturating_add(1);
        self.peak_fds = self.peak_fds.max(self.cur_fds);
    }

    /// Accounts a closed file descriptor.
    pub fn release_fd(&mut self) {
        self.cur_fds = self.cur_fds.saturating_sub(1);
    }

    /// Relative change of `new` vs `self` for peak RSS, as a fraction
    /// (`0.17` = +17%). Returns `None` when the baseline is zero.
    pub fn rss_delta(&self, new: &ResourceUsage) -> Option<f64> {
        if self.peak_rss == 0 {
            return None;
        }
        Some(new.peak_rss as f64 / self.peak_rss as f64 - 1.0)
    }

    /// Relative change of `new` vs `self` for peak FDs.
    pub fn fd_delta(&self, new: &ResourceUsage) -> Option<f64> {
        if self.peak_fds == 0 {
            return None;
        }
        Some(new.peak_fds as f64 / self.peak_fds as f64 - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rss_peak_tracks_high_water_mark() {
        let mut u = ResourceUsage::new();
        u.add_rss(100);
        u.release_rss(50);
        u.add_rss(30);
        assert_eq!(u.cur_rss, 80);
        assert_eq!(u.peak_rss, 100);
    }

    #[test]
    fn fd_accounting() {
        let mut u = ResourceUsage::new();
        for _ in 0..5 {
            u.add_fd();
        }
        for _ in 0..3 {
            u.release_fd();
        }
        assert_eq!(u.cur_fds, 2);
        assert_eq!(u.peak_fds, 5);
    }

    #[test]
    fn release_saturates() {
        let mut u = ResourceUsage::new();
        u.release_fd();
        u.release_rss(10);
        assert_eq!(u.cur_fds, 0);
        assert_eq!(u.cur_rss, 0);
    }

    #[test]
    fn deltas() {
        let mut base = ResourceUsage::new();
        base.add_rss(1000);
        base.add_fd();
        let mut new = ResourceUsage::new();
        new.add_rss(1170);
        for _ in 0..8 {
            new.add_fd();
        }
        assert!((base.rss_delta(&new).unwrap() - 0.17).abs() < 1e-9);
        assert!((base.fd_delta(&new).unwrap() - 7.0).abs() < 1e-9);
        assert_eq!(ResourceUsage::new().rss_delta(&new), None);
    }
}
