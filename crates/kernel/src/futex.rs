//! The futex model.
//!
//! Real futexes park threads; the simulator interleaves logical threads in
//! one OS thread, so `FUTEX_WAIT` is modelled as "sleep until the holder
//! releases": the kernel charges wait time and transitions the futex word
//! to the released state before returning. This preserves exactly the
//! property the paper's Table 2 relies on: when `futex` is *faked*, the
//! caller resumes while the word still shows the lock as held, and lock
//! hand-off consistency breaks (Redis: -66% performance, +94% FDs from the
//! resulting inconsistent synchronisation).

use std::collections::BTreeMap;

/// `FUTEX_WAIT` operation code.
pub const FUTEX_WAIT: u64 = 0;
/// `FUTEX_WAKE` operation code.
pub const FUTEX_WAKE: u64 = 1;

/// Kernel-side futex state: the word values live here, keyed by address.
#[derive(Debug, Clone, Default)]
pub struct FutexTable {
    words: BTreeMap<u64, u32>,
    wait_count: u64,
    wake_count: u64,
}

impl FutexTable {
    /// Creates an empty table.
    pub fn new() -> FutexTable {
        FutexTable::default()
    }

    /// Current value of the word at `addr` (0 if never touched).
    pub fn value(&self, addr: u64) -> u32 {
        self.words.get(&addr).copied().unwrap_or(0)
    }

    /// Sets the word at `addr` (applications perform their atomic ops
    /// through this, standing in for user-space memory).
    pub fn set_value(&mut self, addr: u64, val: u32) {
        self.words.insert(addr, val);
    }

    /// `FUTEX_WAIT(addr, expected)`.
    ///
    /// Returns `Err(())` (EAGAIN) if the word no longer holds `expected`.
    /// Otherwise models a successful sleep-until-woken: the word is reset
    /// to 0 (the holder released it while we slept) and `Ok(wait_cost)` is
    /// returned.
    // The unit error *is* the model: the only failure is EAGAIN.
    #[allow(clippy::result_unit_err)]
    pub fn wait(&mut self, addr: u64, expected: u32) -> Result<u64, ()> {
        if self.value(addr) != expected {
            return Err(());
        }
        self.wait_count += 1;
        // Holder releases while we sleep.
        self.words.insert(addr, 0);
        Ok(40) // modelled wait time
    }

    /// `FUTEX_WAKE(addr, n)`: returns the number of waiters woken (we model
    /// at most one).
    pub fn wake(&mut self, _addr: u64, n: u32) -> u32 {
        self.wake_count += 1;
        n.min(1)
    }

    /// Total `FUTEX_WAIT`s performed (diagnostic).
    pub fn waits(&self) -> u64 {
        self.wait_count
    }

    /// Total `FUTEX_WAKE`s performed (diagnostic).
    pub fn wakes(&self) -> u64 {
        self.wake_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_on_current_value_sleeps_and_releases() {
        let mut t = FutexTable::new();
        t.set_value(0x1000, 1); // lock held
        let cost = t.wait(0x1000, 1).unwrap();
        assert!(cost > 0);
        assert_eq!(t.value(0x1000), 0, "holder released during sleep");
        assert_eq!(t.waits(), 1);
    }

    #[test]
    fn wait_on_stale_value_is_eagain() {
        let mut t = FutexTable::new();
        t.set_value(0x1000, 0);
        assert!(t.wait(0x1000, 1).is_err());
        assert_eq!(t.waits(), 0);
    }

    #[test]
    fn wake_caps_at_one() {
        let mut t = FutexTable::new();
        assert_eq!(t.wake(0x1000, 16), 1);
        assert_eq!(t.wake(0x1000, 0), 0);
        assert_eq!(t.wakes(), 2);
    }
}
