//! A kernel restricted to an OS support profile (§4.1 validation).
//!
//! The paper's incremental support plans are *predictions*: "implement
//! these syscalls, stub/fake those, and the app will run on your OS".
//! [`RestrictedKernel`] lets the engine *execute* that prediction: it
//! wraps a full-featured kernel but only forwards the system calls a
//! [`KernelProfile`] declares implemented — everything else is answered
//! at the boundary, `-ENOSYS` for unimplemented/stubbed calls and a
//! syscall-specific success value for faked ones. Running an application
//! against a `RestrictedKernel` built from a support plan's cumulative
//! state emulates the target OS mid-way through that plan.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use loupe_syscalls::{Errno, SubFeatureKey, Sysno, SysnoSet};

use crate::clock::INTERCEPT_COST;
use crate::fakes::fake_value;
use crate::invocation::{Invocation, SysOutcome};
use crate::net::HostPort;
use crate::resources::ResourceUsage;
use crate::Kernel;

/// The syscall surface one execution environment provides: what is
/// implemented for real, what is deliberately stubbed, and what is
/// shimmed with a fake success value.
///
/// Precedence, mirroring how a real support plan layers work:
/// **implemented** beats both overlays (a real implementation supersedes
/// any shim), **faked** beats **stubbed** (a fake shim is installed
/// precisely because `-ENOSYS` was measured insufficient), and anything
/// else — including syscalls the profile has never heard of — returns
/// `-ENOSYS`, exactly like an OS that has not implemented the call.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelProfile {
    /// Profile name (usually the target OS, e.g. `kerla @ step 3`).
    pub name: String,
    /// Syscalls forwarded to the backing kernel.
    pub implemented: SysnoSet,
    /// Syscalls deliberately answered with `-ENOSYS`.
    pub stubbed: SysnoSet,
    /// Syscalls answered with a fake success value.
    pub faked: SysnoSet,
    /// Per-syscall support level layered over `implemented`: a syscall
    /// absent from this map is [`SyscallSupport::Full`]. A
    /// [`SyscallSupport::Partial`] entry lists the *holes* — selector
    /// values of a vectored syscall (fcntl commands, futex ops, ...)
    /// the kernel recognises the number of but cannot execute. Profiles
    /// stored before this field existed deserialise to the empty map.
    #[serde(default)]
    pub support: BTreeMap<Sysno, SyscallSupport>,
    /// Sub-feature holes a support plan deliberately leaves rejected —
    /// the per-flag analogue of `stubbed`. Purely declarative (a hole
    /// rejects whether or not it is listed here); plans record the
    /// decision so validation can tell "tolerated" from "overlooked".
    #[serde(default)]
    pub stubbed_flags: Vec<SubFeatureKey>,
    /// Sub-feature holes answered with a fake success value instead of
    /// a rejection — the per-flag analogue of `faked`. Only meaningful
    /// for keys that are holes of a `Partial` syscall.
    #[serde(default)]
    pub faked_flags: Vec<SubFeatureKey>,
}

impl KernelProfile {
    /// Creates a profile that implements exactly `implemented`.
    pub fn new(name: impl Into<String>, implemented: SysnoSet) -> KernelProfile {
        KernelProfile {
            name: name.into(),
            implemented,
            stubbed: SysnoSet::new(),
            faked: SysnoSet::new(),
            support: BTreeMap::new(),
            stubbed_flags: Vec::new(),
            faked_flags: Vec::new(),
        }
    }

    /// Marks `sysno` as partially implemented with the given holes
    /// (builder style). An empty hole list means [`SyscallSupport::Full`]
    /// and removes any previous entry.
    pub fn set_partial(&mut self, sysno: Sysno, holes: Vec<SubFeatureKey>) {
        if holes.is_empty() {
            self.support.remove(&sysno);
        } else {
            self.support.insert(sysno, SyscallSupport::Partial(holes));
        }
    }

    /// Removes one hole — the flag-granular analogue of inserting into
    /// `implemented`. Plan validation replays `implement_flags` steps
    /// with this. No-op if `key` is not currently a hole; also drops
    /// any stub/fake overlay the plugged flag had, a real
    /// implementation superseding both.
    pub fn plug_hole(&mut self, key: SubFeatureKey) {
        let mut holes = self.holes(key.sysno()).to_vec();
        holes.retain(|k| *k != key);
        self.set_partial(key.sysno(), holes);
        self.stubbed_flags.retain(|k| *k != key);
        self.faked_flags.retain(|k| *k != key);
    }

    /// The unsupported selectors of `sysno` (empty for full support).
    pub fn holes(&self, sysno: Sysno) -> &[SubFeatureKey] {
        match self.support.get(&sysno) {
            Some(SyscallSupport::Partial(holes)) => holes,
            _ => &[],
        }
    }

    /// Whether `key` is an unsupported selector of an otherwise
    /// implemented syscall.
    pub fn is_hole(&self, key: SubFeatureKey) -> bool {
        self.holes(key.sysno()).contains(&key)
    }

    /// Every hole across the whole profile, in syscall order.
    pub fn all_holes(&self) -> Vec<SubFeatureKey> {
        self.support
            .values()
            .flat_map(|s| match s {
                SyscallSupport::Full => [].as_slice(),
                SyscallSupport::Partial(holes) => holes.as_slice(),
            })
            .copied()
            .collect()
    }

    /// How the profile answers `sysno`.
    pub fn disposition(&self, sysno: Sysno) -> Disposition {
        if self.implemented.contains(sysno) {
            Disposition::Forward
        } else if self.faked.contains(sysno) {
            Disposition::Fake
        } else {
            Disposition::Enosys
        }
    }

    /// How the profile answers one decoded sub-feature of a *forwarded*
    /// syscall; `None` means the selector is supported and the call
    /// proceeds to the backing kernel. Only consulted when
    /// [`disposition`](KernelProfile::disposition) says
    /// [`Disposition::Forward`] — a syscall that is not implemented at
    /// all never gets to flag granularity.
    pub fn flag_disposition(&self, key: SubFeatureKey) -> Option<FlagAnswer> {
        if !self.is_hole(key) {
            return None;
        }
        if self.faked_flags.contains(&key) {
            return Some(FlagAnswer::Fake);
        }
        // A kernel that has never heard of the whole *mechanism* behind
        // a critical operation answers like an unimplemented syscall;
        // one that merely does not recognise the flag value answers
        // `-EINVAL`, like Linux does for unknown selectors.
        Some(FlagAnswer::Reject(if key.is_typically_critical() {
            Errno::ENOSYS
        } else {
            Errno::EINVAL
        }))
    }
}

/// Support level of one implemented syscall (see
/// [`KernelProfile::support`]).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SyscallSupport {
    /// Every operation of the syscall works.
    #[default]
    Full,
    /// The syscall is recognised but the listed selector values are
    /// unsupported — invoking one is rejected at the boundary.
    Partial(Vec<SubFeatureKey>),
}

/// What a [`KernelProfile`] does with one unsupported sub-feature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlagAnswer {
    /// Reject with this errno (`ENOSYS` for typically-critical
    /// operations whose mechanism is absent, `EINVAL` for unrecognised
    /// flag values).
    Reject(Errno),
    /// Answer a syscall-specific fake success value.
    Fake,
}

/// What a [`KernelProfile`] does with one system call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Forward to the backing kernel.
    Forward,
    /// Answer `-ENOSYS` (unimplemented or deliberately stubbed).
    Enosys,
    /// Answer a syscall-specific fake success value.
    Fake,
}

/// What a [`RestrictedKernel`] observed over one run: the per-syscall
/// boundary counters, bundled so they can outlive the kernel (the
/// engine copies them into the analysis report, and the fleet × OS
/// compatibility matrix persists them as per-cell failure causes).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelObservations {
    /// Per-syscall counts of invocations answered `-ENOSYS` because the
    /// profile does not implement them.
    pub rejections: BTreeMap<Sysno, u64>,
    /// Per-syscall counts of invocations answered by the fake overlay.
    pub fake_hits: BTreeMap<Sysno, u64>,
    /// The first syscall ever rejected — the first thing an OS developer
    /// asks when a run fails on their profile ("what did it trip on?").
    pub first_rejection: Option<Sysno>,
    /// Per-sub-feature counts of invocations rejected because their
    /// decoded selector is a hole of a partially-implemented syscall.
    /// Deliberately *not* folded into `rejections`: the syscall is
    /// implemented — the flag is what the OS is missing, and the counter
    /// must say so. Keys are raw `(sysno, selector)` pairs, so selectors
    /// outside the modeled [`SubFeature`](loupe_syscalls::SubFeature)
    /// table still surface (as `ioctl:0x…`) instead of vanishing.
    #[serde(default)]
    pub flag_rejections: Vec<(SubFeatureKey, u64)>,
    /// Per-sub-feature counts answered by the per-flag fake overlay.
    #[serde(default)]
    pub flag_fake_hits: Vec<(SubFeatureKey, u64)>,
    /// The first sub-feature ever rejected, independent of
    /// `first_rejection` (a run can trip on a flag without any syscall
    /// ever being rejected whole).
    #[serde(default)]
    pub first_rejected_flag: Option<SubFeatureKey>,
}

fn bump(counters: &mut Vec<(SubFeatureKey, u64)>, key: SubFeatureKey, n: u64) {
    match counters.iter_mut().find(|(k, _)| *k == key) {
        Some((_, count)) => *count += n,
        None => counters.push((key, n)),
    }
}

impl KernelObservations {
    /// Total invocations answered `-ENOSYS` at the profile boundary.
    pub fn total_rejections(&self) -> u64 {
        self.rejections.values().sum()
    }

    /// Total invocations answered by the fake overlay.
    pub fn total_fake_hits(&self) -> u64 {
        self.fake_hits.values().sum()
    }

    /// Total invocations rejected because of a sub-feature hole.
    pub fn total_flag_rejections(&self) -> u64 {
        self.flag_rejections.iter().map(|(_, n)| n).sum()
    }

    /// Total invocations answered by the per-flag fake overlay.
    pub fn total_flag_fake_hits(&self) -> u64 {
        self.flag_fake_hits.iter().map(|(_, n)| n).sum()
    }

    /// Accumulates another run's observations (counts add; the first
    /// rejection of the earliest run wins).
    pub fn absorb(&mut self, other: &KernelObservations) {
        for (&s, n) in &other.rejections {
            *self.rejections.entry(s).or_insert(0) += n;
        }
        for (&s, n) in &other.fake_hits {
            *self.fake_hits.entry(s).or_insert(0) += n;
        }
        if self.first_rejection.is_none() {
            self.first_rejection = other.first_rejection;
        }
        for &(k, n) in &other.flag_rejections {
            bump(&mut self.flag_rejections, k, n);
        }
        for &(k, n) in &other.flag_fake_hits {
            bump(&mut self.flag_fake_hits, k, n);
        }
        if self.first_rejected_flag.is_none() {
            self.first_rejected_flag = other.first_rejected_flag;
        }
    }
}

/// A kernel that only exposes the syscall surface of a [`KernelProfile`].
///
/// Wraps any [`Kernel`]; calls outside the profile never reach it.
/// Helper invocations (test-script binaries tagged `helper:`) bypass the
/// restriction, mirroring how Loupe's whitelist lets the measurement
/// harness itself run on the host.
#[derive(Debug)]
pub struct RestrictedKernel<K> {
    inner: K,
    profile: KernelProfile,
    observations: KernelObservations,
}

impl<K: Kernel> RestrictedKernel<K> {
    /// Restricts `inner` to `profile`.
    pub fn new(inner: K, profile: KernelProfile) -> RestrictedKernel<K> {
        RestrictedKernel {
            inner,
            profile,
            observations: KernelObservations::default(),
        }
    }

    /// The active profile.
    pub fn profile(&self) -> &KernelProfile {
        &self.profile
    }

    /// Per-syscall counts of invocations answered `-ENOSYS` because the
    /// profile does not implement them — the first thing to inspect when
    /// a plan-validation run fails.
    pub fn rejections(&self) -> &BTreeMap<Sysno, u64> {
        &self.observations.rejections
    }

    /// Per-syscall counts of invocations answered by the fake overlay.
    pub fn fake_hits(&self) -> &BTreeMap<Sysno, u64> {
        &self.observations.fake_hits
    }

    /// The first syscall this kernel ever rejected, if any.
    pub fn first_rejection(&self) -> Option<Sysno> {
        self.observations.first_rejection
    }

    /// The first sub-feature this kernel ever rejected, if any.
    pub fn first_rejected_flag(&self) -> Option<SubFeatureKey> {
        self.observations.first_rejected_flag
    }

    /// The full observation bundle, cloneable past the kernel's life.
    pub fn observations(&self) -> &KernelObservations {
        &self.observations
    }

    /// Borrow of the backing kernel (provisioning, diagnostics).
    pub fn inner_mut(&mut self) -> &mut K {
        &mut self.inner
    }

    /// Consumes the wrapper, returning the backing kernel.
    pub fn into_inner(self) -> K {
        self.inner
    }
}

impl<K: Kernel> Kernel for RestrictedKernel<K> {
    fn syscall(&mut self, inv: &Invocation) -> SysOutcome {
        // Test-script helper binaries run on the measurement host, not
        // the OS under development — never restricted.
        if inv.note.is_some_and(|n| n.starts_with("helper:")) {
            return self.inner.syscall(inv);
        }
        match self.profile.disposition(inv.sysno) {
            Disposition::Forward => {
                // The syscall is implemented — but a partially-supported
                // one still rejects (or fakes) the selector values it
                // cannot execute, and the counters charge the *flag*.
                if let Some(answer) = inv
                    .sub_feature()
                    .and_then(|key| self.profile.flag_disposition(key).map(|a| (key, a)))
                {
                    let (key, answer) = answer;
                    self.inner.charge(INTERCEPT_COST);
                    return match answer {
                        FlagAnswer::Reject(errno) => {
                            bump(&mut self.observations.flag_rejections, key, 1);
                            self.observations.first_rejected_flag.get_or_insert(key);
                            SysOutcome::err(errno)
                        }
                        FlagAnswer::Fake => {
                            bump(&mut self.observations.flag_fake_hits, key, 1);
                            SysOutcome::ok(fake_value(inv))
                        }
                    };
                }
                self.inner.syscall(inv)
            }
            Disposition::Enosys => {
                *self.observations.rejections.entry(inv.sysno).or_insert(0) += 1;
                self.observations.first_rejection.get_or_insert(inv.sysno);
                self.inner.charge(INTERCEPT_COST);
                SysOutcome::err(Errno::ENOSYS)
            }
            Disposition::Fake => {
                *self.observations.fake_hits.entry(inv.sysno).or_insert(0) += 1;
                self.inner.charge(INTERCEPT_COST);
                SysOutcome::ok(fake_value(inv))
            }
        }
    }

    fn charge(&mut self, cost: u64) {
        self.inner.charge(cost);
    }

    fn now(&self) -> u64 {
        self.inner.now()
    }

    fn usage(&self) -> ResourceUsage {
        self.inner.usage()
    }

    fn host_mut(&mut self) -> &mut HostPort {
        self.inner.host_mut()
    }

    fn mem_store(&mut self, addr: u64, val: u32) {
        self.inner.mem_store(addr, val);
    }

    fn mem_load(&self, addr: u64) -> u32 {
        self.inner.mem_load(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinuxSim;

    fn profile(implemented: &[Sysno]) -> KernelProfile {
        KernelProfile::new("test-os", implemented.iter().copied().collect())
    }

    #[test]
    fn implemented_calls_reach_the_kernel() {
        let mut k = RestrictedKernel::new(LinuxSim::new(), profile(&[Sysno::getpid]));
        let r = k.syscall(&Invocation::new(Sysno::getpid, [0; 6]));
        assert!(r.ret > 0);
        assert!(k.rejections().is_empty());
    }

    #[test]
    fn unimplemented_calls_return_enosys() {
        let mut k = RestrictedKernel::new(LinuxSim::new(), profile(&[Sysno::getpid]));
        let r = k.syscall(&Invocation::new(Sysno::uname, [0; 6]));
        assert_eq!(r.errno(), Some(Errno::ENOSYS));
        assert_eq!(k.rejections()[&Sysno::uname], 1);
    }

    #[test]
    fn first_rejection_sticks_and_observations_accumulate() {
        let mut k = RestrictedKernel::new(LinuxSim::new(), profile(&[Sysno::getpid]));
        assert_eq!(k.first_rejection(), None);
        k.syscall(&Invocation::new(Sysno::uname, [0; 6]));
        k.syscall(&Invocation::new(Sysno::sysinfo, [0; 6]));
        k.syscall(&Invocation::new(Sysno::uname, [0; 6]));
        assert_eq!(k.first_rejection(), Some(Sysno::uname), "earliest wins");
        let obs = k.observations().clone();
        assert_eq!(obs.rejections[&Sysno::uname], 2);
        assert_eq!(obs.total_rejections(), 3);
        assert_eq!(obs.total_fake_hits(), 0);

        // absorb() adds counts and keeps the earliest first rejection.
        let mut acc = KernelObservations::default();
        acc.absorb(&obs);
        acc.absorb(&obs);
        assert_eq!(acc.rejections[&Sysno::sysinfo], 2);
        assert_eq!(acc.first_rejection, Some(Sysno::uname));
        let json = serde_json::to_string(&acc).unwrap();
        let back: KernelObservations = serde_json::from_str(&json).unwrap();
        assert_eq!(back, acc);
    }

    #[test]
    fn faked_calls_return_success_without_work() {
        let mut p = profile(&[]);
        p.faked.insert(Sysno::write);
        let mut k = RestrictedKernel::new(LinuxSim::new(), p);
        let r = k.syscall(&Invocation::new(Sysno::write, [1, 0, 128, 0, 0, 0]));
        assert_eq!(r.ret, 128, "write fake reports full length");
        assert_eq!(k.usage().cur_fds, 0);
        assert_eq!(k.fake_hits()[&Sysno::write], 1);
    }

    #[test]
    fn implemented_beats_fake_beats_stub() {
        let mut p = profile(&[Sysno::getpid]);
        p.faked.insert(Sysno::getpid);
        p.stubbed.insert(Sysno::getpid);
        assert_eq!(p.disposition(Sysno::getpid), Disposition::Forward);
        let mut p2 = profile(&[]);
        p2.faked.insert(Sysno::getuid);
        p2.stubbed.insert(Sysno::getuid);
        assert_eq!(p2.disposition(Sysno::getuid), Disposition::Fake);
        assert_eq!(p2.disposition(Sysno::geteuid), Disposition::Enosys);
    }

    #[test]
    fn helpers_bypass_the_restriction() {
        let mut k = RestrictedKernel::new(LinuxSim::new(), profile(&[]));
        let r = k.syscall(&Invocation::new(Sysno::getpid, [0; 6]).with_note("helper:sh"));
        assert!(r.ret > 0, "helper calls run on the host kernel");
        assert!(k.rejections().is_empty());
    }

    #[test]
    fn profile_serde_roundtrip() {
        let mut p = profile(&[Sysno::read, Sysno::write]);
        p.stubbed.insert(Sysno::sysinfo);
        p.faked.insert(Sysno::prctl);
        let json = serde_json::to_string(&p).unwrap();
        let back: KernelProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn profiles_stored_before_partial_fidelity_deserialise() {
        // The partial-fidelity fields all carry `#[serde(default)]`:
        // profile JSON written before they existed deserialises to a
        // hole-free profile that behaves exactly as it used to.
        let legacy = r#"{"name":"old","implemented":[0],"stubbed":[],"faked":[]}"#;
        let back: KernelProfile = serde_json::from_str(legacy).unwrap();
        assert!(back.support.is_empty());
        assert!(back.stubbed_flags.is_empty() && back.faked_flags.is_empty());
        assert_eq!(back.disposition(Sysno::read), Disposition::Forward);
        assert!(back.holes(Sysno::read).is_empty());
    }

    #[test]
    fn partial_profile_serde_roundtrip() {
        use loupe_syscalls::SubFeature;
        let mut p = profile(&[Sysno::fcntl, Sysno::futex]);
        p.set_partial(
            Sysno::fcntl,
            vec![SubFeature::F_SETFL.key(), SubFeature::F_SETLK.key()],
        );
        p.set_partial(Sysno::futex, vec![SubFeature::FUTEX_REQUEUE.key()]);
        p.faked_flags.push(SubFeature::F_SETLK.key());
        p.stubbed_flags.push(SubFeature::FUTEX_REQUEUE.key());
        let json = serde_json::to_string(&p).unwrap();
        let back: KernelProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
        assert_eq!(p.all_holes().len(), 3);
        // Emptying the holes removes the entry entirely.
        p.set_partial(Sysno::fcntl, vec![]);
        assert!(p.holes(Sysno::fcntl).is_empty());
        assert!(!p.is_hole(SubFeature::F_SETFL.key()));
    }

    #[test]
    fn flag_holes_reject_by_criticality() {
        use loupe_syscalls::SubFeature;
        // F_SETFD is non-critical (unknown-flag EINVAL); FUTEX_WAIT is
        // critical (whole mechanism absent: ENOSYS).
        let mut p = profile(&[Sysno::fcntl, Sysno::futex]);
        p.set_partial(Sysno::fcntl, vec![SubFeature::F_SETFD.key()]);
        p.set_partial(Sysno::futex, vec![SubFeature::FUTEX_WAIT.key()]);
        let mut k = RestrictedKernel::new(LinuxSim::new(), p);

        let r = k.syscall(&Invocation::for_sub_feature(SubFeature::F_SETFD.key()));
        assert_eq!(r.errno(), Some(Errno::EINVAL));
        let r = k.syscall(&Invocation::for_sub_feature(SubFeature::FUTEX_WAIT.key()));
        assert_eq!(r.errno(), Some(Errno::ENOSYS));

        // Attribution goes to the flag, not the syscall.
        assert!(k.rejections().is_empty(), "syscall counters untouched");
        assert_eq!(k.first_rejection(), None);
        assert_eq!(k.first_rejected_flag(), Some(SubFeature::F_SETFD.key()));
        let obs = k.observations();
        assert_eq!(obs.total_flag_rejections(), 2);

        // Other selectors of the same syscalls still reach the kernel.
        let r = k.syscall(&Invocation::for_sub_feature(SubFeature::F_GETFL.key()));
        assert!(r.ret >= 0 || r.errno() != Some(Errno::EINVAL));
        assert_eq!(k.observations().total_flag_rejections(), 2);
    }

    #[test]
    fn faked_flags_answer_success_and_count_separately() {
        use loupe_syscalls::SubFeature;
        let mut p = profile(&[Sysno::prlimit64]);
        p.set_partial(Sysno::prlimit64, vec![SubFeature::RLIMIT_MEMLOCK.key()]);
        p.faked_flags.push(SubFeature::RLIMIT_MEMLOCK.key());
        let mut k = RestrictedKernel::new(LinuxSim::new(), p);
        let r = k.syscall(&Invocation::for_sub_feature(
            SubFeature::RLIMIT_MEMLOCK.key(),
        ));
        assert!(r.ret >= 0, "faked flag answers success: {r:?}");
        let obs = k.observations();
        assert_eq!(obs.total_flag_fake_hits(), 1);
        assert_eq!(obs.total_flag_rejections(), 0);
        assert!(obs.fake_hits.is_empty(), "syscall fake counters untouched");
        assert_eq!(obs.first_rejected_flag, None);
    }

    #[test]
    fn unmodeled_selectors_surface_as_raw_keys() {
        // A hole on a selector the SubFeature table has never heard of
        // must still reject and must still be observable afterwards —
        // the raw (sysno, selector) key survives into the counters and
        // renders as `ioctl:0x5423`.
        let raw = SubFeatureKey::new(Sysno::ioctl, 0x5423);
        let mut p = profile(&[Sysno::ioctl]);
        p.set_partial(Sysno::ioctl, vec![raw]);
        let mut k = RestrictedKernel::new(LinuxSim::new(), p);
        let r = k.syscall(&Invocation::for_sub_feature(raw));
        assert_eq!(r.errno(), Some(Errno::EINVAL), "unmodeled → non-critical");
        let obs = k.observations().clone();
        assert_eq!(obs.flag_rejections, vec![(raw, 1)]);
        assert_eq!(obs.first_rejected_flag, Some(raw));
        assert_eq!(obs.first_rejected_flag.unwrap().to_string(), "ioctl:0x5423");
        // And the raw key round-trips through persistence.
        let json = serde_json::to_string(&obs).unwrap();
        let back: KernelObservations = serde_json::from_str(&json).unwrap();
        assert_eq!(back, obs);
    }

    #[test]
    fn helpers_bypass_flag_holes_and_absorb_merges_flag_counters() {
        use loupe_syscalls::SubFeature;
        let mut p = profile(&[Sysno::fcntl]);
        p.set_partial(Sysno::fcntl, vec![SubFeature::F_SETFL.key()]);
        let mut k = RestrictedKernel::new(LinuxSim::new(), p);
        let inv = Invocation::for_sub_feature(SubFeature::F_SETFL.key()).with_note("helper:sh");
        k.syscall(&inv);
        assert_eq!(k.observations().total_flag_rejections(), 0);

        let mut a = KernelObservations::default();
        let mut b = KernelObservations::default();
        bump(&mut a.flag_rejections, SubFeature::F_SETFL.key(), 2);
        a.first_rejected_flag = Some(SubFeature::F_SETFL.key());
        bump(&mut b.flag_rejections, SubFeature::F_SETFL.key(), 3);
        bump(&mut b.flag_fake_hits, SubFeature::F_SETFD.key(), 1);
        b.first_rejected_flag = Some(SubFeature::F_SETFD.key());
        a.absorb(&b);
        assert_eq!(a.flag_rejections, vec![(SubFeature::F_SETFL.key(), 5)]);
        assert_eq!(a.flag_fake_hits, vec![(SubFeature::F_SETFD.key(), 1)]);
        assert_eq!(
            a.first_rejected_flag,
            Some(SubFeature::F_SETFL.key()),
            "earliest wins"
        );
    }
}
