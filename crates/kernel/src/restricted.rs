//! A kernel restricted to an OS support profile (§4.1 validation).
//!
//! The paper's incremental support plans are *predictions*: "implement
//! these syscalls, stub/fake those, and the app will run on your OS".
//! [`RestrictedKernel`] lets the engine *execute* that prediction: it
//! wraps a full-featured kernel but only forwards the system calls a
//! [`KernelProfile`] declares implemented — everything else is answered
//! at the boundary, `-ENOSYS` for unimplemented/stubbed calls and a
//! syscall-specific success value for faked ones. Running an application
//! against a `RestrictedKernel` built from a support plan's cumulative
//! state emulates the target OS mid-way through that plan.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use loupe_syscalls::{Errno, Sysno, SysnoSet};

use crate::clock::INTERCEPT_COST;
use crate::fakes::fake_value;
use crate::invocation::{Invocation, SysOutcome};
use crate::net::HostPort;
use crate::resources::ResourceUsage;
use crate::Kernel;

/// The syscall surface one execution environment provides: what is
/// implemented for real, what is deliberately stubbed, and what is
/// shimmed with a fake success value.
///
/// Precedence, mirroring how a real support plan layers work:
/// **implemented** beats both overlays (a real implementation supersedes
/// any shim), **faked** beats **stubbed** (a fake shim is installed
/// precisely because `-ENOSYS` was measured insufficient), and anything
/// else — including syscalls the profile has never heard of — returns
/// `-ENOSYS`, exactly like an OS that has not implemented the call.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelProfile {
    /// Profile name (usually the target OS, e.g. `kerla @ step 3`).
    pub name: String,
    /// Syscalls forwarded to the backing kernel.
    pub implemented: SysnoSet,
    /// Syscalls deliberately answered with `-ENOSYS`.
    pub stubbed: SysnoSet,
    /// Syscalls answered with a fake success value.
    pub faked: SysnoSet,
}

impl KernelProfile {
    /// Creates a profile that implements exactly `implemented`.
    pub fn new(name: impl Into<String>, implemented: SysnoSet) -> KernelProfile {
        KernelProfile {
            name: name.into(),
            implemented,
            stubbed: SysnoSet::new(),
            faked: SysnoSet::new(),
        }
    }

    /// How the profile answers `sysno`.
    pub fn disposition(&self, sysno: Sysno) -> Disposition {
        if self.implemented.contains(sysno) {
            Disposition::Forward
        } else if self.faked.contains(sysno) {
            Disposition::Fake
        } else {
            Disposition::Enosys
        }
    }
}

/// What a [`KernelProfile`] does with one system call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Forward to the backing kernel.
    Forward,
    /// Answer `-ENOSYS` (unimplemented or deliberately stubbed).
    Enosys,
    /// Answer a syscall-specific fake success value.
    Fake,
}

/// What a [`RestrictedKernel`] observed over one run: the per-syscall
/// boundary counters, bundled so they can outlive the kernel (the
/// engine copies them into the analysis report, and the fleet × OS
/// compatibility matrix persists them as per-cell failure causes).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelObservations {
    /// Per-syscall counts of invocations answered `-ENOSYS` because the
    /// profile does not implement them.
    pub rejections: BTreeMap<Sysno, u64>,
    /// Per-syscall counts of invocations answered by the fake overlay.
    pub fake_hits: BTreeMap<Sysno, u64>,
    /// The first syscall ever rejected — the first thing an OS developer
    /// asks when a run fails on their profile ("what did it trip on?").
    pub first_rejection: Option<Sysno>,
}

impl KernelObservations {
    /// Total invocations answered `-ENOSYS` at the profile boundary.
    pub fn total_rejections(&self) -> u64 {
        self.rejections.values().sum()
    }

    /// Total invocations answered by the fake overlay.
    pub fn total_fake_hits(&self) -> u64 {
        self.fake_hits.values().sum()
    }

    /// Accumulates another run's observations (counts add; the first
    /// rejection of the earliest run wins).
    pub fn absorb(&mut self, other: &KernelObservations) {
        for (&s, n) in &other.rejections {
            *self.rejections.entry(s).or_insert(0) += n;
        }
        for (&s, n) in &other.fake_hits {
            *self.fake_hits.entry(s).or_insert(0) += n;
        }
        if self.first_rejection.is_none() {
            self.first_rejection = other.first_rejection;
        }
    }
}

/// A kernel that only exposes the syscall surface of a [`KernelProfile`].
///
/// Wraps any [`Kernel`]; calls outside the profile never reach it.
/// Helper invocations (test-script binaries tagged `helper:`) bypass the
/// restriction, mirroring how Loupe's whitelist lets the measurement
/// harness itself run on the host.
#[derive(Debug)]
pub struct RestrictedKernel<K> {
    inner: K,
    profile: KernelProfile,
    observations: KernelObservations,
}

impl<K: Kernel> RestrictedKernel<K> {
    /// Restricts `inner` to `profile`.
    pub fn new(inner: K, profile: KernelProfile) -> RestrictedKernel<K> {
        RestrictedKernel {
            inner,
            profile,
            observations: KernelObservations::default(),
        }
    }

    /// The active profile.
    pub fn profile(&self) -> &KernelProfile {
        &self.profile
    }

    /// Per-syscall counts of invocations answered `-ENOSYS` because the
    /// profile does not implement them — the first thing to inspect when
    /// a plan-validation run fails.
    pub fn rejections(&self) -> &BTreeMap<Sysno, u64> {
        &self.observations.rejections
    }

    /// Per-syscall counts of invocations answered by the fake overlay.
    pub fn fake_hits(&self) -> &BTreeMap<Sysno, u64> {
        &self.observations.fake_hits
    }

    /// The first syscall this kernel ever rejected, if any.
    pub fn first_rejection(&self) -> Option<Sysno> {
        self.observations.first_rejection
    }

    /// The full observation bundle, cloneable past the kernel's life.
    pub fn observations(&self) -> &KernelObservations {
        &self.observations
    }

    /// Borrow of the backing kernel (provisioning, diagnostics).
    pub fn inner_mut(&mut self) -> &mut K {
        &mut self.inner
    }

    /// Consumes the wrapper, returning the backing kernel.
    pub fn into_inner(self) -> K {
        self.inner
    }
}

impl<K: Kernel> Kernel for RestrictedKernel<K> {
    fn syscall(&mut self, inv: &Invocation) -> SysOutcome {
        // Test-script helper binaries run on the measurement host, not
        // the OS under development — never restricted.
        if inv.note.is_some_and(|n| n.starts_with("helper:")) {
            return self.inner.syscall(inv);
        }
        match self.profile.disposition(inv.sysno) {
            Disposition::Forward => self.inner.syscall(inv),
            Disposition::Enosys => {
                *self.observations.rejections.entry(inv.sysno).or_insert(0) += 1;
                self.observations.first_rejection.get_or_insert(inv.sysno);
                self.inner.charge(INTERCEPT_COST);
                SysOutcome::err(Errno::ENOSYS)
            }
            Disposition::Fake => {
                *self.observations.fake_hits.entry(inv.sysno).or_insert(0) += 1;
                self.inner.charge(INTERCEPT_COST);
                SysOutcome::ok(fake_value(inv))
            }
        }
    }

    fn charge(&mut self, cost: u64) {
        self.inner.charge(cost);
    }

    fn now(&self) -> u64 {
        self.inner.now()
    }

    fn usage(&self) -> ResourceUsage {
        self.inner.usage()
    }

    fn host_mut(&mut self) -> &mut HostPort {
        self.inner.host_mut()
    }

    fn mem_store(&mut self, addr: u64, val: u32) {
        self.inner.mem_store(addr, val);
    }

    fn mem_load(&self, addr: u64) -> u32 {
        self.inner.mem_load(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinuxSim;

    fn profile(implemented: &[Sysno]) -> KernelProfile {
        KernelProfile::new("test-os", implemented.iter().copied().collect())
    }

    #[test]
    fn implemented_calls_reach_the_kernel() {
        let mut k = RestrictedKernel::new(LinuxSim::new(), profile(&[Sysno::getpid]));
        let r = k.syscall(&Invocation::new(Sysno::getpid, [0; 6]));
        assert!(r.ret > 0);
        assert!(k.rejections().is_empty());
    }

    #[test]
    fn unimplemented_calls_return_enosys() {
        let mut k = RestrictedKernel::new(LinuxSim::new(), profile(&[Sysno::getpid]));
        let r = k.syscall(&Invocation::new(Sysno::uname, [0; 6]));
        assert_eq!(r.errno(), Some(Errno::ENOSYS));
        assert_eq!(k.rejections()[&Sysno::uname], 1);
    }

    #[test]
    fn first_rejection_sticks_and_observations_accumulate() {
        let mut k = RestrictedKernel::new(LinuxSim::new(), profile(&[Sysno::getpid]));
        assert_eq!(k.first_rejection(), None);
        k.syscall(&Invocation::new(Sysno::uname, [0; 6]));
        k.syscall(&Invocation::new(Sysno::sysinfo, [0; 6]));
        k.syscall(&Invocation::new(Sysno::uname, [0; 6]));
        assert_eq!(k.first_rejection(), Some(Sysno::uname), "earliest wins");
        let obs = k.observations().clone();
        assert_eq!(obs.rejections[&Sysno::uname], 2);
        assert_eq!(obs.total_rejections(), 3);
        assert_eq!(obs.total_fake_hits(), 0);

        // absorb() adds counts and keeps the earliest first rejection.
        let mut acc = KernelObservations::default();
        acc.absorb(&obs);
        acc.absorb(&obs);
        assert_eq!(acc.rejections[&Sysno::sysinfo], 2);
        assert_eq!(acc.first_rejection, Some(Sysno::uname));
        let json = serde_json::to_string(&acc).unwrap();
        let back: KernelObservations = serde_json::from_str(&json).unwrap();
        assert_eq!(back, acc);
    }

    #[test]
    fn faked_calls_return_success_without_work() {
        let mut p = profile(&[]);
        p.faked.insert(Sysno::write);
        let mut k = RestrictedKernel::new(LinuxSim::new(), p);
        let r = k.syscall(&Invocation::new(Sysno::write, [1, 0, 128, 0, 0, 0]));
        assert_eq!(r.ret, 128, "write fake reports full length");
        assert_eq!(k.usage().cur_fds, 0);
        assert_eq!(k.fake_hits()[&Sysno::write], 1);
    }

    #[test]
    fn implemented_beats_fake_beats_stub() {
        let mut p = profile(&[Sysno::getpid]);
        p.faked.insert(Sysno::getpid);
        p.stubbed.insert(Sysno::getpid);
        assert_eq!(p.disposition(Sysno::getpid), Disposition::Forward);
        let mut p2 = profile(&[]);
        p2.faked.insert(Sysno::getuid);
        p2.stubbed.insert(Sysno::getuid);
        assert_eq!(p2.disposition(Sysno::getuid), Disposition::Fake);
        assert_eq!(p2.disposition(Sysno::geteuid), Disposition::Enosys);
    }

    #[test]
    fn helpers_bypass_the_restriction() {
        let mut k = RestrictedKernel::new(LinuxSim::new(), profile(&[]));
        let r = k.syscall(&Invocation::new(Sysno::getpid, [0; 6]).with_note("helper:sh"));
        assert!(r.ret > 0, "helper calls run on the host kernel");
        assert!(k.rejections().is_empty());
    }

    #[test]
    fn profile_serde_roundtrip() {
        let mut p = profile(&[Sysno::read, Sysno::write]);
        p.stubbed.insert(Sysno::sysinfo);
        p.faked.insert(Sysno::prctl);
        let json = serde_json::to_string(&p).unwrap();
        let back: KernelProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
