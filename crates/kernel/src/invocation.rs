//! System-call invocations and outcomes: the ABI between applications, the
//! interposition layer and the kernel.

use loupe_syscalls::{Errno, PseudoFile, SubFeatureKey, Sysno};

/// One system-call invocation, mirroring the raw six-register ABI.
///
/// Two extra fields carry information the real kernel would read from user
/// memory: `path` (for the `open` family, so pseudo-file interposition can
/// pattern-match it, §3.3) and `note` (a free-form tag app models attach so
/// traces stay interpretable, e.g. `"access-log"`).
///
/// # Examples
///
/// ```
/// use loupe_kernel::Invocation;
/// use loupe_syscalls::Sysno;
///
/// let inv = Invocation::new(Sysno::openat, [u64::MAX, 0, 0, 0, 0, 0])
///     .with_path("/dev/urandom");
/// assert!(inv.pseudo_file().is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Invocation {
    /// The system call.
    pub sysno: Sysno,
    /// Raw argument registers (rdi, rsi, rdx, r10, r8, r9).
    pub args: [u64; 6],
    /// Path argument for path-taking syscalls (`open`, `openat`, `stat`...).
    pub path: Option<String>,
    /// Data argument for write-family syscalls (the buffer the real kernel
    /// would read from user memory).
    pub data: Option<bytes::Bytes>,
    /// Free-form tag attached by the application model.
    pub note: Option<&'static str>,
}

impl Invocation {
    /// Creates an invocation from a syscall number and raw arguments.
    pub fn new(sysno: Sysno, args: [u64; 6]) -> Invocation {
        Invocation {
            sysno,
            args,
            path: None,
            data: None,
            note: None,
        }
    }

    /// Attaches the path argument (builder style).
    pub fn with_path(mut self, path: impl Into<String>) -> Invocation {
        self.path = Some(path.into());
        self
    }

    /// Attaches a write buffer (builder style). Also sets the length
    /// argument (`args[2]`) if it was zero.
    pub fn with_data(mut self, data: impl Into<bytes::Bytes>) -> Invocation {
        let data = data.into();
        if self.args[2] == 0 {
            self.args[2] = data.len() as u64;
        }
        self.data = Some(data);
        self
    }

    /// Attaches a trace note (builder style).
    pub fn with_note(mut self, note: &'static str) -> Invocation {
        self.note = Some(note);
        self
    }

    /// Builds a probe invocation that decodes back to exactly `key` —
    /// the inverse of [`Invocation::sub_feature`], placing the selector
    /// in the register the decoder reads for that syscall. Conformance
    /// suites use this to probe one flag of a vectored syscall instead
    /// of whatever selector a zeroed register vector happens to spell.
    /// For non-vectored syscalls (where `sub_feature()` would return
    /// `None`) the selector lands in argument 1 and is ignored.
    pub fn for_sub_feature(key: SubFeatureKey) -> Invocation {
        let mut args = [0u64; 6];
        match key.sysno() {
            Sysno::prctl | Sysno::arch_prctl => args[0] = key.selector(),
            Sysno::madvise => args[2] = key.selector(),
            Sysno::mmap => args[3] = key.selector(),
            _ => args[1] = key.selector(),
        }
        Invocation::new(key.sysno(), args)
    }

    /// The sub-feature key of this invocation, for vectored system calls.
    ///
    /// The selector argument position depends on the syscall: argument 1
    /// for `ioctl`/`fcntl`/`prlimit64` (fd/pid first), argument 0 for
    /// `prctl`/`arch_prctl`, argument 2 for `madvise`, argument 1 for
    /// `futex` (op), argument 3 masked to `MAP_ANONYMOUS` for `mmap`.
    pub fn sub_feature(&self) -> Option<SubFeatureKey> {
        let sel = match self.sysno {
            Sysno::ioctl | Sysno::fcntl | Sysno::prlimit64 | Sysno::futex => self.args[1],
            Sysno::prctl | Sysno::arch_prctl => self.args[0],
            Sysno::madvise => self.args[2],
            Sysno::mmap => self.args[3] & 0x20, // MAP_ANONYMOUS bit
            _ => return None,
        };
        Some(SubFeatureKey::new(self.sysno, sel))
    }

    /// The pseudo-file this invocation accesses, if it is an `open`-family
    /// call on a `/proc`, `/dev` or `/sys` path.
    pub fn pseudo_file(&self) -> Option<PseudoFile> {
        if !matches!(
            self.sysno,
            Sysno::open | Sysno::openat | Sysno::openat2 | Sysno::creat
        ) {
            return None;
        }
        self.path.as_deref().and_then(PseudoFile::canonicalize)
    }
}

/// Data the kernel returns *besides* the register return value.
///
/// The real kernel writes results through user-space pointers; the model
/// returns them here. Crucially, when the interposition layer *fakes* a
/// syscall it produces a success return value **without** a payload — which
/// is exactly why faking `pipe2` leaves the application holding garbage file
/// descriptors (§5.3).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Payload {
    /// No out-of-band data.
    #[default]
    None,
    /// Bytes read (for `read`/`recvfrom`/...).
    Bytes(bytes::Bytes),
    /// File descriptors returned through an out-parameter
    /// (`pipe2`, `socketpair`).
    Fds([i32; 2]),
    /// A single scalar out-parameter (e.g. current break for `brk(0)`).
    U64(u64),
    /// Two scalars (e.g. rlimit cur/max).
    Pair(u64, u64),
    /// A short string (e.g. `uname` release, `getcwd`).
    Text(String),
    /// A list of scalars (e.g. ready file descriptors from `epoll_wait`).
    List(Vec<u64>),
}

impl Payload {
    /// The payload as bytes, if it is [`Payload::Bytes`].
    pub fn as_bytes(&self) -> Option<&bytes::Bytes> {
        match self {
            Payload::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// The payload as an fd pair, if present.
    pub fn as_fds(&self) -> Option<[i32; 2]> {
        match self {
            Payload::Fds(fds) => Some(*fds),
            _ => None,
        }
    }

    /// The payload as a scalar, if present.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Payload::U64(v) => Some(*v),
            _ => None,
        }
    }
}

/// The outcome of a system call: register return value plus payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SysOutcome {
    /// The raw return value: `>= 0` on success, `-errno` on failure.
    pub ret: i64,
    /// Out-of-band result data (out-parameters, read buffers).
    pub payload: Payload,
}

impl SysOutcome {
    /// Success with a return value and no payload.
    pub fn ok(ret: i64) -> SysOutcome {
        SysOutcome {
            ret,
            payload: Payload::None,
        }
    }

    /// Success with a payload.
    pub fn with_payload(ret: i64, payload: Payload) -> SysOutcome {
        SysOutcome { ret, payload }
    }

    /// Failure with an errno.
    pub fn err(e: Errno) -> SysOutcome {
        SysOutcome {
            ret: e.to_ret(),
            payload: Payload::None,
        }
    }

    /// Whether the call failed (negative return).
    pub fn is_err(&self) -> bool {
        self.ret < 0
    }

    /// The errno, if the call failed with a known one.
    pub fn errno(&self) -> Option<Errno> {
        Errno::from_ret(self.ret)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sub_feature_extraction() {
        let inv = Invocation::new(Sysno::fcntl, [4, 4, 0, 0, 0, 0]);
        let key = inv.sub_feature().unwrap();
        assert_eq!(key.selector_name(), Some("F_SETFL"));

        let inv = Invocation::new(Sysno::arch_prctl, [0x1002, 0, 0, 0, 0, 0]);
        assert_eq!(
            inv.sub_feature().unwrap().selector_name(),
            Some("ARCH_SET_FS")
        );

        let inv = Invocation::new(Sysno::read, [0; 6]);
        assert!(inv.sub_feature().is_none());
    }

    #[test]
    fn mmap_sub_feature_distinguishes_anonymous() {
        let anon = Invocation::new(Sysno::mmap, [0, 4096, 3, 0x22, u64::MAX, 0]);
        assert_eq!(
            anon.sub_feature().unwrap().selector_name(),
            Some("MAP_ANONYMOUS")
        );
        let file = Invocation::new(Sysno::mmap, [0, 4096, 1, 0x2, 3, 0]);
        assert_eq!(
            file.sub_feature().unwrap().selector_name(),
            Some("MAP_FILE_BACKED")
        );
    }

    #[test]
    fn for_sub_feature_inverts_decoding() {
        use loupe_syscalls::SubFeature;
        for &sf in SubFeature::ALL {
            let key = sf.key();
            let inv = Invocation::for_sub_feature(key);
            assert_eq!(inv.sub_feature(), Some(key), "{key}");
        }
        // Raw (unmodeled) selectors round-trip too.
        let raw = SubFeatureKey::new(Sysno::ioctl, 0x5423);
        assert_eq!(Invocation::for_sub_feature(raw).sub_feature(), Some(raw));
    }

    #[test]
    fn pseudo_file_detection() {
        let inv = Invocation::new(Sysno::openat, [0; 6]).with_path("/proc/1/status");
        assert_eq!(inv.pseudo_file().unwrap().path(), "/proc/self/status");
        let inv = Invocation::new(Sysno::openat, [0; 6]).with_path("/etc/fstab");
        assert!(inv.pseudo_file().is_none());
        // Only the open family is pattern-matched.
        let inv = Invocation::new(Sysno::stat, [0; 6]).with_path("/dev/null");
        assert!(inv.pseudo_file().is_none());
    }

    #[test]
    fn outcome_helpers() {
        assert!(SysOutcome::err(Errno::ENOSYS).is_err());
        assert_eq!(SysOutcome::err(Errno::ENOSYS).errno(), Some(Errno::ENOSYS));
        assert!(!SysOutcome::ok(7).is_err());
        assert_eq!(SysOutcome::ok(7).errno(), None);
        let o = SysOutcome::with_payload(0, Payload::Fds([3, 4]));
        assert_eq!(o.payload.as_fds(), Some([3, 4]));
        assert_eq!(o.payload.as_u64(), None);
    }
}
