//! The simulated loopback network and the host-side port.
//!
//! Test scripts play the role of `wrk`, `redis-benchmark` or the iPerf
//! client (§3.2): they connect to the application's listening port, send
//! request bytes and read responses through [`HostPort`]. The application
//! reaches the same connection state through socket system calls, so
//! stubbing or faking any of `socket`/`bind`/`listen`/`accept`/`read`/
//! `write` severs the path exactly where the real kernel would.

use std::collections::{BTreeMap, VecDeque};

use bytes::Bytes;

/// Identifies one TCP connection in the simulated network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConnId(pub u32);

/// One bidirectional connection.
#[derive(Debug, Clone, Default)]
struct Conn {
    to_app: VecDeque<Bytes>,
    to_client: VecDeque<Bytes>,
    client_closed: bool,
    app_closed: bool,
}

/// A listening port.
#[derive(Debug, Clone, Default)]
struct Listener {
    backlog: VecDeque<ConnId>,
    accepted: Vec<ConnId>,
}

/// The network state, exposed to test scripts as the "host side".
///
/// # Examples
///
/// ```
/// use loupe_kernel::HostPort;
///
/// let mut net = HostPort::new();
/// // Nobody is listening yet: connection refused.
/// assert!(net.connect(8080).is_none());
/// ```
///
/// The application side of the state is driven by `listen`/`accept`/`read`/
/// `write` system calls through [`crate::LinuxSim`].
#[derive(Debug, Clone, Default)]
pub struct HostPort {
    listeners: BTreeMap<u16, Listener>,
    conns: BTreeMap<ConnId, Conn>,
    next_conn: u32,
    /// Lines the application printed to stdout/stderr.
    pub console: Vec<String>,
}

impl HostPort {
    /// Creates an empty network.
    pub fn new() -> HostPort {
        HostPort::default()
    }

    // ---- client (test script) side -------------------------------------

    /// Connects to `port`. Returns `None` (connection refused) when no one
    /// is listening.
    pub fn connect(&mut self, port: u16) -> Option<ConnId> {
        let listener = self.listeners.get_mut(&port)?;
        let id = ConnId(self.next_conn);
        self.next_conn += 1;
        listener.backlog.push_back(id);
        self.conns.insert(id, Conn::default());
        Some(id)
    }

    /// Sends request bytes to the application.
    pub fn send(&mut self, conn: ConnId, data: impl Into<Bytes>) {
        if let Some(c) = self.conns.get_mut(&conn) {
            if !c.client_closed {
                c.to_app.push_back(data.into());
            }
        }
    }

    /// Receives one response chunk from the application, if any.
    pub fn recv(&mut self, conn: ConnId) -> Option<Bytes> {
        self.conns.get_mut(&conn)?.to_client.pop_front()
    }

    /// Closes the client side of the connection.
    pub fn close(&mut self, conn: ConnId) {
        if let Some(c) = self.conns.get_mut(&conn) {
            c.client_closed = true;
        }
    }

    /// Whether anyone is listening on `port`.
    pub fn is_listening(&self, port: u16) -> bool {
        self.listeners.contains_key(&port)
    }

    /// Total response chunks queued towards clients (diagnostic).
    pub fn pending_responses(&self) -> usize {
        self.conns.values().map(|c| c.to_client.len()).sum()
    }

    // ---- application (kernel) side -------------------------------------

    /// Registers a listener (the effect of `listen(2)`).
    pub(crate) fn app_listen(&mut self, port: u16) {
        self.listeners.entry(port).or_default();
    }

    /// Accepts a pending connection on `port`.
    pub(crate) fn app_accept(&mut self, port: u16) -> Option<ConnId> {
        let l = self.listeners.get_mut(&port)?;
        let id = l.backlog.pop_front()?;
        l.accepted.push(id);
        Some(id)
    }

    /// Whether `port` has pending, unaccepted connections.
    pub(crate) fn app_has_backlog(&self, port: u16) -> bool {
        self.listeners
            .get(&port)
            .is_some_and(|l| !l.backlog.is_empty())
    }

    /// Reads a request chunk addressed to the application.
    pub(crate) fn app_recv(&mut self, conn: ConnId) -> Option<Bytes> {
        self.conns.get_mut(&conn)?.to_app.pop_front()
    }

    /// Whether data is waiting for the application on `conn`.
    pub(crate) fn app_has_data(&self, conn: ConnId) -> bool {
        self.conns.get(&conn).is_some_and(|c| !c.to_app.is_empty())
    }

    /// Sends response bytes to the client. Returns bytes queued, or `None`
    /// if the connection is gone.
    pub(crate) fn app_send(&mut self, conn: ConnId, data: Bytes) -> Option<u64> {
        let c = self.conns.get_mut(&conn)?;
        if c.app_closed {
            return None;
        }
        let n = data.len() as u64;
        c.to_client.push_back(data);
        Some(n)
    }

    /// Closes the application side.
    pub(crate) fn app_close(&mut self, conn: ConnId) {
        if let Some(c) = self.conns.get_mut(&conn) {
            c.app_closed = true;
        }
    }

    /// Whether any listener has backlog or any connection has inbound data
    /// (used to model "a signal/event is pending").
    pub(crate) fn any_pending_work(&self) -> bool {
        self.listeners.values().any(|l| !l.backlog.is_empty())
            || self.conns.values().any(|c| !c.to_app.is_empty())
    }
}

/// A unidirectional pipe (for `pipe(2)`/`pipe2(2)`).
#[derive(Debug, Clone, Default)]
pub struct Pipe {
    buf: VecDeque<Bytes>,
    read_open: bool,
    write_open: bool,
}

/// The pipe table.
#[derive(Debug, Clone, Default)]
pub struct PipeTable {
    pipes: BTreeMap<u32, Pipe>,
    next: u32,
}

impl PipeTable {
    /// Allocates a new pipe, returning its id.
    pub fn create(&mut self) -> u32 {
        let id = self.next;
        self.next += 1;
        self.pipes.insert(
            id,
            Pipe {
                buf: VecDeque::new(),
                read_open: true,
                write_open: true,
            },
        );
        id
    }

    /// Writes into the pipe; returns bytes written or `None` if the read
    /// end is closed (EPIPE).
    pub fn write(&mut self, id: u32, data: Bytes) -> Option<u64> {
        let p = self.pipes.get_mut(&id)?;
        if !p.read_open {
            return None;
        }
        let n = data.len() as u64;
        p.buf.push_back(data);
        Some(n)
    }

    /// Reads a chunk from the pipe. `Some(None)` means empty-but-open.
    pub fn read(&mut self, id: u32) -> Option<Option<Bytes>> {
        let p = self.pipes.get_mut(&id)?;
        Some(p.buf.pop_front())
    }

    /// Closes one end.
    pub fn close_end(&mut self, id: u32, read_end: bool) {
        if let Some(p) = self.pipes.get_mut(&id) {
            if read_end {
                p.read_open = false;
            } else {
                p.write_open = false;
            }
        }
    }

    /// Whether the pipe has buffered data.
    pub fn has_data(&self, id: u32) -> bool {
        self.pipes.get(&id).is_some_and(|p| !p.buf.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_requires_listener() {
        let mut net = HostPort::new();
        assert!(net.connect(80).is_none());
        net.app_listen(80);
        assert!(net.connect(80).is_some());
    }

    #[test]
    fn request_response_roundtrip() {
        let mut net = HostPort::new();
        net.app_listen(8080);
        let conn = net.connect(8080).unwrap();
        net.send(conn, "ping");
        let accepted = net.app_accept(8080).unwrap();
        assert_eq!(accepted, conn);
        let req = net.app_recv(conn).unwrap();
        assert_eq!(&req[..], b"ping");
        net.app_send(conn, Bytes::from_static(b"pong")).unwrap();
        assert_eq!(&net.recv(conn).unwrap()[..], b"pong");
        assert!(net.recv(conn).is_none());
    }

    #[test]
    fn backlog_order_is_fifo() {
        let mut net = HostPort::new();
        net.app_listen(80);
        let a = net.connect(80).unwrap();
        let b = net.connect(80).unwrap();
        assert_eq!(net.app_accept(80), Some(a));
        assert_eq!(net.app_accept(80), Some(b));
        assert_eq!(net.app_accept(80), None);
    }

    #[test]
    fn pending_work_detection() {
        let mut net = HostPort::new();
        net.app_listen(80);
        assert!(!net.any_pending_work());
        let c = net.connect(80).unwrap();
        assert!(net.any_pending_work());
        net.app_accept(80);
        assert!(!net.any_pending_work());
        net.send(c, "x");
        assert!(net.any_pending_work());
    }

    #[test]
    fn pipes() {
        let mut t = PipeTable::new_for_tests();
        let id = t.create();
        assert_eq!(t.write(id, Bytes::from_static(b"abc")), Some(3));
        assert!(t.has_data(id));
        assert_eq!(&t.read(id).unwrap().unwrap()[..], b"abc");
        assert_eq!(t.read(id).unwrap(), None);
        t.close_end(id, true);
        assert_eq!(t.write(id, Bytes::from_static(b"x")), None, "EPIPE");
    }

    impl PipeTable {
        fn new_for_tests() -> PipeTable {
            PipeTable::default()
        }
    }
}
