//! The virtual-memory model: program break and memory mappings.
//!
//! Address-space layout is a simple bump allocator; what matters for the
//! reproduction is *accounting*: `mmap`/`brk` grow RSS, `munmap` shrinks it
//! — unless it was faked, in which case regions leak (Table 2: +19% memory
//! for Redis when `munmap` is faked).

use std::collections::BTreeMap;

/// Page size used for rounding.
pub const PAGE: u64 = 4096;

/// The memory manager of the simulated process.
#[derive(Debug, Clone)]
pub struct MemoryManager {
    brk_base: u64,
    brk_cur: u64,
    next_map: u64,
    /// addr -> length of live mappings.
    maps: BTreeMap<u64, u64>,
}

impl Default for MemoryManager {
    fn default() -> Self {
        MemoryManager::new()
    }
}

impl MemoryManager {
    /// Creates a manager with an empty heap at the conventional break base.
    pub fn new() -> MemoryManager {
        MemoryManager {
            brk_base: 0x0060_0000,
            brk_cur: 0x0060_0000,
            next_map: 0x7f00_0000_0000,
            maps: BTreeMap::new(),
        }
    }

    /// `brk(0)`: the current break.
    pub fn brk_query(&self) -> u64 {
        self.brk_cur
    }

    /// `brk(addr)`: moves the break. Returns `(new_break, rss_delta)` where
    /// the delta is positive for growth and negative for shrinkage.
    pub fn brk_set(&mut self, addr: u64) -> (u64, i64) {
        if addr < self.brk_base {
            return (self.brk_cur, 0);
        }
        let delta = addr as i64 - self.brk_cur as i64;
        self.brk_cur = addr;
        (self.brk_cur, delta)
    }

    /// Allocates an anonymous or file-backed mapping of `len` bytes
    /// (rounded up to pages). Returns the address.
    pub fn mmap(&mut self, len: u64) -> u64 {
        let len = round_up(len);
        let addr = self.next_map;
        self.next_map += len + PAGE; // guard gap
        self.maps.insert(addr, len);
        addr
    }

    /// Unmaps the region at `addr`. Returns the freed length, or `None`
    /// if the address is not the start of a live mapping.
    pub fn munmap(&mut self, addr: u64) -> Option<u64> {
        self.maps.remove(&addr)
    }

    /// Remaps `addr` to `new_len`, returning `(new_addr, rss_delta)` or
    /// `None` if the mapping is unknown.
    pub fn mremap(&mut self, addr: u64, new_len: u64) -> Option<(u64, i64)> {
        let old_len = self.maps.remove(&addr)?;
        let new_len = round_up(new_len);
        let new_addr = self.mmap(new_len);
        Some((new_addr, new_len as i64 - old_len as i64))
    }

    /// Whether `addr` starts a live mapping.
    pub fn is_mapped(&self, addr: u64) -> bool {
        self.maps.contains_key(&addr)
    }

    /// Total bytes in live mappings.
    pub fn mapped_bytes(&self) -> u64 {
        self.maps.values().sum()
    }

    /// Bytes consumed by the heap (break area).
    pub fn heap_bytes(&self) -> u64 {
        self.brk_cur - self.brk_base
    }

    /// Number of live mappings.
    pub fn map_count(&self) -> usize {
        self.maps.len()
    }
}

fn round_up(len: u64) -> u64 {
    len.div_ceil(PAGE).saturating_mul(PAGE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brk_grows_and_shrinks() {
        let mut m = MemoryManager::new();
        let base = m.brk_query();
        let (nb, d) = m.brk_set(base + 8192);
        assert_eq!(nb, base + 8192);
        assert_eq!(d, 8192);
        let (nb2, d2) = m.brk_set(base + 4096);
        assert_eq!(nb2, base + 4096);
        assert_eq!(d2, -4096);
        assert_eq!(m.heap_bytes(), 4096);
    }

    #[test]
    fn brk_below_base_is_ignored() {
        let mut m = MemoryManager::new();
        let cur = m.brk_query();
        let (nb, d) = m.brk_set(1);
        assert_eq!(nb, cur);
        assert_eq!(d, 0);
    }

    #[test]
    fn mmap_rounds_to_pages_and_munmap_frees() {
        let mut m = MemoryManager::new();
        let a = m.mmap(100);
        assert!(m.is_mapped(a));
        assert_eq!(m.mapped_bytes(), PAGE);
        assert_eq!(m.munmap(a), Some(PAGE));
        assert_eq!(m.mapped_bytes(), 0);
        assert_eq!(m.munmap(a), None);
    }

    #[test]
    fn mappings_do_not_overlap() {
        let mut m = MemoryManager::new();
        let a = m.mmap(PAGE * 2);
        let b = m.mmap(PAGE);
        assert!(b >= a + PAGE * 2);
    }

    #[test]
    fn mremap_moves_and_accounts() {
        let mut m = MemoryManager::new();
        let a = m.mmap(PAGE);
        let (b, delta) = m.mremap(a, PAGE * 3).unwrap();
        assert!(!m.is_mapped(a));
        assert!(m.is_mapped(b));
        assert_eq!(delta, (PAGE * 2) as i64);
        assert!(m.mremap(0xdead_0000, PAGE).is_none());
    }
}
