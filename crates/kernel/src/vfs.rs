//! The in-memory virtual filesystem, including pseudo-files.
//!
//! Application models pre-populate the VFS with their configuration files
//! and content roots; pseudo-files under `/proc`, `/dev` and `/sys` are
//! generated on demand so that accesses to them can be traced, stubbed or
//! faked by the interposition layer (§3.3).

use std::collections::BTreeMap;

use bytes::Bytes;

/// A node in the filesystem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A regular file and its contents.
    File(Vec<u8>),
    /// A directory.
    Dir,
}

/// The virtual filesystem tree.
///
/// # Examples
///
/// ```
/// use loupe_kernel::vfs::Vfs;
///
/// let mut vfs = Vfs::new();
/// vfs.add_file("/etc/app.conf", b"workers 4\n".to_vec());
/// assert!(vfs.exists("/etc/app.conf"));
/// assert!(vfs.exists("/dev/urandom")); // pseudo-files always exist
/// ```
#[derive(Debug, Clone, Default)]
pub struct Vfs {
    nodes: BTreeMap<String, Node>,
    umask: u32,
}

impl Vfs {
    /// Creates a VFS containing only the root and standard top-level
    /// directories.
    pub fn new() -> Vfs {
        let mut vfs = Vfs {
            nodes: BTreeMap::new(),
            umask: 0o022,
        };
        for d in ["/", "/etc", "/tmp", "/var", "/var/log", "/usr", "/home"] {
            vfs.nodes.insert(d.to_owned(), Node::Dir);
        }
        vfs
    }

    /// Adds (or replaces) a regular file, creating parent directories.
    pub fn add_file(&mut self, path: &str, content: Vec<u8>) {
        self.mkdirs_for(path);
        self.nodes.insert(path.to_owned(), Node::File(content));
    }

    /// Creates a directory (and parents).
    pub fn mkdir(&mut self, path: &str) {
        self.mkdirs_for(path);
        self.nodes.insert(path.to_owned(), Node::Dir);
    }

    fn mkdirs_for(&mut self, path: &str) {
        let mut prefix = String::new();
        let parts: Vec<&str> = path.split('/').filter(|c| !c.is_empty()).collect();
        for comp in parts.iter().take(parts.len().saturating_sub(1)) {
            prefix.push('/');
            prefix.push_str(comp);
            self.nodes.entry(prefix.clone()).or_insert(Node::Dir);
        }
    }

    /// Whether a path exists (regular or pseudo).
    pub fn exists(&self, path: &str) -> bool {
        self.nodes.contains_key(path) || pseudo_content(path).is_some()
    }

    /// Whether a path is a directory.
    pub fn is_dir(&self, path: &str) -> bool {
        matches!(self.nodes.get(path), Some(Node::Dir))
    }

    /// File size, if the path is a regular or pseudo file.
    pub fn size(&self, path: &str) -> Option<u64> {
        match self.nodes.get(path) {
            Some(Node::File(c)) => Some(c.len() as u64),
            Some(Node::Dir) => Some(4096),
            None => pseudo_content(path).map(|c| c.len() as u64),
        }
    }

    /// Reads up to `len` bytes at `offset`.
    pub fn read_at(&self, path: &str, offset: u64, len: u64) -> Option<Bytes> {
        let content: Vec<u8> = match self.nodes.get(path) {
            Some(Node::File(c)) => c.clone(),
            Some(Node::Dir) => return None,
            None => pseudo_content(path)?,
        };
        let start = (offset as usize).min(content.len());
        let end = (start + len as usize).min(content.len());
        Some(Bytes::copy_from_slice(&content[start..end]))
    }

    /// Writes `data` at `offset` (extending the file), creating the file
    /// if needed. Returns bytes written, or `None` for directories.
    pub fn write_at(&mut self, path: &str, offset: u64, data: &[u8]) -> Option<u64> {
        if pseudo_content(path).is_some() {
            // Writes to pseudo-files are accepted and discarded.
            return Some(data.len() as u64);
        }
        self.mkdirs_for(path);
        let node = self
            .nodes
            .entry(path.to_owned())
            .or_insert_with(|| Node::File(Vec::new()));
        match node {
            Node::File(c) => {
                let off = offset as usize;
                if c.len() < off {
                    c.resize(off, 0);
                }
                let end = off + data.len();
                if c.len() < end {
                    c.resize(end, 0);
                }
                c[off..end].copy_from_slice(data);
                Some(data.len() as u64)
            }
            Node::Dir => None,
        }
    }

    /// Removes a file. Returns `true` if it existed.
    pub fn unlink(&mut self, path: &str) -> bool {
        matches!(self.nodes.remove(path), Some(Node::File(_)))
    }

    /// Renames a file. Returns `false` if the source is missing.
    pub fn rename(&mut self, from: &str, to: &str) -> bool {
        match self.nodes.remove(from) {
            Some(node) => {
                self.mkdirs_for(to);
                self.nodes.insert(to.to_owned(), node);
                true
            }
            None => false,
        }
    }

    /// Lists the names of entries directly under `dir`.
    pub fn list(&self, dir: &str) -> Vec<String> {
        let prefix = if dir.ends_with('/') {
            dir.to_owned()
        } else {
            format!("{dir}/")
        };
        self.nodes
            .keys()
            .filter(|p| {
                p.starts_with(&prefix)
                    && !p[prefix.len()..].contains('/')
                    && !p[prefix.len()..].is_empty()
            })
            .map(|p| p[prefix.len()..].to_owned())
            .collect()
    }

    /// The process umask (stored here for `umask(2)`).
    pub fn umask(&self) -> u32 {
        self.umask
    }

    /// Sets the umask, returning the previous value.
    pub fn set_umask(&mut self, mask: u32) -> u32 {
        std::mem::replace(&mut self.umask, mask & 0o777)
    }
}

/// Generated content for pseudo-files. Deterministic so replicated runs
/// agree (§3.1 replication protocol).
pub fn pseudo_content(path: &str) -> Option<Vec<u8>> {
    let content: Vec<u8> = match path {
        "/dev/null" => Vec::new(),
        "/dev/zero" => vec![0u8; 4096],
        "/dev/random" | "/dev/urandom" => (0..4096u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 24) as u8)
            .collect(),
        "/dev/tty" => Vec::new(),
        "/proc/cpuinfo" => b"processor\t: 0\nmodel name\t: Simulated CPU\n".to_vec(),
        "/proc/meminfo" => b"MemTotal:       16384000 kB\nMemFree:        8192000 kB\n".to_vec(),
        "/proc/stat" => b"cpu  100 0 100 1000 0 0 0 0 0 0\n".to_vec(),
        "/proc/self/status" => b"Name:\tapp\nVmRSS:\t    4096 kB\nFDSize:\t64\n".to_vec(),
        "/proc/self/exe" => b"/usr/bin/app".to_vec(),
        "/proc/self/maps" => b"400000-401000 r-xp 00000000 00:00 0 /usr/bin/app\n".to_vec(),
        "/proc/self/stat" => b"1 (app) R 0 1 1 0 -1 0\n".to_vec(),
        "/proc/sys/kernel/osrelease" => b"5.15.0-sim\n".to_vec(),
        "/proc/sys/net/core/somaxconn" => b"4096\n".to_vec(),
        "/proc/sys/vm/overcommit_memory" => b"0\n".to_vec(),
        "/proc/sys/vm/max_map_count" => b"65530\n".to_vec(),
        "/sys/devices/system/cpu/online" => b"0-3\n".to_vec(),
        "/sys/kernel/mm/transparent_hugepage/enabled" => b"[always] madvise never\n".to_vec(),
        _ => {
            // Any other /proc//dev//sys path yields empty readable content.
            if loupe_syscalls::PseudoFileClass::of_path(path).is_some() {
                Vec::new()
            } else {
                return None;
            }
        }
    };
    Some(content)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_read_file() {
        let mut vfs = Vfs::new();
        vfs.add_file("/etc/nginx/nginx.conf", b"worker_processes 1;".to_vec());
        assert!(vfs.exists("/etc/nginx/nginx.conf"));
        assert!(vfs.is_dir("/etc/nginx"));
        let b = vfs.read_at("/etc/nginx/nginx.conf", 0, 1024).unwrap();
        assert_eq!(&b[..], b"worker_processes 1;");
        let tail = vfs.read_at("/etc/nginx/nginx.conf", 7, 1024).unwrap();
        assert_eq!(&tail[..], b"processes 1;");
    }

    #[test]
    fn write_extends_and_overwrites() {
        let mut vfs = Vfs::new();
        vfs.write_at("/var/log/access.log", 0, b"GET /\n").unwrap();
        vfs.write_at("/var/log/access.log", 6, b"GET /x\n").unwrap();
        assert_eq!(vfs.size("/var/log/access.log"), Some(13));
    }

    #[test]
    fn pseudo_files_always_exist() {
        let vfs = Vfs::new();
        assert!(vfs.exists("/dev/urandom"));
        assert!(vfs.exists("/proc/self/status"));
        assert!(vfs.exists("/proc/anything/at/all"));
        assert!(!vfs.exists("/etc/missing"));
        let rnd = vfs.read_at("/dev/urandom", 0, 16).unwrap();
        assert_eq!(rnd.len(), 16);
        // Deterministic across reads.
        assert_eq!(rnd, vfs.read_at("/dev/urandom", 0, 16).unwrap());
    }

    #[test]
    fn writes_to_pseudo_files_are_discarded() {
        let mut vfs = Vfs::new();
        assert_eq!(vfs.write_at("/dev/null", 0, b"gone"), Some(4));
        assert_eq!(vfs.size("/dev/null"), Some(0));
    }

    #[test]
    fn unlink_and_rename() {
        let mut vfs = Vfs::new();
        vfs.add_file("/tmp/a", b"x".to_vec());
        assert!(vfs.rename("/tmp/a", "/tmp/b"));
        assert!(!vfs.exists("/tmp/a"));
        assert!(vfs.unlink("/tmp/b"));
        assert!(!vfs.unlink("/tmp/b"));
        assert!(!vfs.rename("/tmp/missing", "/tmp/c"));
    }

    #[test]
    fn list_directory() {
        let mut vfs = Vfs::new();
        vfs.add_file("/srv/www/index.html", b"hi".to_vec());
        vfs.add_file("/srv/www/style.css", b"c".to_vec());
        vfs.add_file("/srv/www/sub/page.html", b"p".to_vec());
        let mut names = vfs.list("/srv/www");
        names.sort();
        assert_eq!(names, ["index.html", "style.css", "sub"]);
    }

    #[test]
    fn umask_roundtrip() {
        let mut vfs = Vfs::new();
        let old = vfs.set_umask(0o077);
        assert_eq!(old, 0o022);
        assert_eq!(vfs.umask(), 0o077);
    }
}
