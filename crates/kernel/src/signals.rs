//! Signal state: dispositions, masks and the suspend primitive.
//!
//! The model is deliberately shallow — what matters for the reproduction is
//! that `rt_sigsuspend` *blocks until there is work* when implemented, and
//! degrades to busy-wait polling when stubbed (Table 2: -38% for Nginx).

use std::collections::BTreeMap;

/// Signal numbers used by the app models.
pub mod signo {
    /// SIGHUP.
    pub const SIGHUP: i32 = 1;
    /// SIGINT.
    pub const SIGINT: i32 = 2;
    /// SIGPIPE.
    pub const SIGPIPE: i32 = 13;
    /// SIGTERM.
    pub const SIGTERM: i32 = 15;
    /// SIGCHLD.
    pub const SIGCHLD: i32 = 17;
    /// SIGUSR1.
    pub const SIGUSR1: i32 = 10;
}

/// Per-process signal state.
#[derive(Debug, Clone, Default)]
pub struct SignalState {
    handlers: BTreeMap<i32, u64>,
    mask: u64,
    altstack_installed: bool,
}

impl SignalState {
    /// Creates default signal state (all default dispositions).
    pub fn new() -> SignalState {
        SignalState::default()
    }

    /// `rt_sigaction`: installs a handler, returning the previous one.
    pub fn set_handler(&mut self, sig: i32, handler: u64) -> u64 {
        self.handlers.insert(sig, handler).unwrap_or(0)
    }

    /// The installed handler for `sig` (0 = default).
    pub fn handler(&self, sig: i32) -> u64 {
        self.handlers.get(&sig).copied().unwrap_or(0)
    }

    /// `rt_sigprocmask`: SIG_SETMASK-style update, returning the old mask.
    pub fn set_mask(&mut self, how: u64, mask: u64) -> u64 {
        let old = self.mask;
        match how {
            0 => self.mask |= mask,  // SIG_BLOCK
            1 => self.mask &= !mask, // SIG_UNBLOCK
            _ => self.mask = mask,   // SIG_SETMASK
        }
        old
    }

    /// The current blocked-signal mask.
    pub fn mask(&self) -> u64 {
        self.mask
    }

    /// `sigaltstack`: record installation.
    pub fn install_altstack(&mut self) {
        self.altstack_installed = true;
    }

    /// Whether an alternate signal stack is installed.
    pub fn has_altstack(&self) -> bool {
        self.altstack_installed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handlers_roundtrip() {
        let mut s = SignalState::new();
        assert_eq!(s.set_handler(signo::SIGTERM, 0x1000), 0);
        assert_eq!(s.set_handler(signo::SIGTERM, 0x2000), 0x1000);
        assert_eq!(s.handler(signo::SIGTERM), 0x2000);
        assert_eq!(s.handler(signo::SIGHUP), 0);
    }

    #[test]
    fn mask_operations() {
        let mut s = SignalState::new();
        s.set_mask(0, 0b0110); // block
        assert_eq!(s.mask(), 0b0110);
        s.set_mask(1, 0b0010); // unblock
        assert_eq!(s.mask(), 0b0100);
        let old = s.set_mask(2, 0b1111); // setmask
        assert_eq!(old, 0b0100);
        assert_eq!(s.mask(), 0b1111);
    }

    #[test]
    fn altstack() {
        let mut s = SignalState::new();
        assert!(!s.has_altstack());
        s.install_altstack();
        assert!(s.has_altstack());
    }
}
