//! A simulated Linux kernel substrate for the Loupe reproduction.
//!
//! The paper runs real applications on a real Linux kernel and interposes on
//! their system calls with seccomp/ptrace. This environment has neither the
//! applications nor their Docker harnesses, so — per the substitution rule —
//! this crate provides the *closest synthetic equivalent*: an in-process
//! Linux model with enough semantic depth that stubbing and faking system
//! calls has the same **observable consequences** the paper reports:
//!
//! * faking `close`/`munmap` leaks file descriptors / memory (§5.3, Table 2),
//! * stubbing `brk` triggers the libc's mmap fallback and a memory-usage
//!   increase (Table 2),
//! * faking `pipe2` silently yields unusable pipe ends (§5.3),
//! * stubbing `rt_sigsuspend` turns blocking waits into busy-waiting and
//!   costs virtual time (Table 2),
//! * faking `futex` breaks lock hand-off consistency (Table 2),
//! * resource usage (peak RSS / open FDs) is accounted exactly like Loupe's
//!   `/proc`-based recording (§3.2).
//!
//! Applications interact with the kernel exclusively through the [`Kernel`]
//! trait, which mirrors the raw syscall ABI ([`Invocation`] in,
//! [`SysOutcome`] out). The Loupe engine interposes by wrapping any
//! `Kernel` implementation.
//!
//! # Examples
//!
//! ```
//! use loupe_kernel::{Invocation, Kernel, LinuxSim};
//! use loupe_syscalls::Sysno;
//!
//! let mut k = LinuxSim::new();
//! let pid = k.syscall(&Invocation::new(Sysno::getpid, [0; 6]));
//! assert!(pid.ret > 0);
//! ```

pub mod clock;
pub mod fakes;
pub mod fd;
pub mod futex;
pub mod invocation;
pub mod limits;
pub mod linux;
pub mod mem;
pub mod net;
pub mod resources;
pub mod restricted;
pub mod signals;
pub mod vfs;

pub use clock::VirtualClock;
pub use fakes::fake_value;
pub use invocation::{Invocation, Payload, SysOutcome};
pub use linux::LinuxSim;
pub use net::HostPort;
pub use resources::ResourceUsage;
pub use restricted::{
    Disposition, FlagAnswer, KernelObservations, KernelProfile, RestrictedKernel, SyscallSupport,
};

use loupe_syscalls::Errno;

/// The interface applications use to talk to "the OS".
///
/// Implemented by [`LinuxSim`] (the full-featured reference kernel) and by
/// the Loupe engine's interposition wrapper, which can stub, fake or
/// pass-through individual system calls and sub-features.
pub trait Kernel {
    /// Executes one system call.
    fn syscall(&mut self, inv: &Invocation) -> SysOutcome;

    /// Charges `cost` units of application compute time to the virtual
    /// clock (the application's own work between system calls).
    fn charge(&mut self, cost: u64);

    /// Current virtual time.
    fn now(&self) -> u64;

    /// Resource usage accounted so far (peak RSS, open FDs, ...).
    fn usage(&self) -> ResourceUsage;

    /// The host-side port used by test scripts to inject client
    /// connections and collect responses (the `wrk` / `redis-benchmark`
    /// side of the world).
    fn host_mut(&mut self) -> &mut HostPort;

    /// Stores to a user-space word (modelled application memory, e.g. a
    /// futex word). Plain memory traffic — never interposed.
    fn mem_store(&mut self, addr: u64, val: u32);

    /// Loads from a user-space word.
    fn mem_load(&self, addr: u64) -> u32;
}

/// Boxed kernels are kernels too — execution environments hand the
/// engine a `Box<dyn Kernel>` and everything downstream (interposition,
/// restriction) composes over it.
impl<K: Kernel + ?Sized> Kernel for Box<K> {
    fn syscall(&mut self, inv: &Invocation) -> SysOutcome {
        (**self).syscall(inv)
    }

    fn charge(&mut self, cost: u64) {
        (**self).charge(cost);
    }

    fn now(&self) -> u64 {
        (**self).now()
    }

    fn usage(&self) -> ResourceUsage {
        (**self).usage()
    }

    fn host_mut(&mut self) -> &mut HostPort {
        (**self).host_mut()
    }

    fn mem_store(&mut self, addr: u64, val: u32) {
        (**self).mem_store(addr, val);
    }

    fn mem_load(&self, addr: u64) -> u32 {
        (**self).mem_load(addr)
    }
}

/// Convenience: builds an error return value.
///
/// # Examples
///
/// ```
/// use loupe_kernel::err;
/// use loupe_syscalls::Errno;
/// assert_eq!(err(Errno::EBADF).ret, -9);
/// ```
pub fn err(e: Errno) -> SysOutcome {
    SysOutcome::err(e)
}

/// Convenience: builds a success return value without payload.
pub fn ok(ret: i64) -> SysOutcome {
    SysOutcome::ok(ret)
}
