//! Virtual time.
//!
//! The simulator measures performance in abstract *time units*. Every
//! syscall charges a base cost (plus data-proportional cost for I/O), and
//! application models charge their own compute between calls. Benchmarks
//! report `requests / elapsed`, so removing work (e.g. stubbing the
//! access-log `write`) increases throughput and adding work (busy-waiting
//! after stubbing `rt_sigsuspend`) decreases it — reproducing the dynamics
//! behind Table 2.

use loupe_syscalls::{Category, Sysno};

/// A monotonically increasing virtual clock.
///
/// # Examples
///
/// ```
/// use loupe_kernel::VirtualClock;
///
/// let mut clock = VirtualClock::new();
/// clock.advance(100);
/// assert_eq!(clock.now(), 100);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VirtualClock {
    now: u64,
}

impl VirtualClock {
    /// Creates a clock at time zero.
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// Current time in units.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Advances the clock by `units`.
    pub fn advance(&mut self, units: u64) {
        self.now = self.now.saturating_add(units);
    }
}

/// Base virtual-time cost of executing a system call in the kernel.
///
/// Cheap getters cost little; I/O and blocking calls cost more. The values
/// are not calibrated against real hardware — only their *relative*
/// magnitudes matter for reproducing the paper's performance shapes.
pub fn base_cost(sysno: Sysno) -> u64 {
    match sysno {
        // Identity getters and trivial queries are nearly free.
        Sysno::getpid
        | Sysno::gettid
        | Sysno::getppid
        | Sysno::getuid
        | Sysno::geteuid
        | Sysno::getgid
        | Sysno::getegid
        | Sysno::umask
        | Sysno::alarm => 2,
        // Clock reads are vDSO-class.
        Sysno::clock_gettime | Sysno::gettimeofday | Sysno::time => 1,
        // Data-moving I/O: base cost here, per-byte cost added by the
        // kernel at the call site.
        Sysno::read
        | Sysno::write
        | Sysno::readv
        | Sysno::writev
        | Sysno::pread64
        | Sysno::pwrite64
        | Sysno::sendto
        | Sysno::recvfrom
        | Sysno::sendmsg
        | Sysno::recvmsg
        | Sysno::sendfile => 30,
        // Connection management.
        Sysno::accept | Sysno::accept4 | Sysno::connect => 50,
        Sysno::socket | Sysno::bind | Sysno::listen | Sysno::socketpair => 40,
        // Event waiting (cost of the trap; actual waiting modelled by apps).
        Sysno::epoll_wait
        | Sysno::epoll_pwait
        | Sysno::poll
        | Sysno::select
        | Sysno::ppoll
        | Sysno::pselect6 => 20,
        // Memory management.
        Sysno::mmap | Sysno::munmap | Sysno::mremap => 60,
        Sysno::brk => 25,
        Sysno::mprotect | Sysno::madvise => 30,
        // Process control is expensive.
        Sysno::clone | Sysno::fork | Sysno::vfork | Sysno::clone3 => 400,
        Sysno::execve | Sysno::execveat => 800,
        // Blocking waits.
        Sysno::rt_sigsuspend | Sysno::pause | Sysno::wait4 | Sysno::waitid => 15,
        Sysno::futex => 12,
        Sysno::nanosleep | Sysno::clock_nanosleep => 15,
        // Filesystem metadata.
        Sysno::open | Sysno::openat | Sysno::creat => 45,
        Sysno::close => 15,
        Sysno::stat
        | Sysno::fstat
        | Sysno::lstat
        | Sysno::newfstatat
        | Sysno::statx
        | Sysno::access
        | Sysno::faccessat => 25,
        _ => match Category::of(sysno) {
            Category::FileIo => 25,
            Category::Network => 35,
            Category::Memory => 30,
            Category::Process => 50,
            _ => 10,
        },
    }
}

/// Cost charged when a syscall is intercepted and answered by the
/// interposition layer (stub/fake) instead of the kernel: just the trap.
pub const INTERCEPT_COST: u64 = 1;

/// Per-byte cost of moving data through read/write-style calls, expressed
/// as bytes per time unit (i.e. `len / BYTES_PER_UNIT` extra units).
pub const BYTES_PER_UNIT: u64 = 256;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_and_saturates() {
        let mut c = VirtualClock::new();
        c.advance(5);
        c.advance(7);
        assert_eq!(c.now(), 12);
        c.advance(u64::MAX);
        assert_eq!(c.now(), u64::MAX);
    }

    #[test]
    fn relative_costs_are_sensible() {
        assert!(base_cost(Sysno::getpid) < base_cost(Sysno::write));
        assert!(base_cost(Sysno::write) < base_cost(Sysno::clone));
        assert!(base_cost(Sysno::clone) < base_cost(Sysno::execve));
        assert!(INTERCEPT_COST < base_cost(Sysno::getpid));
    }

    #[test]
    fn every_syscall_has_a_cost() {
        for s in Sysno::all() {
            assert!(base_cost(s) >= 1);
        }
    }
}
