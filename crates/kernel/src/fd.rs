//! The per-process file-descriptor table.

use std::collections::BTreeSet;

use crate::net::ConnId;

/// What a file descriptor refers to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FdKind {
    /// Standard input/output/error, modelled as a TTY.
    Tty,
    /// A regular file in the simulated VFS.
    File {
        /// Canonical path of the file.
        path: String,
        /// Current read/write offset.
        offset: u64,
        /// Whether the file was opened with `O_APPEND`.
        append: bool,
    },
    /// A TCP socket: unbound, bound+listening, or connected outbound.
    Listener {
        /// Bound port, 0 before `bind`.
        port: u16,
        /// Whether `listen` was called.
        listening: bool,
        /// Whether `connect` succeeded (outbound client socket).
        connected: bool,
        /// Whether `SO_REUSEADDR`-class options were applied.
        sockopt: bool,
    },
    /// A connected TCP socket.
    Conn(ConnId),
    /// The read end of a pipe.
    PipeRead(u32),
    /// The write end of a pipe.
    PipeWrite(u32),
    /// An epoll instance with its interest list.
    Epoll(BTreeSet<i32>),
    /// An eventfd counter.
    EventFd(u64),
    /// A timerfd.
    TimerFd,
    /// A signalfd.
    SignalFd,
    /// An inotify instance.
    Inotify,
    /// A memfd with its length.
    MemFd(u64),
}

/// One slot in the FD table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FdEntry {
    /// What the descriptor refers to.
    pub kind: FdKind,
    /// `O_NONBLOCK` status flag.
    pub nonblocking: bool,
    /// `FD_CLOEXEC` descriptor flag.
    pub cloexec: bool,
}

impl FdEntry {
    /// Creates an entry with default flags.
    pub fn new(kind: FdKind) -> FdEntry {
        FdEntry {
            kind,
            nonblocking: false,
            cloexec: false,
        }
    }
}

/// The file-descriptor table: fds 0..2 are pre-opened TTYs.
#[derive(Debug, Clone, Default)]
pub struct FdTable {
    slots: Vec<Option<FdEntry>>,
}

impl FdTable {
    /// Creates a table with stdin/stdout/stderr open.
    pub fn new() -> FdTable {
        FdTable {
            slots: vec![
                Some(FdEntry::new(FdKind::Tty)),
                Some(FdEntry::new(FdKind::Tty)),
                Some(FdEntry::new(FdKind::Tty)),
            ],
        }
    }

    /// Allocates the lowest free descriptor at or above `min`, or `None`
    /// if doing so would exceed `limit`.
    pub fn alloc_from(&mut self, entry: FdEntry, min: usize, limit: u64) -> Option<i32> {
        let idx = (min..self.slots.len())
            .find(|&i| self.slots[i].is_none())
            .unwrap_or(self.slots.len().max(min));
        if (idx as u64) >= limit {
            return None;
        }
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, None);
        }
        self.slots[idx] = Some(entry);
        Some(idx as i32)
    }

    /// Allocates the lowest free descriptor (>= 0).
    pub fn alloc(&mut self, entry: FdEntry, limit: u64) -> Option<i32> {
        self.alloc_from(entry, 0, limit)
    }

    /// Installs `entry` at exactly `fd` (for `dup2`), returning the
    /// displaced entry if any.
    pub fn install(&mut self, fd: i32, entry: FdEntry) -> Option<FdEntry> {
        let idx = fd as usize;
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, None);
        }
        self.slots[idx].replace(entry)
    }

    /// Looks up an entry.
    pub fn get(&self, fd: i32) -> Option<&FdEntry> {
        if fd < 0 {
            return None;
        }
        self.slots.get(fd as usize).and_then(Option::as_ref)
    }

    /// Looks up an entry mutably.
    pub fn get_mut(&mut self, fd: i32) -> Option<&mut FdEntry> {
        if fd < 0 {
            return None;
        }
        self.slots.get_mut(fd as usize).and_then(Option::as_mut)
    }

    /// Closes a descriptor, returning its entry if it was open.
    pub fn close(&mut self, fd: i32) -> Option<FdEntry> {
        if fd < 0 {
            return None;
        }
        self.slots.get_mut(fd as usize).and_then(Option::take)
    }

    /// Number of currently open descriptors.
    pub fn open_count(&self) -> u32 {
        self.slots.iter().filter(|s| s.is_some()).count() as u32
    }

    /// Iterates over `(fd, entry)` pairs of open descriptors.
    pub fn iter(&self) -> impl Iterator<Item = (i32, &FdEntry)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|e| (i as i32, e)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stdio_is_preopened() {
        let t = FdTable::new();
        assert_eq!(t.open_count(), 3);
        assert!(matches!(t.get(0).unwrap().kind, FdKind::Tty));
        assert!(t.get(3).is_none());
    }

    #[test]
    fn alloc_returns_lowest_free() {
        let mut t = FdTable::new();
        let a = t.alloc(FdEntry::new(FdKind::Tty), 1024).unwrap();
        assert_eq!(a, 3);
        t.close(1);
        let b = t.alloc(FdEntry::new(FdKind::Tty), 1024).unwrap();
        assert_eq!(b, 1, "reuses freed slot");
    }

    #[test]
    fn alloc_respects_limit() {
        let mut t = FdTable::new();
        assert!(t.alloc(FdEntry::new(FdKind::Tty), 3).is_none());
        assert!(t.alloc(FdEntry::new(FdKind::Tty), 4).is_some());
    }

    #[test]
    fn alloc_from_minimum() {
        let mut t = FdTable::new();
        let fd = t.alloc_from(FdEntry::new(FdKind::Tty), 10, 1024).unwrap();
        assert_eq!(fd, 10);
    }

    #[test]
    fn close_frees_and_reports() {
        let mut t = FdTable::new();
        assert!(t.close(2).is_some());
        assert!(t.close(2).is_none());
        assert_eq!(t.open_count(), 2);
        assert!(t.close(-1).is_none());
    }

    #[test]
    fn install_displaces() {
        let mut t = FdTable::new();
        let old = t.install(1, FdEntry::new(FdKind::TimerFd));
        assert!(matches!(old.unwrap().kind, FdKind::Tty));
        assert!(matches!(t.get(1).unwrap().kind, FdKind::TimerFd));
        assert!(t.install(100, FdEntry::new(FdKind::TimerFd)).is_none());
    }
}
