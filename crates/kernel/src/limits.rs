//! Resource limits (`getrlimit`/`setrlimit`/`prlimit64`).
//!
//! Limit getters matter to the reproduction because applications tune
//! themselves from them (Fig. 6a: Redis sizes `maxclients` from
//! `RLIMIT_NOFILE` and falls back to a conservative default when the getter
//! fails — which is what makes `getrlimit`/`prlimit64` stubbable, at the
//! cost of resource-usage changes, §5.3).

use std::collections::BTreeMap;

/// `RLIMIT_*` resource identifiers (subset used by the app models).
pub mod resource {
    /// RLIMIT_CPU.
    pub const CPU: u64 = 0;
    /// RLIMIT_FSIZE.
    pub const FSIZE: u64 = 1;
    /// RLIMIT_DATA.
    pub const DATA: u64 = 2;
    /// RLIMIT_STACK.
    pub const STACK: u64 = 3;
    /// RLIMIT_CORE.
    pub const CORE: u64 = 4;
    /// RLIMIT_NPROC.
    pub const NPROC: u64 = 6;
    /// RLIMIT_NOFILE.
    pub const NOFILE: u64 = 7;
    /// RLIMIT_AS.
    pub const AS: u64 = 9;
}

/// The "infinity" limit value.
pub const RLIM_INFINITY: u64 = u64::MAX;

/// The per-process resource-limit table.
#[derive(Debug, Clone)]
pub struct RlimitTable {
    limits: BTreeMap<u64, (u64, u64)>,
}

impl Default for RlimitTable {
    fn default() -> Self {
        RlimitTable::new()
    }
}

impl RlimitTable {
    /// Creates a table with conventional Linux defaults.
    pub fn new() -> RlimitTable {
        let mut limits = BTreeMap::new();
        limits.insert(resource::CPU, (RLIM_INFINITY, RLIM_INFINITY));
        limits.insert(resource::FSIZE, (RLIM_INFINITY, RLIM_INFINITY));
        limits.insert(resource::DATA, (RLIM_INFINITY, RLIM_INFINITY));
        limits.insert(resource::STACK, (8 << 20, RLIM_INFINITY));
        limits.insert(resource::CORE, (0, RLIM_INFINITY));
        limits.insert(resource::NPROC, (31862, 31862));
        limits.insert(resource::NOFILE, (1024, 1048576));
        limits.insert(resource::AS, (RLIM_INFINITY, RLIM_INFINITY));
        RlimitTable { limits }
    }

    /// `getrlimit`: `(cur, max)` for a resource.
    pub fn get(&self, res: u64) -> (u64, u64) {
        self.limits
            .get(&res)
            .copied()
            .unwrap_or((RLIM_INFINITY, RLIM_INFINITY))
    }

    /// `setrlimit`: updates a limit. Fails (EPERM-style `false`) when
    /// raising the hard limit.
    pub fn set(&mut self, res: u64, cur: u64, max: u64) -> bool {
        let (_, old_max) = self.get(res);
        if max > old_max {
            return false;
        }
        if cur > max {
            return false;
        }
        self.limits.insert(res, (cur, max));
        true
    }

    /// Soft NOFILE limit (used by the FD table).
    pub fn nofile(&self) -> u64 {
        self.get(resource::NOFILE).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let t = RlimitTable::new();
        assert_eq!(t.get(resource::NOFILE), (1024, 1048576));
        assert_eq!(t.get(resource::STACK).0, 8 << 20);
        assert_eq!(t.get(resource::CORE).0, 0);
        assert_eq!(t.get(999), (RLIM_INFINITY, RLIM_INFINITY));
    }

    #[test]
    fn set_within_hard_limit() {
        let mut t = RlimitTable::new();
        assert!(t.set(resource::NOFILE, 4096, 1048576));
        assert_eq!(t.nofile(), 4096);
    }

    #[test]
    fn cannot_raise_hard_limit() {
        let mut t = RlimitTable::new();
        assert!(!t.set(resource::NOFILE, 1024, u64::MAX - 1));
        assert!(!t.set(resource::CORE, 10, 5), "cur > max rejected");
    }
}
