//! Exit-code regression tests for the `loupe` binary: user errors must
//! exit non-zero with an actionable message on stderr, and happy paths
//! must exit zero — the contract CI scripts and the generated docs'
//! regeneration commands rely on.

use std::path::PathBuf;
use std::process::Command;

fn loupe() -> Command {
    Command::new(env!("CARGO_BIN_EXE_loupe"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("loupe-cli-test-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn sweep_with_unknown_os_exits_nonzero_naming_it() {
    let dir = tmpdir("nosuch-os");
    let out = loupe()
        .args(["sweep", "--os", "nosuch", "--db"])
        .arg(&dir)
        .output()
        .expect("spawn loupe");
    assert!(!out.status.success(), "unknown OS must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("nosuch"),
        "stderr names the unknown OS: {stderr}"
    );
    assert!(
        stderr.contains("os-list"),
        "stderr points at the discovery command: {stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sweep_rejects_conflicting_os_flags_and_orphan_tier() {
    for args in [
        vec!["sweep", "--os", "kerla", "--all-os"],
        vec!["sweep", "--tier", "vanilla"],
        vec!["sweep", "--all-os", "--tier", "sideways"],
    ] {
        let out = loupe().args(&args).output().expect("spawn loupe");
        assert!(!out.status.success(), "{args:?} must fail");
        assert!(!out.stderr.is_empty());
    }
}

#[test]
fn matrix_sweep_of_one_app_exits_zero_and_reports_rates() {
    let dir = tmpdir("matrix-ok");
    let out = loupe()
        .args([
            "sweep",
            "--os",
            "kerla",
            "--workload",
            "health",
            "--apps",
            "hello-musl-static",
            "--db",
        ])
        .arg(&dir)
        .output()
        .expect("spawn loupe");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "stdout: {stdout}\nstderr: {stderr}");
    assert!(
        stdout.contains("matrix:"),
        "matrix section printed: {stdout}"
    );
    assert!(stdout.contains("kerla"), "per-OS row printed: {stdout}");
    assert!(
        dir.join("env/kerla/matrix/hello-musl-static/health.json")
            .is_file(),
        "cell persisted under env/<os>/matrix"
    );
    std::fs::remove_dir_all(&dir).ok();
}
