//! Exit-code regression tests for the `loupe` binary: user errors must
//! exit non-zero with an actionable message on stderr, and happy paths
//! must exit zero — the contract CI scripts and the generated docs'
//! regeneration commands rely on.

use std::path::PathBuf;
use std::process::Command;

fn loupe() -> Command {
    Command::new(env!("CARGO_BIN_EXE_loupe"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("loupe-cli-test-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn sweep_with_unknown_os_exits_nonzero_naming_it() {
    let dir = tmpdir("nosuch-os");
    let out = loupe()
        .args(["sweep", "--os", "nosuch", "--db"])
        .arg(&dir)
        .output()
        .expect("spawn loupe");
    assert!(!out.status.success(), "unknown OS must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("nosuch"),
        "stderr names the unknown OS: {stderr}"
    );
    assert!(
        stderr.contains("os-list"),
        "stderr points at the discovery command: {stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sweep_rejects_conflicting_os_flags_and_orphan_tier() {
    for args in [
        vec!["sweep", "--os", "kerla", "--all-os"],
        vec!["sweep", "--tier", "vanilla"],
        vec!["sweep", "--all-os", "--tier", "sideways"],
    ] {
        let out = loupe().args(&args).output().expect("spawn loupe");
        assert!(!out.status.success(), "{args:?} must fail");
        assert!(!out.stderr.is_empty());
    }
}

#[test]
fn gentests_requires_an_os_selection_and_rejects_conflicts() {
    for args in [
        vec!["gentests"],
        vec!["gentests", "--os", "kerla", "--all-os"],
        vec!["gentests", "--os", "nosuch"],
    ] {
        let out = loupe().args(&args).output().expect("spawn loupe");
        assert!(!out.status.success(), "{args:?} must fail");
        assert!(!out.stderr.is_empty());
    }
}

#[test]
fn gentests_generates_a_suite_then_check_mode_finds_it_fresh() {
    let dir = tmpdir("gentests-ok");
    let gen = |extra: &[&str]| {
        let mut cmd = loupe();
        cmd.args([
            "gentests",
            "--os",
            "kerla",
            "--workload",
            "health",
            "--app",
            "hello-musl-static",
            "--db",
        ])
        .arg(&dir)
        .args(extra);
        cmd.output().expect("spawn loupe")
    };

    let out = gen(&[]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("1 generated"), "fresh suite: {stdout}");
    assert!(
        dir.join("gentests/kerla/health/hello-musl-static.json")
            .is_file(),
        "suite persisted under gentests/<os>/<workload>"
    );

    // A second run in check mode writes nothing and exits zero: the
    // stored suite is exactly what the generator emits today.
    let out = gen(&["--check"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "check mode on fresh suites: {stdout}");
    assert!(stdout.contains("0 stale"), "nothing stale: {stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

/// One measured cell to query: kerla x hello-musl-static x health.
fn seed_queryable_db(dir: &std::path::Path) {
    let out = loupe()
        .args([
            "sweep",
            "--os",
            "kerla",
            "--workload",
            "health",
            "--apps",
            "hello-musl-static",
            "--db",
        ])
        .arg(dir)
        .output()
        .expect("spawn loupe");
    assert!(
        out.status.success(),
        "seed sweep: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn query_offline_answers_verdicts_and_rejects_unknown_names() {
    let dir = tmpdir("query-offline");
    seed_queryable_db(&dir);

    let query = |extra: &[&str]| {
        let mut cmd = loupe();
        cmd.args(["query", "--offline", "--db"])
            .arg(&dir)
            .args(extra);
        cmd.output().expect("spawn loupe")
    };

    let out = query(&[
        "--os",
        "kerla",
        "--app",
        "hello-musl-static",
        "--workload",
        "health",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains("hello-musl-static on kerla"),
        "verdict line: {stdout}"
    );

    // Unknown OS and app names exit non-zero, naming the offender.
    for (extra, offender) in [
        (
            ["--os", "atlantis", "--app", "hello-musl-static"].as_slice(),
            "atlantis",
        ),
        (["--os", "kerla", "--app", "doom"].as_slice(), "doom"),
        (
            [
                "--os",
                "kerla",
                "--app",
                "hello-musl-static",
                "--tier",
                "sideways",
            ]
            .as_slice(),
            "sideways",
        ),
    ] {
        let out = query(extra);
        assert!(!out.status.success(), "{extra:?} must fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(offender),
            "stderr names `{offender}`: {stderr}"
        );
    }

    // Modes: summary and missing resolve against the same db.
    let out = query(&["--summary"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("kerla"));
    let out = query(&["--missing", "--os", "kerla"]);
    assert!(out.status.success());

    // No mode and no os/app: usage error.
    let out = query(&[]);
    assert!(!out.status.success());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_daemon_answers_the_query_command() {
    use std::io::BufRead;

    let dir = tmpdir("serve-daemon");
    seed_queryable_db(&dir);

    let mut daemon = loupe()
        .args(["serve", "--addr", "127.0.0.1:0", "--db"])
        .arg(&dir)
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn daemon");
    let stdout = daemon.stdout.take().expect("daemon stdout");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let first = lines
        .next()
        .expect("daemon prints its address")
        .expect("readable stdout");
    let addr = first
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected startup line: {first}"))
        .to_owned();

    let query = |extra: &[&str]| {
        let mut cmd = loupe();
        cmd.args(["query", "--addr", &addr]).args(extra);
        cmd.output().expect("spawn loupe")
    };

    let out = query(&[
        "--os",
        "kerla",
        "--app",
        "hello-musl-static",
        "--workload",
        "health",
        "--tier",
        "vanilla",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains("hello-musl-static on kerla"),
        "verdict line: {stdout}"
    );

    let out = query(&["--os", "kerla", "--app", "doom"]);
    assert!(!out.status.success(), "unknown app over the wire fails");
    assert!(String::from_utf8_lossy(&out.stderr).contains("doom"));

    let out = query(&["--summary", "--json"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("\"ok\": true"));

    daemon.kill().ok();
    daemon.wait().ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn matrix_sweep_of_one_app_exits_zero_and_reports_rates() {
    let dir = tmpdir("matrix-ok");
    let out = loupe()
        .args([
            "sweep",
            "--os",
            "kerla",
            "--workload",
            "health",
            "--apps",
            "hello-musl-static",
            "--db",
        ])
        .arg(&dir)
        .output()
        .expect("spawn loupe");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "stdout: {stdout}\nstderr: {stderr}");
    assert!(
        stdout.contains("matrix:"),
        "matrix section printed: {stdout}"
    );
    assert!(stdout.contains("kerla"), "per-OS row printed: {stdout}");
    assert!(
        dir.join("env/kerla/matrix/hello-musl-static/health.json")
            .is_file(),
        "cell persisted under env/<os>/matrix"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ingest_round_trips_the_vendored_kerla_table_and_rejects_corruption() {
    let repo = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let table = repo.join("crates/plan/data/kerla_compatibility.md");
    let overrides = repo.join("crates/plan/data/kerla_overrides.txt");

    // Happy path: the vendored snapshot is canonical and matches the
    // curated spec, and the summary names the flag holes.
    let out = loupe()
        .arg("ingest")
        .arg("--from")
        .arg(&table)
        .args(["--os", "kerla", "--overrides"])
        .arg(&overrides)
        .arg("--check")
        .output()
        .expect("spawn loupe");
    assert!(
        out.status.success(),
        "vendored table must ingest cleanly: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("matches the curated spec"), "{stdout}");
    assert!(stdout.contains("fcntl:F_SETLK"), "{stdout}");

    // Corrupt tables exit non-zero with a row-numbered message.
    let text = std::fs::read_to_string(&table).unwrap();
    let corrupt = text.replace("| write ", "| wrlte ");
    assert_ne!(corrupt, text, "fixture edit must apply");
    let dir = tmpdir("ingest-corrupt");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.md");
    std::fs::write(&bad, corrupt).unwrap();
    let out = loupe()
        .arg("ingest")
        .arg("--from")
        .arg(&bad)
        .args(["--os", "broken"])
        .output()
        .expect("spawn loupe");
    assert!(!out.status.success(), "corrupt table must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line "), "row-numbered error: {stderr}");
    assert!(stderr.contains("wrlte"), "names the bad cell: {stderr}");

    // Missing --from is a usage error.
    let out = loupe().arg("ingest").output().expect("spawn loupe");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--from"));
    std::fs::remove_dir_all(&dir).ok();
}
