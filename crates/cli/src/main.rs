//! `loupe` — the command-line front-end of the Loupe reproduction.
//!
//! Mirrors the workflows of the upstream tool:
//!
//! ```text
//! loupe list                          # applications in the registry
//! loupe analyze nginx --workload bench [--json] [--db DIR]
//! loupe sweep --db DIR                # analyze the whole fleet, concurrently
//! loupe sweep --db DIR --all-os       # + execute the fleet on all 11 OS profiles
//! loupe sweep --db DIR --static       # + static analysers over the fleet
//! loupe compare --db DIR              # static-vs-dynamic factors (Figs. 4-7)
//! loupe report --db DIR --docs docs   # render the db as Markdown docs
//! loupe report --db DIR --check       # fail when checked-in docs drifted
//! loupe gentests --all-os             # compile corpora into conformance suites
//! loupe gentests --all-os --check     # fail when stored suites drifted
//! loupe cache stats                   # incremental-cache manifest + sweep counters
//! loupe cache invalidate --os kerla   # force re-measurement of one OS's cells
//! loupe plan --os kerla --validate     # replay the plan on a restricted kernel
//! loupe serve --db DIR                # query daemon over the sharded in-memory index
//! loupe query --os kerla --app redis  # ask a daemon (or --offline: the db directly)
//! loupe os-list                       # curated OS support specs
//! loupe importance [--workload bench] # Fig. 3-style ranking
//! loupe trace -- /bin/echo hello      # real ptrace backend
//! ```

use std::process::ExitCode;

use loupe_apps::{registry, Workload};
use loupe_core::{AnalysisConfig, Engine};
use loupe_db::Database;
use loupe_plan::{api_importance, os, AppRequirement, CompatTable, SupportPlan};
use loupe_sweep::{report, Sweep, SweepConfig, TransferConfig};

fn main() -> ExitCode {
    // Behave like a Unix tool when piped into head/grep: die on SIGPIPE
    // instead of panicking on a failed print.
    #[cfg(unix)]
    // SAFETY: resetting a signal disposition before any thread is spawned.
    unsafe {
        libc::signal(libc::SIGPIPE, libc::SIG_DFL);
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "list" => cmd_list(),
        "analyze" => cmd_analyze(rest),
        "sweep" => cmd_sweep(rest),
        "compare" => cmd_compare(rest),
        "statics" => cmd_statics(rest),
        "report" => cmd_report(rest),
        "gentests" => cmd_gentests(rest),
        "cache" => cmd_cache(rest),
        "plan" => cmd_plan(rest),
        "serve" => cmd_serve(rest),
        "query" => cmd_query(rest),
        "os-list" => cmd_os_list(),
        "ingest" => cmd_ingest(rest),
        "importance" => cmd_importance(rest),
        "trace" => cmd_trace(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("loupe: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: loupe <command> [options]

commands:
  list                         list applications in the registry
  analyze <app>                measure an application's OS-feature needs
      --workload health|bench|suite   (default: bench)
      --replicas N                    (default: 1)
      --jobs N                        probe-scheduler workers (default: 1; 0 = auto)
      --sub-features                  classify vectored-syscall features too
      --json                          print the full report as JSON
      --db DIR                        store the report in a database
  sweep                        analyze the whole fleet and persist to a db
      --db DIR                        database directory (default: target/loupedb)
      --workload health|bench|suite|all   (default: bench)
      --apps a,b,c                    restrict to named apps (default: full dataset)
      --shard I/N                     analyze dataset shard I of N
      --workers N                     worker threads (default: min(cpus, 16))
      --jobs N                        per-app probe-scheduler workers (default: 1)
      --os <name>                     also run the fleet x OS empirical matrix
                                      against one curated OS kernel profile
      --all-os                        ... against all 11 curated OS profiles;
                                      cells persist under the db's env/<os>/matrix
                                      namespace and render into docs/OS_MATRIX.md
      --tier vanilla|planned          restrict matrix measurement to one
                                      remediation tier (default: both)
      --transfer                      two-pass §6 hint transfer (seed, then hinted rest)
      --min-agreement K               seed reports that must agree to hint (default: 3)
      --transfer-seed N               apps measured in full as the seed (default: 8)
      --force                         re-measure cached entries (conservative merge)
      --static                        also run the static precision ladder
                                      (L0-L3 graph reachability) over the fleet;
                                      persist under the db's static/ namespace
                                      (needed by `compare` and the generated
                                      STATIC_VS_DYNAMIC.md)
      --validate-plans                replay every curated OS's support plan on a
                                      restricted kernel; persist verdicts in the db
  compare                      static-vs-dynamic comparison (Figs. 4-7): per-app
                               overestimation factors at every precision level,
                               importance rank shifts and per-OS plan-size
                               deltas; exits 1 if the containment chain
                               dynamic ⊆ L3 ⊆ L2 ⊆ L1 ⊆ L0 is violated anywhere
      --db DIR                        database directory (default: target/loupedb)
      --workers N                     static-analysis worker threads (default: auto)
  statics                      run the static precision ladder over the fleet:
                               each app is lowered to a whole-program call graph
                               and analysed by reachability at L0 (naive binary),
                               L1 (signature-pruned), L2 (constant propagation)
                               and L3 (source level)
      --db DIR                        database directory (default: target/loupedb)
      --app NAME                      restrict to one app (also --apps/--shard)
      --level l0|l1|l2|l3|all         comma-separated levels (default: all;
                                      binary/source alias l0/l3)
      --workers N                     worker threads (default: min(cpus, 16))
      --force                         re-analyse cached entries
      --explain <app> <syscall>       print the witness call path behind an
                                      attribution at every level, re-verified
                                      against the graph; exits 1 if no level
                                      attributes the syscall
  report                       render a sweep db as Markdown documentation
      --db DIR                        database directory (default: target/loupedb)
      --docs DIR                      output directory (default: docs)
      --check                         verify the docs match the db; exit 1 on drift
  gentests                     compile stored measurement corpora into executable
                               per-app conformance suites, self-validated against
                               the matrix verdicts; exits 1 on any disagreement
      --db DIR                        database directory (default: target/loupedb)
      --os <name> | --all-os          target one curated OS, or all 11 (required)
      --app <name>                    restrict to one application
      --workload health|bench|suite|all   (default: bench)
      --workers N                     worker threads (default: min(cpus, 16))
      --jobs N                        per-app probe-scheduler workers (default: 1)
      --force                         regenerate suites already stored
      --check                         verify stored suites match the corpus; write
                                      nothing and exit 1 on stale/missing suites
      --out DIR                       also export the generated suite JSON files
                                      under DIR/<os>/<workload>/<app>.json
  cache stats                  show the incremental-cache manifest: entries and
                               provenance coverage per namespace, plus the
                               hit/miss/stale counters of the last sweep
      --db DIR                        database directory (default: target/loupedb)
  cache invalidate             drop provenance records so the next sweep
                               re-measures the matching cells (artifacts stay;
                               only the is-this-current? answer is forgotten)
      --db DIR                        database directory (default: target/loupedb)
      --os <name>                     cells measured against one curated OS
      --app <name>                    cells derived from one application
      --all                           every record in every namespace
  plan --os <name|file.csv>    incremental support plan for an OS
      --workload health|bench|suite   (default: bench)
      --apps a,b,c                    target apps (default: 15 cloud apps)
      --db DIR                        reuse measurements from a database
      --validate                      replay the plan step-by-step on a restricted
                                      kernel (fails unless every step unlocks its
                                      app at step k and not at k-1); with --db the
                                      verdict is persisted for `loupe report`
  serve                        long-running query daemon: loads the db once,
                               compiles it into sharded in-memory verdict
                               indices and answers length-prefixed JSON
                               queries over TCP (protocol: docs/SERVING.md)
      --db DIR                        database directory (default: target/loupedb)
      --addr A                        bind address (default: 127.0.0.1:7071;
                                      port 0 picks a free port)
      --threads N                     max concurrent connections (default: 1024)
      --batch-window-us N             verdict coalescing window in microseconds
                                      (default: 50; 0 disables batching)
      --watch-ms N                    db-change poll interval in milliseconds
                                      (default: 200; 0 disables the watcher)
      --eager                         build the plan/inverted-syscall tables at
                                      startup instead of on first query
  query                        ask a running daemon one question
      --addr A                        daemon address (default: 127.0.0.1:7071)
      --os X --app Y                  compatibility verdict (the default mode)
      --workload health|bench|suite   (default: health)
      --tier vanilla|planned          (default: planned)
      --summary                       fleet pass-rate summary instead
      --missing                       top syscalls blocking apps on --os
      --limit N                       rows for --missing (default: 10)
      --plan                          cheapest support plan for --os
      --apps-requiring <syscall>      apps whose required set contains it
      --json                          print the raw response JSON
      --offline                       answer from --db DIR directly (no daemon;
                                      same resolution code, default db above)
  os-list                      show the curated OS support specs
  ingest --from <file.md>      parse a kerla-style markdown compatibility table
                               (| No | Name | Implementation Status | ... |)
                               into a kernel support spec with per-flag holes
      --os <name>                     spec name (default: the file stem)
      --version V                     spec version string (default: ingested)
      --overrides <file>              refine pessimistically-seeded flag holes
                                      (`supported fcntl:F_SETFL` / `hole ...`)
      --check                         verify the table renders back byte-stably
                                      AND, when --os names a curated OS, that
                                      the ingested spec matches the curated one;
                                      exit 1 on any mismatch
      --json                          print the ingested spec as JSON
  importance                   rank syscalls by how many apps require them
      --workload health|bench|suite   (default: health)
      --apps N                        dataset size (default: 116)
  trace -- <cmd> [args...]     trace a real binary with ptrace
  help                         this message";

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_workload(args: &[String], default: Workload) -> Result<Workload, String> {
    match flag_value(args, "--workload") {
        None => Ok(default),
        Some("health") => Ok(Workload::HealthCheck),
        Some("bench") => Ok(Workload::Benchmark),
        Some("suite") => Ok(Workload::TestSuite),
        Some(other) => Err(format!("unknown workload `{other}`")),
    }
}

fn cmd_list() -> Result<(), String> {
    println!("{:<28} {:<10} {:>6}  LIBC", "NAME", "KIND", "YEAR");
    for app in registry::dataset() {
        let spec = app.spec();
        println!(
            "{:<28} {:<10} {:>6}  {}",
            spec.name,
            format!("{:?}", spec.kind),
            spec.year,
            spec.libc.name()
        );
    }
    println!(
        "\n({} applications; variants: nginx-0.3.19, redis-2.0, httpd-2.2, hello-*)",
        registry::dataset().len()
    );
    Ok(())
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let name = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or("analyze: missing application name")?;
    let app = registry::find(name).ok_or_else(|| format!("unknown application `{name}`"))?;
    let workload = parse_workload(args, Workload::Benchmark)?;
    let replicas = flag_value(args, "--replicas")
        .map(|v| v.parse::<u32>().map_err(|_| "bad --replicas".to_owned()))
        .transpose()?
        .unwrap_or(1);
    let sub = args.iter().any(|a| a == "--sub-features");
    let jobs = flag_value(args, "--jobs")
        .map(|v| v.parse::<usize>().map_err(|_| "bad --jobs".to_owned()))
        .transpose()?
        .unwrap_or(1);
    let cfg = AnalysisConfig {
        replicas,
        jobs,
        explore_sub_features: sub,
        explore_pseudo_files: sub,
        ..AnalysisConfig::fast()
    };
    let report = Engine::new(cfg.clone())
        .analyze(app.as_ref(), workload)
        .map_err(|e| e.to_string())?;

    if args.iter().any(|a| a == "--json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
        );
    } else {
        println!("{} ({} workload)", report.app, workload);
        println!(
            "traced: {} syscalls over {} runs; confirmed: {}",
            report.traced().len(),
            report.stats.total_runs(),
            report.confirmed
        );
        println!(
            "required  ({:>3}): {}",
            report.required().len(),
            report.required()
        );
        println!(
            "stubbable ({:>3}): {}",
            report.stubbable().len(),
            report.stubbable()
        );
        println!(
            "fakeable  ({:>3}): {}",
            report.fakeable().len(),
            report.fakeable()
        );
        if sub && !report.sub_features.is_empty() {
            println!("sub-features:");
            for (key, class) in &report.sub_features {
                println!("  {key}: {}", class.label());
            }
        }
        if !report.pseudo_files.is_empty() {
            println!("pseudo-files:");
            for (path, class) in &report.pseudo_files {
                println!("  {path}: {}", class.label());
            }
        }
    }

    if let Some(dir) = flag_value(args, "--db") {
        let db = Database::open(dir).map_err(|e| e.to_string())?;
        db.save(&report).map_err(|e| e.to_string())?;
        // Record what the measurement depended on, so a later `loupe
        // sweep` over an unchanged app serves this report from cache.
        if report.is_linux_baseline() {
            db.record_provenance(
                loupe_db::ns::BASELINES,
                &loupe_db::baseline_key(&report.app, report.workload),
                loupe_sweep::baseline_inputs(app.as_ref(), workload, &cfg),
                Default::default(),
            );
        }
        db.flush().map_err(|e| e.to_string())?;
        eprintln!("stored in {dir}");
    }
    Ok(())
}

const DEFAULT_DB: &str = "target/loupedb";

fn parse_workloads(args: &[String]) -> Result<Vec<Workload>, String> {
    match flag_value(args, "--workload") {
        None => Ok(vec![Workload::Benchmark]),
        Some("all") => Ok(Workload::ALL.to_vec()),
        Some(_) => parse_workload(args, Workload::Benchmark).map(|w| vec![w]),
    }
}

/// The sweep fleet selection: `--apps` list, `--shard I/N`, or the full
/// dataset. Shared by the dynamic and static passes (boxed app models
/// are not `Clone`, so each pass materialises its own fleet).
fn select_apps(args: &[String]) -> Result<Vec<Box<dyn loupe_apps::AppModel>>, String> {
    match (flag_value(args, "--apps"), flag_value(args, "--shard")) {
        (Some(_), Some(_)) => Err("sweep: --apps and --shard are exclusive".into()),
        (Some(list), None) => list
            .split(',')
            .map(|n| registry::find(n.trim()).ok_or_else(|| format!("unknown app `{n}`")))
            .collect::<Result<_, _>>(),
        (None, Some(spec)) => {
            let (i, n) = spec
                .split_once('/')
                .and_then(|(i, n)| Some((i.parse::<usize>().ok()?, n.parse::<usize>().ok()?)))
                .ok_or("sweep: --shard expects I/N")?;
            if n == 0 || i >= n {
                return Err("sweep: --shard index out of range".into());
            }
            Ok(registry::shard(i, n))
        }
        (None, None) => Ok(registry::dataset()),
    }
}

fn cmd_sweep(args: &[String]) -> Result<(), String> {
    let db_dir = flag_value(args, "--db").unwrap_or(DEFAULT_DB);
    let db = Database::open(db_dir).map_err(|e| e.to_string())?;
    let workloads = parse_workloads(args)?;
    let workers = flag_value(args, "--workers")
        .map(|v| v.parse::<usize>().map_err(|_| "bad --workers".to_owned()))
        .transpose()?
        .unwrap_or(0);
    let jobs = flag_value(args, "--jobs")
        .map(|v| v.parse::<usize>().map_err(|_| "bad --jobs".to_owned()))
        .transpose()?
        .unwrap_or(1);
    let force = args.iter().any(|a| a == "--force");
    let transfer = if args.iter().any(|a| a == "--transfer") {
        let mut t = TransferConfig::default();
        if let Some(k) = flag_value(args, "--min-agreement") {
            t.min_agreement = k.parse().map_err(|_| "bad --min-agreement".to_owned())?;
        }
        if let Some(n) = flag_value(args, "--transfer-seed") {
            t.seed = n.parse().map_err(|_| "bad --transfer-seed".to_owned())?;
        }
        Some(t)
    } else {
        None
    };

    // Fleet × OS matrix selection: one curated OS, or all of them.
    let all_os = args.iter().any(|a| a == "--all-os");
    let os_sel = flag_value(args, "--os");
    if all_os && os_sel.is_some() {
        return Err("sweep: --os and --all-os are exclusive".into());
    }
    let matrix_oses = if all_os {
        Some(os::db())
    } else if let Some(name) = os_sel {
        let spec = os::find(name)
            .ok_or_else(|| format!("sweep: unknown OS `{name}` (see `loupe os-list`)"))?;
        Some(vec![spec])
    } else {
        None
    };
    let tier = flag_value(args, "--tier")
        .map(|t| {
            loupe_plan::Tier::from_label(t).ok_or_else(|| format!("sweep: unknown tier `{t}`"))
        })
        .transpose()?;
    if tier.is_some() && matrix_oses.is_none() {
        return Err("sweep: --tier needs --os or --all-os".into());
    }

    let apps = select_apps(args)?;

    let sweep_cfg = SweepConfig {
        workloads: workloads.clone(),
        workers,
        force,
        transfer,
        analysis: loupe_core::AnalysisConfig {
            jobs,
            ..loupe_core::AnalysisConfig::fast()
        },
    };
    let summary = match &matrix_oses {
        None => Sweep::new(sweep_cfg).run(&db, apps),
        Some(oses) => loupe_sweep::sweep_matrix(
            &db,
            apps,
            &loupe_sweep::MatrixConfig {
                oses: oses.clone(),
                tier,
                sweep: sweep_cfg,
            },
        ),
    }
    .map_err(|e| e.to_string())?;
    // A matrix sweep can report one failure per OS for the same
    // (app, workload); count each baseline entry once.
    let failed_entries = summary
        .failures
        .iter()
        .map(|f| (f.app.as_str(), f.workload))
        .collect::<std::collections::BTreeSet<_>>()
        .len();
    let entries = summary.analyzed + summary.cached + failed_entries;
    let unique_apps = entries / workloads.len().max(1);
    println!(
        "swept {} apps x {} workloads ({} entries): {} analyzed, {} cached, {} failed (db: {})",
        unique_apps,
        workloads.len(),
        entries,
        summary.analyzed,
        summary.cached,
        summary.failures.len(),
        db_dir
    );
    println!(
        "engine runs: {} total ({} framing, {} feature, {} bisect)",
        summary.runs.total_runs(),
        summary.runs.framing_runs,
        summary.runs.feature_runs,
        summary.runs.bisect_runs
    );
    if transfer.is_some() {
        println!(
            "transfer: {} feature measurements skipped, {} runs saved",
            summary.runs.transfer_skips, summary.runs.saved_runs
        );
    }
    if let Some(matrix) = &summary.matrix {
        println!(
            "matrix: {} cells ({} measured, {} cached) across {} OS x workload slices",
            matrix.analyzed + matrix.cached,
            matrix.analyzed,
            matrix.cached,
            matrix.stats.len()
        );
        for row in &matrix.stats {
            println!(
                "  {:<12} {:<7} out-of-the-box {:>3}/{} ({:>3.0}%), with plan {:>3}/{} ({:>3.0}%), gain +{}",
                row.os,
                row.workload.label(),
                row.vanilla_pass,
                row.apps,
                row.vanilla_rate() * 100.0,
                row.planned_pass,
                row.apps,
                row.planned_rate() * 100.0,
                row.plan_gain()
            );
        }
    }
    if !summary.cache.is_empty() {
        let t = summary.cache.total();
        println!(
            "cache: {} hits, {} misses, {} stale (details: `loupe cache stats --db {db_dir}`)",
            t.hits, t.misses, t.stale
        );
    }
    db.persist_sweep_stats().map_err(|e| e.to_string())?;
    for f in &summary.failures {
        eprintln!("  failed: {} ({}): {}", f.app, f.workload, f.error);
    }
    if !summary.failures.is_empty() {
        return Err(format!(
            "sweep: {} measurement(s) failed their baseline",
            summary.failures.len()
        ));
    }
    if args.iter().any(|a| a == "--static") {
        // Same fleet selection as the dynamic pass (static analysis is
        // workload-independent: one report per app and level).
        let statics = loupe_sweep::sweep_static(&db, select_apps(args)?, workers, force)
            .map_err(|e| e.to_string())?;
        println!(
            "static analysis: {} entries ({} analyzed, {} cached) under {}/static",
            statics.analyzed + statics.cached,
            statics.analyzed,
            statics.cached,
            db_dir
        );
    }
    if args.iter().any(|a| a == "--validate-plans") {
        let validations =
            loupe_sweep::validate_curated_plans(&db, &workloads).map_err(|e| e.to_string())?;
        let invalid: Vec<&loupe_plan::PlanValidation> =
            validations.iter().filter(|v| !v.is_valid()).collect();
        let early: usize = validations.iter().map(|v| v.early_steps().len()).sum();
        println!(
            "validated {} support plans ({} OSes x {} workloads): {} valid, {} invalid, \
             {} early unlocks (conservative classification)",
            validations.len(),
            loupe_plan::os::db().len(),
            workloads.len(),
            validations.len() - invalid.len(),
            invalid.len(),
            early
        );
        for v in &invalid {
            eprint!("{}", v.to_table());
        }
        if !invalid.is_empty() {
            return Err(format!(
                "sweep: {} support plan(s) failed empirical validation",
                invalid.len()
            ));
        }
    }
    // The static and plan-validation passes add cache decisions after
    // the first persist; record the final tallies.
    db.persist_sweep_stats().map_err(|e| e.to_string())?;
    Ok(())
}

fn cmd_compare(args: &[String]) -> Result<(), String> {
    let db_dir = flag_value(args, "--db").unwrap_or(DEFAULT_DB);
    let db = Database::open(db_dir).map_err(|e| e.to_string())?;
    let workers = flag_value(args, "--workers")
        .map(|v| v.parse::<usize>().map_err(|_| "bad --workers".to_owned()))
        .transpose()?
        .unwrap_or(0);

    // Make sure every dynamically measured app has its static
    // counterparts (pure cache hits when `sweep --static` already ran).
    // A measured app the registry no longer knows cannot be statically
    // analysed at all — name it instead of wedging on MissingStatic.
    let measured: std::collections::BTreeSet<String> = db
        .list()
        .map_err(|e| e.to_string())?
        .into_iter()
        .map(|(app, _)| app)
        .collect();
    let unknown: Vec<&str> = measured
        .iter()
        .filter(|n| registry::find(n).is_none())
        .map(String::as_str)
        .collect();
    if !unknown.is_empty() {
        return Err(format!(
            "compare: database `{db_dir}` holds measurements for apps not in the \
             registry (no static analyser can run on them): {}",
            unknown.join(", ")
        ));
    }
    let apps: Vec<_> = measured.iter().filter_map(|n| registry::find(n)).collect();
    loupe_sweep::sweep_static(&db, apps, workers, false).map_err(|e| e.to_string())?;

    let comparisons = loupe_sweep::compare(&db).map_err(|e| e.to_string())?;
    let mut violated: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    for c in &comparisons {
        println!(
            "{} workload: {} apps; fleet syscalls: {} dynamic ({} required); \
             static L0/L1/L2/L3: {}/{}/{}/{}",
            c.workload,
            c.apps.len(),
            c.fleet_dynamic_used,
            c.fleet_dynamic_required,
            c.fleet_static[0],
            c.fleet_static[1],
            c.fleet_static[2],
            c.fleet_static[3]
        );
        println!(
            "  mean per-app overestimation: {:.2}x (L0), {:.2}x (L1), {:.2}x (L2), \
             {:.2}x (L3); chain dynamic ⊆ L3 ⊆ L2 ⊆ L1 ⊆ L0: {}",
            c.mean_factor[0],
            c.mean_factor[1],
            c.mean_factor[2],
            c.mean_factor[3],
            if c.invariants_hold() {
                "holds for every app"
            } else {
                "VIOLATED"
            }
        );
        for a in c.apps.iter().filter(|a| !a.chain_ok) {
            violated.insert(a.app.clone());
            for (link, missing) in &a.chain_breaks {
                eprintln!(
                    "  CHAIN BROKEN for {} ({} workload): {link}, coarser side misses {missing}",
                    a.app, c.workload
                );
            }
        }
        println!("  static-plan waste per OS (extra syscalls implemented vs dynamic plan):");
        for d in &c.plan_deltas {
            println!(
                "    {:<14} implement {:>3} (dyn) vs {:>3} (L3, +{}) vs {:>3} (L0, +{})",
                d.os,
                d.dynamic_implemented,
                d.implemented(loupe_static::Level::L3),
                d.source_waste(),
                d.implemented(loupe_static::Level::L0),
                d.binary_waste()
            );
        }
    }
    if !violated.is_empty() {
        return Err(format!(
            "compare: dynamic ⊆ L3 ⊆ L2 ⊆ L1 ⊆ L0 violated for {} app(s): {}",
            violated.len(),
            violated.into_iter().collect::<Vec<_>>().join(", ")
        ));
    }
    Ok(())
}

/// `loupe statics`: run the precision ladder over the fleet (persisting
/// into the db), or — with `--explain` — print and re-verify the
/// witness path behind one attribution.
fn cmd_statics(args: &[String]) -> Result<(), String> {
    if let Some(pos) = args.iter().position(|a| a == "--explain") {
        let app = args
            .get(pos + 1)
            .ok_or("statics: --explain expects <app> <syscall>")?;
        let sysno = args
            .get(pos + 2)
            .ok_or("statics: --explain expects <app> <syscall>")?;
        return explain_witness(app, sysno);
    }

    let db_dir = flag_value(args, "--db").unwrap_or(DEFAULT_DB);
    let db = Database::open(db_dir).map_err(|e| e.to_string())?;
    let workers = flag_value(args, "--workers")
        .map(|v| v.parse::<usize>().map_err(|_| "bad --workers".to_owned()))
        .transpose()?
        .unwrap_or(0);
    let force = args.iter().any(|a| a == "--force");
    let levels: Vec<loupe_static::Level> = match flag_value(args, "--level") {
        None => loupe_static::Level::ALL.to_vec(),
        Some("all") => loupe_static::Level::ALL.to_vec(),
        Some(spec) => spec
            .split(',')
            .map(|l| {
                loupe_static::Level::parse(l.trim())
                    .ok_or_else(|| format!("statics: unknown level `{l}` (l0..l3, binary, source)"))
            })
            .collect::<Result<_, _>>()?,
    };
    let apps = match flag_value(args, "--app") {
        Some(name) => vec![registry::find(name).ok_or_else(|| format!("unknown app `{name}`"))?],
        None => select_apps(args)?,
    };
    let summary = loupe_sweep::sweep_static_levels(&db, apps, &levels, workers, force)
        .map_err(|e| e.to_string())?;
    println!(
        "static analysis: {} entries ({} analyzed, {} cached) at level(s) {} under {}/static",
        summary.analyzed + summary.cached,
        summary.analyzed,
        summary.cached,
        levels
            .iter()
            .map(|l| l.label())
            .collect::<Vec<_>>()
            .join(","),
        db_dir
    );
    db.persist_sweep_stats().map_err(|e| e.to_string())?;
    Ok(())
}

/// Prints, for each ladder level, the witness path that justifies
/// attributing `sysno` to `app` — re-verified against the lowered
/// program graph before printing.
fn explain_witness(app: &str, sysno: &str) -> Result<(), String> {
    use loupe_static::{analyze_graph, verify_witness, Level};

    let model = registry::find(app).ok_or_else(|| format!("unknown app `{app}`"))?;
    let sysno = match sysno.parse::<u32>() {
        Ok(n) => loupe_syscalls::Sysno::from_raw(n),
        Err(_) => sysno.parse::<loupe_syscalls::Sysno>().ok(),
    }
    .ok_or_else(|| format!("unknown syscall `{sysno}`"))?;
    let graph = loupe_apps::ProgramGraph::lower(model.as_ref());
    let mut attributed_anywhere = false;
    println!(
        "{app}: why does static analysis attribute `{}`?",
        sysno.name()
    );
    for &level in &Level::ALL {
        let report = analyze_graph(&graph, level);
        match report.witness(sysno) {
            Some(w) => {
                verify_witness(&graph, level, w)
                    .map_err(|e| format!("statics: stored witness failed re-verification: {e}"))?;
                attributed_anywhere = true;
                println!("  {:<26} {}", level.title(), w.render());
            }
            None => println!("  {:<26} not attributed", level.title()),
        }
    }
    if !attributed_anywhere {
        return Err(format!(
            "statics: no level attributes `{}` to {app}",
            sysno.name()
        ));
    }
    Ok(())
}

fn cmd_report(args: &[String]) -> Result<(), String> {
    let db_dir = flag_value(args, "--db").unwrap_or(DEFAULT_DB);
    let db = Database::open(db_dir).map_err(|e| e.to_string())?;
    let docs_dir = std::path::Path::new(flag_value(args, "--docs").unwrap_or("docs"));
    if db.list().map_err(|e| e.to_string())?.is_empty() {
        return Err(format!(
            "report: database `{db_dir}` is empty; run `loupe sweep` first"
        ));
    }
    if args.iter().any(|a| a == "--check") {
        let drift = report::check(&db, docs_dir).map_err(|e| e.to_string())?;
        if drift.is_empty() {
            println!("docs in {} match the database", docs_dir.display());
            return Ok(());
        }
        for d in &drift {
            eprintln!("  {d}");
        }
        return Err(format!(
            "report: {} file(s) drifted from the database; regenerate with `loupe report`",
            drift.len()
        ));
    }
    let written = report::write(&db, docs_dir).map_err(|e| e.to_string())?;
    println!("wrote {} files under {}", written.len(), docs_dir.display());
    Ok(())
}

fn cmd_gentests(args: &[String]) -> Result<(), String> {
    let db_dir = flag_value(args, "--db").unwrap_or(DEFAULT_DB);
    let db = Database::open(db_dir).map_err(|e| e.to_string())?;
    let all_os = args.iter().any(|a| a == "--all-os");
    let os_sel = flag_value(args, "--os");
    if all_os && os_sel.is_some() {
        return Err("gentests: --os and --all-os are exclusive".into());
    }
    let oses = if all_os {
        os::db()
    } else if let Some(name) = os_sel {
        let spec = os::find(name)
            .ok_or_else(|| format!("gentests: unknown OS `{name}` (see `loupe os-list`)"))?;
        vec![spec]
    } else {
        return Err("gentests: need --os <name> or --all-os".into());
    };
    let workloads = parse_workloads(args)?;
    let workers = flag_value(args, "--workers")
        .map(|v| v.parse::<usize>().map_err(|_| "bad --workers".to_owned()))
        .transpose()?
        .unwrap_or(0);
    let jobs = flag_value(args, "--jobs")
        .map(|v| v.parse::<usize>().map_err(|_| "bad --jobs".to_owned()))
        .transpose()?
        .unwrap_or(1);
    let check = args.iter().any(|a| a == "--check");
    let apps: Vec<_> = match flag_value(args, "--app") {
        Some(name) => {
            vec![registry::find(name).ok_or_else(|| format!("unknown app `{name}`"))?]
        }
        None => select_apps(args)?,
    };

    let cfg = loupe_sweep::GentestsConfig {
        matrix: loupe_sweep::MatrixConfig {
            oses,
            tier: None,
            sweep: SweepConfig {
                workloads: workloads.clone(),
                workers,
                force: args.iter().any(|a| a == "--force"),
                transfer: None,
                analysis: loupe_core::AnalysisConfig {
                    jobs,
                    ..loupe_core::AnalysisConfig::fast()
                },
            },
        },
        check,
    };
    let summary = loupe_sweep::sweep_gentests(&db, apps, &cfg).map_err(|e| e.to_string())?;
    println!(
        "gentests: {} suites ({} generated, {} cached{}) across {} OS x workload slices (db: {})",
        summary.generated + summary.cached + summary.stale.len(),
        summary.generated,
        summary.cached,
        if check {
            format!(", {} stale", summary.stale.len())
        } else {
            String::new()
        },
        summary.stats.len(),
        db_dir
    );
    if !summary.base.cache.is_empty() {
        let t = summary.base.cache.total();
        println!(
            "cache: {} hits, {} misses, {} stale (details: `loupe cache stats --db {db_dir}`)",
            t.hits, t.misses, t.stale
        );
    }
    db.persist_sweep_stats().map_err(|e| e.to_string())?;
    for row in &summary.stats {
        println!(
            "  {:<12} {:<7} {:>3} suites, {:>5} cases; out-of-the-box {:>3}/{}, with plan {:>3}/{}",
            row.os,
            row.workload.label(),
            row.suites,
            row.cases,
            row.vanilla_pass,
            row.suites,
            row.planned_pass,
            row.suites,
        );
    }
    for f in &summary.base.failures {
        eprintln!("  failed: {} ({}): {}", f.app, f.workload, f.error);
    }
    if let Some(out_dir) = flag_value(args, "--out") {
        let mut exported = 0;
        for (os_name, app, workload) in db.list_suites().map_err(|e| e.to_string())? {
            let Some(suite) = db
                .load_suite(&os_name, &app, workload)
                .map_err(|e| e.to_string())?
            else {
                continue;
            };
            let dir = std::path::Path::new(out_dir)
                .join(&os_name)
                .join(workload.label());
            std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
            let json = serde_json::to_string_pretty(&suite).map_err(|e| e.to_string())?;
            std::fs::write(dir.join(format!("{app}.json")), json).map_err(|e| e.to_string())?;
            exported += 1;
        }
        println!("exported {exported} suite files under {out_dir}");
    }
    for d in &summary.disagreements {
        eprintln!(
            "  DISAGREEMENT: {} x {} ({}, {} tier): suite says {}, matrix says {}",
            d.os,
            d.app,
            d.workload,
            d.tier.label(),
            if d.suite_pass { "pass" } else { "fail" },
            if d.matrix_pass { "pass" } else { "fail" },
        );
    }
    if !summary.disagreements.is_empty() {
        return Err(format!(
            "gentests: {} suite verdict(s) disagree with the stored matrix",
            summary.disagreements.len()
        ));
    }
    if check && !summary.stale.is_empty() {
        for (os_name, app, workload) in &summary.stale {
            eprintln!("  stale: {os_name}/{}/{app}.json", workload.label());
        }
        return Err(format!(
            "gentests: {} stored suite(s) drifted from the corpus; regenerate with `loupe gentests`",
            summary.stale.len()
        ));
    }
    if !summary.base.failures.is_empty() {
        return Err(format!(
            "gentests: {} measurement(s) failed their baseline",
            summary.base.failures.len()
        ));
    }
    Ok(())
}

fn cmd_cache(args: &[String]) -> Result<(), String> {
    let sub = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or("cache: need a subcommand: stats | invalidate")?;
    let rest = &args[1..];
    let db_dir = flag_value(rest, "--db").unwrap_or(DEFAULT_DB);
    let db = Database::open(db_dir).map_err(|e| e.to_string())?;
    match sub.as_str() {
        "stats" => {
            println!("cache manifest for {db_dir}:");
            println!(
                "{:<12} {:>8}  {:>15}",
                "NAMESPACE", "ENTRIES", "WITH PROVENANCE"
            );
            for (namespace, total, with_inputs) in db.cache_entry_counts() {
                println!("{namespace:<12} {total:>8}  {with_inputs:>15}");
            }
            match db.last_sweep_stats() {
                Some(stats) if !stats.is_empty() => {
                    println!("\nlast sweep:");
                    println!(
                        "{:<12} {:>6} {:>8} {:>6}",
                        "NAMESPACE", "HITS", "MISSES", "STALE"
                    );
                    for (namespace, c) in &stats.namespaces {
                        if c.total() > 0 {
                            println!(
                                "{namespace:<12} {:>6} {:>8} {:>6}",
                                c.hits, c.misses, c.stale
                            );
                        }
                    }
                    let t = stats.total();
                    println!(
                        "{:<12} {:>6} {:>8} {:>6}",
                        "total", t.hits, t.misses, t.stale
                    );
                }
                _ => println!("\nno sweep has recorded cache counters yet"),
            }
            Ok(())
        }
        "invalidate" => {
            let os_sel = flag_value(rest, "--os");
            let app_sel = flag_value(rest, "--app");
            let all = rest.iter().any(|a| a == "--all");
            if all && (os_sel.is_some() || app_sel.is_some()) {
                return Err("cache invalidate: --all excludes --os/--app".into());
            }
            if !all && os_sel.is_none() && app_sel.is_none() {
                return Err("cache invalidate: pass --os <name>, --app <name>, or --all".into());
            }
            if let Some(name) = os_sel {
                if os::find(name).is_none() {
                    return Err(format!(
                        "cache invalidate: unknown OS `{name}` (see `loupe os-list`)"
                    ));
                }
            }
            if let Some(name) = app_sel {
                if registry::find(name).is_none() {
                    return Err(format!("cache invalidate: unknown app `{name}`"));
                }
            }
            let dropped = db.invalidate_matching(os_sel, app_sel);
            db.flush().map_err(|e| e.to_string())?;
            let total: usize = dropped.iter().map(|(_, n)| n).sum();
            for (namespace, n) in &dropped {
                if *n > 0 {
                    println!("  {namespace}: {n} record(s) invalidated");
                }
            }
            println!(
                "invalidated {total} provenance record(s) in {db_dir}; \
                 the next sweep re-measures the affected cells"
            );
            Ok(())
        }
        other => Err(format!(
            "cache: unknown subcommand `{other}` (stats | invalidate)"
        )),
    }
}

fn cmd_plan(args: &[String]) -> Result<(), String> {
    let os_arg = flag_value(args, "--os").ok_or("plan: missing --os")?;
    let spec = if os_arg.ends_with(".csv") {
        let text = std::fs::read_to_string(os_arg).map_err(|e| e.to_string())?;
        os::OsSpec::from_csv(os_arg, "file", &text).map_err(|e| e.to_string())?
    } else {
        os::find(os_arg).ok_or_else(|| format!("unknown OS `{os_arg}`"))?
    };
    let workload = parse_workload(args, Workload::Benchmark)?;

    let apps: Vec<_> = match flag_value(args, "--apps") {
        Some(list) => list
            .split(',')
            .map(|n| registry::find(n.trim()).ok_or_else(|| format!("unknown app `{n}`")))
            .collect::<Result<_, _>>()?,
        None => registry::cloud_apps(),
    };

    // Reuse stored measurements when a database is given.
    let db = flag_value(args, "--db")
        .map(Database::open)
        .transpose()
        .map_err(|e| e.to_string())?;
    let analysis = AnalysisConfig::fast();
    let engine = Engine::new(analysis.clone());
    let mut reqs = Vec::new();
    for app in &apps {
        let cached = db
            .as_ref()
            .and_then(|db| db.load(app.name(), workload).ok().flatten());
        let report = match cached {
            Some(r) => r,
            None => {
                let r = engine
                    .analyze(app.as_ref(), workload)
                    .map_err(|e| e.to_string())?;
                if let Some(db) = &db {
                    db.save(&r).map_err(|e| e.to_string())?;
                    if r.is_linux_baseline() {
                        db.record_provenance(
                            loupe_db::ns::BASELINES,
                            &loupe_db::baseline_key(&r.app, r.workload),
                            loupe_sweep::baseline_inputs(app.as_ref(), workload, &analysis),
                            Default::default(),
                        );
                    }
                }
                r
            }
        };
        reqs.push(AppRequirement::from_report(&report));
    }

    let plan = SupportPlan::generate(&spec, &reqs);
    print!("{}", plan.to_table());

    if args.iter().any(|a| a == "--validate") {
        let validation = loupe_plan::PlanValidator::new()
            .validate(&spec, &plan, &reqs, workload, registry::find)
            .map_err(|e| e.to_string())?;
        print!("{}", validation.to_table());
        if let Some(db) = &db {
            db.save_plan_validation(&validation)
                .map_err(|e| e.to_string())?;
            let mut inputs = std::collections::BTreeMap::new();
            inputs.insert("os".to_owned(), loupe_core::fingerprint_of(&spec));
            inputs.insert("requirements".to_owned(), loupe_core::fingerprint_of(&reqs));
            db.record_provenance(
                loupe_db::ns::PLANS,
                &loupe_db::plan_key(&spec.name, workload),
                inputs,
                Default::default(),
            );
            db.flush().map_err(|e| e.to_string())?;
            eprintln!("validation stored");
        }
        if !validation.is_valid() {
            return Err(format!(
                "plan: {} of {} steps failed empirical validation",
                validation.failing_steps().len()
                    + validation.initial.iter().filter(|v| !v.passes).count(),
                validation.steps.len() + validation.initial.len()
            ));
        }
    }
    Ok(())
}

const DEFAULT_SERVE_ADDR: &str = "127.0.0.1:7071";

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let db_dir = flag_value(args, "--db").unwrap_or(DEFAULT_DB);
    let addr = flag_value(args, "--addr").unwrap_or(DEFAULT_SERVE_ADDR);
    let threads = flag_value(args, "--threads")
        .map(|v| v.parse::<usize>().map_err(|_| "bad --threads".to_owned()))
        .transpose()?
        .unwrap_or(1024);
    let batch_us = flag_value(args, "--batch-window-us")
        .map(|v| {
            v.parse::<u64>()
                .map_err(|_| "bad --batch-window-us".to_owned())
        })
        .transpose()?
        .unwrap_or(50);
    let watch_ms = flag_value(args, "--watch-ms")
        .map(|v| v.parse::<u64>().map_err(|_| "bad --watch-ms".to_owned()))
        .transpose()?
        .unwrap_or(200);
    let cfg = loupe_serve::ServeConfig {
        addr: addr.to_owned(),
        threads,
        batch_window: std::time::Duration::from_micros(batch_us),
        watch_interval: std::time::Duration::from_millis(watch_ms),
        eager: args.iter().any(|a| a == "--eager"),
    };
    let server = loupe_serve::Server::start(db_dir, cfg).map_err(|e| e.to_string())?;
    // Scripted clients parse this line for the resolved port.
    println!("listening on {}", server.local_addr());
    println!("serving {db_dir} (batch window {batch_us}us, watch {watch_ms}ms); ^C to stop");
    // The daemon runs until killed; its accept/batcher/watcher threads
    // do all the work.
    loop {
        std::thread::park();
    }
}

/// Builds the protocol request the `query` flags describe.
fn build_query(args: &[String]) -> Result<loupe_serve::Request, String> {
    let mut request = loupe_serve::Request {
        os: flag_value(args, "--os").map(str::to_owned),
        app: flag_value(args, "--app").map(str::to_owned),
        workload: flag_value(args, "--workload").map(str::to_owned),
        tier: flag_value(args, "--tier").map(str::to_owned),
        limit: flag_value(args, "--limit")
            .map(|v| v.parse::<u64>().map_err(|_| "bad --limit".to_owned()))
            .transpose()?,
        ..Default::default()
    };
    request.cmd = if args.iter().any(|a| a == "--summary") {
        "summary"
    } else if args.iter().any(|a| a == "--missing") {
        "missing"
    } else if args.iter().any(|a| a == "--plan") {
        "plan"
    } else if let Some(syscall) = flag_value(args, "--apps-requiring") {
        request.syscall = Some(syscall.to_owned());
        "apps"
    } else if request.os.is_some() || request.app.is_some() {
        "verdict"
    } else {
        return Err("query: pass --os X --app Y, or one of \
                    --summary/--missing/--plan/--apps-requiring"
            .into());
    }
    .to_owned();
    Ok(request)
}

fn print_query_response(request: &loupe_serve::Request, response: &loupe_serve::Response) {
    match request.cmd.as_str() {
        "verdict" => {
            let Some(v) = &response.verdict else { return };
            let outcome = if !v.known {
                "UNMEASURED (no stored matrix cell)"
            } else if v.pass {
                "PASS"
            } else {
                "FAIL"
            };
            println!(
                "{} on {} ({} workload, {} tier): {outcome}",
                v.app, v.os, v.workload, v.tier
            );
            if v.known {
                println!(
                    "  linux reference: {}",
                    if v.linux_pass { "pass" } else { "fail" }
                );
                if let Some(rejection) = &v.first_rejection {
                    println!("  first rejection: {rejection}");
                }
                if !v.missing_required.is_empty() {
                    println!(
                        "  missing required ({}): {}",
                        v.missing_required.len(),
                        v.missing_required.join(", ")
                    );
                }
            }
        }
        "summary" => {
            println!(
                "{:<14} {:<7} {:>8} {:>5} {:>6} {:>8} {:>10}",
                "OS", "WORK", "SYSCALLS", "APPS", "LINUX", "VANILLA", "WITH PLAN"
            );
            for row in &response.summary {
                println!(
                    "{:<14} {:<7} {:>8} {:>5} {:>6} {:>8} {:>10}",
                    row.os,
                    row.workload,
                    row.syscalls,
                    row.apps,
                    row.linux_pass,
                    row.vanilla_pass,
                    row.planned_pass
                );
            }
        }
        "missing" => {
            println!("{:<22} {:>12}", "SYSCALL", "BLOCKED APPS");
            for row in &response.missing {
                println!("{:<22} {:>12}", row.syscall, row.blocked_apps);
            }
        }
        "plan" => {
            let Some(plan) = &response.plan else { return };
            println!(
                "support plan for {} ({} workload): {} apps out of the box, {} steps",
                plan.os,
                plan.workload,
                plan.initially_supported.len(),
                plan.steps.len()
            );
            for step in &plan.steps {
                println!(
                    "  {:>2}. implement {:>3}, stub {:>3}, fake {:>3} -> unlocks {}",
                    step.index,
                    step.implement.len(),
                    step.stub.len(),
                    step.fake.len(),
                    step.unlocks
                );
            }
        }
        "apps" => {
            for app in &response.apps {
                println!("{app}");
            }
        }
        _ => {}
    }
    if let Some(generation) = response.generation {
        eprintln!("(index generation {generation})");
    }
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let request = build_query(args)?;
    let response = if args.iter().any(|a| a == "--offline") {
        // No daemon: load the database and resolve against a
        // freshly built index — the same code the daemon runs.
        let db_dir = flag_value(args, "--db").unwrap_or(DEFAULT_DB);
        let db = Database::open(db_dir).map_err(|e| e.to_string())?;
        let index = loupe_serve::ServeIndex::build(db, 0).map_err(|e| e.to_string())?;
        index.answer(&request)
    } else {
        let addr = flag_value(args, "--addr").unwrap_or(DEFAULT_SERVE_ADDR);
        let mut client = loupe_serve::Client::connect(addr).map_err(|e| {
            format!(
                "query: cannot reach a daemon at {addr}: {e} \
                 (start one with `loupe serve`, or pass --offline)"
            )
        })?;
        client
            .set_timeout(std::time::Duration::from_secs(30))
            .map_err(|e| e.to_string())?;
        client.request(&request).map_err(|e| e.to_string())?
    };
    if args.iter().any(|a| a == "--json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&response).map_err(|e| e.to_string())?
        );
    }
    if !response.ok {
        return Err(format!(
            "query: {}",
            response.error.as_deref().unwrap_or("request failed")
        ));
    }
    if !args.iter().any(|a| a == "--json") {
        print_query_response(&request, &response);
    }
    Ok(())
}

fn cmd_os_list() -> Result<(), String> {
    println!("{:<14} {:<14} {:>9}", "OS", "VERSION", "SYSCALLS");
    for spec in os::db() {
        println!(
            "{:<14} {:<14} {:>9}",
            spec.name,
            spec.version,
            spec.supported.len()
        );
    }
    Ok(())
}

fn cmd_ingest(args: &[String]) -> Result<(), String> {
    let path = flag_value(args, "--from").ok_or("ingest: missing --from <file.md>")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("ingest: {path}: {e}"))?;
    let name = flag_value(args, "--os")
        .map(str::to_owned)
        .or_else(|| {
            std::path::Path::new(path)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
        })
        .ok_or("ingest: cannot derive a spec name; pass --os <name>")?;
    let version = flag_value(args, "--version").unwrap_or("ingested");
    let overrides = match flag_value(args, "--overrides") {
        Some(p) => {
            let text = std::fs::read_to_string(p).map_err(|e| format!("ingest: {p}: {e}"))?;
            loupe_plan::ingest::parse_overrides(&text).map_err(|e| format!("ingest: {p}: {e}"))?
        }
        None => Vec::new(),
    };

    let table = CompatTable::parse(&text).map_err(|e| format!("ingest: {path}: {e}"))?;
    let spec = table
        .to_spec(&name, version, &overrides)
        .map_err(|e| format!("ingest: {path}: {e}"))?;

    if args.iter().any(|a| a == "--check") {
        if table.render() != text {
            return Err(format!(
                "ingest: {path} is not in canonical form (re-render changes bytes)"
            ));
        }
        if let Some(curated) = os::find(&name) {
            if spec.supported != curated.supported || spec.partial != curated.partial {
                let missing = curated.supported.difference(&spec.supported);
                let extra = spec.supported.difference(&curated.supported);
                return Err(format!(
                    "ingest: {path} disagrees with the curated `{name}` spec \
                     ({} syscalls missing, {} extra, holes {} vs curated {})",
                    missing.len(),
                    extra.len(),
                    spec.all_holes().len(),
                    curated.all_holes().len()
                ));
            }
            println!("{name}: canonical table, matches the curated spec");
        } else {
            println!("{name}: canonical table (no curated spec to compare)");
        }
    }

    if args.iter().any(|a| a == "--json") {
        let json = serde_json::to_string_pretty(&spec).map_err(|e| e.to_string())?;
        println!("{json}");
        return Ok(());
    }

    println!(
        "{}: {} syscalls supported, {} partially ({} flag holes)",
        spec.name,
        spec.supported.len(),
        spec.partial.len(),
        spec.all_holes().len()
    );
    for (sysno, holes) in &spec.partial {
        let rendered: Vec<String> = holes.iter().map(|k| k.to_string()).collect();
        println!("  {:<12} missing {}", sysno.name(), rendered.join(", "));
    }
    Ok(())
}

fn cmd_importance(args: &[String]) -> Result<(), String> {
    let workload = parse_workload(args, Workload::HealthCheck)?;
    let n = flag_value(args, "--apps")
        .map(|v| v.parse::<usize>().map_err(|_| "bad --apps".to_owned()))
        .transpose()?
        .unwrap_or(116);
    let engine = Engine::new(AnalysisConfig::fast());
    let mut required_sets = Vec::new();
    for app in registry::dataset().into_iter().take(n) {
        match engine.analyze(app.as_ref(), workload) {
            Ok(r) => required_sets.push(r.required()),
            Err(e) => eprintln!("skipping {}: {e}", app.name()),
        }
    }
    for point in api_importance(&required_sets) {
        println!(
            "{:>3}. {:<22} {:>5.1}%",
            point.rank,
            point.sysno.name(),
            point.importance * 100.0
        );
    }
    Ok(())
}

fn cmd_trace(args: &[String]) -> Result<(), String> {
    let cmd_start = args
        .iter()
        .position(|a| a == "--")
        .map(|i| i + 1)
        .unwrap_or(0);
    let argv: Vec<&str> = args[cmd_start..].iter().map(String::as_str).collect();
    if argv.is_empty() {
        return Err("trace: missing command (use `loupe trace -- cmd args...`)".into());
    }
    let result = loupe_trace::trace_command(&argv, &loupe_trace::TracePolicy::allow_all())
        .map_err(|e| e.to_string())?;
    println!(
        "exit: {:?}; {} distinct syscalls:",
        result.exit_code,
        result.counts.len()
    );
    for (sysno, count) in result.by_sysno() {
        println!("{:>8}  {}", count, sysno.name());
    }
    Ok(())
}
