//! `loupe` — the command-line front-end of the Loupe reproduction.
//!
//! Mirrors the workflows of the upstream tool:
//!
//! ```text
//! loupe list                          # applications in the registry
//! loupe analyze nginx --workload bench [--json] [--db DIR]
//! loupe plan --os kerla [--workload bench] [--db DIR]
//! loupe os-list                       # curated OS support specs
//! loupe importance [--workload bench] # Fig. 3-style ranking
//! loupe trace -- /bin/echo hello      # real ptrace backend
//! ```

use std::process::ExitCode;

use loupe_apps::{registry, Workload};
use loupe_core::{AnalysisConfig, Engine};
use loupe_db::Database;
use loupe_plan::{api_importance, os, AppRequirement, SupportPlan};

fn main() -> ExitCode {
    // Behave like a Unix tool when piped into head/grep: die on SIGPIPE
    // instead of panicking on a failed print.
    #[cfg(unix)]
    // SAFETY: resetting a signal disposition before any thread is spawned.
    unsafe {
        libc::signal(libc::SIGPIPE, libc::SIG_DFL);
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "list" => cmd_list(),
        "analyze" => cmd_analyze(rest),
        "plan" => cmd_plan(rest),
        "os-list" => cmd_os_list(),
        "importance" => cmd_importance(rest),
        "trace" => cmd_trace(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("loupe: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: loupe <command> [options]

commands:
  list                         list applications in the registry
  analyze <app>                measure an application's OS-feature needs
      --workload health|bench|suite   (default: bench)
      --replicas N                    (default: 1)
      --sub-features                  classify vectored-syscall features too
      --json                          print the full report as JSON
      --db DIR                        store the report in a database
  plan --os <name|file.csv>    incremental support plan for an OS
      --workload health|bench|suite   (default: bench)
      --apps a,b,c                    target apps (default: 15 cloud apps)
      --db DIR                        reuse measurements from a database
  os-list                      show the curated OS support specs
  importance                   rank syscalls by how many apps require them
      --workload health|bench|suite   (default: health)
      --apps N                        dataset size (default: 116)
  trace -- <cmd> [args...]     trace a real binary with ptrace
  help                         this message";

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_workload(args: &[String], default: Workload) -> Result<Workload, String> {
    match flag_value(args, "--workload") {
        None => Ok(default),
        Some("health") => Ok(Workload::HealthCheck),
        Some("bench") => Ok(Workload::Benchmark),
        Some("suite") => Ok(Workload::TestSuite),
        Some(other) => Err(format!("unknown workload `{other}`")),
    }
}

fn cmd_list() -> Result<(), String> {
    println!("{:<28} {:<10} {:>6}  {}", "NAME", "KIND", "YEAR", "LIBC");
    for app in registry::dataset() {
        let spec = app.spec();
        println!(
            "{:<28} {:<10} {:>6}  {}",
            spec.name,
            format!("{:?}", spec.kind),
            spec.year,
            spec.libc.name()
        );
    }
    println!(
        "\n({} applications; variants: nginx-0.3.19, redis-2.0, httpd-2.2, hello-*)",
        registry::dataset().len()
    );
    Ok(())
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let name = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or("analyze: missing application name")?;
    let app = registry::find(name).ok_or_else(|| format!("unknown application `{name}`"))?;
    let workload = parse_workload(args, Workload::Benchmark)?;
    let replicas = flag_value(args, "--replicas")
        .map(|v| v.parse::<u32>().map_err(|_| "bad --replicas".to_owned()))
        .transpose()?
        .unwrap_or(1);
    let sub = args.iter().any(|a| a == "--sub-features");
    let cfg = AnalysisConfig {
        replicas,
        explore_sub_features: sub,
        explore_pseudo_files: sub,
        ..AnalysisConfig::fast()
    };
    let report = Engine::new(cfg)
        .analyze(app.as_ref(), workload)
        .map_err(|e| e.to_string())?;

    if args.iter().any(|a| a == "--json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
        );
    } else {
        println!("{} ({} workload)", report.app, workload);
        println!(
            "traced: {} syscalls over {} runs; confirmed: {}",
            report.traced().len(),
            report.stats.total_runs(),
            report.confirmed
        );
        println!("required  ({:>3}): {}", report.required().len(), report.required());
        println!("stubbable ({:>3}): {}", report.stubbable().len(), report.stubbable());
        println!("fakeable  ({:>3}): {}", report.fakeable().len(), report.fakeable());
        if sub && !report.sub_features.is_empty() {
            println!("sub-features:");
            for (key, class) in &report.sub_features {
                println!("  {key}: {}", class.label());
            }
        }
        if !report.pseudo_files.is_empty() {
            println!("pseudo-files:");
            for (path, class) in &report.pseudo_files {
                println!("  {path}: {}", class.label());
            }
        }
    }

    if let Some(dir) = flag_value(args, "--db") {
        let db = Database::open(dir).map_err(|e| e.to_string())?;
        db.save(&report).map_err(|e| e.to_string())?;
        eprintln!("stored in {dir}");
    }
    Ok(())
}

fn cmd_plan(args: &[String]) -> Result<(), String> {
    let os_arg = flag_value(args, "--os").ok_or("plan: missing --os")?;
    let spec = if os_arg.ends_with(".csv") {
        let text = std::fs::read_to_string(os_arg).map_err(|e| e.to_string())?;
        os::OsSpec::from_csv(os_arg, "file", &text).map_err(|e| e.to_string())?
    } else {
        os::find(os_arg).ok_or_else(|| format!("unknown OS `{os_arg}`"))?
    };
    let workload = parse_workload(args, Workload::Benchmark)?;

    let apps: Vec<_> = match flag_value(args, "--apps") {
        Some(list) => list
            .split(',')
            .map(|n| registry::find(n.trim()).ok_or_else(|| format!("unknown app `{n}`")))
            .collect::<Result<_, _>>()?,
        None => registry::cloud_apps(),
    };

    // Reuse stored measurements when a database is given.
    let db = flag_value(args, "--db")
        .map(Database::open)
        .transpose()
        .map_err(|e| e.to_string())?;
    let engine = Engine::new(AnalysisConfig::fast());
    let mut reqs = Vec::new();
    for app in &apps {
        let cached = db
            .as_ref()
            .and_then(|db| db.load(app.name(), workload).ok().flatten());
        let report = match cached {
            Some(r) => r,
            None => {
                let r = engine
                    .analyze(app.as_ref(), workload)
                    .map_err(|e| e.to_string())?;
                if let Some(db) = &db {
                    db.save(&r).map_err(|e| e.to_string())?;
                }
                r
            }
        };
        reqs.push(AppRequirement::from_report(&report));
    }

    let plan = SupportPlan::generate(&spec, &reqs);
    print!("{}", plan.to_table());
    Ok(())
}

fn cmd_os_list() -> Result<(), String> {
    println!("{:<14} {:<14} {:>9}", "OS", "VERSION", "SYSCALLS");
    for spec in os::db() {
        println!("{:<14} {:<14} {:>9}", spec.name, spec.version, spec.supported.len());
    }
    Ok(())
}

fn cmd_importance(args: &[String]) -> Result<(), String> {
    let workload = parse_workload(args, Workload::HealthCheck)?;
    let n = flag_value(args, "--apps")
        .map(|v| v.parse::<usize>().map_err(|_| "bad --apps".to_owned()))
        .transpose()?
        .unwrap_or(116);
    let engine = Engine::new(AnalysisConfig::fast());
    let mut required_sets = Vec::new();
    for app in registry::dataset().into_iter().take(n) {
        match engine.analyze(app.as_ref(), workload) {
            Ok(r) => required_sets.push(r.required()),
            Err(e) => eprintln!("skipping {}: {e}", app.name()),
        }
    }
    for point in api_importance(&required_sets) {
        println!(
            "{:>3}. {:<22} {:>5.1}%",
            point.rank,
            point.sysno.name(),
            point.importance * 100.0
        );
    }
    Ok(())
}

fn cmd_trace(args: &[String]) -> Result<(), String> {
    let cmd_start = args.iter().position(|a| a == "--").map(|i| i + 1).unwrap_or(0);
    let argv: Vec<&str> = args[cmd_start..].iter().map(String::as_str).collect();
    if argv.is_empty() {
        return Err("trace: missing command (use `loupe trace -- cmd args...`)".into());
    }
    let result = loupe_trace::trace_command(&argv, &loupe_trace::TracePolicy::allow_all())
        .map_err(|e| e.to_string())?;
    println!(
        "exit: {:?}; {} distinct syscalls:",
        result.exit_code,
        result.counts.len()
    );
    for (sysno, count) in result.by_sysno() {
        println!("{:>8}  {}", count, sysno.name());
    }
    Ok(())
}
