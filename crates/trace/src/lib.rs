//! A real `ptrace(2)` interposition backend for real Linux binaries.
//!
//! This is a direct Rust port of the paper's 500-LoC C shim (§3): it
//! traces a child process with `PTRACE_SYSCALL`, records every system
//! call, and can **stub** or **fake** selected syscalls by rewriting
//! `orig_rax` on entry (to an invalid number, so the kernel skips the
//! call) and `rax` on exit (to `-ENOSYS` or a fake success value).
//!
//! The simulated-kernel engine in `loupe-core` is the primary measurement
//! path in this reproduction (the paper's applications are not available
//! here); this backend demonstrates the mechanism against real binaries
//! and is exercised by tests on `/bin/true`-class programs.
//!
//! Only x86-64 Linux is supported.

#![cfg(target_os = "linux")]

use std::collections::BTreeMap;
use std::ffi::CString;
use std::fmt;

use loupe_syscalls::Sysno;

/// Register offsets into `user_regs_struct`, in units of machine words.
const RAX: usize = 10;
const RDI: usize = 14;
const ORIG_RAX: usize = 15;

/// `-ENOSYS` as the kernel returns it.
const ENOSYS_RET: i64 = -38;

/// What to do with one syscall during a traced run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceAction {
    /// Let it through (still counted).
    Allow,
    /// Skip the kernel and return `-ENOSYS`.
    Stub,
    /// Skip the kernel and return `value`.
    Fake(i64),
}

/// Policy for a traced run: per-syscall actions, default allow.
#[derive(Debug, Clone, Default)]
pub struct TracePolicy {
    actions: BTreeMap<u64, TraceAction>,
    whitelist: Vec<String>,
}

impl TracePolicy {
    /// The record-only policy.
    pub fn allow_all() -> TracePolicy {
        TracePolicy::default()
    }

    /// Sets the action for one syscall (builder style).
    pub fn with(mut self, sysno: Sysno, action: TraceAction) -> TracePolicy {
        self.actions.insert(u64::from(sysno.raw()), action);
        self
    }

    /// Restricts accounting and interposition to binaries whose path
    /// contains one of `needles` (§3.3's whitelist: run Loupe on a test
    /// suite, count only the application's own syscalls). Matching is by
    /// substring of the `execve` path, like the upstream tool's
    /// binary-name matching.
    pub fn with_whitelist<I, S>(mut self, needles: I) -> TracePolicy
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.whitelist = needles.into_iter().map(Into::into).collect();
        self
    }

    fn action_for(&self, nr: u64) -> TraceAction {
        self.actions.get(&nr).copied().unwrap_or(TraceAction::Allow)
    }

    fn matches_whitelist(&self, path: &str) -> bool {
        self.whitelist.is_empty() || self.whitelist.iter().any(|n| path.contains(n.as_str()))
    }
}

/// The result of a traced run.
#[derive(Debug, Clone, Default)]
pub struct TraceResult {
    /// Exit status of the child (`None` if killed by a signal).
    pub exit_code: Option<i32>,
    /// Invocation counts per syscall number (includes unknown numbers).
    pub counts: BTreeMap<u64, u64>,
    /// Number of syscalls answered by the tracer instead of the kernel.
    pub intercepted: u64,
    /// Paths passed to `execve` during the run (whitelist diagnostics).
    pub execs: Vec<String>,
}

impl TraceResult {
    /// Counts keyed by [`Sysno`], dropping unknown numbers.
    pub fn by_sysno(&self) -> BTreeMap<Sysno, u64> {
        self.counts
            .iter()
            .filter_map(|(nr, n)| Sysno::from_raw(*nr as u32).map(|s| (s, *n)))
            .collect()
    }

    /// Whether the syscall was observed at least once.
    pub fn saw(&self, sysno: Sysno) -> bool {
        self.counts.contains_key(&u64::from(sysno.raw()))
    }
}

/// Errors from the ptrace backend.
#[derive(Debug)]
pub enum TraceError {
    /// `fork(2)` failed.
    ForkFailed(i32),
    /// A ptrace operation failed.
    Ptrace {
        /// Which operation.
        op: &'static str,
        /// errno.
        errno: i32,
    },
    /// The command contained an interior NUL byte.
    BadCommand,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::ForkFailed(e) => write!(f, "fork failed (errno {e})"),
            TraceError::Ptrace { op, errno } => write!(f, "ptrace {op} failed (errno {errno})"),
            TraceError::BadCommand => write!(f, "command contains NUL byte"),
        }
    }
}

impl std::error::Error for TraceError {}

fn errno() -> i32 {
    io_errno()
}

fn io_errno() -> i32 {
    std::io::Error::last_os_error().raw_os_error().unwrap_or(0)
}

/// Traces `argv[0]` with arguments `argv[1..]` under `policy`.
///
/// The child's stdout/stderr are redirected to `/dev/null` so traced
/// programs do not pollute the caller's terminal.
///
/// # Errors
///
/// Fork/ptrace failures. A child that never stops is not handled — callers
/// should trace short-lived commands.
pub fn trace_command(argv: &[&str], policy: &TracePolicy) -> Result<TraceResult, TraceError> {
    let cargs: Vec<CString> = argv
        .iter()
        .map(|a| CString::new(*a).map_err(|_| TraceError::BadCommand))
        .collect::<Result<_, _>>()?;

    // SAFETY: standard fork/exec pattern; the child only calls
    // async-signal-safe functions before execvp.
    let pid = unsafe { libc::fork() };
    if pid < 0 {
        return Err(TraceError::ForkFailed(errno()));
    }
    if pid == 0 {
        // Child.
        unsafe {
            let devnull = CString::new("/dev/null").expect("static string");
            let fd = libc::open(devnull.as_ptr(), libc::O_WRONLY);
            if fd >= 0 {
                libc::dup2(fd, 1);
                libc::dup2(fd, 2);
            }
            libc::ptrace(libc::PTRACE_TRACEME, 0, 0, 0);
            let mut ptrs: Vec<*const libc::c_char> = cargs.iter().map(|c| c.as_ptr()).collect();
            ptrs.push(std::ptr::null());
            libc::execvp(ptrs[0], ptrs.as_ptr());
            libc::_exit(127);
        }
    }

    // Parent: wait for the post-execve stop.
    let mut status: libc::c_int = 0;
    // SAFETY: pid is our child.
    unsafe { libc::waitpid(pid, &mut status, 0) };
    if libc::WIFEXITED(status) {
        // execvp failed before any stop (e.g. missing binary).
        return Ok(TraceResult {
            exit_code: Some(libc::WEXITSTATUS(status)),
            ..TraceResult::default()
        });
    }
    // Distinguish syscall stops from signal stops.
    // SAFETY: child is in ptrace-stop.
    unsafe { libc::ptrace(libc::PTRACE_SETOPTIONS, pid, 0, libc::PTRACE_O_TRACESYSGOOD) };

    let mut result = TraceResult::default();
    let mut in_syscall = false;
    let mut pending: Option<(u64, TraceAction)> = None;
    // Whitelist state: whether the *current program image* is accounted.
    // The initial exec target is argv[0]; later execve calls re-evaluate.
    let mut accounted = policy.matches_whitelist(argv[0]);
    const SYS_EXECVE: u64 = 59;

    loop {
        // SAFETY: child is stopped.
        if unsafe { libc::ptrace(libc::PTRACE_SYSCALL, pid, 0, 0) } < 0 {
            return Err(TraceError::Ptrace {
                op: "SYSCALL",
                errno: errno(),
            });
        }
        // SAFETY: pid is our child.
        if unsafe { libc::waitpid(pid, &mut status, 0) } < 0 {
            return Err(TraceError::Ptrace {
                op: "waitpid",
                errno: errno(),
            });
        }
        if libc::WIFEXITED(status) {
            result.exit_code = Some(libc::WEXITSTATUS(status));
            break;
        }
        if libc::WIFSIGNALED(status) {
            result.exit_code = None;
            break;
        }
        let is_syscall_stop =
            libc::WIFSTOPPED(status) && libc::WSTOPSIG(status) == (libc::SIGTRAP | 0x80);
        if !is_syscall_stop {
            continue;
        }

        if !in_syscall {
            // Syscall entry.
            let nr = peek_user(pid, ORIG_RAX)? as u64;
            if nr == SYS_EXECVE {
                // Re-evaluate the whitelist against the new image (§3.3:
                // "checking the binary path upon exec").
                if let Ok(path) = read_child_string(pid, peek_user(pid, RDI)? as u64) {
                    accounted = policy.matches_whitelist(&path);
                    result.execs.push(path);
                }
            }
            if accounted {
                *result.counts.entry(nr).or_insert(0) += 1;
                let action = policy.action_for(nr);
                if action != TraceAction::Allow {
                    // Divert to an invalid syscall so the kernel skips it.
                    poke_user(pid, ORIG_RAX, -1i64 as u64)?;
                    pending = Some((nr, action));
                }
            }
            in_syscall = true;
        } else {
            // Syscall exit.
            if let Some((_, action)) = pending.take() {
                let value = match action {
                    TraceAction::Stub => ENOSYS_RET,
                    TraceAction::Fake(v) => v,
                    TraceAction::Allow => unreachable!("allow is never pending"),
                };
                poke_user(pid, RAX, value as u64)?;
                result.intercepted += 1;
            }
            in_syscall = false;
        }
    }
    Ok(result)
}

fn peek_user(pid: libc::pid_t, reg: usize) -> Result<i64, TraceError> {
    // SAFETY: reading a register slot of a stopped child.
    let v = unsafe { libc::ptrace(libc::PTRACE_PEEKUSER, pid, (reg * 8) as libc::c_long, 0) };
    if v == -1 && errno() != 0 {
        // A legitimate -1 register value is indistinguishable from an
        // error without clearing errno; register reads here are never -1
        // for orig_rax of a syscall stop, so treat it as an error.
        return Err(TraceError::Ptrace {
            op: "PEEKUSER",
            errno: errno(),
        });
    }
    Ok(v)
}

/// Reads a NUL-terminated string from the child's address space (for the
/// `execve` path argument), capped at 4 KiB.
fn read_child_string(pid: libc::pid_t, addr: u64) -> Result<String, TraceError> {
    let mut bytes = Vec::new();
    let mut cursor = addr;
    while bytes.len() < 4096 {
        // SAFETY: reading a word of a stopped child's memory.
        let word = unsafe { libc::ptrace(libc::PTRACE_PEEKDATA, pid, cursor as libc::c_long, 0) };
        if word == -1 && errno() != 0 {
            return Err(TraceError::Ptrace {
                op: "PEEKDATA",
                errno: errno(),
            });
        }
        for b in word.to_ne_bytes() {
            if b == 0 {
                return Ok(String::from_utf8_lossy(&bytes).into_owned());
            }
            bytes.push(b);
        }
        cursor += 8;
    }
    Ok(String::from_utf8_lossy(&bytes).into_owned())
}

fn poke_user(pid: libc::pid_t, reg: usize, value: u64) -> Result<(), TraceError> {
    // SAFETY: writing a register slot of a stopped child.
    let r = unsafe {
        libc::ptrace(
            libc::PTRACE_POKEUSER,
            pid,
            (reg * 8) as libc::c_long,
            value as libc::c_long,
        )
    };
    if r < 0 {
        return Err(TraceError::Ptrace {
            op: "POKEUSER",
            errno: errno(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ptrace_available() -> bool {
        // A containerised environment may deny ptrace; probe once.
        trace_command(&["true"], &TracePolicy::allow_all()).is_ok()
    }

    #[test]
    fn traces_true_and_sees_core_syscalls() {
        if !ptrace_available() {
            eprintln!("ptrace unavailable; skipping");
            return;
        }
        let r = trace_command(&["true"], &TracePolicy::allow_all()).unwrap();
        assert_eq!(r.exit_code, Some(0));
        assert!(r.saw(Sysno::execve) || r.counts.len() > 3, "{:?}", r.counts);
        assert!(r.saw(Sysno::exit_group), "{:?}", r.counts.keys());
        assert!(r.by_sysno().len() > 3);
    }

    #[test]
    fn echo_writes_through_write_or_writev() {
        if !ptrace_available() {
            return;
        }
        let r = trace_command(&["echo", "hello"], &TracePolicy::allow_all()).unwrap();
        assert_eq!(r.exit_code, Some(0));
        assert!(r.saw(Sysno::write) || r.saw(Sysno::writev));
        assert_eq!(r.intercepted, 0);
    }

    #[test]
    fn stubbing_a_harmless_syscall_keeps_the_program_working() {
        if !ptrace_available() {
            return;
        }
        // `sysinfo`/`getrusage` style calls are not used by `true`; stub
        // something it does call but tolerates: `brk` forces the mmap
        // fallback in glibc (§5.3), and `true` still exits 0.
        let policy = TracePolicy::allow_all().with(Sysno::brk, TraceAction::Stub);
        let r = trace_command(&["true"], &policy).unwrap();
        assert_eq!(r.exit_code, Some(0), "true survives stubbed brk");
        if r.saw(Sysno::brk) {
            assert!(r.intercepted > 0);
        }
    }

    #[test]
    fn faking_write_suppresses_output_but_passes() {
        if !ptrace_available() {
            return;
        }
        // Fake write: echo believes it wrote (return value = a plausible
        // byte count) and exits cleanly.
        let policy = TracePolicy::allow_all().with(Sysno::write, TraceAction::Fake(4096));
        let r = trace_command(&["echo", "hello"], &policy).unwrap();
        assert_eq!(r.exit_code, Some(0));
    }

    #[test]
    fn whitelist_filters_non_matching_programs() {
        if !ptrace_available() {
            return;
        }
        // `sh -c true` execs /bin/true (or runs it builtin); whitelisting
        // a needle that matches nothing must yield an (almost) empty
        // count set while the run still succeeds.
        let policy = TracePolicy::allow_all().with_whitelist(["no-such-binary-needle"]);
        let filtered = trace_command(&["sh", "-c", "exec echo hi"], &policy).unwrap();
        assert_eq!(filtered.exit_code, Some(0));
        let full = trace_command(&["sh", "-c", "exec echo hi"], &TracePolicy::allow_all()).unwrap();
        assert!(
            filtered.counts.values().sum::<u64>() < full.counts.values().sum::<u64>(),
            "whitelist must drop syscalls: {} vs {}",
            filtered.counts.values().sum::<u64>(),
            full.counts.values().sum::<u64>()
        );
        // Whitelisting the echo image counts its syscalls but not sh's.
        let policy = TracePolicy::allow_all().with_whitelist(["echo"]);
        let echo_only = trace_command(&["sh", "-c", "exec echo hi"], &policy).unwrap();
        assert!(
            echo_only.execs.iter().any(|p| p.contains("echo")),
            "{:?}",
            echo_only.execs
        );
        assert!(echo_only.saw(Sysno::write) || echo_only.saw(Sysno::writev));
    }

    #[test]
    fn missing_binary_reports_exit_127() {
        if !ptrace_available() {
            return;
        }
        let r = trace_command(&["/no/such/binary-xyz"], &TracePolicy::allow_all()).unwrap();
        assert_eq!(r.exit_code, Some(127));
    }
}
