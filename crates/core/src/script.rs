//! Test scripts: deciding whether a run *worked* (§3.2).
//!
//! A run is successful when the application terminated cleanly, produced
//! the expected responses, logged no failures, and — for suite workloads —
//! kept every application feature that the baseline run had healthy.
//! Crashes, hangs and starvation are generic failure signs; resource and
//! performance deviations are reported separately by the engine.

use std::collections::BTreeMap;

use loupe_apps::model::AppOutcome;
use loupe_apps::Workload;
use serde::{Deserialize, Serialize};

/// The outcome of evaluating one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Verdict {
    /// Did the run pass?
    pub success: bool,
    /// The performance metric (responses per 1000 time units).
    pub perf: f64,
    /// Why the run failed, when it did.
    pub reasons: Vec<String>,
}

/// A generic test script, configurable per application needs.
///
/// The embedded drivers in the app models supply inputs and verify
/// responses end-to-end; this type encodes the pass/fail policy, like the
/// `is_failed` helper of the paper's Nginx example.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestScript {
    /// Minimum fraction of expected responses that must be verified.
    pub min_response_fraction: f64,
    /// Maximum tolerated fraction of failed requests.
    pub max_failure_fraction: f64,
}

impl Default for TestScript {
    fn default() -> Self {
        TestScript {
            min_response_fraction: 0.95,
            max_failure_fraction: 0.05,
        }
    }
}

impl TestScript {
    /// Creates the default policy.
    pub fn new() -> TestScript {
        TestScript::default()
    }

    /// Evaluates one run. `baseline_features` is the feature-health map of
    /// the full-kernel baseline: a feature that regresses from healthy to
    /// broken fails suite workloads (benchmarks only check the hot path).
    pub fn evaluate(
        &self,
        outcome: &AppOutcome,
        workload: Workload,
        baseline_features: Option<&BTreeMap<String, bool>>,
    ) -> Verdict {
        let mut reasons = Vec::new();
        if !outcome.exit.is_clean() {
            reasons.push(outcome.exit.to_string());
        }
        let expected = u64::from(workload.requests());
        let min_responses = ((expected as f64) * self.min_response_fraction).ceil() as u64;
        if outcome.responses < min_responses {
            reasons.push(format!(
                "only {}/{} responses verified",
                outcome.responses, expected
            ));
        }
        let max_failures = ((expected as f64) * self.max_failure_fraction).floor() as usize;
        if outcome.failures.len() > max_failures {
            reasons.push(format!(
                "{} failures logged (tolerated: {max_failures})",
                outcome.failures.len()
            ));
        }
        if workload.checks_aux_features() {
            if let Some(base) = baseline_features {
                for (feature, healthy) in base {
                    if *healthy && outcome.features.get(feature) == Some(&false) {
                        reasons.push(format!("feature regressed: {feature}"));
                    }
                }
            }
        }
        Verdict {
            success: reasons.is_empty(),
            perf: outcome.throughput(),
            reasons,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loupe_apps::Exit;

    fn outcome(responses: u64, failures: usize, exit: Exit) -> AppOutcome {
        AppOutcome {
            exit,
            responses,
            elapsed: 1000,
            features: BTreeMap::new(),
            failures: vec!["x".into(); failures],
        }
    }

    #[test]
    fn clean_full_run_passes() {
        let v =
            TestScript::new().evaluate(&outcome(200, 0, Exit::Clean), Workload::Benchmark, None);
        assert!(v.success, "{:?}", v.reasons);
        assert!(v.perf > 0.0);
    }

    #[test]
    fn crash_fails() {
        let v = TestScript::new().evaluate(
            &outcome(200, 0, Exit::Crash("boom".into())),
            Workload::Benchmark,
            None,
        );
        assert!(!v.success);
        assert!(v.reasons[0].contains("boom"));
    }

    #[test]
    fn missing_responses_fail() {
        let v =
            TestScript::new().evaluate(&outcome(100, 0, Exit::Clean), Workload::Benchmark, None);
        assert!(!v.success);
    }

    #[test]
    fn small_failure_fraction_is_tolerated() {
        let v =
            TestScript::new().evaluate(&outcome(195, 5, Exit::Clean), Workload::Benchmark, None);
        assert!(v.success, "{:?}", v.reasons);
        let v =
            TestScript::new().evaluate(&outcome(195, 60, Exit::Clean), Workload::Benchmark, None);
        assert!(!v.success);
    }

    #[test]
    fn feature_regression_fails_suites_only() {
        let mut base = BTreeMap::new();
        base.insert("persistence".to_owned(), true);
        let mut out = outcome(60, 0, Exit::Clean);
        out.features.insert("persistence".to_owned(), false);

        let suite = TestScript::new().evaluate(&out, Workload::TestSuite, Some(&base));
        assert!(!suite.success);

        let mut bench_out = outcome(200, 0, Exit::Clean);
        bench_out.features.insert("persistence".to_owned(), false);
        let bench = TestScript::new().evaluate(&bench_out, Workload::Benchmark, Some(&base));
        assert!(bench.success, "benchmarks only check the hot path");
    }

    #[test]
    fn feature_broken_in_baseline_does_not_fail() {
        let mut base = BTreeMap::new();
        base.insert("exotic".to_owned(), false);
        let mut out = outcome(60, 0, Exit::Clean);
        out.features.insert("exotic".to_owned(), false);
        let v = TestScript::new().evaluate(&out, Workload::TestSuite, Some(&base));
        assert!(v.success);
    }
}
