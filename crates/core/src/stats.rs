//! Small statistics helpers for comparing replicated measurements.

/// Mean of a sample.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation of a sample.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Relative delta of `new` vs `base` (`0.15` = +15%). Zero baselines give
/// zero (no meaningful comparison).
pub fn rel_delta(base: f64, new: f64) -> f64 {
    if base == 0.0 {
        0.0
    } else {
        new / base - 1.0
    }
}

/// Whether `new` deviates from the `base` sample "statistically
/// significantly" in the paper's working sense: outside both the
/// baseline's ±2σ band and a relative `epsilon` margin (Table 2 uses a 3%
/// error margin).
pub fn significant_deviation(base: &[f64], new: f64, epsilon: f64) -> bool {
    let m = mean(base);
    let sd = stddev(base);
    let outside_band = (new - m).abs() > 2.0 * sd;
    let outside_margin = rel_delta(m, new).abs() > epsilon;
    outside_band && outside_margin
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(stddev(&[5.0]), 0.0);
        let sd = stddev(&[2.0, 4.0]);
        assert!((sd - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rel_delta_handles_zero_base() {
        assert_eq!(rel_delta(0.0, 5.0), 0.0);
        assert!((rel_delta(100.0, 115.0) - 0.15).abs() < 1e-9);
        assert!((rel_delta(100.0, 62.0) + 0.38).abs() < 1e-9);
    }

    #[test]
    fn deviation_requires_both_band_and_margin() {
        // Identical replicas (σ=0): any relative change over epsilon flags.
        assert!(significant_deviation(&[100.0, 100.0], 110.0, 0.03));
        assert!(!significant_deviation(&[100.0, 100.0], 101.0, 0.03));
        // Noisy baseline: within 2σ is not significant.
        assert!(!significant_deviation(&[90.0, 110.0], 105.0, 0.03));
    }
}
