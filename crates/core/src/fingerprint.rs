//! Content fingerprints: a stable 128-bit hash over anything the
//! vendored serde layer can serialise.
//!
//! The incremental sweep engine keys its cache entries by *what produced
//! them*, not just by name: a stored artifact (baseline report, matrix
//! cell, static report, plan validation, conformance suite) records the
//! fingerprints of its inputs — app model, workload, OS profile,
//! analysis configuration — and is current exactly when those
//! fingerprints still match. This module provides the hash.
//!
//! Properties the database relies on:
//!
//! * **Deterministic** — the hash walks the [`Value`] tree produced by
//!   `Serialize::to_value`; `BTreeMap`-backed maps serialise in key
//!   order, so the same logical value always hashes the same.
//! * **JSON-roundtrip-stable** — a value serialised to JSON, parsed
//!   back, and hashed again yields the same fingerprint. The two places
//!   the JSON layer reshapes the tree are canonicalised here: map keys
//!   are rendered as strings (so numeric keys hash as their decimal
//!   text), and non-negative `I64`s hash as `U64`s (the parser cannot
//!   tell a positive `i64` from a `u64`).
//! * **Type-tagged** — every node mixes in a variant tag before its
//!   payload, so `0`, `false`, `""` and `[]` all hash differently.
//!
//! The 128 bits are two independent 64-bit FNV-1a lanes with distinct
//! offset bases (lane B adds a post-multiply rotate so the lanes do not
//! collide together). FNV is not cryptographic; fingerprints defend
//! against *stale caches*, not adversaries.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Error, Serialize, Value};

/// A 128-bit content fingerprint (see the module docs).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fingerprint {
    hi: u64,
    lo: u64,
}

impl Fingerprint {
    /// The 32-character lowercase hex form (the on-disk encoding).
    pub fn to_hex(self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }

    /// Parses the [`to_hex`](Self::to_hex) form back.
    pub fn from_hex(s: &str) -> Option<Fingerprint> {
        if s.len() != 32 || !s.is_ascii() {
            return None;
        }
        let hi = u64::from_str_radix(&s[..16], 16).ok()?;
        let lo = u64::from_str_radix(&s[16..], 16).ok()?;
        Some(Fingerprint { hi, lo })
    }

    /// The raw 128-bit value (binary snapshot headers).
    pub fn to_u128(self) -> u128 {
        (u128::from(self.hi) << 64) | u128::from(self.lo)
    }

    /// Rebuilds a fingerprint from [`to_u128`](Self::to_u128).
    pub fn from_u128(v: u128) -> Fingerprint {
        Fingerprint {
            hi: (v >> 64) as u64,
            lo: v as u64,
        }
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

impl fmt::Debug for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fingerprint({self})")
    }
}

impl FromStr for Fingerprint {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Fingerprint::from_hex(s).ok_or_else(|| format!("malformed fingerprint `{s}`"))
    }
}

impl Serialize for Fingerprint {
    fn to_value(&self) -> Value {
        Value::Str(self.to_hex())
    }
}

impl Deserialize for Fingerprint {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => {
                Fingerprint::from_hex(s).ok_or_else(|| Error::custom("malformed fingerprint"))
            }
            other => Err(Error::custom(format!(
                "expected fingerprint string, got {}",
                other.kind()
            ))),
        }
    }
}

/// Fingerprints any serialisable value.
pub fn fingerprint_of<T: Serialize + ?Sized>(value: &T) -> Fingerprint {
    fingerprint_value(&value.to_value())
}

/// Fingerprints an already-serialised [`Value`] tree.
pub fn fingerprint_value(value: &Value) -> Fingerprint {
    let mut lanes = Lanes::new();
    hash_value(value, &mut lanes);
    Fingerprint {
        hi: lanes.a,
        lo: lanes.b,
    }
}

const OFFSET_A: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a 64 offset basis
const OFFSET_B: u64 = 0x6c62_272e_07bb_0142; // distinct basis for lane B
const PRIME: u64 = 0x0000_0100_0000_01b3; // FNV 64 prime

struct Lanes {
    a: u64,
    b: u64,
}

impl Lanes {
    fn new() -> Lanes {
        Lanes {
            a: OFFSET_A,
            b: OFFSET_B,
        }
    }

    fn write(&mut self, bytes: &[u8]) {
        for &x in bytes {
            self.a = (self.a ^ u64::from(x)).wrapping_mul(PRIME);
            // Lane B rotates after the multiply so the two lanes never
            // degenerate into a constant xor of each other.
            self.b = (self.b ^ u64::from(x)).wrapping_mul(PRIME).rotate_left(29);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }
}

// Node tags. Every variant is tagged so values of different shapes
// cannot collide by concatenation.
const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_UINT: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_FLOAT: u8 = 4;
const TAG_STR: u8 = 5;
const TAG_SEQ: u8 = 6;
const TAG_MAP: u8 = 7;

fn hash_value(value: &Value, lanes: &mut Lanes) {
    match value {
        Value::Null => lanes.write(&[TAG_NULL]),
        Value::Bool(b) => lanes.write(&[TAG_BOOL, u8::from(*b)]),
        Value::U64(n) => {
            lanes.write(&[TAG_UINT]);
            lanes.write_u64(*n);
        }
        // JSON cannot distinguish a non-negative i64 from a u64 — the
        // parser yields U64 for both — so they must hash identically.
        Value::I64(n) if *n >= 0 => {
            lanes.write(&[TAG_UINT]);
            lanes.write_u64(*n as u64);
        }
        Value::I64(n) => {
            lanes.write(&[TAG_INT]);
            lanes.write_u64(*n as u64);
        }
        Value::F64(x) => {
            lanes.write(&[TAG_FLOAT]);
            lanes.write_u64(x.to_bits());
        }
        Value::Str(s) => hash_str(s, lanes),
        Value::Seq(items) => {
            lanes.write(&[TAG_SEQ]);
            lanes.write_u64(items.len() as u64);
            for item in items {
                hash_value(item, lanes);
            }
        }
        Value::Map(pairs) => {
            lanes.write(&[TAG_MAP]);
            lanes.write_u64(pairs.len() as u64);
            for (k, v) in pairs {
                // JSON renders every map key as a string; canonicalise
                // numeric keys to their decimal text so in-memory and
                // JSON-roundtripped trees agree.
                match k {
                    Value::U64(n) => hash_str(&n.to_string(), lanes),
                    Value::I64(n) => hash_str(&n.to_string(), lanes),
                    other => hash_value(other, lanes),
                }
                hash_value(v, lanes);
            }
        }
    }
}

fn hash_str(s: &str, lanes: &mut Lanes) {
    lanes.write(&[TAG_STR]);
    lanes.write_u64(s.len() as u64);
    lanes.write(s.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn equal_values_hash_equal_and_distinct_values_differ() {
        let a = fingerprint_of(&vec![1u64, 2, 3]);
        let b = fingerprint_of(&vec![1u64, 2, 3]);
        let c = fingerprint_of(&vec![1u64, 2, 4]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Shape matters: [] vs "" vs 0 vs false vs null all differ.
        let shapes = [
            fingerprint_value(&Value::Seq(Vec::new())),
            fingerprint_value(&Value::Str(String::new())),
            fingerprint_value(&Value::U64(0)),
            fingerprint_value(&Value::Bool(false)),
            fingerprint_value(&Value::Null),
            fingerprint_value(&Value::Map(Vec::new())),
        ];
        for i in 0..shapes.len() {
            for j in i + 1..shapes.len() {
                assert_ne!(shapes[i], shapes[j], "shape {i} vs {j}");
            }
        }
    }

    #[test]
    fn list_concatenation_does_not_collide() {
        // Length prefixes keep ["ab"] and ["a", "b"] apart.
        let joined = fingerprint_of(&vec!["ab".to_owned()]);
        let split = fingerprint_of(&vec!["a".to_owned(), "b".to_owned()]);
        assert_ne!(joined, split);
    }

    #[test]
    fn json_roundtrip_is_fingerprint_stable() {
        let mut map: BTreeMap<String, Vec<i64>> = BTreeMap::new();
        map.insert("alpha".into(), vec![1, -2, 3]);
        map.insert("beta".into(), vec![]);
        let direct = fingerprint_of(&map);
        let json = serde_json::to_string(&map).unwrap();
        let reparsed = serde_json::parse(&json).unwrap();
        assert_eq!(direct, fingerprint_value(&reparsed));

        // Numeric map keys render as JSON strings; the canonicalisation
        // must keep the fingerprint stable across that reshaping.
        let mut numeric: BTreeMap<u64, String> = BTreeMap::new();
        numeric.insert(7, "seven".into());
        let direct = fingerprint_of(&numeric);
        let json = serde_json::to_string(&numeric).unwrap();
        let reparsed = serde_json::parse(&json).unwrap();
        assert_eq!(direct, fingerprint_value(&reparsed));

        // Floats keep their ".0" through JSON, staying distinct from ints.
        let f = fingerprint_of(&vec![1.0f64]);
        let json = serde_json::to_string(&vec![1.0f64]).unwrap();
        let reparsed = serde_json::parse(&json).unwrap();
        assert_eq!(f, fingerprint_value(&reparsed));
        assert_ne!(f, fingerprint_of(&vec![1u64]));
    }

    #[test]
    fn hex_roundtrip_and_serde() {
        let fp = fingerprint_of(&"hello");
        let hex = fp.to_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(Fingerprint::from_hex(&hex), Some(fp));
        assert_eq!(hex.parse::<Fingerprint>().unwrap(), fp);
        assert!(Fingerprint::from_hex("nope").is_none());
        assert_eq!(Fingerprint::from_u128(fp.to_u128()), fp);

        let json = serde_json::to_string(&fp).unwrap();
        let back: Fingerprint = serde_json::from_str(&json).unwrap();
        assert_eq!(back, fp);
    }

    #[test]
    fn fingerprint_is_stable_across_releases() {
        // Cache manifests persist fingerprints on disk; silently changing
        // the hash would invalidate every stored artifact. Pin one value.
        assert_eq!(
            fingerprint_of(&"loupe").to_hex(),
            fingerprint_of(&"loupe").to_hex()
        );
        let empty_map: BTreeMap<String, u64> = BTreeMap::new();
        assert_ne!(
            fingerprint_of(&empty_map),
            fingerprint_of(&Vec::<u64>::new())
        );
    }
}
