//! Log-anomaly detection — one of the paper's stated future-work items
//! (§6: "identifying standard application-specific logs and error message
//! formats ... to better detect silent faults and effects of stubbing,
//! faking, and partial support techniques").
//!
//! The detector learns the set of console/log lines a baseline run emits
//! and flags *novel* lines in a measured run that look like diagnostics
//! (error/warning markers). This catches stub/fake side effects that the
//! test script's success criteria miss — e.g. an application that passes
//! its benchmark while quietly logging "synchronization anomalies".

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

/// Markers that make a novel log line suspicious. Matched
/// case-insensitively, mirroring how the paper's test scripts grep logs.
const SUSPICIOUS_MARKERS: &[&str] = &[
    "error", "fail", "warn", "fatal", "panic", "corrupt", "anomal", "invalid", "denied", "unable",
    "cannot", "# ",
];

/// A learned baseline log profile.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogProfile {
    lines: BTreeSet<String>,
}

impl LogProfile {
    /// Learns the profile from the baseline run's console output.
    pub fn learn<I, S>(lines: I) -> LogProfile
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        LogProfile {
            lines: lines.into_iter().map(|l| normalize(l.as_ref())).collect(),
        }
    }

    /// Number of distinct normalised baseline lines.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Whether the profile is empty (no baseline output).
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Returns the suspicious *novel* lines of a measured run: lines that
    /// never appeared in the baseline and carry a diagnostic marker.
    pub fn anomalies<'a, I>(&self, lines: I) -> Vec<String>
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut out = Vec::new();
        for line in lines {
            let norm = normalize(line);
            if norm.is_empty() || self.lines.contains(&norm) {
                continue;
            }
            let lower = norm.to_lowercase();
            if SUSPICIOUS_MARKERS.iter().any(|m| lower.contains(m)) {
                out.push(norm);
            }
        }
        out.sort();
        out.dedup();
        out
    }
}

/// Normalises a log line: trims whitespace and masks decimal numbers so
/// that pids/timestamps/counters do not defeat the novelty check.
fn normalize(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut in_digits = false;
    for c in line.trim().chars() {
        if c.is_ascii_digit() {
            if !in_digits {
                out.push('N');
                in_digits = true;
            }
        } else {
            in_digits = false;
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_lines_are_not_anomalies() {
        let profile = LogProfile::learn(["* Ready to accept connections", "worker started"]);
        let anomalies = profile.anomalies(["* Ready to accept connections"]);
        assert!(anomalies.is_empty());
    }

    #[test]
    fn novel_diagnostic_lines_are_flagged() {
        let profile = LogProfile::learn(["* Ready to accept connections"]);
        let anomalies = profile.anomalies([
            "* Ready to accept connections",
            "# Synchronization anomalies detected",
        ]);
        assert_eq!(anomalies.len(), 1);
        assert!(anomalies[0].contains("Synchronization"));
    }

    #[test]
    fn novel_benign_lines_are_ignored() {
        let profile = LogProfile::learn(["hello"]);
        let anomalies = profile.anomalies(["served request in 3ms"]);
        assert!(anomalies.is_empty(), "{anomalies:?}");
    }

    #[test]
    fn numbers_are_masked() {
        let profile = LogProfile::learn(["worker 123 failed to bind"]);
        // Same line with a different pid is NOT novel.
        let anomalies = profile.anomalies(["worker 456 failed to bind"]);
        assert!(anomalies.is_empty(), "{anomalies:?}");
        // A genuinely different failure is.
        let anomalies = profile.anomalies(["worker 9 failed to fsync"]);
        assert_eq!(anomalies.len(), 1);
    }

    #[test]
    fn empty_profile_flags_any_diagnostic() {
        let profile = LogProfile::learn(Vec::<String>::new());
        assert!(profile.is_empty());
        assert_eq!(profile.len(), 0);
        assert_eq!(profile.anomalies(["fatal: boom"]).len(), 1);
    }
}
