//! The analysis engine: discovery → per-feature stub/fake runs →
//! confirmation, replicated and conservatively merged (§3.1).

use std::collections::BTreeMap;

use loupe_apps::model::AppOutcome;
use loupe_apps::{AppModel, Env, Exit, Workload};
use loupe_kernel::{Kernel, LinuxSim, ResourceUsage};
use loupe_syscalls::Sysno;
use serde::{Deserialize, Serialize};

use crate::anomaly::LogProfile;
use crate::interpose::Interposed;
use crate::policy::{Action, Policy};
use crate::report::{AppReport, BaselineStats, FeatureClass, Impact, ImpactRecord};
use crate::script::TestScript;
use crate::stats;
use crate::trace::Trace;

/// How performance deviations affect classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PerfPolicy {
    /// Only test-script failures matter; perf/resource deviations are
    /// recorded as annotations (the paper's default posture: "Loupe
    /// notifies the user that further investigation is needed").
    Lenient,
    /// A statistically significant performance deviation also disqualifies
    /// the stub/fake (§3.2: "Loupe ensures that the performance does not
    /// incur a statistically significant variation").
    Strict,
}

/// Engine configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalysisConfig {
    /// Number of replicated runs per measurement (paper default: 3).
    pub replicas: u32,
    /// Run replicas on worker threads.
    pub parallel: bool,
    /// Relative margin below which metric changes are noise (Table 2: 3%).
    pub perf_epsilon: f64,
    /// Classification policy for perf deviations.
    pub perf_policy: PerfPolicy,
    /// Also classify sub-features of vectored syscalls (§5.4).
    pub explore_sub_features: bool,
    /// Also classify pseudo-file accesses (§3.3).
    pub explore_pseudo_files: bool,
    /// Flag runs whose logs contain novel diagnostic lines the baseline
    /// never produced (§6 future work: silent-fault detection). Off by
    /// default: it is stricter than the paper's measurement protocol.
    pub detect_log_anomalies: bool,
    /// When the confirmation run fails, automatically bisect for the
    /// conflicting features and re-mark them as required (§3.1: "a
    /// process which could be automated in future works" — here it is).
    pub auto_bisect_conflicts: bool,
    /// Pass/fail policy.
    pub test_script: TestScript,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            replicas: 3,
            parallel: false,
            perf_epsilon: 0.03,
            perf_policy: PerfPolicy::Lenient,
            explore_sub_features: true,
            explore_pseudo_files: true,
            detect_log_anomalies: false,
            auto_bisect_conflicts: true,
            test_script: TestScript::default(),
        }
    }
}

impl AnalysisConfig {
    /// A cheap configuration for unit tests and large sweeps: single
    /// replica, syscall granularity only.
    pub fn fast() -> AnalysisConfig {
        AnalysisConfig {
            replicas: 1,
            explore_sub_features: false,
            explore_pseudo_files: false,
            ..AnalysisConfig::default()
        }
    }
}

/// Accounting of the analysis cost, matching §3.3's
/// `(2 + 2·t·s)·⌈r/p⌉` run-count structure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunStats {
    /// Discovery + confirmation runs (the `2`), times replicas.
    pub framing_runs: u64,
    /// Stub/fake runs (`2` per tested feature), times replicas.
    pub feature_runs: u64,
    /// Distinct features tested.
    pub features_tested: u64,
    /// Features whose stub/fake runs were skipped thanks to transferred
    /// knowledge from other applications (§6 future work).
    pub transfer_skips: u64,
    /// Extra runs spent bisecting confirmation-run conflicts.
    pub bisect_runs: u64,
    /// Replicas per measurement.
    pub replicas: u32,
}

impl RunStats {
    /// Total application executions performed.
    pub fn total_runs(&self) -> u64 {
        self.framing_runs + self.feature_runs
    }

    /// Checks the §3.3 structure: `(2 + 2·s) · r` runs.
    pub fn matches_formula(&self) -> bool {
        let r = u64::from(self.replicas);
        self.framing_runs == 2 * r && self.feature_runs == 2 * self.features_tested * r
    }
}

/// Errors the engine can report.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The application does not pass its own workload on the full kernel —
    /// nothing can be measured.
    BaselineFailed {
        /// Application name.
        app: String,
        /// Test-script reasons.
        reasons: Vec<String>,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::BaselineFailed { app, reasons } => {
                write!(f, "baseline run of {app} failed: {}", reasons.join("; "))
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// One run's raw results.
#[derive(Debug, Clone)]
struct RunResult {
    outcome: AppOutcome,
    trace: Trace,
    usage: ResourceUsage,
    console: Vec<String>,
}

/// The Loupe analysis engine.
#[derive(Debug, Clone, Default)]
pub struct Engine {
    cfg: AnalysisConfig,
}

impl Engine {
    /// Creates an engine with the given configuration.
    pub fn new(cfg: AnalysisConfig) -> Engine {
        Engine { cfg }
    }

    /// The active configuration.
    pub fn config(&self) -> &AnalysisConfig {
        &self.cfg
    }

    fn run_once(&self, app: &dyn AppModel, workload: Workload, policy: &Policy) -> RunResult {
        let mut sim = LinuxSim::new();
        app.provision(&mut sim);
        let mut kernel = Interposed::new(sim, policy.clone());
        let exit = {
            let mut env = Env::new(&mut kernel);
            match app.run(&mut env, workload) {
                Ok(()) => env.finish(Exit::Clean),
                Err(e) => env.finish(e),
            }
        };
        let usage = kernel.usage();
        let console = std::mem::take(&mut kernel.host_mut().console);
        let (_, trace) = kernel.into_parts();
        RunResult {
            outcome: exit,
            trace,
            usage,
            console,
        }
    }

    fn run_replicas(
        &self,
        app: &dyn AppModel,
        workload: Workload,
        policy: &Policy,
    ) -> Vec<RunResult> {
        let r = self.cfg.replicas.max(1) as usize;
        if self.cfg.parallel && r > 1 {
            let mut out: Vec<Option<RunResult>> = (0..r).map(|_| None).collect();
            crossbeam::thread::scope(|scope| {
                for slot in out.iter_mut() {
                    scope.spawn(move |_| {
                        *slot = Some(self.run_once(app, workload, policy));
                    });
                }
            })
            .expect("replica thread panicked");
            out.into_iter().map(|r| r.expect("replica ran")).collect()
        } else {
            (0..r)
                .map(|_| self.run_once(app, workload, policy))
                .collect()
        }
    }

    /// Evaluates replicated runs against the baseline; returns
    /// `(all_passed, mean_perf, impact)`.
    fn judge(&self, runs: &[RunResult], workload: Workload, baseline: &Baseline) -> (bool, Impact) {
        let mut all_pass = true;
        let mut perfs = Vec::new();
        for run in runs {
            let verdict =
                self.cfg
                    .test_script
                    .evaluate(&run.outcome, workload, Some(&baseline.features));
            all_pass &= verdict.success;
            perfs.push(verdict.perf);
        }
        let perf = stats::mean(&perfs);
        let rss = stats::mean(
            &runs
                .iter()
                .map(|r| r.usage.peak_rss as f64)
                .collect::<Vec<_>>(),
        );
        let fds = stats::mean(
            &runs
                .iter()
                .map(|r| f64::from(r.usage.peak_fds))
                .collect::<Vec<_>>(),
        );
        let impact = Impact {
            success: all_pass,
            perf_delta: stats::rel_delta(baseline.perf_mean, perf),
            rss_delta: stats::rel_delta(baseline.rss_mean, rss),
            fd_delta: stats::rel_delta(baseline.fd_mean, fds),
        };
        let mut ok = all_pass;
        if ok && self.cfg.perf_policy == PerfPolicy::Strict {
            ok = !stats::significant_deviation(&baseline.perfs, perf, self.cfg.perf_epsilon);
        }
        if ok && self.cfg.detect_log_anomalies {
            // §6 future work: novel diagnostic log lines are silent-fault
            // evidence even when the test script passes.
            ok = runs.iter().all(|run| {
                baseline
                    .log_profile
                    .anomalies(run.console.iter().map(String::as_str))
                    .is_empty()
            });
        }
        (ok, impact)
    }

    /// Runs the full Loupe analysis for one application and workload.
    ///
    /// # Errors
    ///
    /// [`EngineError::BaselineFailed`] when the application cannot pass its
    /// own workload on the unmodified kernel.
    pub fn analyze(
        &self,
        app: &dyn AppModel,
        workload: Workload,
    ) -> Result<AppReport, EngineError> {
        self.analyze_with_hints(app, workload, &BTreeMap::new())
    }

    /// Like [`Engine::analyze`], but skips the stub/fake runs of syscalls
    /// whose classification is already known from other applications —
    /// the paper's "transferring knowledge across applications" future
    /// work (§6). Build `hints` with [`transfer_hints`]. The final
    /// confirmation run still validates the transferred conclusions; a
    /// wrong hint surfaces as `confirmed == false`.
    ///
    /// # Errors
    ///
    /// [`EngineError::BaselineFailed`] as for [`Engine::analyze`].
    pub fn analyze_with_hints(
        &self,
        app: &dyn AppModel,
        workload: Workload,
        hints: &BTreeMap<Sysno, FeatureClass>,
    ) -> Result<AppReport, EngineError> {
        // ---- 1. discovery (baseline) ------------------------------------
        let base_runs = self.run_replicas(app, workload, &Policy::allow_all());
        let baseline = Baseline::from_runs(&base_runs, workload, &self.cfg.test_script);
        let first = &base_runs[0];
        let base_verdict =
            self.cfg
                .test_script
                .evaluate(&first.outcome, workload, Some(&baseline.features));
        if !base_verdict.success {
            return Err(EngineError::BaselineFailed {
                app: app.name().to_owned(),
                reasons: base_verdict.reasons,
            });
        }

        // Conservative union of traced features across replicas.
        let mut traced: BTreeMap<Sysno, u64> = BTreeMap::new();
        for run in &base_runs {
            for (s, n) in &run.trace.syscalls {
                *traced.entry(*s).or_insert(0) += *n;
            }
        }

        let mut stats_acc = RunStats {
            framing_runs: u64::from(self.cfg.replicas),
            feature_runs: 0,
            features_tested: 0,
            transfer_skips: 0,
            bisect_runs: 0,
            replicas: self.cfg.replicas,
        };

        // ---- 2. per-feature stub/fake runs --------------------------------
        let mut classes: BTreeMap<Sysno, FeatureClass> = BTreeMap::new();
        let mut impacts: BTreeMap<Sysno, ImpactRecord> = BTreeMap::new();
        for &sysno in traced.keys() {
            if let Some(&hint) = hints.get(&sysno) {
                classes.insert(sysno, hint);
                stats_acc.transfer_skips += 1;
                continue;
            }
            let stub_runs = self.run_replicas(
                app,
                workload,
                &Policy::allow_all().with_syscall(sysno, Action::Stub),
            );
            let (stub_ok, stub_impact) = self.judge(&stub_runs, workload, &baseline);
            let fake_runs = self.run_replicas(
                app,
                workload,
                &Policy::allow_all().with_syscall(sysno, Action::Fake),
            );
            let (fake_ok, fake_impact) = self.judge(&fake_runs, workload, &baseline);
            classes.insert(sysno, FeatureClass { stub_ok, fake_ok });
            impacts.insert(
                sysno,
                ImpactRecord {
                    stub: Some(stub_impact),
                    fake: Some(fake_impact),
                },
            );
            stats_acc.features_tested += 1;
            stats_acc.feature_runs += 2 * u64::from(self.cfg.replicas);
        }

        // ---- 2b. sub-features (§5.4) ----------------------------------------
        let mut sub_features = Vec::new();
        if self.cfg.explore_sub_features {
            let keys: Vec<_> = first.trace.sub_features.iter().map(|(k, _)| *k).collect();
            for key in keys {
                let stub_runs = self.run_replicas(
                    app,
                    workload,
                    &Policy::allow_all().with_sub_feature(key, Action::Stub),
                );
                let (stub_ok, _) = self.judge(&stub_runs, workload, &baseline);
                let fake_runs = self.run_replicas(
                    app,
                    workload,
                    &Policy::allow_all().with_sub_feature(key, Action::Fake),
                );
                let (fake_ok, _) = self.judge(&fake_runs, workload, &baseline);
                sub_features.push((key, FeatureClass { stub_ok, fake_ok }));
                stats_acc.features_tested += 1;
                stats_acc.feature_runs += 2 * u64::from(self.cfg.replicas);
            }
        }

        // ---- 2c. pseudo-files (§3.3) ----------------------------------------
        let mut pseudo_files = BTreeMap::new();
        if self.cfg.explore_pseudo_files {
            let paths: Vec<String> = first.trace.pseudo_files.keys().cloned().collect();
            for path in paths {
                let stub_runs = self.run_replicas(
                    app,
                    workload,
                    &Policy::allow_all().with_pseudo_file(path.clone(), Action::Stub),
                );
                let (stub_ok, _) = self.judge(&stub_runs, workload, &baseline);
                let fake_runs = self.run_replicas(
                    app,
                    workload,
                    &Policy::allow_all().with_pseudo_file(path.clone(), Action::Fake),
                );
                let (fake_ok, _) = self.judge(&fake_runs, workload, &baseline);
                pseudo_files.insert(path, FeatureClass { stub_ok, fake_ok });
                stats_acc.features_tested += 1;
                stats_acc.feature_runs += 2 * u64::from(self.cfg.replicas);
            }
        }

        // ---- 3. confirmation run ---------------------------------------------
        let mut combined = Policy::allow_all();
        for (&sysno, class) in &classes {
            if class.stub_ok {
                combined.set_syscall(sysno, Action::Stub);
            } else if class.fake_ok {
                combined.set_syscall(sysno, Action::Fake);
            }
        }
        let confirm_runs = self.run_replicas(app, workload, &combined);
        let (mut confirmed, _) = self.judge(&confirm_runs, workload, &baseline);
        stats_acc.framing_runs += u64::from(self.cfg.replicas);

        // ---- 3b. conflict bisection -----------------------------------------
        // Individually avoidable features can interact (e.g. webfsd's
        // writev header and sendfile body are each fakeable, but not
        // together). When the combined run fails, drop one interposed
        // feature at a time until it passes, and re-mark the culprit as
        // required.
        let mut conflicts: Vec<Sysno> = Vec::new();
        if !confirmed && self.cfg.auto_bisect_conflicts {
            'rounds: for _ in 0..8 {
                let candidates: Vec<Sysno> = classes
                    .iter()
                    .filter(|(s, c)| c.is_avoidable() && !conflicts.contains(s))
                    .map(|(s, _)| *s)
                    .collect();
                for s in candidates {
                    let mut relaxed = combined.clone();
                    relaxed.set_syscall(s, Action::Allow);
                    let runs = self.run_replicas(app, workload, &relaxed);
                    stats_acc.bisect_runs += u64::from(self.cfg.replicas);
                    let (ok, _) = self.judge(&runs, workload, &baseline);
                    if ok {
                        // The relaxed combined run just passed, so it also
                        // serves as the new confirmation run.
                        conflicts.push(s);
                        classes.insert(
                            s,
                            FeatureClass {
                                stub_ok: false,
                                fake_ok: false,
                            },
                        );
                        confirmed = true;
                        break 'rounds;
                    }
                }
                // No single feature fixes it: give up and report.
                break;
            }
        }

        let spec = app.spec();
        Ok(AppReport {
            app: spec.name,
            version: spec.version,
            workload,
            traced,
            classes,
            impacts,
            sub_features,
            pseudo_files,
            conflicts,
            confirmed,
            baseline: BaselineStats {
                throughput: baseline.perf_mean,
                peak_rss: baseline.rss_mean as u64,
                peak_fds: baseline.fd_mean as u32,
                run_time: first.outcome.elapsed,
            },
            stats: stats_acc,
        })
    }
}

/// Baseline summary used by judgements.
#[derive(Debug, Clone)]
struct Baseline {
    perfs: Vec<f64>,
    perf_mean: f64,
    rss_mean: f64,
    fd_mean: f64,
    features: BTreeMap<String, bool>,
    log_profile: LogProfile,
}

impl Baseline {
    fn from_runs(runs: &[RunResult], _workload: Workload, _script: &TestScript) -> Baseline {
        let perfs: Vec<f64> = runs.iter().map(|r| r.outcome.throughput()).collect();
        Baseline {
            perf_mean: stats::mean(&perfs),
            rss_mean: stats::mean(
                &runs
                    .iter()
                    .map(|r| r.usage.peak_rss as f64)
                    .collect::<Vec<_>>(),
            ),
            fd_mean: stats::mean(
                &runs
                    .iter()
                    .map(|r| f64::from(r.usage.peak_fds))
                    .collect::<Vec<_>>(),
            ),
            features: runs[0].outcome.features.clone(),
            log_profile: LogProfile::learn(runs.iter().flat_map(|r| r.console.iter())),
            perfs,
        }
    }
}

/// Builds transfer hints from prior measurements: a syscall is hinted only
/// when at least `min_agreement` reports traced it and *all* of them agree
/// on its classification (conservative, like the replica merge).
pub fn transfer_hints(
    reports: &[crate::report::AppReport],
    min_agreement: usize,
) -> BTreeMap<Sysno, FeatureClass> {
    let mut votes: BTreeMap<Sysno, Vec<FeatureClass>> = BTreeMap::new();
    for report in reports {
        for (&sysno, &class) in &report.classes {
            votes.entry(sysno).or_default().push(class);
        }
    }
    votes
        .into_iter()
        .filter(|(_, v)| v.len() >= min_agreement && v.windows(2).all(|w| w[0] == w[1]))
        .map(|(s, v)| (s, v[0]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use loupe_apps::registry;

    fn engine() -> Engine {
        Engine::new(AnalysisConfig::fast())
    }

    #[test]
    fn weborf_health_check_analysis() {
        let app = registry::find("weborf").unwrap();
        let report = engine()
            .analyze(app.as_ref(), Workload::HealthCheck)
            .unwrap();
        // Fundamental syscalls are required.
        for s in [Sysno::socket, Sysno::bind, Sysno::listen, Sysno::mmap] {
            assert!(report.required().contains(s), "{s} should be required");
        }
        // And a healthy fraction of the traced set is avoidable.
        assert!(!report.avoidable().is_empty());
        assert!(report.required().len() < report.traced().len());
    }

    #[test]
    fn redis_bench_required_set_is_much_smaller_than_traced() {
        let app = registry::find("redis").unwrap();
        let report = engine().analyze(app.as_ref(), Workload::Benchmark).unwrap();
        let traced = report.traced().len();
        let required = report.required().len();
        // §1: "more than half of the system calls invoked by Redis ...
        // can be stubbed or faked".
        assert!(
            required * 2 <= traced + 2,
            "required {required} vs traced {traced}"
        );
        // Fig. 6a: the rlimit getter is avoidable (safe-default fallback).
        assert!(report.avoidable().contains(Sysno::prlimit64));
        // futex is required (faking corrupts, Table 2).
        assert!(report.required().contains(Sysno::futex));
    }

    #[test]
    fn nginx_write_is_stubbable_but_writev_is_not() {
        let app = registry::find("nginx").unwrap();
        let report = engine().analyze(app.as_ref(), Workload::Benchmark).unwrap();
        let write = report.classes[&Sysno::write];
        assert!(write.stub_ok, "access-log write must be stubbable");
        let writev = report.classes[&Sysno::writev];
        assert!(writev.is_required(), "payload writev must be required");
        // prctl: unstubbable (Fig. 6b) but fakeable.
        let prctl = report.classes[&Sysno::prctl];
        assert!(!prctl.stub_ok && prctl.fake_ok, "{prctl:?}");
    }

    #[test]
    fn baseline_failure_is_reported() {
        // The old 32-bit build crashes without its libc file: provision a
        // broken app by wrapping a model that always crashes.
        struct Broken;
        impl AppModel for Broken {
            fn name(&self) -> &str {
                "broken"
            }
            fn spec(&self) -> loupe_apps::AppSpec {
                loupe_apps::AppSpec {
                    name: "broken".into(),
                    version: "0".into(),
                    year: 2024,
                    port: None,
                    kind: loupe_apps::AppKind::Utility,
                    libc: loupe_apps::libc::LibcFlavor::GlibcDynamic,
                }
            }
            fn run(&self, _env: &mut Env<'_>, _w: Workload) -> Result<(), Exit> {
                Err(Exit::Crash("always".into()))
            }
            fn code(&self) -> loupe_apps::AppCode {
                loupe_apps::AppCode::new()
            }
        }
        let err = engine()
            .analyze(&Broken, Workload::HealthCheck)
            .unwrap_err();
        assert!(matches!(err, EngineError::BaselineFailed { .. }));
        assert!(err.to_string().contains("broken"));
    }

    #[test]
    fn confirmation_run_passes_for_simple_apps() {
        let app = registry::find("hello-musl-static").unwrap();
        let report = engine()
            .analyze(app.as_ref(), Workload::HealthCheck)
            .unwrap();
        assert!(report.confirmed, "combined stub/fake policy must hold");
    }

    #[test]
    fn parallel_replicas_agree_with_serial() {
        let app = registry::find("weborf").unwrap();
        let serial = Engine::new(AnalysisConfig {
            replicas: 2,
            parallel: false,
            ..AnalysisConfig::fast()
        })
        .analyze(app.as_ref(), Workload::HealthCheck)
        .unwrap();
        let parallel = Engine::new(AnalysisConfig {
            replicas: 2,
            parallel: true,
            ..AnalysisConfig::fast()
        })
        .analyze(app.as_ref(), Workload::HealthCheck)
        .unwrap();
        assert_eq!(serial.classes, parallel.classes);
    }
}
