//! The analysis engine: discovery → per-feature stub/fake probes on a
//! deterministic scheduler → confirmation, replicated and conservatively
//! merged (§3.1).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use loupe_apps::model::AppOutcome;
use loupe_apps::{AppModel, Env, Exit, Workload};
use loupe_kernel::{Kernel, ResourceUsage};
use loupe_syscalls::{SubFeatureKey, Sysno};
use serde::{Deserialize, Serialize};

use crate::anomaly::LogProfile;
use crate::exec::ExecEnv;
use crate::interpose::Interposed;
use crate::policy::{Action, Policy};
use crate::report::{AppReport, BaselineStats, FeatureClass, Impact, ImpactRecord};
use crate::script::TestScript;
use crate::stats;
use crate::trace::Trace;

/// How performance deviations affect classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PerfPolicy {
    /// Only test-script failures matter; perf/resource deviations are
    /// recorded as annotations (the paper's default posture: "Loupe
    /// notifies the user that further investigation is needed").
    Lenient,
    /// A statistically significant performance deviation also disqualifies
    /// the stub/fake (§3.2: "Loupe ensures that the performance does not
    /// incur a statistically significant variation").
    Strict,
}

/// Engine configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalysisConfig {
    /// Number of replicated runs per measurement (paper default: 3).
    pub replicas: u32,
    /// Run replicas on worker threads.
    pub parallel: bool,
    /// Probe-scheduler workers for the per-feature stub/fake runs — the
    /// dominant cost term of §3.3's run-count formula. `1` (the default)
    /// probes serially; `0` picks `min(available_parallelism, 16)`.
    /// Results are merged in feature order, so every worker count
    /// produces byte-identical reports.
    #[serde(default)]
    pub jobs: usize,
    /// Relative margin below which metric changes are noise (Table 2: 3%).
    pub perf_epsilon: f64,
    /// Classification policy for perf deviations.
    pub perf_policy: PerfPolicy,
    /// Also classify sub-features of vectored syscalls (§5.4).
    pub explore_sub_features: bool,
    /// Also classify pseudo-file accesses (§3.3).
    pub explore_pseudo_files: bool,
    /// Flag runs whose logs contain novel diagnostic lines the baseline
    /// never produced (§6 future work: silent-fault detection). Off by
    /// default: it is stricter than the paper's measurement protocol.
    pub detect_log_anomalies: bool,
    /// When the confirmation run fails, automatically bisect for the
    /// conflicting features and re-mark them as required (§3.1: "a
    /// process which could be automated in future works" — here it is).
    pub auto_bisect_conflicts: bool,
    /// The kernel configuration hosting every run: the full simulated
    /// Linux by default, or a restricted profile emulating an OS
    /// mid-way through a support plan.
    #[serde(default)]
    pub exec_env: ExecEnv,
    /// Pass/fail policy.
    pub test_script: TestScript,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            replicas: 3,
            parallel: false,
            jobs: 1,
            perf_epsilon: 0.03,
            perf_policy: PerfPolicy::Lenient,
            explore_sub_features: true,
            explore_pseudo_files: true,
            detect_log_anomalies: false,
            auto_bisect_conflicts: true,
            exec_env: ExecEnv::Linux,
            test_script: TestScript::default(),
        }
    }
}

impl AnalysisConfig {
    /// A cheap configuration for unit tests and large sweeps: single
    /// replica, no pseudo-file exploration. Sub-feature probing stays
    /// on — partial-fidelity OS profiles (per-flag holes) need every
    /// measurement path to carry per-flag classifications, or the
    /// conformance suites could not reproduce flag-granular matrix
    /// verdicts.
    pub fn fast() -> AnalysisConfig {
        AnalysisConfig {
            replicas: 1,
            explore_pseudo_files: false,
            ..AnalysisConfig::default()
        }
    }
}

/// Accounting of the analysis cost, matching §3.3's
/// `(2 + 2·t·s)·⌈r/p⌉` run-count structure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunStats {
    /// Discovery + confirmation runs (the `2`), times replicas.
    pub framing_runs: u64,
    /// Stub/fake runs (`2` per tested feature), times replicas.
    pub feature_runs: u64,
    /// Distinct features tested.
    pub features_tested: u64,
    /// Features whose stub/fake runs were skipped thanks to transferred
    /// knowledge from other applications (§6 future work).
    pub transfer_skips: u64,
    /// Application executions *not* performed thanks to those skips
    /// (`2 × replicas` per transferred feature).
    #[serde(default)]
    pub saved_runs: u64,
    /// Extra runs spent bisecting confirmation-run conflicts.
    pub bisect_runs: u64,
    /// Replicas per measurement.
    pub replicas: u32,
}

impl RunStats {
    /// Total application executions performed.
    pub fn total_runs(&self) -> u64 {
        self.framing_runs + self.feature_runs + self.bisect_runs
    }

    /// Checks the §3.3 structure: `(2 + 2·s) · r` runs.
    pub fn matches_formula(&self) -> bool {
        let r = u64::from(self.replicas);
        self.framing_runs == 2 * r && self.feature_runs == 2 * self.features_tested * r
    }

    /// Accumulates another analysis' accounting (fleet-sweep rollups).
    pub fn absorb(&mut self, other: &RunStats) {
        self.framing_runs += other.framing_runs;
        self.feature_runs += other.feature_runs;
        self.features_tested += other.features_tested;
        self.transfer_skips += other.transfer_skips;
        self.saved_runs += other.saved_runs;
        self.bisect_runs += other.bisect_runs;
        self.replicas = self.replicas.max(other.replicas);
    }
}

/// Errors the engine can report.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The application does not pass its own workload on the full kernel —
    /// nothing can be measured.
    BaselineFailed {
        /// Application name.
        app: String,
        /// Test-script reasons.
        reasons: Vec<String>,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::BaselineFailed { app, reasons } => {
                write!(f, "baseline run of {app} failed: {}", reasons.join("; "))
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// One run's raw results.
#[derive(Debug, Clone)]
struct RunResult {
    outcome: AppOutcome,
    trace: Trace,
    usage: ResourceUsage,
    console: Vec<String>,
    /// Boundary counters of a restricted execution environment (`None`
    /// on Linux) — surfaced into [`AppReport`] from the discovery runs.
    observations: Option<loupe_kernel::KernelObservations>,
}

/// One feature the probe scheduler measures: a syscall, a sub-feature of
/// a vectored syscall (§5.4), or a pseudo-file path (§3.3).
#[derive(Debug, Clone, PartialEq, Eq)]
enum ProbeTarget {
    Syscall(Sysno),
    SubFeature(SubFeatureKey),
    PseudoFile(String),
}

impl ProbeTarget {
    /// The single-feature interposition policy for this target.
    fn policy(&self, mode: Action) -> Policy {
        match self {
            ProbeTarget::Syscall(s) => Policy::allow_all().with_syscall(*s, mode),
            ProbeTarget::SubFeature(k) => Policy::allow_all().with_sub_feature(*k, mode),
            ProbeTarget::PseudoFile(p) => Policy::allow_all().with_pseudo_file(p.clone(), mode),
        }
    }
}

/// One scheduled probe: a `(target, stub-or-fake)` measurement. Jobs are
/// enumerated up front in feature order, so the result vector — indexed
/// by job — yields the same merge regardless of execution schedule.
#[derive(Debug, Clone)]
struct ProbeJob {
    target: usize,
    mode: Action,
    policy: Policy,
}

/// Enumerates the probe jobs for `targets`: one stub job then one fake
/// job per target, in target order — the pairing both merge loops rely
/// on (`outcomes[2i]` is target `i`'s stub, `outcomes[2i + 1]` its fake).
fn probe_jobs(targets: &[ProbeTarget]) -> Vec<ProbeJob> {
    targets
        .iter()
        .enumerate()
        .flat_map(|(i, t)| {
            [Action::Stub, Action::Fake]
                .into_iter()
                .map(move |mode| ProbeJob {
                    target: i,
                    mode,
                    policy: t.policy(mode),
                })
        })
        .collect()
}

/// Outcome of one probe job: final verdict plus impact annotations.
#[derive(Debug, Clone, Copy)]
struct ProbeOutcome {
    ok: bool,
    impact: Impact,
}

/// The Loupe analysis engine.
#[derive(Debug, Clone, Default)]
pub struct Engine {
    cfg: AnalysisConfig,
}

impl Engine {
    /// Creates an engine with the given configuration.
    pub fn new(cfg: AnalysisConfig) -> Engine {
        Engine { cfg }
    }

    /// The active configuration.
    pub fn config(&self) -> &AnalysisConfig {
        &self.cfg
    }

    fn run_once(&self, app: &dyn AppModel, workload: Workload, policy: &Policy) -> RunResult {
        // The execution environment decides what kernel hosts the run —
        // full Linux for measurement, a restricted profile for plan
        // validation; the interposition layer composes over either.
        let host = self.cfg.exec_env.build(app);
        let mut kernel = Interposed::new(host, policy.clone());
        let exit = {
            let mut env = Env::new(&mut kernel);
            match app.run(&mut env, workload) {
                Ok(()) => env.finish(Exit::Clean),
                Err(e) => env.finish(e),
            }
        };
        let usage = kernel.usage();
        let console = std::mem::take(&mut kernel.host_mut().console);
        let (host, trace) = kernel.into_parts();
        RunResult {
            outcome: exit,
            trace,
            usage,
            console,
            observations: host.observations(),
        }
    }

    fn run_replicas(
        &self,
        app: &dyn AppModel,
        workload: Workload,
        policy: &Policy,
    ) -> Vec<RunResult> {
        let r = self.cfg.replicas.max(1) as usize;
        if self.cfg.parallel && r > 1 {
            let mut out: Vec<Option<RunResult>> = (0..r).map(|_| None).collect();
            crossbeam::thread::scope(|scope| {
                for slot in out.iter_mut() {
                    scope.spawn(move |_| {
                        *slot = Some(self.run_once(app, workload, policy));
                    });
                }
            })
            .expect("replica thread panicked");
            out.into_iter().map(|r| r.expect("replica ran")).collect()
        } else {
            (0..r)
                .map(|_| self.run_once(app, workload, policy))
                .collect()
        }
    }

    /// Evaluates replicated runs against the baseline; returns
    /// `(all_passed, mean_perf, impact)`.
    fn judge(&self, runs: &[RunResult], workload: Workload, baseline: &Baseline) -> (bool, Impact) {
        let mut all_pass = true;
        let mut perfs = Vec::new();
        for run in runs {
            let verdict =
                self.cfg
                    .test_script
                    .evaluate(&run.outcome, workload, Some(&baseline.features));
            all_pass &= verdict.success;
            perfs.push(verdict.perf);
        }
        let perf = stats::mean(&perfs);
        let rss = stats::mean(
            &runs
                .iter()
                .map(|r| r.usage.peak_rss as f64)
                .collect::<Vec<_>>(),
        );
        let fds = stats::mean(
            &runs
                .iter()
                .map(|r| f64::from(r.usage.peak_fds))
                .collect::<Vec<_>>(),
        );
        let mut ok = all_pass;
        if ok && self.cfg.perf_policy == PerfPolicy::Strict {
            ok = !stats::significant_deviation(&baseline.perfs, perf, self.cfg.perf_epsilon);
        }
        if ok && self.cfg.detect_log_anomalies {
            // §6 future work: novel diagnostic log lines are silent-fault
            // evidence even when the test script passes.
            ok = runs.iter().all(|run| {
                baseline
                    .log_profile
                    .anomalies(run.console.iter().map(String::as_str))
                    .is_empty()
            });
        }
        // The stored impact carries the *final* verdict: a strict-policy
        // perf deviation or a log anomaly disqualifies the run even when
        // the raw test script passed (kept separately in `tests_passed`).
        let impact = Impact {
            success: ok,
            tests_passed: Some(all_pass),
            perf_delta: stats::rel_delta(baseline.perf_mean, perf),
            rss_delta: stats::rel_delta(baseline.rss_mean, rss),
            fd_delta: stats::rel_delta(baseline.fd_mean, fds),
        };
        (ok, impact)
    }

    /// Executes probe jobs on a bounded worker pool (`cfg.jobs` threads;
    /// `0` = auto, `1` = serial). Each job is an independent replicated
    /// measurement against the shared baseline; results land in the slot
    /// of their job index, so the caller's merge order never depends on
    /// the schedule.
    fn run_probes(
        &self,
        app: &dyn AppModel,
        workload: Workload,
        baseline: &Baseline,
        jobs: &[ProbeJob],
    ) -> Vec<ProbeOutcome> {
        let probe = |job: &ProbeJob| {
            let runs = self.run_replicas(app, workload, &job.policy);
            let (ok, impact) = self.judge(&runs, workload, baseline);
            ProbeOutcome { ok, impact }
        };
        let auto = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(16);
        let workers = match self.cfg.jobs {
            0 => auto,
            n => n,
        }
        .min(jobs.len());
        if workers <= 1 {
            return jobs.iter().map(probe).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<ProbeOutcome>>> =
            Mutex::new((0..jobs.len()).map(|_| None).collect());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(job) = jobs.get(i) else {
                        break;
                    };
                    let outcome = probe(job);
                    slots.lock().expect("probe slots poisoned")[i] = Some(outcome);
                });
            }
        });
        slots
            .into_inner()
            .expect("probe slots poisoned")
            .into_iter()
            .map(|o| o.expect("every probe ran"))
            .collect()
    }

    /// Runs the full Loupe analysis for one application and workload.
    ///
    /// # Errors
    ///
    /// [`EngineError::BaselineFailed`] when the application cannot pass its
    /// own workload on the unmodified kernel.
    pub fn analyze(
        &self,
        app: &dyn AppModel,
        workload: Workload,
    ) -> Result<AppReport, EngineError> {
        self.analyze_with_hints(app, workload, &BTreeMap::new())
    }

    /// Like [`Engine::analyze`], but skips the stub/fake runs of syscalls
    /// whose classification is already known from other applications —
    /// the paper's "transferring knowledge across applications" future
    /// work (§6). Build `hints` with [`transfer_hints`]. The final
    /// confirmation run still validates the transferred conclusions; a
    /// wrong hint surfaces as `confirmed == false`.
    ///
    /// # Errors
    ///
    /// [`EngineError::BaselineFailed`] as for [`Engine::analyze`].
    pub fn analyze_with_hints(
        &self,
        app: &dyn AppModel,
        workload: Workload,
        hints: &BTreeMap<Sysno, FeatureClass>,
    ) -> Result<AppReport, EngineError> {
        // ---- 1. discovery (baseline) ------------------------------------
        let base_runs = self.run_replicas(app, workload, &Policy::allow_all());
        let baseline = Baseline::from_runs(&base_runs, workload, &self.cfg.test_script);
        let first = &base_runs[0];
        let base_verdict =
            self.cfg
                .test_script
                .evaluate(&first.outcome, workload, Some(&baseline.features));
        if !base_verdict.success {
            return Err(EngineError::BaselineFailed {
                app: app.name().to_owned(),
                reasons: base_verdict.reasons,
            });
        }

        // Conservative union of traced features across replicas.
        let traced = merge_syscall_trace(&base_runs);

        // What the execution environment rejected/faked at its boundary
        // during discovery (restricted kernels only). Only the discovery
        // replicas teach: probe runs deliberately perturb behaviour, so
        // folding their counters in would make the numbers depend on the
        // probe schedule.
        let mut env_obs = loupe_kernel::KernelObservations::default();
        for run in &base_runs {
            if let Some(obs) = &run.observations {
                env_obs.absorb(obs);
            }
        }

        let mut stats_acc = RunStats {
            framing_runs: u64::from(self.cfg.replicas),
            feature_runs: 0,
            features_tested: 0,
            transfer_skips: 0,
            saved_runs: 0,
            bisect_runs: 0,
            replicas: self.cfg.replicas,
        };

        // ---- 2. probe scheduling --------------------------------------------
        // Enumerate every probe up front, in feature order: traced
        // syscalls (2/), sub-feature keys (2b/§5.4), pseudo-file paths
        // (2c/§3.3) — each as a stub job and a fake job. Execution order
        // is then free (the worker pool races through the queue) while
        // the merge below walks targets in enumeration order, so serial
        // and parallel schedules produce byte-identical reports.
        let mut classes: BTreeMap<Sysno, FeatureClass> = BTreeMap::new();
        let mut hinted: std::collections::BTreeSet<Sysno> = std::collections::BTreeSet::new();
        let mut targets: Vec<ProbeTarget> = Vec::new();
        for &sysno in traced.keys() {
            if let Some(&hint) = hints.get(&sysno) {
                classes.insert(sysno, hint);
                hinted.insert(sysno);
                stats_acc.transfer_skips += 1;
                stats_acc.saved_runs += 2 * u64::from(self.cfg.replicas);
                continue;
            }
            targets.push(ProbeTarget::Syscall(sysno));
        }
        if self.cfg.explore_sub_features {
            // Conservative union of sub-feature keys across replicas,
            // first-seen order.
            let mut keys: Vec<SubFeatureKey> = Vec::new();
            for run in &base_runs {
                for (k, _) in &run.trace.sub_features {
                    if !keys.contains(k) {
                        keys.push(*k);
                    }
                }
            }
            targets.extend(keys.into_iter().map(ProbeTarget::SubFeature));
        }
        if self.cfg.explore_pseudo_files {
            let mut paths: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
            for run in &base_runs {
                paths.extend(run.trace.pseudo_files.keys().cloned());
            }
            targets.extend(paths.into_iter().map(ProbeTarget::PseudoFile));
        }
        let jobs = probe_jobs(&targets);
        let outcomes = self.run_probes(app, workload, &baseline, &jobs);

        // Deterministic merge: jobs carry their target index, and stub
        // precedes fake for every target, so pairing them back up is a
        // straight walk over the enumeration.
        let mut impacts: BTreeMap<Sysno, ImpactRecord> = BTreeMap::new();
        let mut sub_features = Vec::new();
        let mut pseudo_files = BTreeMap::new();
        let mut merged: Vec<(Option<ProbeOutcome>, Option<ProbeOutcome>)> =
            vec![(None, None); targets.len()];
        for (job, outcome) in jobs.iter().zip(&outcomes) {
            let slot = &mut merged[job.target];
            match job.mode {
                Action::Stub => slot.0 = Some(*outcome),
                Action::Fake => slot.1 = Some(*outcome),
                Action::Allow => unreachable!("probe jobs never allow"),
            }
        }
        for (target, (stub, fake)) in targets.iter().zip(merged) {
            let (stub, fake) = (
                stub.expect("stub probe scheduled"),
                fake.expect("fake probe scheduled"),
            );
            let class = FeatureClass {
                stub_ok: stub.ok,
                fake_ok: fake.ok,
            };
            match target {
                ProbeTarget::Syscall(sysno) => {
                    classes.insert(*sysno, class);
                    impacts.insert(
                        *sysno,
                        ImpactRecord {
                            stub: Some(stub.impact),
                            fake: Some(fake.impact),
                        },
                    );
                }
                ProbeTarget::SubFeature(key) => sub_features.push((*key, class)),
                ProbeTarget::PseudoFile(path) => {
                    pseudo_files.insert(path.clone(), class);
                }
            }
            stats_acc.features_tested += 1;
            stats_acc.feature_runs += 2 * u64::from(self.cfg.replicas);
        }

        // ---- 3. confirmation run ---------------------------------------------
        let mut combined = Policy::allow_all();
        for (&sysno, class) in &classes {
            if class.stub_ok {
                combined.set_syscall(sysno, Action::Stub);
            } else if class.fake_ok {
                combined.set_syscall(sysno, Action::Fake);
            }
        }
        let confirm_runs = self.run_replicas(app, workload, &combined);
        let (mut confirmed, _) = self.judge(&confirm_runs, workload, &baseline);
        stats_acc.framing_runs += u64::from(self.cfg.replicas);
        // Union of syscalls traced under the *combined* policy: stubbing
        // and faking activate fallback paths (a stubbed `epoll_create1`
        // sends the app to `epoll_create`), and the syscalls those paths
        // pass through to the kernel are requirements the baseline trace
        // never saw. Tracked across re-confirmations so the final report
        // reflects the policy that actually confirmed.
        let mut confirm_trace = merge_syscall_trace(&confirm_runs);

        // ---- 3a. fake-side hint validation ------------------------------------
        // The combined policy prefers Stub for dual-avoidable classes,
        // so a transferred `{stub_ok, fake_ok}` hint only had its stub
        // claim exercised above. One extra run with those features faked
        // instead validates the fake claim too; a failure is treated
        // exactly like a failing confirmation (hint fallback below).
        // With this, every *positive* (avoidable) claim of every
        // transferred hint is exercised end to end; only a hinted
        // negative (a "not stubbable/fakeable" bit) is taken on the
        // seed's word — it errs toward requiring more, and the sweep's
        // fleet-equality test checks it empirically.
        let dual_hinted: Vec<Sysno> = hinted
            .iter()
            .filter(|s| classes[s].stub_ok && classes[s].fake_ok)
            .copied()
            .collect();
        if confirmed && !dual_hinted.is_empty() {
            let mut fake_side = combined.clone();
            for &s in &dual_hinted {
                fake_side.set_syscall(s, Action::Fake);
            }
            let runs = self.run_replicas(app, workload, &fake_side);
            stats_acc.bisect_runs += u64::from(self.cfg.replicas);
            let (ok, _) = self.judge(&runs, workload, &baseline);
            confirmed = ok;
        }

        // ---- 3b. hint fallback ----------------------------------------------
        // A failing confirmation (either side) under transferred hints
        // means at least one hint does not hold for this application (or
        // its action choice interacts differently here). Revoke *all*
        // hints and measure the skipped features for real — from there
        // the analysis proceeds exactly as a full measurement would, so
        // a wrong hint costs runs instead of changing results.
        if !confirmed && !hinted.is_empty() && self.cfg.auto_bisect_conflicts {
            let fallback: Vec<ProbeTarget> =
                hinted.iter().map(|&s| ProbeTarget::Syscall(s)).collect();
            let outcomes = self.run_probes(app, workload, &baseline, &probe_jobs(&fallback));
            for (i, &sysno) in hinted.iter().enumerate() {
                let (stub, fake) = (outcomes[2 * i], outcomes[2 * i + 1]);
                classes.insert(
                    sysno,
                    FeatureClass {
                        stub_ok: stub.ok,
                        fake_ok: fake.ok,
                    },
                );
                impacts.insert(
                    sysno,
                    ImpactRecord {
                        stub: Some(stub.impact),
                        fake: Some(fake.impact),
                    },
                );
                stats_acc.features_tested += 1;
                stats_acc.feature_runs += 2 * u64::from(self.cfg.replicas);
            }
            stats_acc.transfer_skips = 0;
            stats_acc.saved_runs = 0;
            combined = Policy::allow_all();
            for (&sysno, class) in &classes {
                if class.stub_ok {
                    combined.set_syscall(sysno, Action::Stub);
                } else if class.fake_ok {
                    combined.set_syscall(sysno, Action::Fake);
                }
            }
            let runs = self.run_replicas(app, workload, &combined);
            stats_acc.bisect_runs += u64::from(self.cfg.replicas);
            let (ok, _) = self.judge(&runs, workload, &baseline);
            confirmed = ok;
            confirm_trace = merge_syscall_trace(&runs);
        }

        // ---- 3c. conflict bisection -----------------------------------------
        // Individually avoidable features can interact (e.g. webfsd's
        // writev header and sendfile body are each fakeable, but not
        // together). When the combined run fails, search for a set of
        // culprits to re-mark as required: each round trials one more
        // relaxation *on top of* the relaxations accumulated in earlier
        // rounds, so joint conflicts spanning several features converge
        // instead of giving up after a single sweep. A trial that passes
        // doubles as the new confirmation run. When no single extra
        // relaxation helps, the first candidate is relaxed cumulatively
        // and the search continues — conservative (an innocent feature
        // may be re-marked required) but terminating. Transferred hints
        // never reach this point un-measured: the fallback above revoked
        // them the moment the hinted confirmation failed.
        let mut conflicts: Vec<Sysno> = Vec::new();
        if !confirmed && self.cfg.auto_bisect_conflicts {
            let mut relaxed = combined.clone();
            'rounds: while conflicts.len() < 8 {
                let candidates: Vec<Sysno> = classes
                    .iter()
                    .filter(|(s, c)| c.is_avoidable() && !conflicts.contains(s))
                    .map(|(s, _)| *s)
                    .collect();
                if candidates.is_empty() {
                    break;
                }
                let mut culprit = None;
                for &s in &candidates {
                    let mut trial = relaxed.clone();
                    trial.set_syscall(s, Action::Allow);
                    let runs = self.run_replicas(app, workload, &trial);
                    stats_acc.bisect_runs += u64::from(self.cfg.replicas);
                    let (ok, _) = self.judge(&runs, workload, &baseline);
                    if ok {
                        // This passing trial doubles as the confirmation
                        // run — its passthrough is the one that counts.
                        confirm_trace = merge_syscall_trace(&runs);
                        culprit = Some(s);
                        break;
                    }
                }
                let s = culprit.unwrap_or(candidates[0]);
                relaxed.set_syscall(s, Action::Allow);
                conflicts.push(s);
                classes.insert(
                    s,
                    FeatureClass {
                        stub_ok: false,
                        fake_ok: false,
                    },
                );
                if culprit.is_some() {
                    confirmed = true;
                    break 'rounds;
                }
            }
        }

        // Fallback requirements: syscalls the confirmed combined policy
        // passed through to the kernel although the baseline never traced
        // them — code paths only reachable when other features are
        // stubbed/faked. A support plan that interposes those features
        // must implement these too, or the unlock fails on a real OS.
        // Only a *passing* combined run teaches: an unconfirmed report's
        // last trace is a failing run, and publishing its error-path
        // syscalls would poison every plan built on the database.
        let fallbacks: loupe_syscalls::SysnoSet = if confirmed {
            confirm_trace
                .keys()
                .filter(|s| !classes.contains_key(s))
                .copied()
                .collect()
        } else {
            loupe_syscalls::SysnoSet::new()
        };

        let spec = app.spec();
        Ok(AppReport {
            app: spec.name,
            version: spec.version,
            workload,
            env: self.cfg.exec_env.name().to_owned(),
            traced,
            classes,
            fallbacks,
            rejections: env_obs.rejections,
            fake_hits: env_obs.fake_hits,
            first_rejection: env_obs.first_rejection,
            impacts,
            sub_features,
            pseudo_files,
            conflicts,
            confirmed,
            baseline: BaselineStats {
                throughput: baseline.perf_mean,
                peak_rss: baseline.rss_mean as u64,
                peak_fds: baseline.fd_mean as u32,
                run_time: first.outcome.elapsed,
                features: baseline.features.clone(),
            },
            stats: stats_acc,
        })
    }
}

/// Union of per-syscall invocation counts across replicated runs.
fn merge_syscall_trace(runs: &[RunResult]) -> BTreeMap<Sysno, u64> {
    let mut merged = BTreeMap::new();
    for run in runs {
        for (s, n) in &run.trace.syscalls {
            *merged.entry(*s).or_insert(0) += *n;
        }
    }
    merged
}

/// Baseline summary used by judgements.
#[derive(Debug, Clone)]
struct Baseline {
    perfs: Vec<f64>,
    perf_mean: f64,
    rss_mean: f64,
    fd_mean: f64,
    features: BTreeMap<String, bool>,
    log_profile: LogProfile,
}

impl Baseline {
    fn from_runs(runs: &[RunResult], _workload: Workload, _script: &TestScript) -> Baseline {
        let perfs: Vec<f64> = runs.iter().map(|r| r.outcome.throughput()).collect();
        let features = merge_feature_health(runs.iter().map(|r| &r.outcome.features));
        Baseline {
            perf_mean: stats::mean(&perfs),
            rss_mean: stats::mean(
                &runs
                    .iter()
                    .map(|r| r.usage.peak_rss as f64)
                    .collect::<Vec<_>>(),
            ),
            fd_mean: stats::mean(
                &runs
                    .iter()
                    .map(|r| f64::from(r.usage.peak_fds))
                    .collect::<Vec<_>>(),
            ),
            features,
            log_profile: LogProfile::learn(runs.iter().flat_map(|r| r.console.iter())),
            perfs,
        }
    }
}

/// Conservative feature-health merge across baseline replicas: union of
/// keys, AND of health. Judging stub/fake runs against replica 0 alone
/// would demand features a flaky baseline does not reliably exhibit —
/// and miss features only later replicas reported.
fn merge_feature_health<'a>(
    maps: impl Iterator<Item = &'a BTreeMap<String, bool>>,
) -> BTreeMap<String, bool> {
    let mut merged: BTreeMap<String, bool> = BTreeMap::new();
    for map in maps {
        for (name, healthy) in map {
            let entry = merged.entry(name.clone()).or_insert(true);
            *entry = *entry && *healthy;
        }
    }
    merged
}

/// Builds transfer hints from prior measurements: a syscall is hinted only
/// when at least `min_agreement` reports traced it and *all* of them agree
/// on its classification (conservative, like the replica merge).
pub fn transfer_hints(
    reports: &[crate::report::AppReport],
    min_agreement: usize,
) -> BTreeMap<Sysno, FeatureClass> {
    let mut votes: BTreeMap<Sysno, Vec<FeatureClass>> = BTreeMap::new();
    for report in reports {
        for (&sysno, &class) in &report.classes {
            votes.entry(sysno).or_default().push(class);
        }
    }
    votes
        .into_iter()
        .filter(|(_, v)| v.len() >= min_agreement && v.windows(2).all(|w| w[0] == w[1]))
        .map(|(s, v)| (s, v[0]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use loupe_apps::registry;

    fn engine() -> Engine {
        Engine::new(AnalysisConfig::fast())
    }

    #[test]
    fn weborf_health_check_analysis() {
        let app = registry::find("weborf").unwrap();
        let report = engine()
            .analyze(app.as_ref(), Workload::HealthCheck)
            .unwrap();
        // Fundamental syscalls are required.
        for s in [Sysno::socket, Sysno::bind, Sysno::listen, Sysno::mmap] {
            assert!(report.required().contains(s), "{s} should be required");
        }
        // And a healthy fraction of the traced set is avoidable.
        assert!(!report.avoidable().is_empty());
        assert!(report.required().len() < report.traced().len());
    }

    #[test]
    fn redis_bench_required_set_is_much_smaller_than_traced() {
        let app = registry::find("redis").unwrap();
        let report = engine().analyze(app.as_ref(), Workload::Benchmark).unwrap();
        let traced = report.traced().len();
        let required = report.required().len();
        // §1: "more than half of the system calls invoked by Redis ...
        // can be stubbed or faked".
        assert!(
            required * 2 <= traced + 2,
            "required {required} vs traced {traced}"
        );
        // Fig. 6a: the rlimit getter is avoidable (safe-default fallback).
        assert!(report.avoidable().contains(Sysno::prlimit64));
        // futex is required (faking corrupts, Table 2).
        assert!(report.required().contains(Sysno::futex));
    }

    #[test]
    fn nginx_write_is_stubbable_but_writev_is_not() {
        let app = registry::find("nginx").unwrap();
        let report = engine().analyze(app.as_ref(), Workload::Benchmark).unwrap();
        let write = report.classes[&Sysno::write];
        assert!(write.stub_ok, "access-log write must be stubbable");
        let writev = report.classes[&Sysno::writev];
        assert!(writev.is_required(), "payload writev must be required");
        // prctl: unstubbable (Fig. 6b) but fakeable.
        let prctl = report.classes[&Sysno::prctl];
        assert!(!prctl.stub_ok && prctl.fake_ok, "{prctl:?}");
    }

    #[test]
    fn baseline_failure_is_reported() {
        // The old 32-bit build crashes without its libc file: provision a
        // broken app by wrapping a model that always crashes.
        struct Broken;
        impl AppModel for Broken {
            fn name(&self) -> &str {
                "broken"
            }
            fn spec(&self) -> loupe_apps::AppSpec {
                loupe_apps::AppSpec {
                    name: "broken".into(),
                    version: "0".into(),
                    year: 2024,
                    port: None,
                    kind: loupe_apps::AppKind::Utility,
                    libc: loupe_apps::libc::LibcFlavor::GlibcDynamic,
                }
            }
            fn run(&self, _env: &mut Env<'_>, _w: Workload) -> Result<(), Exit> {
                Err(Exit::Crash("always".into()))
            }
            fn code(&self) -> loupe_apps::AppCode {
                loupe_apps::AppCode::new()
            }
        }
        let err = engine()
            .analyze(&Broken, Workload::HealthCheck)
            .unwrap_err();
        assert!(matches!(err, EngineError::BaselineFailed { .. }));
        assert!(err.to_string().contains("broken"));
    }

    #[test]
    fn confirmation_run_passes_for_simple_apps() {
        let app = registry::find("hello-musl-static").unwrap();
        let report = engine()
            .analyze(app.as_ref(), Workload::HealthCheck)
            .unwrap();
        assert!(report.confirmed, "combined stub/fake policy must hold");
    }

    #[test]
    fn probe_scheduler_is_deterministic_across_job_counts() {
        // Serial, bounded-parallel and auto-sized schedules must produce
        // byte-identical reports (classes, impacts, stats — everything):
        // the merge happens in feature order, never in completion order.
        let cfg = |jobs: usize| AnalysisConfig {
            jobs,
            explore_sub_features: true,
            explore_pseudo_files: true,
            ..AnalysisConfig::fast()
        };
        let app = registry::find("redis").unwrap();
        let serial = Engine::new(cfg(1))
            .analyze(app.as_ref(), Workload::Benchmark)
            .unwrap();
        let parallel = Engine::new(cfg(8))
            .analyze(app.as_ref(), Workload::Benchmark)
            .unwrap();
        let auto = Engine::new(cfg(0))
            .analyze(app.as_ref(), Workload::Benchmark)
            .unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(serial, auto);
        assert!(serial.stats.matches_formula(), "{:?}", serial.stats);
    }

    /// An app that degrades gracefully when any *one* of three optional
    /// syscalls is unavailable, but crashes when two or more are gone:
    /// every feature is individually avoidable, yet the combined policy
    /// (which interposes all three) fails, and no *single* relaxation
    /// can fix it — the joint-conflict case the cumulative bisection
    /// resolves and the old single-sweep loop could not.
    struct TwoOfThree;
    impl AppModel for TwoOfThree {
        fn name(&self) -> &str {
            "two-of-three"
        }
        fn spec(&self) -> loupe_apps::AppSpec {
            loupe_apps::AppSpec {
                name: "two-of-three".into(),
                version: "1".into(),
                year: 2024,
                port: None,
                kind: loupe_apps::AppKind::Utility,
                libc: loupe_apps::libc::LibcFlavor::MuslStatic,
            }
        }
        fn run(&self, env: &mut Env<'_>, _w: Workload) -> Result<(), Exit> {
            env.charge(50);
            let mut working = 0;
            for s in [Sysno::getpid, Sysno::getuid, Sysno::uname] {
                if env.sys0(s).ret >= 0 {
                    working += 1;
                }
            }
            if working < 2 {
                return Err(Exit::Crash("too many probes degraded".into()));
            }
            env.record_response();
            Ok(())
        }
        fn code(&self) -> loupe_apps::AppCode {
            loupe_apps::AppCode::new()
        }
    }

    #[test]
    fn joint_conflicts_are_resolved_by_cumulative_bisection() {
        let report = engine()
            .analyze(&TwoOfThree, Workload::HealthCheck)
            .unwrap();
        // Each syscall is individually avoidable, so the combined run
        // stubs all three and fails; relaxing any single one still
        // leaves only one working — the bisection must accumulate two
        // relaxations before the confirmation passes.
        assert!(
            report.confirmed,
            "cumulative bisection must restore confirmation: {report:?}"
        );
        assert_eq!(
            report.conflicts.len(),
            2,
            "exactly two culprits: {:?}",
            report.conflicts
        );
        for s in &report.conflicts {
            assert!(report.classes[s].is_required(), "{s} re-marked required");
        }
        // The third feature keeps its individually measured class.
        let spared: Vec<Sysno> = report
            .classes
            .iter()
            .filter(|(s, _)| !report.conflicts.contains(s))
            .map(|(s, _)| *s)
            .collect();
        assert_eq!(spared.len(), 1);
        assert!(report.classes[&spared[0]].is_avoidable());
        assert!(report.stats.bisect_runs > 0);
    }

    /// An app whose `sysinfo` call gates expensive telemetry work: the
    /// workload passes without it, but skipping the work makes the run
    /// far faster than baseline — a perf deviation, not a test failure.
    struct TelemetryHeavy;
    impl AppModel for TelemetryHeavy {
        fn name(&self) -> &str {
            "telemetry-heavy"
        }
        fn spec(&self) -> loupe_apps::AppSpec {
            loupe_apps::AppSpec {
                name: "telemetry-heavy".into(),
                version: "1".into(),
                year: 2024,
                port: None,
                kind: loupe_apps::AppKind::Utility,
                libc: loupe_apps::libc::LibcFlavor::MuslStatic,
            }
        }
        fn run(&self, env: &mut Env<'_>, _w: Workload) -> Result<(), Exit> {
            env.charge(100);
            if env.sys0(Sysno::sysinfo).ret >= 0 {
                env.charge(5000); // telemetry only runs when sysinfo works
            }
            env.record_response();
            Ok(())
        }
        fn code(&self) -> loupe_apps::AppCode {
            loupe_apps::AppCode::new()
        }
    }

    #[test]
    fn strict_policy_verdict_and_stored_impact_agree() {
        let cfg = |perf_policy| AnalysisConfig {
            replicas: 2,
            perf_policy,
            ..AnalysisConfig::fast()
        };
        // Lenient (the paper's posture): the stub passes and the perf
        // delta is only an annotation.
        let lenient = Engine::new(cfg(PerfPolicy::Lenient))
            .analyze(&TelemetryHeavy, Workload::HealthCheck)
            .unwrap();
        assert!(lenient.classes[&Sysno::sysinfo].stub_ok);

        // Strict: the significant speed-up disqualifies the stub, and
        // the stored impact must agree with that final verdict instead
        // of contradicting the classification.
        let strict = Engine::new(cfg(PerfPolicy::Strict))
            .analyze(&TelemetryHeavy, Workload::HealthCheck)
            .unwrap();
        assert!(!strict.classes[&Sysno::sysinfo].stub_ok);
        let impact = strict.impacts[&Sysno::sysinfo].stub.unwrap();
        assert!(!impact.success, "impact reflects the final verdict");
        assert_eq!(impact.tests_passed, Some(true), "raw script pass kept");
        assert!(impact.policy_disqualified());
        assert!(impact.perf_delta > 0.03, "the speed-up that triggered it");
    }

    #[test]
    fn baseline_features_merge_conservatively_across_replicas() {
        // Union of keys, AND of health: a feature broken in any replica
        // is not demanded of stub/fake runs, and a feature only a later
        // replica reported still participates (replica 0 is not special).
        let r0: BTreeMap<String, bool> = [("logging", true), ("persistence", true)]
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect();
        let r1: BTreeMap<String, bool> =
            [("logging", true), ("persistence", false), ("reload", true)]
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect();
        let merged = merge_feature_health([&r0, &r1].into_iter());
        assert!(merged["logging"]);
        assert!(!merged["persistence"], "one broken replica wins");
        assert!(merged["reload"], "later-replica features included");
        assert_eq!(merged.len(), 3);
    }

    #[test]
    fn parallel_replicas_agree_with_serial() {
        let app = registry::find("weborf").unwrap();
        let serial = Engine::new(AnalysisConfig {
            replicas: 2,
            parallel: false,
            ..AnalysisConfig::fast()
        })
        .analyze(app.as_ref(), Workload::HealthCheck)
        .unwrap();
        let parallel = Engine::new(AnalysisConfig {
            replicas: 2,
            parallel: true,
            ..AnalysisConfig::fast()
        })
        .analyze(app.as_ref(), Workload::HealthCheck)
        .unwrap();
        assert_eq!(serial.classes, parallel.classes);
    }
}
