//! The interposition layer: Loupe's seccomp/ptrace equivalent for the
//! simulated kernel.
//!
//! Wraps any [`Kernel`], records every invocation into a [`Trace`], and
//! answers stubbed/faked calls itself — the kernel never sees them, which
//! is what makes resource leaks (faked `close`) and fallback paths
//! (stubbed `brk`) emerge naturally.

use loupe_kernel::{HostPort, Invocation, Kernel, ResourceUsage, SysOutcome};
use loupe_syscalls::Errno;

use crate::fakes::fake_value;
use crate::policy::{Action, Policy};
use crate::trace::Trace;

/// Cost of a trapped-and-answered (stubbed/faked) syscall: the trap only.
const INTERCEPT_COST: u64 = loupe_kernel::clock::INTERCEPT_COST;

/// A kernel wrapped with an interposition policy.
#[derive(Debug)]
pub struct Interposed<K> {
    inner: K,
    policy: Policy,
    trace: Trace,
    intercepted: u64,
}

impl<K: Kernel> Interposed<K> {
    /// Wraps `inner` with `policy`.
    pub fn new(inner: K, policy: Policy) -> Interposed<K> {
        Interposed {
            inner,
            policy,
            trace: Trace::new(),
            intercepted: 0,
        }
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Number of invocations answered by the interposer (not the kernel).
    pub fn intercepted(&self) -> u64 {
        self.intercepted
    }

    /// The active policy.
    pub fn policy(&self) -> &Policy {
        &self.policy
    }

    /// Consumes the wrapper, returning the inner kernel and the trace.
    pub fn into_parts(self) -> (K, Trace) {
        (self.inner, self.trace)
    }

    /// Borrow of the inner kernel (diagnostics).
    pub fn inner(&self) -> &K {
        &self.inner
    }
}

impl<K: Kernel> Kernel for Interposed<K> {
    fn syscall(&mut self, inv: &Invocation) -> SysOutcome {
        // §3.3 whitelist mechanism: system calls issued by test-suite
        // helper binaries (git, shells, ...) are not part of the
        // application's footprint — they run uninterposed and untraced,
        // exactly like a binary outside Loupe's whitelist.
        if inv.note.is_some_and(|n| n.starts_with("helper:")) {
            return self.inner.syscall(inv);
        }
        self.trace.record(inv);
        match self.policy.action_for(inv) {
            Action::Allow => self.inner.syscall(inv),
            Action::Stub => {
                self.intercepted += 1;
                self.inner.charge(INTERCEPT_COST);
                SysOutcome::err(Errno::ENOSYS)
            }
            Action::Fake => {
                self.intercepted += 1;
                self.inner.charge(INTERCEPT_COST);
                SysOutcome::ok(fake_value(inv))
            }
        }
    }

    fn charge(&mut self, cost: u64) {
        self.inner.charge(cost);
    }

    fn now(&self) -> u64 {
        self.inner.now()
    }

    fn usage(&self) -> ResourceUsage {
        self.inner.usage()
    }

    fn host_mut(&mut self) -> &mut HostPort {
        self.inner.host_mut()
    }

    fn mem_store(&mut self, addr: u64, val: u32) {
        self.inner.mem_store(addr, val);
    }

    fn mem_load(&self, addr: u64) -> u32 {
        self.inner.mem_load(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loupe_kernel::LinuxSim;
    use loupe_syscalls::Sysno;

    fn inv(s: Sysno, args: [u64; 6]) -> Invocation {
        Invocation::new(s, args)
    }

    #[test]
    fn allow_passes_through() {
        let mut k = Interposed::new(LinuxSim::new(), Policy::allow_all());
        let pid = k.syscall(&inv(Sysno::getpid, [0; 6]));
        assert_eq!(pid.ret, 4242);
        assert_eq!(k.intercepted(), 0);
        assert_eq!(k.trace().syscalls[&Sysno::getpid], 1);
    }

    #[test]
    fn stub_returns_enosys_without_touching_the_kernel() {
        let policy = Policy::allow_all().with_syscall(Sysno::close, Action::Stub);
        let mut k = Interposed::new(LinuxSim::new(), policy);
        // Open a real file first.
        let mut sim_fd = k.syscall(&inv(Sysno::openat, [0, 0, 0x40, 0, 0, 0]).with_path("/tmp/f"));
        assert!(sim_fd.ret >= 0);
        let fd = sim_fd.ret as u64;
        let r = k.syscall(&inv(Sysno::close, [fd, 0, 0, 0, 0, 0]));
        assert_eq!(r.errno(), Some(Errno::ENOSYS));
        // The fd is still open in the kernel: the leak the paper measures.
        assert_eq!(k.usage().cur_fds, 1);
        assert_eq!(k.intercepted(), 1);
        sim_fd = k.syscall(&inv(Sysno::openat, [0, 0, 0x40, 0, 0, 0]).with_path("/tmp/g"));
        assert_eq!(sim_fd.ret as u64, fd + 1, "old fd never freed");
    }

    #[test]
    fn fake_returns_success_without_effect() {
        let policy = Policy::allow_all().with_syscall(Sysno::pipe2, Action::Fake);
        let mut k = Interposed::new(LinuxSim::new(), policy);
        let r = k.syscall(&inv(Sysno::pipe2, [0; 6]));
        assert_eq!(r.ret, 0, "faked success");
        assert_eq!(r.payload.as_fds(), None, "but no fds were produced");
        assert_eq!(k.usage().cur_fds, 0);
    }

    #[test]
    fn interception_is_cheap() {
        let policy = Policy::allow_all().with_syscall(Sysno::write, Action::Stub);
        let mut k = Interposed::new(LinuxSim::new(), policy);
        let t0 = k.now();
        k.syscall(&inv(Sysno::write, [1, 0, 4096, 0, 0, 0]));
        let stub_cost = k.now() - t0;
        let mut real = LinuxSim::new();
        let t0 = real.now();
        real.syscall(
            &Invocation::new(Sysno::write, [1, 0, 4096, 0, 0, 0]).with_data(vec![0u8; 4096]),
        );
        let real_cost = real.now() - t0;
        assert!(stub_cost < real_cost, "{stub_cost} !< {real_cost}");
    }
}
