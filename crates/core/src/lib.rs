//! The Loupe dynamic-analysis engine — the paper's primary contribution.
//!
//! Loupe measures, for an application and a workload, which OS features
//! (system calls, sub-features of vectored system calls, pseudo-files)
//! must actually be **implemented** by a compatibility layer, and which
//! can be **stubbed** (return `-ENOSYS`), **faked** (return success
//! without doing the work) or **partially implemented**.
//!
//! The measurement protocol follows §3 of the paper:
//!
//! 1. a *discovery* run traces every feature the workload exercises;
//! 2. for each traced feature, one run *stubs* it and one run *fakes* it,
//!    and the test script decides whether the application still works
//!    reliably (performance and resource usage are compared against the
//!    baseline as additional failure signals);
//! 3. a final *confirmation* run applies every per-feature conclusion at
//!    once;
//! 4. everything is replicated `r` times and merged conservatively.
//!
//! The total number of runs is `(2 + 2·t·s)·⌈r/p⌉` in paper notation —
//! tracked by [`engine::RunStats`] and asserted in tests.
//!
//! # Examples
//!
//! ```
//! use loupe_apps::{registry, Workload};
//! use loupe_core::{AnalysisConfig, Engine};
//!
//! let app = registry::find("weborf").unwrap();
//! let engine = Engine::new(AnalysisConfig::fast());
//! let report = engine.analyze(app.as_ref(), Workload::HealthCheck).unwrap();
//! assert!(report.required().len() < report.traced().len());
//! ```

pub mod anomaly;
pub mod engine;
pub mod exec;
pub mod fingerprint;
pub mod interpose;
pub mod policy;
pub mod report;
pub mod script;
pub mod stats;
pub mod trace;

/// Re-export: fake success values now live beside the kernels that
/// answer them (`loupe_kernel::fakes`), shared by the interposition
/// layer and [`RestrictedKernel`](loupe_kernel::RestrictedKernel).
pub use loupe_kernel::fakes;

pub use anomaly::LogProfile;
pub use engine::{transfer_hints, AnalysisConfig, Engine, EngineError, PerfPolicy, RunStats};
pub use exec::{run_app, ExecEnv};
pub use fingerprint::{fingerprint_of, fingerprint_value, Fingerprint};
pub use interpose::Interposed;
pub use policy::{Action, Policy};
pub use report::{AppReport, BaselineStats, FeatureClass, Impact, ImpactRecord, LINUX_ENV};
pub use script::{TestScript, Verdict};
pub use trace::Trace;
