//! Interposition policies: which features to allow, stub or fake.

use std::collections::BTreeMap;

use loupe_kernel::Invocation;
use loupe_syscalls::{SubFeatureKey, Sysno};
use serde::{Deserialize, Serialize};

/// What the interposition layer does with a matching invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Action {
    /// Pass through to the kernel.
    Allow,
    /// Do not run the feature; return `-ENOSYS` (§2: feature stubbing).
    Stub,
    /// Do not run the feature; return a syscall-specific success value
    /// (§2: faking feature success).
    Fake,
}

/// A complete interposition policy.
///
/// Precedence, most-specific first: pseudo-file rule (for `open`-family
/// calls on special paths) → sub-feature rule (for vectored syscalls) →
/// per-syscall rule → default.
///
/// # Examples
///
/// ```
/// use loupe_core::{Action, Policy};
/// use loupe_kernel::Invocation;
/// use loupe_syscalls::Sysno;
///
/// let policy = Policy::allow_all().with_syscall(Sysno::write, Action::Stub);
/// let inv = Invocation::new(Sysno::write, [1, 0, 10, 0, 0, 0]);
/// assert_eq!(policy.action_for(&inv), Action::Stub);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Policy {
    per_syscall: BTreeMap<Sysno, Action>,
    per_sub_feature: Vec<(SubFeatureKey, Action)>,
    per_pseudo_file: BTreeMap<String, Action>,
}

impl Policy {
    /// The pass-through policy (used by discovery runs).
    pub fn allow_all() -> Policy {
        Policy::default()
    }

    /// Adds a per-syscall rule (builder style).
    pub fn with_syscall(mut self, sysno: Sysno, action: Action) -> Policy {
        self.set_syscall(sysno, action);
        self
    }

    /// Sets a per-syscall rule.
    pub fn set_syscall(&mut self, sysno: Sysno, action: Action) {
        if action == Action::Allow {
            self.per_syscall.remove(&sysno);
        } else {
            self.per_syscall.insert(sysno, action);
        }
    }

    /// Adds a sub-feature rule (builder style).
    pub fn with_sub_feature(mut self, key: SubFeatureKey, action: Action) -> Policy {
        self.per_sub_feature.retain(|(k, _)| *k != key);
        if action != Action::Allow {
            self.per_sub_feature.push((key, action));
        }
        self
    }

    /// Adds a pseudo-file rule (canonical path, builder style).
    pub fn with_pseudo_file(mut self, path: impl Into<String>, action: Action) -> Policy {
        self.per_pseudo_file.insert(path.into(), action);
        self
    }

    /// Number of non-allow rules (diagnostics).
    pub fn rule_count(&self) -> usize {
        self.per_syscall.len() + self.per_sub_feature.len() + self.per_pseudo_file.len()
    }

    /// Resolves the action for an invocation.
    pub fn action_for(&self, inv: &Invocation) -> Action {
        if !self.per_pseudo_file.is_empty() {
            if let Some(pf) = inv.pseudo_file() {
                if let Some(&a) = self.per_pseudo_file.get(pf.path()) {
                    return a;
                }
            }
        }
        if !self.per_sub_feature.is_empty() {
            if let Some(key) = inv.sub_feature() {
                if let Some(&a) = self
                    .per_sub_feature
                    .iter()
                    .find(|(k, _)| *k == key)
                    .map(|(_, a)| a)
                {
                    return a;
                }
            }
        }
        self.per_syscall
            .get(&inv.sysno)
            .copied()
            .unwrap_or(Action::Allow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loupe_syscalls::SubFeature;

    #[test]
    fn default_allows() {
        let p = Policy::allow_all();
        let inv = Invocation::new(Sysno::read, [0; 6]);
        assert_eq!(p.action_for(&inv), Action::Allow);
        assert_eq!(p.rule_count(), 0);
    }

    #[test]
    fn sub_feature_rule_beats_syscall_rule() {
        let p = Policy::allow_all()
            .with_syscall(Sysno::fcntl, Action::Stub)
            .with_sub_feature(SubFeature::F_SETFL.key(), Action::Allow);
        // F_SETFL resolves through... Allow rules are dropped, so the
        // syscall rule applies.
        let setfl = Invocation::new(Sysno::fcntl, [3, 4, 0, 0, 0, 0]);
        assert_eq!(p.action_for(&setfl), Action::Stub);

        let p = Policy::allow_all().with_sub_feature(SubFeature::F_SETFD.key(), Action::Stub);
        let setfd = Invocation::new(Sysno::fcntl, [3, 2, 1, 0, 0, 0]);
        let setfl = Invocation::new(Sysno::fcntl, [3, 4, 0, 0, 0, 0]);
        assert_eq!(p.action_for(&setfd), Action::Stub);
        assert_eq!(
            p.action_for(&setfl),
            Action::Allow,
            "other selectors untouched"
        );
    }

    #[test]
    fn pseudo_file_rule_applies_to_open_family_only() {
        let p = Policy::allow_all().with_pseudo_file("/dev/urandom", Action::Stub);
        let open = Invocation::new(Sysno::openat, [0; 6]).with_path("/dev/urandom");
        assert_eq!(p.action_for(&open), Action::Stub);
        // PID canonicalisation applies.
        let p2 = Policy::allow_all().with_pseudo_file("/proc/self/status", Action::Fake);
        let open = Invocation::new(Sysno::openat, [0; 6]).with_path("/proc/99/status");
        assert_eq!(p2.action_for(&open), Action::Fake);
        // Unrelated opens untouched.
        let other = Invocation::new(Sysno::openat, [0; 6]).with_path("/etc/passwd");
        assert_eq!(p.action_for(&other), Action::Allow);
    }

    #[test]
    fn setting_allow_removes_rules() {
        let mut p = Policy::allow_all().with_syscall(Sysno::write, Action::Fake);
        assert_eq!(p.rule_count(), 1);
        p.set_syscall(Sysno::write, Action::Allow);
        assert_eq!(p.rule_count(), 0);
    }

    #[test]
    fn serde_roundtrip() {
        let p = Policy::allow_all()
            .with_syscall(Sysno::close, Action::Fake)
            .with_pseudo_file("/dev/null", Action::Stub);
        let json = serde_json::to_string(&p).unwrap();
        let back: Policy = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
