//! Analysis reports: Loupe's measurement output for one (app, workload).

use std::collections::BTreeMap;

use loupe_apps::Workload;
use loupe_syscalls::{SubFeatureKey, Sysno, SysnoSet};
use serde::{Deserialize, Serialize};

/// Classification of one feature (syscall, sub-feature or pseudo-file).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureClass {
    /// The workload passes with the feature stubbed (`-ENOSYS`).
    pub stub_ok: bool,
    /// The workload passes with the feature faked (success, no work).
    pub fake_ok: bool,
}

impl FeatureClass {
    /// Neither stubbing nor faking works: the feature must be implemented.
    pub fn is_required(self) -> bool {
        !self.stub_ok && !self.fake_ok
    }

    /// The feature's implementation can be avoided one way or the other.
    pub fn is_avoidable(self) -> bool {
        self.stub_ok || self.fake_ok
    }

    /// Paper terminology for figures: `required`, `stubbed`, `faked`,
    /// `any`.
    pub fn label(self) -> &'static str {
        match (self.stub_ok, self.fake_ok) {
            (false, false) => "required",
            (true, false) => "stubbed",
            (false, true) => "faked",
            (true, true) => "any",
        }
    }
}

/// Measured impact of one stub/fake run that *passed* the test script —
/// the Table 2 annotations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Impact {
    /// Did the run pass the *final* verdict — test script plus the
    /// engine's perf-policy and log-anomaly checks? This is the value the
    /// classification is built from, so report and classes always agree.
    pub success: bool,
    /// The raw test-script pass/fail, before policy checks; `None` in
    /// entries recorded before this field existed. Under
    /// `PerfPolicy::Strict` a run can pass its tests yet be disqualified
    /// (`!success`) by a perf deviation — see [`Impact::policy_disqualified`].
    #[serde(default)]
    pub tests_passed: Option<bool>,
    /// Relative throughput change vs baseline (`+0.15` = 15% faster).
    pub perf_delta: f64,
    /// Relative peak-RSS change vs baseline.
    pub rss_delta: f64,
    /// Relative peak-FD change vs baseline.
    pub fd_delta: f64,
}

impl Impact {
    /// The run passed its test script but a policy check (strict perf
    /// deviation, log anomaly) disqualified it anyway — the rows a user
    /// investigating "why is this feature required?" wants to see first.
    pub fn policy_disqualified(&self) -> bool {
        !self.success && self.tests_passed == Some(true)
    }

    /// Whether any metric moved outside `epsilon` (Table 2's >3% filter).
    pub fn is_notable(&self, epsilon: f64) -> bool {
        self.perf_delta.abs() > epsilon
            || self.rss_delta.abs() > epsilon
            || self.fd_delta.abs() > epsilon
    }
}

/// Stub and fake impacts for one syscall.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ImpactRecord {
    /// Impact of the stub run (None if never measured).
    pub stub: Option<Impact>,
    /// Impact of the fake run.
    pub fake: Option<Impact>,
}

/// Baseline (full-kernel) metrics.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct BaselineStats {
    /// Mean throughput across replicas.
    pub throughput: f64,
    /// Peak RSS in bytes.
    pub peak_rss: u64,
    /// Peak open file descriptors.
    pub peak_fds: u32,
    /// Virtual time one run takes (the `t` of the §3.3 formula).
    pub run_time: u64,
    /// Feature-health map of the baseline runs — the reference the test
    /// script holds suite workloads to (a healthy baseline feature that
    /// breaks on a restricted kernel fails the run). Persisted so
    /// downstream consumers (the OS matrix, conformance generation) can
    /// judge restricted runs exactly like the measuring engine did.
    #[serde(default, skip_serializing_if = "BTreeMap::is_empty")]
    pub features: BTreeMap<String, bool>,
}

/// The complete analysis result for one application under one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppReport {
    /// Application name.
    pub app: String,
    /// Application version (for the shared database).
    pub version: String,
    /// Workload analysed.
    pub workload: Workload,
    /// Name of the execution environment the measurement ran on
    /// ([`ExecEnv::name`](crate::ExecEnv::name)): `"linux"` for the full
    /// simulated kernel — the only environment whose reports are valid
    /// full-Linux baselines — or the profile name of a restricted
    /// kernel. Entries stored before this field existed deserialise to
    /// the empty string and are conservatively *not* treated as
    /// baselines: the database rejects them and the sweep re-measures.
    #[serde(default)]
    pub env: String,
    /// Invocation counts for every traced syscall.
    pub traced: BTreeMap<Sysno, u64>,
    /// Per-syscall classification.
    pub classes: BTreeMap<Sysno, FeatureClass>,
    /// Syscalls the confirmed combined stub/fake policy passed through
    /// to the kernel although the baseline never traced them: fallback
    /// paths activated by stubbing/faking (e.g. `epoll_create` once
    /// `epoll_create1` is stubbed). Effectively required by any OS that
    /// relies on this report's stub/fake classification.
    #[serde(default)]
    pub fallbacks: SysnoSet,
    /// Per-syscall counts of invocations the execution environment
    /// answered `-ENOSYS` at its boundary during the discovery runs —
    /// empty on Linux (nothing is rejected there), the first diagnostic
    /// to read for a restricted-kernel measurement. Collected by
    /// [`RestrictedKernel`](loupe_kernel::RestrictedKernel); before this
    /// field existed the counters died with the kernel.
    #[serde(default)]
    pub rejections: BTreeMap<Sysno, u64>,
    /// Per-syscall counts of invocations the environment's fake overlay
    /// answered during the discovery runs (restricted kernels only).
    #[serde(default)]
    pub fake_hits: BTreeMap<Sysno, u64>,
    /// The first syscall the environment rejected, if any — "what did
    /// the run trip on first?".
    #[serde(default)]
    pub first_rejection: Option<Sysno>,
    /// Per-syscall perf/resource impact annotations.
    pub impacts: BTreeMap<Sysno, ImpactRecord>,
    /// Per-sub-feature classification (vectored syscalls, §5.4).
    pub sub_features: Vec<(SubFeatureKey, FeatureClass)>,
    /// Per-pseudo-file classification (§3.3).
    pub pseudo_files: BTreeMap<String, FeatureClass>,
    /// Features that were individually avoidable but conflicted in the
    /// combined run and had to be re-marked required (found by the
    /// engine's automatic bisection).
    #[serde(default)]
    pub conflicts: Vec<Sysno>,
    /// Whether the final combined run confirmed the per-feature analysis.
    pub confirmed: bool,
    /// Baseline metrics.
    pub baseline: BaselineStats,
    /// Analysis cost accounting (the §3.3 run-count formula).
    pub stats: crate::engine::RunStats,
}

/// The canonical name of the full-Linux execution environment.
pub const LINUX_ENV: &str = "linux";

impl AppReport {
    /// Whether this report was measured on the full simulated Linux
    /// kernel — the precondition for serving it as a dynamic baseline
    /// (a restricted-kernel measurement under-traces by construction).
    pub fn is_linux_baseline(&self) -> bool {
        self.env == LINUX_ENV
    }

    /// Every syscall traced under the workload.
    pub fn traced(&self) -> SysnoSet {
        self.traced.keys().copied().collect()
    }

    /// Syscalls that must be implemented (neither stub nor fake passes).
    pub fn required(&self) -> SysnoSet {
        self.classes
            .iter()
            .filter(|(_, c)| c.is_required())
            .map(|(s, _)| *s)
            .collect()
    }

    /// Everything an OS must implement for this report's stub/fake
    /// conclusions to hold: the required classes plus the fallback
    /// syscalls the combined policy exercised — the set support plans
    /// build on.
    pub fn plan_required(&self) -> SysnoSet {
        self.required().union(&self.fallbacks)
    }

    /// Syscalls that pass when stubbed.
    pub fn stubbable(&self) -> SysnoSet {
        self.classes
            .iter()
            .filter(|(_, c)| c.stub_ok)
            .map(|(s, _)| *s)
            .collect()
    }

    /// Syscalls that pass when faked.
    pub fn fakeable(&self) -> SysnoSet {
        self.classes
            .iter()
            .filter(|(_, c)| c.fake_ok)
            .map(|(s, _)| *s)
            .collect()
    }

    /// Syscalls that *only* pass when faked: the fake run succeeded but
    /// the stub run did not, so a compatibility layer must provide at
    /// least a plausible success value — `-ENOSYS` is not tolerated.
    pub fn fake_only(&self) -> SysnoSet {
        self.fakeable().difference(&self.stubbable())
    }

    /// Syscalls that pass when either stubbed or faked.
    pub fn avoidable(&self) -> SysnoSet {
        self.classes
            .iter()
            .filter(|(_, c)| c.is_avoidable())
            .map(|(s, _)| *s)
            .collect()
    }

    /// Syscalls whose stub or fake run passed but moved a metric by more
    /// than `epsilon` — the rows of Table 2.
    pub fn notable_impacts(&self, epsilon: f64) -> Vec<(Sysno, ImpactRecord)> {
        self.impacts
            .iter()
            .filter(|(_, rec)| {
                rec.stub
                    .map(|i| i.success && i.is_notable(epsilon))
                    .unwrap_or(false)
                    || rec
                        .fake
                        .map(|i| i.success && i.is_notable(epsilon))
                        .unwrap_or(false)
            })
            .map(|(s, rec)| (*s, *rec))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_labels() {
        assert_eq!(
            FeatureClass {
                stub_ok: false,
                fake_ok: false
            }
            .label(),
            "required"
        );
        assert_eq!(
            FeatureClass {
                stub_ok: true,
                fake_ok: false
            }
            .label(),
            "stubbed"
        );
        assert_eq!(
            FeatureClass {
                stub_ok: false,
                fake_ok: true
            }
            .label(),
            "faked"
        );
        assert_eq!(
            FeatureClass {
                stub_ok: true,
                fake_ok: true
            }
            .label(),
            "any"
        );
        assert!(FeatureClass {
            stub_ok: false,
            fake_ok: false
        }
        .is_required());
        assert!(FeatureClass {
            stub_ok: true,
            fake_ok: false
        }
        .is_avoidable());
    }

    #[test]
    fn impact_notability() {
        let i = Impact {
            success: true,
            tests_passed: Some(true),
            perf_delta: 0.15,
            rss_delta: 0.0,
            fd_delta: 0.0,
        };
        assert!(i.is_notable(0.03));
        let i = Impact {
            success: true,
            tests_passed: Some(true),
            perf_delta: 0.01,
            rss_delta: -0.02,
            fd_delta: 0.0,
        };
        assert!(!i.is_notable(0.03));
    }

    #[test]
    fn report_set_accessors() {
        let mut classes = BTreeMap::new();
        classes.insert(
            Sysno::read,
            FeatureClass {
                stub_ok: false,
                fake_ok: false,
            },
        );
        classes.insert(
            Sysno::sysinfo,
            FeatureClass {
                stub_ok: true,
                fake_ok: true,
            },
        );
        classes.insert(
            Sysno::prctl,
            FeatureClass {
                stub_ok: false,
                fake_ok: true,
            },
        );
        let report = AppReport {
            app: "x".into(),
            version: "1".into(),
            env: LINUX_ENV.into(),
            workload: Workload::Benchmark,
            traced: classes.keys().map(|s| (*s, 1)).collect(),
            classes,
            fallbacks: SysnoSet::new(),
            rejections: BTreeMap::new(),
            fake_hits: BTreeMap::new(),
            first_rejection: None,
            impacts: BTreeMap::new(),
            sub_features: vec![],
            pseudo_files: BTreeMap::new(),
            conflicts: vec![],
            confirmed: true,
            baseline: BaselineStats::default(),
            stats: crate::engine::RunStats::default(),
        };
        assert_eq!(report.traced().len(), 3);
        assert_eq!(report.required().len(), 1);
        assert_eq!(report.avoidable().len(), 2);
        assert!(report.fakeable().contains(Sysno::prctl));
        assert!(!report.stubbable().contains(Sysno::prctl));
    }

    #[test]
    fn report_serde_roundtrip() {
        let report = AppReport {
            app: "x".into(),
            version: "1".into(),
            env: LINUX_ENV.into(),
            workload: Workload::TestSuite,
            traced: [(Sysno::mmap, 7)].into_iter().collect(),
            classes: [(
                Sysno::mmap,
                FeatureClass {
                    stub_ok: false,
                    fake_ok: false,
                },
            )]
            .into_iter()
            .collect(),
            fallbacks: SysnoSet::new(),
            rejections: BTreeMap::new(),
            fake_hits: BTreeMap::new(),
            first_rejection: None,
            impacts: BTreeMap::new(),
            sub_features: vec![(
                loupe_syscalls::SubFeature::F_SETFD.key(),
                FeatureClass {
                    stub_ok: true,
                    fake_ok: true,
                },
            )],
            pseudo_files: [(
                "/dev/urandom".to_owned(),
                FeatureClass {
                    stub_ok: true,
                    fake_ok: true,
                },
            )]
            .into_iter()
            .collect(),
            conflicts: vec![],
            confirmed: true,
            baseline: BaselineStats::default(),
            stats: crate::engine::RunStats::default(),
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: AppReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
        assert!(back.is_linux_baseline());
    }

    #[test]
    fn entries_predating_the_env_field_are_not_baselines() {
        // A stored report written before `env` existed deserialises with
        // an empty env and must not pass the baseline check (the db
        // layer then re-measures instead of serving it).
        let report = AppReport {
            app: "x".into(),
            version: "1".into(),
            env: LINUX_ENV.into(),
            workload: Workload::Benchmark,
            traced: BTreeMap::new(),
            classes: BTreeMap::new(),
            fallbacks: SysnoSet::new(),
            rejections: BTreeMap::new(),
            fake_hits: BTreeMap::new(),
            first_rejection: None,
            impacts: BTreeMap::new(),
            sub_features: vec![],
            pseudo_files: BTreeMap::new(),
            conflicts: vec![],
            confirmed: true,
            baseline: BaselineStats::default(),
            stats: crate::engine::RunStats::default(),
        };
        let json = serde_json::to_string(&report).unwrap();
        let legacy = json.replace("\"env\":\"linux\",", "");
        assert!(!legacy.contains("env"), "field really absent: {legacy}");
        let back: AppReport = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back.env, "");
        assert!(!back.is_linux_baseline());
    }
}
