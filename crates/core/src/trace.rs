//! Trace recording: which features a run exercised, with counts.

use std::collections::BTreeMap;

use loupe_kernel::Invocation;
use loupe_syscalls::{SubFeatureKey, Sysno, SysnoSet};
use serde::{Deserialize, Serialize};

/// A run's feature trace: syscalls, sub-features of vectored syscalls,
/// and pseudo-file accesses, each with invocation counts.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    /// Invocation counts per system call.
    pub syscalls: BTreeMap<Sysno, u64>,
    /// Invocation counts per sub-feature (vectored syscalls only).
    pub sub_features: Vec<(SubFeatureKey, u64)>,
    /// Access counts per canonical pseudo-file path.
    pub pseudo_files: BTreeMap<String, u64>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Records one invocation.
    pub fn record(&mut self, inv: &Invocation) {
        *self.syscalls.entry(inv.sysno).or_insert(0) += 1;
        if let Some(key) = inv.sub_feature() {
            match self.sub_features.iter_mut().find(|(k, _)| *k == key) {
                Some((_, n)) => *n += 1,
                None => self.sub_features.push((key, 1)),
            }
        }
        if let Some(pf) = inv.pseudo_file() {
            *self.pseudo_files.entry(pf.path().to_owned()).or_insert(0) += 1;
        }
    }

    /// The set of distinct syscalls traced.
    pub fn syscall_set(&self) -> SysnoSet {
        self.syscalls.keys().copied().collect()
    }

    /// Number of distinct features (syscalls + pseudo-files) — the `s` of
    /// the run-time formula in §3.3.
    pub fn distinct_features(&self, include_pseudo_files: bool) -> usize {
        self.syscalls.len()
            + if include_pseudo_files {
                self.pseudo_files.len()
            } else {
                0
            }
    }

    /// Total invocations recorded.
    pub fn total_invocations(&self) -> u64 {
        self.syscalls.values().sum()
    }

    /// Sub-feature keys traced for `sysno`.
    pub fn sub_features_of(&self, sysno: Sysno) -> Vec<SubFeatureKey> {
        self.sub_features
            .iter()
            .filter(|(k, _)| k.sysno() == sysno)
            .map(|(k, _)| *k)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_counts_and_sets() {
        let mut t = Trace::new();
        t.record(&Invocation::new(Sysno::read, [0; 6]));
        t.record(&Invocation::new(Sysno::read, [0; 6]));
        t.record(&Invocation::new(Sysno::write, [1, 0, 4, 0, 0, 0]));
        assert_eq!(t.syscalls[&Sysno::read], 2);
        assert_eq!(t.syscall_set().len(), 2);
        assert_eq!(t.total_invocations(), 3);
    }

    #[test]
    fn records_sub_features_and_pseudo_files() {
        let mut t = Trace::new();
        t.record(&Invocation::new(Sysno::fcntl, [3, 4, 0x800, 0, 0, 0]));
        t.record(&Invocation::new(Sysno::fcntl, [3, 2, 1, 0, 0, 0]));
        t.record(&Invocation::new(Sysno::fcntl, [3, 4, 0, 0, 0, 0]));
        t.record(&Invocation::new(Sysno::openat, [0; 6]).with_path("/dev/urandom"));
        assert_eq!(t.sub_features.len(), 2);
        assert_eq!(t.sub_features_of(Sysno::fcntl).len(), 2);
        assert_eq!(t.pseudo_files["/dev/urandom"], 1);
        assert_eq!(t.distinct_features(true), 3);
        assert_eq!(t.distinct_features(false), 2);
    }
}
