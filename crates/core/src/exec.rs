//! Pluggable execution environments: which kernel hosts a run.
//!
//! The engine used to hard-code `LinuxSim::new()` as the substrate of
//! every run. [`ExecEnv`] extracts that choice into the analysis
//! configuration so the same measurement pipeline — discovery, probes,
//! confirmation, bisection — can run against *any* kernel surface:
//!
//! * [`ExecEnv::Linux`] — the full-featured simulated Linux (the
//!   paper's measurement substrate, and the default);
//! * [`ExecEnv::Restricted`] — a [`RestrictedKernel`] enforcing a
//!   [`KernelProfile`], emulating an OS under development mid-way
//!   through an incremental support plan (§4.1). Unimplemented syscalls
//!   return `-ENOSYS`; per-step stub/fake overlays answer at the
//!   boundary.
//!
//! The environment is part of [`AnalysisConfig`](crate::AnalysisConfig)
//! and serialises with it, so a stored configuration fully describes
//! what a measurement ran on.

use loupe_apps::model::AppOutcome;
use loupe_apps::{AppModel, Env, Exit, Workload};
use loupe_kernel::{
    HostPort, Invocation, Kernel, KernelObservations, KernelProfile, LinuxSim, ResourceUsage,
    RestrictedKernel, SysOutcome,
};
use serde::{Deserialize, Serialize};

/// The kernel configuration hosting analysis runs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub enum ExecEnv {
    /// The full simulated Linux kernel.
    #[default]
    Linux,
    /// A kernel restricted to an OS support profile.
    Restricted(KernelProfile),
}

impl ExecEnv {
    /// Human-readable environment name (report headers, CLI output).
    pub fn name(&self) -> &str {
        match self {
            ExecEnv::Linux => "linux",
            ExecEnv::Restricted(profile) => &profile.name,
        }
    }

    /// Builds a fresh, provisioned kernel for one run of `app` — the
    /// containerised-replica analogue: every run starts from the same
    /// clean state (§3.1).
    pub fn build(&self, app: &dyn AppModel) -> HostKernel {
        let mut sim = LinuxSim::new();
        app.provision(&mut sim);
        match self {
            ExecEnv::Linux => HostKernel::Linux(sim),
            ExecEnv::Restricted(profile) => {
                HostKernel::Restricted(RestrictedKernel::new(sim, profile.clone()))
            }
        }
    }
}

/// The kernel an [`ExecEnv`] builds: a closed enum rather than a boxed
/// trait object, so the engine's per-syscall hot path (every probe of
/// every app in a fleet sweep) stays a branch instead of a vtable call.
// One `HostKernel` exists per probe execution — never in bulk storage —
// so the variant size gap (the restricted kernel carries its profile's
// per-flag support map inline) costs nothing, while boxing it would put
// an indirection on the very hot path this enum exists to keep flat.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum HostKernel {
    /// A full simulated Linux.
    Linux(LinuxSim),
    /// A profile-restricted kernel.
    Restricted(RestrictedKernel<LinuxSim>),
}

impl HostKernel {
    /// What the hosting environment observed at its boundary: rejection
    /// and fake-hit counters for a restricted kernel, `None` for the
    /// full Linux kernel (nothing is ever rejected there).
    pub fn observations(&self) -> Option<KernelObservations> {
        match self {
            HostKernel::Linux(_) => None,
            HostKernel::Restricted(k) => Some(k.observations().clone()),
        }
    }
}

macro_rules! delegate {
    ($self:ident, $k:ident => $e:expr) => {
        match $self {
            HostKernel::Linux($k) => $e,
            HostKernel::Restricted($k) => $e,
        }
    };
}

impl Kernel for HostKernel {
    fn syscall(&mut self, inv: &Invocation) -> SysOutcome {
        delegate!(self, k => k.syscall(inv))
    }

    fn charge(&mut self, cost: u64) {
        delegate!(self, k => k.charge(cost));
    }

    fn now(&self) -> u64 {
        delegate!(self, k => k.now())
    }

    fn usage(&self) -> ResourceUsage {
        delegate!(self, k => k.usage())
    }

    fn host_mut(&mut self) -> &mut HostPort {
        delegate!(self, k => k.host_mut())
    }

    fn mem_store(&mut self, addr: u64, val: u32) {
        delegate!(self, k => k.mem_store(addr, val));
    }

    fn mem_load(&self, addr: u64) -> u32 {
        delegate!(self, k => k.mem_load(addr))
    }
}

/// Runs `app` once under `workload` in `env`, uninterposed — the
/// building block of support-plan validation, where the *environment*
/// (not a probe policy) is the experiment.
pub fn run_app(env: &ExecEnv, app: &dyn AppModel, workload: Workload) -> AppOutcome {
    run_app_observed(env, app, workload).0
}

/// Like [`run_app`], but also returns what the environment observed at
/// its boundary — the per-syscall rejection/fake-hit counters and the
/// first rejected syscall of a restricted kernel (`None` on Linux).
/// The fleet × OS compatibility matrix uses this to answer not just
/// *whether* an app runs on an OS profile, but *what it trips on*.
pub fn run_app_observed(
    env: &ExecEnv,
    app: &dyn AppModel,
    workload: Workload,
) -> (AppOutcome, Option<KernelObservations>) {
    let mut kernel = env.build(app);
    let outcome = {
        let mut app_env = Env::new(&mut kernel);
        match app.run(&mut app_env, workload) {
            Ok(()) => app_env.finish(Exit::Clean),
            Err(e) => app_env.finish(e),
        }
    };
    let observations = kernel.observations();
    (outcome, observations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::TestScript;
    use loupe_apps::registry;
    use loupe_syscalls::{Sysno, SysnoSet};

    #[test]
    fn linux_env_hosts_a_passing_run() {
        let app = registry::find("hello-musl-static").unwrap();
        let outcome = run_app(&ExecEnv::Linux, app.as_ref(), Workload::HealthCheck);
        let verdict = TestScript::new().evaluate(&outcome, Workload::HealthCheck, None);
        assert!(verdict.success, "{:?}", verdict.reasons);
    }

    #[test]
    fn empty_restricted_env_fails_real_apps() {
        let app = registry::find("redis").unwrap();
        let env = ExecEnv::Restricted(KernelProfile::new("bare-metal", SysnoSet::new()));
        let outcome = run_app(&env, app.as_ref(), Workload::HealthCheck);
        let verdict = TestScript::new().evaluate(&outcome, Workload::HealthCheck, None);
        assert!(!verdict.success, "no syscalls, no service");
    }

    #[test]
    fn restricted_env_with_full_surface_matches_linux() {
        let app = registry::find("hello-musl-static").unwrap();
        let full: SysnoSet = Sysno::all().collect();
        let env = ExecEnv::Restricted(KernelProfile::new("everything", full));
        let restricted = run_app(&env, app.as_ref(), Workload::HealthCheck);
        let linux = run_app(&ExecEnv::Linux, app.as_ref(), Workload::HealthCheck);
        assert_eq!(restricted, linux, "a full profile is transparent");
    }

    #[test]
    fn observed_runs_surface_boundary_counters() {
        let app = registry::find("redis").unwrap();
        // Linux observes nothing: there is no boundary to trip on.
        let (_, obs) = run_app_observed(&ExecEnv::Linux, app.as_ref(), Workload::HealthCheck);
        assert!(obs.is_none());
        // An empty profile rejects the very first syscall the app makes.
        let env = ExecEnv::Restricted(KernelProfile::new("bare", SysnoSet::new()));
        let (outcome, obs) = run_app_observed(&env, app.as_ref(), Workload::HealthCheck);
        let obs = obs.expect("restricted runs observe");
        assert!(obs.total_rejections() > 0, "{obs:?}");
        assert!(
            obs.first_rejection.map(|s| obs.rejections[&s]).unwrap_or(0) > 0,
            "first rejection is a counted rejection"
        );
        let verdict = TestScript::new().evaluate(&outcome, Workload::HealthCheck, None);
        assert!(!verdict.success);
    }

    #[test]
    fn exec_env_serde_roundtrip_and_default() {
        assert_eq!(ExecEnv::default(), ExecEnv::Linux);
        let env = ExecEnv::Restricted(KernelProfile::new(
            "kerla",
            [Sysno::read, Sysno::write].into_iter().collect(),
        ));
        let json = serde_json::to_string(&env).unwrap();
        let back: ExecEnv = serde_json::from_str(&json).unwrap();
        assert_eq!(env, back);
        assert_eq!(back.name(), "kerla");
        assert_eq!(ExecEnv::Linux.name(), "linux");
    }
}
