//! Cross-process writer exclusion: two *processes* saving tiers of the
//! same matrix cells concurrently must never drop each other's tier —
//! the in-process writer mutex cannot see the other process, so this is
//! the advisory file lock's regression test.
//!
//! The test re-executes its own test binary as the second process:
//! [`tier_writer_child`] is a no-op under a normal `cargo test` run and
//! becomes the child writer when `LOUPE_LOCK_CHILD_DB` is set.

use std::path::PathBuf;
use std::process::Command;
use std::time::{Duration, Instant};

use loupe_apps::Workload;
use loupe_db::Database;
use loupe_plan::{MatrixCell, TierOutcome};
use loupe_syscalls::SysnoSet;

const APPS: usize = 24;
const ROUNDS: usize = 6;

fn cell(app: usize, vanilla: bool) -> MatrixCell {
    let outcome = TierOutcome {
        pass: true,
        ..TierOutcome::default()
    };
    MatrixCell {
        os: "locktest".to_owned(),
        app: format!("app-{app:02}"),
        workload: Workload::HealthCheck,
        linux_pass: true,
        missing_required: SysnoSet::new(),
        vanilla: vanilla.then(|| outcome.clone()),
        planned: (!vanilla).then_some(outcome),
        missing_required_flags: Vec::new(),
    }
}

/// Saves one tier of every cell, `ROUNDS` times over. Each save is a
/// read-modify-write: the database composes the missing tier from the
/// stored cell, which is exactly the cycle that loses data when two
/// processes interleave it unlocked.
fn hammer(db: &Database, vanilla: bool) {
    for _ in 0..ROUNDS {
        for app in 0..APPS {
            db.save_matrix_cell(&cell(app, vanilla)).expect("save cell");
        }
    }
}

/// Child-process entry point: a no-op unless the parent set the env var.
#[test]
fn tier_writer_child() {
    let Ok(dir) = std::env::var("LOUPE_LOCK_CHILD_DB") else {
        return;
    };
    // Wait for the parent's go signal so both processes hammer the same
    // keys at the same time instead of running back to back.
    let go = PathBuf::from(&dir).join("go");
    let deadline = Instant::now() + Duration::from_secs(30);
    while !go.exists() {
        assert!(Instant::now() < deadline, "parent never signalled go");
        std::thread::sleep(Duration::from_millis(1));
    }
    let db = Database::open(&dir).expect("child open");
    hammer(&db, false); // child writes the planned tier
    db.flush().expect("child flush");
}

#[test]
fn concurrent_processes_never_drop_a_tier() {
    let dir = std::env::temp_dir().join(format!("loupe-xproc-lock-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();

    let exe = std::env::current_exe().expect("test binary path");
    let mut child = Command::new(&exe)
        .args(["tier_writer_child", "--exact", "--test-threads=1"])
        .env("LOUPE_LOCK_CHILD_DB", &dir)
        .spawn()
        .expect("spawn child test process");

    std::fs::write(dir.join("go"), b"go").unwrap();
    let db = Database::open(&dir).expect("parent open");
    hammer(&db, true); // parent writes the vanilla tier
    db.flush().expect("parent flush");

    let status = child.wait().expect("child exit status");
    assert!(status.success(), "child writer failed: {status}");

    // Every cell must hold BOTH tiers: each save composed the other
    // process's tier back in, so an interleaved load-compose-write that
    // dropped one would leave a one-tier cell behind.
    let db = Database::open(&dir).expect("verify open");
    for app in 0..APPS {
        let stored = db
            .load_matrix_cell("locktest", &format!("app-{app:02}"), Workload::HealthCheck)
            .expect("load cell")
            .unwrap_or_else(|| panic!("cell app-{app:02} missing"));
        assert!(
            stored.vanilla.is_some() && stored.planned.is_some(),
            "app-{app:02} lost a tier: vanilla={} planned={}",
            stored.vanilla.is_some(),
            stored.planned.is_some(),
        );
    }

    // The manifest both processes flushed must still parse (atomic
    // rename under the lock: torn writes are impossible). A corrupt
    // file degrades to an empty manifest, so non-empty matrix records
    // prove the last flush landed whole.
    let manifest = std::fs::read_to_string(dir.join("manifest.json")).expect("manifest exists");
    let parsed = loupe_db::Manifest::from_json(&manifest);
    assert_eq!(
        parsed
            .records
            .get(loupe_db::ns::MATRIX)
            .map(|r| r.len())
            .unwrap_or(0),
        APPS,
        "manifest.json corrupt or incomplete after concurrent flushes"
    );
    std::fs::remove_dir_all(&dir).ok();
}
