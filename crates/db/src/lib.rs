//! The measurement database — the `loupedb` analogue (§3.3: "Sharing
//! Loupe Results").
//!
//! Results are final for a fixed build of the software, its workload and
//! kernel, so they are worth persisting and sharing. This crate stores
//! [`AppReport`]s as JSON files in a directory tree
//! (`<root>/<app>/<workload>.json`), supports conservative merging of
//! repeated measurements, and imports/exports OS support specs in the
//! paper's one-syscall-per-line CSV form.
//!
//! On top of the JSON tree sit two derived layers that make warm sweeps
//! incremental and fast:
//!
//! * a **cache manifest** ([`manifest`]) recording, per stored artifact,
//!   the fingerprints of the inputs that produced it — so a sweep stage
//!   can answer "is this cell current?" with one map lookup, and an edit
//!   to one OS profile invalidates exactly its downstream cells; and
//! * **binary namespace snapshots** ([`snapshot`]) so bulk reads load a
//!   whole namespace from one compact file instead of re-parsing
//!   hundreds of JSON entries, rebuilt automatically whenever the
//!   content-addressed state they were written against changes.
//!
//! Both layers are derived and disposable: deleting `manifest.json` or
//! `index/` costs one rebuild, never correctness.
//!
//! # Examples
//!
//! ```
//! use loupe_db::Database;
//!
//! let dir = std::env::temp_dir().join("loupedb-doc-example");
//! let db = Database::open(&dir).unwrap();
//! assert!(db.list().unwrap().is_empty() || !db.list().unwrap().is_empty());
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use loupe_apps::Workload;
use loupe_core::{fingerprint_of, AppReport, FeatureClass, Fingerprint, Impact, LINUX_ENV};
use loupe_gentests::ConformanceSuite;
use loupe_plan::{AppRequirement, MatrixCell, OsSpec, PlanValidation};
use loupe_static::{Level, StaticReport};

pub mod lock;
pub mod manifest;
pub mod snapshot;

pub use lock::{FileLock, LOCK_FILE};
pub use manifest::{ns, ArtifactRecord, CacheCounters, CacheStats, Manifest, MANIFEST_VERSION};

/// A directory-backed measurement database.
///
/// Cloning is cheap and clones share one in-process state (manifest,
/// snapshots, writer lock), so a `Database` can be handed to worker
/// threads freely. Writers are additionally serialised *across
/// processes* by an advisory file lock ([`lock`]), so concurrent
/// read-modify-write saves from two processes can never drop each
/// other's data. Provenance is still per-process: two independent
/// `open()`s of the same root keep independent manifests and the last
/// flush wins (derived data — the cost is re-measurement, never
/// corruption, since the flush itself is atomic).
pub struct Database {
    shared: Arc<Shared>,
}

impl Clone for Database {
    fn clone(&self) -> Self {
        Database {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Database")
            .field("root", &self.shared.root)
            .finish()
    }
}

/// In-memory snapshot cache of one namespace, keyed by the manifest
/// generation it reflects.
type SnapshotSlot<T> = Mutex<SlotState<T>>;

/// What the process currently knows about one namespace's snapshot.
/// The states form a ladder — `Empty` → (`Unavailable` | `Mapped`) →
/// `Decoded` — climbed lazily: a point read maps the disk snapshot and
/// decodes single values out of it; only a bulk read pays for decoding
/// the whole namespace. Any generation bump resets the ladder.
enum SlotState<T> {
    /// Nothing learned yet.
    Empty,
    /// No usable disk snapshot at this generation — point reads go
    /// straight to the JSON files without re-probing the index.
    Unavailable(u64),
    /// Disk snapshot memory-mapped and validated; values decode
    /// per-key on demand.
    Mapped(u64, snapshot::MappedSnapshot),
    /// Whole namespace decoded into memory.
    Decoded(u64, Arc<BTreeMap<String, T>>),
}

struct Shared {
    root: PathBuf,
    manifest: Mutex<ManifestState>,
    stats: Mutex<CacheStats>,
    /// Single-writer guard: every save composes read-modify-write
    /// (merge / tier composition), so writers must exclude each other.
    /// Extended across processes by the advisory [`lock::FileLock`]
    /// taken with it (see [`Shared::lock_writers`]).
    write_lock: Mutex<()>,
    baselines: SnapshotSlot<AppReport>,
    matrix: SnapshotSlot<MatrixCell>,
    suites: SnapshotSlot<ConformanceSuite>,
    statics: SnapshotSlot<StaticReport>,
}

struct ManifestState {
    manifest: Manifest,
    /// Monotonic per-namespace counters, bumped whenever a namespace's
    /// content changes — the freshness signal for in-memory snapshots.
    generations: BTreeMap<String, u64>,
    /// Memoised [`Shared::namespace_state`] per namespace, valid for
    /// the generation it was computed at. Point reads consult the
    /// state on every snapshot probe; without the memo each probe
    /// would re-hash the whole record table.
    state_memo: BTreeMap<String, (u64, Fingerprint)>,
    dirty: bool,
}

/// Both writer guards held together: the in-process mutex and the
/// cross-process advisory file lock. Acquired in that order everywhere
/// (process mutex, then file lock, then the manifest mutex as needed)
/// so writers can never deadlock.
struct WriteGuard<'a> {
    _process: std::sync::MutexGuard<'a, ()>,
    _file: lock::FileLock,
}

impl Shared {
    fn manifest_path(&self) -> PathBuf {
        self.root.join("manifest.json")
    }

    /// Excludes every other database writer — threads of this process
    /// via the mutex, other processes via `flock` on the root's lock
    /// file — for the duration of the returned guard.
    fn lock_writers(&self) -> Result<WriteGuard<'_>, DbError> {
        let process = self.write_lock.lock().expect("writer lock");
        let file = lock::FileLock::acquire(&self.root)?;
        Ok(WriteGuard {
            _process: process,
            _file: file,
        })
    }

    fn with_manifest<R>(&self, f: impl FnOnce(&mut ManifestState) -> R) -> R {
        let mut state = self.manifest.lock().expect("manifest lock");
        f(&mut state)
    }

    fn generation(&self, namespace: &str) -> u64 {
        self.with_manifest(|s| s.generations.get(namespace).copied().unwrap_or(0))
    }

    /// Content-addressed state of a namespace: the fingerprint of every
    /// `(key, output-fingerprint)` pair. This is what binary snapshots
    /// are tagged with, making their staleness check survive process
    /// boundaries.
    fn namespace_state(&self, namespace: &str) -> Fingerprint {
        self.with_manifest(|s| {
            let generation = s.generations.get(namespace).copied().unwrap_or(0);
            if let Some((g, fp)) = s.state_memo.get(namespace) {
                if *g == generation {
                    return *fp;
                }
            }
            let pairs: Vec<(String, String)> = s
                .manifest
                .records
                .get(namespace)
                .map(|records| {
                    records
                        .iter()
                        .map(|(k, r)| (k.clone(), r.output.to_hex()))
                        .collect()
                })
                .unwrap_or_default();
            let fp = fingerprint_of(&pairs);
            s.state_memo.insert(namespace.to_owned(), (generation, fp));
            fp
        })
    }

    /// Updates the record for a just-written artifact. If the stored
    /// output fingerprint is unchanged, the record (including its
    /// provenance) is kept — content-addressed identity. Otherwise the
    /// record's inputs become unknown until a sweep stage re-attaches
    /// them via [`Database::record_provenance`].
    fn record_artifact<T: serde::Serialize>(&self, namespace: &str, key: &str, artifact: &T) {
        let output = fingerprint_of(artifact);
        self.with_manifest(|s| {
            let records = s.manifest.records.entry(namespace.to_owned()).or_default();
            if let Some(rec) = records.get(key) {
                if rec.output == output {
                    return;
                }
            }
            records.insert(
                key.to_owned(),
                ArtifactRecord {
                    inputs: None,
                    output,
                    meta: BTreeMap::new(),
                },
            );
            *s.generations.entry(namespace.to_owned()).or_insert(0) += 1;
            s.dirty = true;
        });
    }

    /// Reconciles a namespace's records with the entries found on disk
    /// during a bulk rebuild: records gain/refresh output fingerprints,
    /// records whose content changed out-of-band lose their provenance,
    /// and records for deleted files are dropped.
    fn adopt_outputs<T: serde::Serialize>(&self, namespace: &str, entries: &[(String, T)]) {
        let outputs: Vec<(&String, Fingerprint)> = entries
            .iter()
            .map(|(k, v)| (k, fingerprint_of(v)))
            .collect();
        self.with_manifest(|s| {
            let records = s.manifest.records.entry(namespace.to_owned()).or_default();
            let mut fresh: BTreeMap<String, ArtifactRecord> = BTreeMap::new();
            let mut changed = false;
            for (key, output) in outputs {
                let rec = match records.get(key) {
                    Some(rec) if rec.output == output => rec.clone(),
                    _ => {
                        changed = true;
                        ArtifactRecord {
                            inputs: None,
                            output,
                            meta: BTreeMap::new(),
                        }
                    }
                };
                fresh.insert(key.clone(), rec);
            }
            changed |= fresh.len() != records.len();
            if changed {
                *records = fresh;
                *s.generations.entry(namespace.to_owned()).or_insert(0) += 1;
                s.dirty = true;
            }
        });
    }

    fn flush_manifest(&self) -> Result<(), DbError> {
        if self.with_manifest(|s| !s.dirty) {
            return Ok(());
        }
        // File lock before the manifest mutex (the writer ordering), and
        // an atomic temp-file + rename so a concurrent reader — a serve
        // daemon polling for generation changes — can never observe a
        // torn manifest.
        let _file = lock::FileLock::acquire(&self.root)?;
        let path = self.manifest_path();
        self.with_manifest(|s| {
            if !s.dirty {
                return Ok(());
            }
            let json = serde_json::to_string_pretty(&s.manifest).map_err(|e| DbError::Corrupt {
                path: path.clone(),
                message: e.to_string(),
            })?;
            let tmp = path.with_extension("json.tmp");
            fs::write(&tmp, json)?;
            fs::rename(&tmp, &path)?;
            s.dirty = false;
            Ok(())
        })
    }
}

impl Drop for Shared {
    fn drop(&mut self) {
        // Best-effort durability: provenance learned this session is
        // derived data, so a failed flush costs re-measurement, not
        // correctness.
        let _ = self.flush_manifest();
    }
}

/// Database errors.
#[derive(Debug)]
pub enum DbError {
    /// Filesystem error.
    Io(io::Error),
    /// Malformed stored JSON.
    Corrupt {
        /// Offending file.
        path: PathBuf,
        /// Parser message.
        message: String,
    },
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbError::Io(e) => write!(f, "database I/O error: {e}"),
            DbError::Corrupt { path, message } => {
                write!(f, "corrupt database entry {}: {message}", path.display())
            }
        }
    }
}

impl std::error::Error for DbError {}

impl From<io::Error> for DbError {
    fn from(e: io::Error) -> Self {
        DbError::Io(e)
    }
}

/// The inverse of `<workload>.json` entry filenames: the single place
/// that maps a stored file name back to its [`Workload`], shared by
/// every namespace listing (baselines, plan verdicts, matrix cells).
fn workload_from_filename(name: &str) -> Option<Workload> {
    Workload::ALL
        .iter()
        .copied()
        .find(|w| name == format!("{}.json", w.label()))
}

/// Manifest key of a full-Linux baseline report.
pub fn baseline_key(app: &str, workload: Workload) -> String {
    format!("{app}/{}", workload.label())
}

/// Manifest key of a restricted-environment report.
pub fn env_key(env: &str, app: &str, workload: Workload) -> String {
    format!("{env}/{app}/{}", workload.label())
}

/// Manifest key of a fleet × OS matrix cell.
pub fn matrix_key(os: &str, app: &str, workload: Workload) -> String {
    format!("{os}/{app}/{}", workload.label())
}

/// Manifest key of a conformance suite (mirrors the on-disk layout:
/// `gentests/<os>/<workload>/<app>.json`).
pub fn suite_key(os: &str, app: &str, workload: Workload) -> String {
    format!("{os}/{}/{app}", workload.label())
}

/// Manifest key of a static-analysis report.
pub fn static_key(level: Level, app: &str) -> String {
    format!("{}/{app}", level.label())
}

/// Manifest key of a plan validation.
pub fn plan_key(os: &str, workload: Workload) -> String {
    format!("{os}/{}", workload.label())
}

fn read_json<T: serde::Deserialize>(path: &Path) -> Result<Option<T>, DbError> {
    match fs::read_to_string(path) {
        Ok(text) => serde_json::from_str(&text)
            .map(Some)
            .map_err(|e| DbError::Corrupt {
                path: path.to_path_buf(),
                message: e.to_string(),
            }),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e.into()),
    }
}

fn write_json<T: serde::Serialize>(path: &Path, value: &T) -> Result<(), DbError> {
    fs::create_dir_all(path.parent().expect("entry path has parent"))?;
    let json = serde_json::to_string_pretty(value).map_err(|e| DbError::Corrupt {
        path: path.to_path_buf(),
        message: e.to_string(),
    })?;
    fs::write(path, json)?;
    Ok(())
}

impl Database {
    /// Opens (creating if needed) a database rooted at `root`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(root: impl AsRef<Path>) -> Result<Database, DbError> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(&root)?;
        let manifest = match fs::read_to_string(root.join("manifest.json")) {
            Ok(text) => Manifest::from_json(&text),
            Err(_) => Manifest::new(),
        };
        Ok(Database {
            shared: Arc::new(Shared {
                root,
                manifest: Mutex::new(ManifestState {
                    manifest,
                    generations: BTreeMap::new(),
                    state_memo: BTreeMap::new(),
                    dirty: false,
                }),
                stats: Mutex::new(CacheStats::default()),
                write_lock: Mutex::new(()),
                baselines: Mutex::new(SlotState::Empty),
                matrix: Mutex::new(SlotState::Empty),
                suites: Mutex::new(SlotState::Empty),
                statics: Mutex::new(SlotState::Empty),
            }),
        })
    }

    /// The database root directory.
    pub fn root(&self) -> &Path {
        &self.shared.root
    }

    fn entry_path(&self, env: &str, app: &str, workload: Workload) -> PathBuf {
        // Full-Linux baselines live at the root (the shape every loupedb
        // has always had); restricted-environment measurements are
        // segregated under `env/<name>/` so they can never be confused
        // with a baseline by the cache key.
        let base = if env == LINUX_ENV {
            self.shared.root.clone()
        } else {
            self.shared.root.join("env").join(env)
        };
        base.join(app).join(format!("{}.json", workload.label()))
    }

    /// Stores a report, conservatively merging with any existing entry for
    /// the same `(env, app, workload)`: a feature is classified stubbable
    /// or fakeable only if *every* stored measurement agrees (§3.1).
    /// Reports measured on a restricted execution environment are stored
    /// under the `env/<name>/` namespace, segregated from the full-Linux
    /// baselines the dynamic pipeline caches.
    ///
    /// # Errors
    ///
    /// I/O and serialisation failures.
    pub fn save(&self, report: &AppReport) -> Result<(), DbError> {
        let _writer = self.shared.lock_writers()?;
        self.save_report_locked(report, true)
    }

    /// Stores a report, *replacing* any existing entry instead of
    /// merging — the path the incremental engine takes when the stored
    /// entry's recorded inputs no longer match (merging content produced
    /// by outdated inputs would poison the fresh measurement).
    ///
    /// # Errors
    ///
    /// I/O and serialisation failures.
    pub fn save_replacing(&self, report: &AppReport) -> Result<(), DbError> {
        let _writer = self.shared.lock_writers()?;
        self.save_report_locked(report, false)
    }

    fn save_report_locked(&self, report: &AppReport, merge: bool) -> Result<(), DbError> {
        // Merge only with a stored entry of the *same* environment; a
        // legacy mismatched entry at this path is superseded, not merged
        // (merging a restricted-kernel trace into a baseline would
        // poison it).
        let existing = if merge {
            self.load_env(&report.env, &report.app, report.workload)?
                .filter(|existing| existing.env == report.env)
        } else {
            None
        };
        let merged = match existing {
            Some(existing) => merge_reports(&existing, report),
            None => report.clone(),
        };
        let path = self.entry_path(&report.env, &report.app, report.workload);
        write_json(&path, &merged)?;
        if report.env == LINUX_ENV {
            self.shared.record_artifact(
                ns::BASELINES,
                &baseline_key(&report.app, report.workload),
                &merged,
            );
        } else {
            self.shared.record_artifact(
                ns::ENV,
                &env_key(&report.env, &report.app, report.workload),
                &merged,
            );
        }
        Ok(())
    }

    /// Loads the stored *full-Linux baseline* for `(app, workload)`, if
    /// any. An entry at the baseline path that records a different
    /// execution environment (written by tooling predating the
    /// segregation) is rejected — `Ok(None)` — so it is re-measured
    /// rather than served as a baseline.
    ///
    /// # Errors
    ///
    /// I/O failures and corrupt entries.
    pub fn load(&self, app: &str, workload: Workload) -> Result<Option<AppReport>, DbError> {
        Ok(self
            .load_env(LINUX_ENV, app, workload)?
            .filter(AppReport::is_linux_baseline))
    }

    /// Loads the stored report for `(env, app, workload)`, if any.
    ///
    /// # Errors
    ///
    /// I/O failures and corrupt entries.
    pub fn load_env(
        &self,
        env: &str,
        app: &str,
        workload: Workload,
    ) -> Result<Option<AppReport>, DbError> {
        if env == LINUX_ENV {
            if let Some(hit) = self.cached_entry(
                &self.shared.baselines,
                ns::BASELINES,
                &baseline_key(app, workload),
            ) {
                return Ok(Some(hit));
            }
        }
        read_json(&self.entry_path(env, app, workload))
    }

    /// On-disk binary index of one namespace.
    fn index_path(&self, namespace: &str) -> PathBuf {
        self.shared
            .root
            .join("index")
            .join(format!("{namespace}.bin"))
    }

    /// Serves one entry from a namespace's snapshot if one is fresh
    /// and holds the key. The first point read at a generation lazily
    /// *maps* the disk snapshot (no value decode) and subsequent reads
    /// decode single values out of the mapping; a full decode only
    /// happens on bulk loads. Anything else (no snapshot, stale, key
    /// absent, malformed value) falls back to the JSON file — files
    /// written out-of-band stay visible.
    fn cached_entry<T: Clone + serde::Deserialize>(
        &self,
        slot: &SnapshotSlot<T>,
        namespace: &str,
        key: &str,
    ) -> Option<T> {
        let mut guard = slot.lock().expect("snapshot lock");
        let generation = self.shared.generation(namespace);
        match &*guard {
            SlotState::Decoded(g, map) if *g == generation => return map.get(key).cloned(),
            SlotState::Mapped(g, snap) if *g == generation => {
                return snap.get(key).and_then(|v| T::from_value(&v).ok());
            }
            SlotState::Unavailable(g) if *g == generation => return None,
            _ => {}
        }
        let expected = self.shared.namespace_state(namespace);
        match snapshot::MappedSnapshot::open(&self.index_path(namespace), expected) {
            Some(snap) => {
                let hit = snap.get(key).and_then(|v| T::from_value(&v).ok());
                *guard = SlotState::Mapped(generation, snap);
                hit
            }
            None => {
                *guard = SlotState::Unavailable(generation);
                None
            }
        }
    }

    /// Bulk-loads a whole namespace: in-memory snapshot if fresh, else
    /// the binary disk snapshot if its content-addressed state matches,
    /// else a rebuild from the JSON tree (which also backfills the
    /// manifest and rewrites the disk snapshot).
    fn bulk<T>(
        &self,
        namespace: &'static str,
        slot: &SnapshotSlot<T>,
        rebuild: impl FnOnce() -> Result<Vec<(String, T)>, DbError>,
    ) -> Result<Arc<BTreeMap<String, T>>, DbError>
    where
        T: Clone + serde::Serialize + serde::Deserialize,
    {
        let mut guard = slot.lock().expect("snapshot lock");
        let generation = self.shared.generation(namespace);
        if let SlotState::Decoded(g, map) = &*guard {
            if *g == generation {
                return Ok(Arc::clone(map));
            }
        }
        let path = self.index_path(namespace);
        let expected = self.shared.namespace_state(namespace);
        // Reuse a fresh mapping installed by an earlier point read;
        // otherwise map the disk snapshot now.
        let snap = match std::mem::replace(&mut *guard, SlotState::Empty) {
            SlotState::Mapped(g, snap) if g == generation => Some(snap),
            _ => snapshot::MappedSnapshot::open(&path, expected),
        };
        let decoded = snap.and_then(|snap| snap.decode_all()).and_then(|entries| {
            let mut map = BTreeMap::new();
            for (key, value) in entries {
                match T::from_value(&value) {
                    Ok(t) => {
                        map.insert(key, t);
                    }
                    // Undecodable snapshot (schema drift): rebuild.
                    Err(_) => return None,
                }
            }
            Some(map)
        });
        let map = match decoded {
            Some(map) => map,
            None => {
                let entries = rebuild()?;
                self.shared.adopt_outputs(namespace, &entries);
                let map: BTreeMap<String, T> = entries.into_iter().collect();
                let state = self.shared.namespace_state(namespace);
                let encoded: Vec<(&String, serde::Value)> =
                    map.iter().map(|(k, v)| (k, v.to_value())).collect();
                // Best-effort: a failed snapshot write only costs the
                // next rebuild.
                let _ = snapshot::write(&path, state, encoded.iter().map(|(k, v)| (k.as_str(), v)));
                map
            }
        };
        let generation = self.shared.generation(namespace);
        let map = Arc::new(map);
        *guard = SlotState::Decoded(generation, Arc::clone(&map));
        Ok(map)
    }

    fn bulk_baselines(&self) -> Result<Arc<BTreeMap<String, AppReport>>, DbError> {
        self.bulk(ns::BASELINES, &self.shared.baselines, || {
            let mut out = Vec::new();
            for (app, workload) in self.list()? {
                let path = self.entry_path(LINUX_ENV, &app, workload);
                if let Some(report) = read_json::<AppReport>(&path)? {
                    out.push((baseline_key(&app, workload), report));
                }
            }
            Ok(out)
        })
    }

    fn bulk_matrix(&self) -> Result<Arc<BTreeMap<String, MatrixCell>>, DbError> {
        self.bulk(ns::MATRIX, &self.shared.matrix, || {
            let mut out = Vec::new();
            for (os, app, workload) in self.list_matrix_cells()? {
                let path = self.matrix_path(&os, &app, workload);
                if let Some(cell) = read_json::<MatrixCell>(&path)? {
                    out.push((matrix_key(&os, &app, workload), cell));
                }
            }
            Ok(out)
        })
    }

    fn bulk_suites(&self) -> Result<Arc<BTreeMap<String, ConformanceSuite>>, DbError> {
        self.bulk(ns::SUITES, &self.shared.suites, || {
            let mut out = Vec::new();
            for (os, app, workload) in self.list_suites()? {
                let path = self.suite_path(&os, &app, workload);
                if let Some(suite) = read_json::<ConformanceSuite>(&path)? {
                    out.push((suite_key(&os, &app, workload), suite));
                }
            }
            Ok(out)
        })
    }

    fn bulk_statics(&self) -> Result<Arc<BTreeMap<String, StaticReport>>, DbError> {
        self.bulk(ns::STATIC, &self.shared.statics, || {
            let mut out = Vec::new();
            for (level, app) in self.list_static()? {
                if let Some(report) = self.read_static(level, &app)? {
                    out.push((static_key(level, &app), report));
                }
            }
            Ok(out)
        })
    }

    /// Warms every namespace snapshot (building binary indices as
    /// needed) so subsequent point and bulk reads are served from
    /// memory. Sweeps call this once up front.
    ///
    /// # Errors
    ///
    /// I/O failures and corrupt entries.
    pub fn preload(&self) -> Result<(), DbError> {
        self.bulk_baselines()?;
        self.bulk_matrix()?;
        self.bulk_suites()?;
        self.bulk_statics()?;
        Ok(())
    }

    /// Whether a full-Linux baseline entry for `(app, workload)` is
    /// stored (cheap: a file probe, no parsing) — for tooling that only
    /// needs existence; the sweep driver itself loads the entry since a
    /// cache hit is returned.
    pub fn contains(&self, app: &str, workload: Workload) -> bool {
        self.entry_path(LINUX_ENV, app, workload).is_file()
    }

    /// Loads every stored report for one workload, sorted by app name —
    /// the bulk path behind fleet-wide aggregation and reporting.
    ///
    /// # Errors
    ///
    /// I/O failures and corrupt entries.
    pub fn load_workload(&self, workload: Workload) -> Result<Vec<AppReport>, DbError> {
        let map = self.bulk_baselines()?;
        let mut out: Vec<AppReport> = map
            .values()
            .filter(|r| r.workload == workload && r.is_linux_baseline())
            .cloned()
            .collect();
        out.sort_by(|a: &AppReport, b: &AppReport| a.app.cmp(&b.app));
        Ok(out)
    }

    /// Lists `(app, workload)` pairs present in the database.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn list(&self) -> Result<Vec<(String, Workload)>, DbError> {
        let mut out = Vec::new();
        for app_dir in fs::read_dir(&self.shared.root)? {
            let app_dir = app_dir?;
            if !app_dir.file_type()?.is_dir() {
                continue;
            }
            let app = app_dir.file_name().to_string_lossy().into_owned();
            // Non-baseline namespaces sharing the root directory.
            if matches!(
                app.as_str(),
                "env" | "plans" | "os" | "static" | "gentests" | "index"
            ) {
                continue;
            }
            for entry in fs::read_dir(app_dir.path())? {
                let entry = entry?;
                let name = entry.file_name().to_string_lossy().into_owned();
                let Some(workload) = workload_from_filename(&name) else {
                    continue;
                };
                out.push((app.clone(), workload));
            }
        }
        out.sort();
        Ok(out)
    }

    /// Loads every stored report for `workload` as planner requirements.
    ///
    /// # Errors
    ///
    /// I/O failures and corrupt entries.
    pub fn requirements(&self, workload: Workload) -> Result<Vec<AppRequirement>, DbError> {
        Ok(self
            .load_workload(workload)?
            .iter()
            .map(AppRequirement::from_report)
            .collect())
    }

    /// Stores a plan-validation verdict under
    /// `<root>/plans/<os>/<workload>.json`, overwriting any previous
    /// validation of the same (OS, workload) — unlike measurements,
    /// validations are not merged: they describe one deterministic
    /// replay of the current plan.
    ///
    /// # Errors
    ///
    /// I/O and serialisation failures.
    pub fn save_plan_validation(&self, validation: &PlanValidation) -> Result<(), DbError> {
        let _writer = self.shared.lock_writers()?;
        let path = self.plan_path(&validation.os, validation.workload);
        write_json(&path, validation)?;
        self.shared.record_artifact(
            ns::PLANS,
            &plan_key(&validation.os, validation.workload),
            validation,
        );
        Ok(())
    }

    /// Loads the stored validation for `(os, workload)`, if any.
    ///
    /// # Errors
    ///
    /// I/O failures and corrupt entries.
    pub fn load_plan_validation(
        &self,
        os: &str,
        workload: Workload,
    ) -> Result<Option<PlanValidation>, DbError> {
        read_json(&self.plan_path(os, workload))
    }

    /// Lists `(os, workload)` pairs with stored plan validations.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn list_plan_validations(&self) -> Result<Vec<(String, Workload)>, DbError> {
        let root = self.shared.root.join("plans");
        let mut out = Vec::new();
        let entries = match fs::read_dir(&root) {
            Ok(entries) => entries,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(e.into()),
        };
        for os_dir in entries {
            let os_dir = os_dir?;
            if !os_dir.file_type()?.is_dir() {
                continue;
            }
            let os = os_dir.file_name().to_string_lossy().into_owned();
            for entry in fs::read_dir(os_dir.path())? {
                let entry = entry?;
                let name = entry.file_name().to_string_lossy().into_owned();
                let Some(workload) = workload_from_filename(&name) else {
                    continue;
                };
                out.push((os.clone(), workload));
            }
        }
        out.sort();
        Ok(out)
    }

    fn plan_path(&self, os: &str, workload: Workload) -> PathBuf {
        self.shared
            .root
            .join("plans")
            .join(os)
            .join(format!("{}.json", workload.label()))
    }

    /// Stores a generated conformance suite under
    /// `<root>/gentests/<os>/<workload>/<app>.json`, overwriting any
    /// previous suite for the same cell — like plan validations (and
    /// unlike measurements), suites are not merged: each one is a
    /// deterministic compilation of the current corpus.
    ///
    /// # Errors
    ///
    /// I/O and serialisation failures.
    pub fn save_suite(&self, suite: &ConformanceSuite) -> Result<(), DbError> {
        let _writer = self.shared.lock_writers()?;
        let path = self.suite_path(&suite.os, &suite.app, suite.workload);
        write_json(&path, suite)?;
        self.shared.record_artifact(
            ns::SUITES,
            &suite_key(&suite.os, &suite.app, suite.workload),
            suite,
        );
        Ok(())
    }

    /// Loads the stored conformance suite for `(os, app, workload)`, if
    /// any.
    ///
    /// # Errors
    ///
    /// I/O failures and corrupt entries.
    pub fn load_suite(
        &self,
        os: &str,
        app: &str,
        workload: Workload,
    ) -> Result<Option<ConformanceSuite>, DbError> {
        if let Some(hit) = self.cached_entry(
            &self.shared.suites,
            ns::SUITES,
            &suite_key(os, app, workload),
        ) {
            return Ok(Some(hit));
        }
        read_json(&self.suite_path(os, app, workload))
    }

    /// Lists `(os, app, workload)` triples with stored conformance
    /// suites.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn list_suites(&self) -> Result<Vec<(String, String, Workload)>, DbError> {
        let root = self.shared.root.join("gentests");
        let mut out = Vec::new();
        let entries = match fs::read_dir(&root) {
            Ok(entries) => entries,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(e.into()),
        };
        for os_dir in entries {
            let os_dir = os_dir?;
            if !os_dir.file_type()?.is_dir() {
                continue;
            }
            let os = os_dir.file_name().to_string_lossy().into_owned();
            for wl_dir in fs::read_dir(os_dir.path())? {
                let wl_dir = wl_dir?;
                if !wl_dir.file_type()?.is_dir() {
                    continue;
                }
                let label = wl_dir.file_name().to_string_lossy().into_owned();
                let Some(workload) = Workload::ALL.iter().copied().find(|w| w.label() == label)
                else {
                    continue;
                };
                for entry in fs::read_dir(wl_dir.path())? {
                    let entry = entry?;
                    let name = entry.file_name().to_string_lossy().into_owned();
                    let Some(app) = name.strip_suffix(".json") else {
                        continue;
                    };
                    out.push((os.clone(), app.to_owned(), workload));
                }
            }
        }
        out.sort();
        Ok(out)
    }

    /// Loads every stored conformance suite, sorted by `(os, app,
    /// workload)` — the bulk path behind `docs/CONFORMANCE.md`.
    ///
    /// # Errors
    ///
    /// I/O failures and corrupt entries.
    pub fn load_suites(&self) -> Result<Vec<ConformanceSuite>, DbError> {
        let map = self.bulk_suites()?;
        let mut out: Vec<ConformanceSuite> = map.values().cloned().collect();
        out.sort_by(|a, b| (&a.os, &a.app, a.workload).cmp(&(&b.os, &b.app, b.workload)));
        Ok(out)
    }

    fn suite_path(&self, os: &str, app: &str, workload: Workload) -> PathBuf {
        self.shared
            .root
            .join("gentests")
            .join(os)
            .join(workload.label())
            .join(format!("{app}.json"))
    }

    fn matrix_path(&self, os: &str, app: &str, workload: Workload) -> PathBuf {
        self.shared
            .root
            .join("env")
            .join(os)
            .join("matrix")
            .join(app)
            .join(format!("{}.json", workload.label()))
    }

    /// Stores one fleet × OS compatibility-matrix cell under the
    /// environment's namespace, `env/<os>/matrix/<app>/<workload>.json`
    /// (the `matrix/` directory is reserved inside each environment; no
    /// application may be called `matrix`). A stored cell for the same
    /// key is *composed with*, not clobbered: tiers the new cell did not
    /// measure (`None`) keep the stored verdict, so a vanilla-only sweep
    /// followed by a planned sweep yields one complete cell.
    ///
    /// # Errors
    ///
    /// I/O and serialisation failures.
    pub fn save_matrix_cell(&self, cell: &MatrixCell) -> Result<(), DbError> {
        let _writer = self.shared.lock_writers()?;
        self.save_matrix_cell_locked(cell, true)
    }

    /// Stores a matrix cell, *replacing* any stored cell instead of
    /// composing tiers — the path taken when the stored cell's recorded
    /// inputs no longer match (tiers measured against outdated inputs
    /// must not survive into the fresh cell).
    ///
    /// # Errors
    ///
    /// I/O and serialisation failures.
    pub fn save_matrix_cell_replacing(&self, cell: &MatrixCell) -> Result<(), DbError> {
        let _writer = self.shared.lock_writers()?;
        self.save_matrix_cell_locked(cell, false)
    }

    fn save_matrix_cell_locked(&self, cell: &MatrixCell, compose: bool) -> Result<(), DbError> {
        let mut merged = cell.clone();
        if compose {
            if let Some(existing) = self.load_matrix_cell(&cell.os, &cell.app, cell.workload)? {
                if merged.vanilla.is_none() {
                    merged.vanilla = existing.vanilla;
                }
                if merged.planned.is_none() {
                    merged.planned = existing.planned;
                }
            }
        }
        let path = self.matrix_path(&cell.os, &cell.app, cell.workload);
        write_json(&path, &merged)?;
        self.shared.record_artifact(
            ns::MATRIX,
            &matrix_key(&cell.os, &cell.app, cell.workload),
            &merged,
        );
        Ok(())
    }

    /// Loads the stored matrix cell for `(os, app, workload)`, if any.
    ///
    /// # Errors
    ///
    /// I/O failures and corrupt entries.
    pub fn load_matrix_cell(
        &self,
        os: &str,
        app: &str,
        workload: Workload,
    ) -> Result<Option<MatrixCell>, DbError> {
        if let Some(hit) = self.cached_entry(
            &self.shared.matrix,
            ns::MATRIX,
            &matrix_key(os, app, workload),
        ) {
            return Ok(Some(hit));
        }
        read_json(&self.matrix_path(os, app, workload))
    }

    /// Lists `(os, app, workload)` keys with stored matrix cells.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn list_matrix_cells(&self) -> Result<Vec<(String, String, Workload)>, DbError> {
        let env_root = self.shared.root.join("env");
        let mut out = Vec::new();
        let oses = match fs::read_dir(&env_root) {
            Ok(entries) => entries,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(e.into()),
        };
        for os_dir in oses {
            let os_dir = os_dir?;
            if !os_dir.file_type()?.is_dir() {
                continue;
            }
            let os = os_dir.file_name().to_string_lossy().into_owned();
            let matrix_root = os_dir.path().join("matrix");
            let apps = match fs::read_dir(&matrix_root) {
                Ok(entries) => entries,
                Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
                Err(e) => return Err(e.into()),
            };
            for app_dir in apps {
                let app_dir = app_dir?;
                if !app_dir.file_type()?.is_dir() {
                    continue;
                }
                let app = app_dir.file_name().to_string_lossy().into_owned();
                for entry in fs::read_dir(app_dir.path())? {
                    let entry = entry?;
                    let name = entry.file_name().to_string_lossy().into_owned();
                    let Some(workload) = workload_from_filename(&name) else {
                        continue;
                    };
                    out.push((os.clone(), app.clone(), workload));
                }
            }
        }
        out.sort();
        Ok(out)
    }

    /// Loads every stored matrix cell, sorted by `(os, app, workload)` —
    /// the bulk path behind matrix aggregation and `OS_MATRIX.md`.
    ///
    /// # Errors
    ///
    /// I/O failures and corrupt entries.
    pub fn load_matrix(&self) -> Result<Vec<MatrixCell>, DbError> {
        let map = self.bulk_matrix()?;
        let mut out: Vec<MatrixCell> = map.values().cloned().collect();
        out.sort_by(|a, b| {
            (&a.os, &a.app, a.workload.label()).cmp(&(&b.os, &b.app, b.workload.label()))
        });
        Ok(out)
    }

    fn static_path(&self, level: Level, app: &str) -> PathBuf {
        self.shared
            .root
            .join("static")
            .join(level.label())
            .join(format!("{app}.json"))
    }

    /// The pre-ladder location of a static report (`static/binary/`,
    /// `static/source/`), for the levels that existed then. Reads fall
    /// back to it so databases written before the L0–L3 precision
    /// ladder keep serving their artifacts; writes always use the
    /// ladder-keyed path.
    fn static_legacy_path(&self, level: Level, app: &str) -> Option<PathBuf> {
        level.legacy_label().map(|label| {
            self.shared
                .root
                .join("static")
                .join(label)
                .join(format!("{app}.json"))
        })
    }

    /// Reads a static report from its ladder path, falling back to the
    /// legacy location.
    fn read_static(&self, level: Level, app: &str) -> Result<Option<StaticReport>, DbError> {
        if let Some(report) = read_json(&self.static_path(level, app))? {
            return Ok(Some(report));
        }
        match self.static_legacy_path(level, app) {
            Some(path) => read_json(&path),
            None => Ok(None),
        }
    }

    /// Stores a static-analysis report under
    /// `<root>/static/<level>/<app>.json` — a namespace keyed by
    /// analysis level, fully segregated from the dynamic measurements,
    /// so a `StaticReport` can never collide with (or be served as) a
    /// dynamic baseline. Overwrites any previous entry: static analysis
    /// is a deterministic pure function of the app's code descriptor,
    /// so unlike measurements there is nothing to merge.
    ///
    /// # Errors
    ///
    /// I/O and serialisation failures.
    pub fn save_static(&self, report: &StaticReport) -> Result<(), DbError> {
        let _writer = self.shared.lock_writers()?;
        let path = self.static_path(report.level, &report.app);
        write_json(&path, report)?;
        self.shared
            .record_artifact(ns::STATIC, &static_key(report.level, &report.app), report);
        Ok(())
    }

    /// Loads the stored static report for `(level, app)`, if any.
    ///
    /// # Errors
    ///
    /// I/O failures and corrupt entries.
    pub fn load_static(&self, level: Level, app: &str) -> Result<Option<StaticReport>, DbError> {
        if let Some(hit) =
            self.cached_entry(&self.shared.statics, ns::STATIC, &static_key(level, app))
        {
            return Ok(Some(hit));
        }
        self.read_static(level, app)
    }

    /// Whether a static entry for `(level, app)` is stored.
    pub fn contains_static(&self, level: Level, app: &str) -> bool {
        self.static_path(level, app).is_file()
            || self
                .static_legacy_path(level, app)
                .is_some_and(|p| p.is_file())
    }

    /// Loads every stored static report of one level, sorted by app name.
    ///
    /// # Errors
    ///
    /// I/O failures and corrupt entries.
    pub fn load_static_level(&self, level: Level) -> Result<Vec<StaticReport>, DbError> {
        let map = self.bulk_statics()?;
        let mut out: Vec<StaticReport> =
            map.values().filter(|r| r.level == level).cloned().collect();
        out.sort_by(|a, b| a.app.cmp(&b.app));
        Ok(out)
    }

    /// Lists `(level, app)` pairs with stored static reports.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn list_static(&self) -> Result<Vec<(Level, String)>, DbError> {
        let mut out = std::collections::BTreeSet::new();
        let mut scan = |dir: PathBuf, level: Level| -> Result<(), DbError> {
            let entries = match fs::read_dir(&dir) {
                Ok(entries) => entries,
                Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
                Err(e) => return Err(e.into()),
            };
            for entry in entries {
                let name = entry?.file_name().to_string_lossy().into_owned();
                if let Some(app) = name.strip_suffix(".json") {
                    out.insert((level, app.to_owned()));
                }
            }
            Ok(())
        };
        for level in Level::ALL {
            scan(self.shared.root.join("static").join(level.label()), level)?;
            // Pre-ladder databases stored L0/L3 under binary/source.
            if let Some(legacy) = level.legacy_label() {
                scan(self.shared.root.join("static").join(legacy), level)?;
            }
        }
        Ok(out.into_iter().collect())
    }

    /// Writes an OS support spec in CSV form under `<root>/os/<name>.csv`.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn save_os_spec(&self, spec: &OsSpec) -> Result<PathBuf, DbError> {
        let dir = self.shared.root.join("os");
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.csv", spec.name));
        fs::write(&path, spec.to_csv())?;
        Ok(path)
    }

    /// Reads an OS support spec back from CSV.
    ///
    /// # Errors
    ///
    /// I/O failures and unknown syscalls in the file.
    pub fn load_os_spec(&self, name: &str) -> Result<Option<OsSpec>, DbError> {
        let path = self.shared.root.join("os").join(format!("{name}.csv"));
        match fs::read_to_string(&path) {
            Ok(text) => {
                OsSpec::from_csv(name, "db", &text)
                    .map(Some)
                    .map_err(|e| DbError::Corrupt {
                        path,
                        message: e.to_string(),
                    })
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    // ----- cache manifest: provenance, currency, invalidation -----

    /// Whether the artifact at `(namespace, key)` is *current*: it has
    /// recorded provenance and every recorded input fingerprint equals
    /// the freshly computed one. Artifacts without provenance (raw
    /// saves, pre-manifest databases) are never current.
    pub fn is_current(
        &self,
        namespace: &str,
        key: &str,
        inputs: &BTreeMap<String, Fingerprint>,
    ) -> bool {
        self.shared.with_manifest(|s| {
            s.manifest
                .records
                .get(namespace)
                .and_then(|records| records.get(key))
                .and_then(|rec| rec.inputs.as_ref())
                .is_some_and(|recorded| recorded == inputs)
        })
    }

    /// Attaches provenance (and optional metadata) to an existing
    /// artifact record — called by sweep stages right after a save, once
    /// they know which inputs produced the artifact. A no-op if no
    /// record exists.
    pub fn record_provenance(
        &self,
        namespace: &str,
        key: &str,
        inputs: BTreeMap<String, Fingerprint>,
        meta: BTreeMap<String, String>,
    ) {
        self.shared.with_manifest(|s| {
            let Some(rec) = s
                .manifest
                .records
                .get_mut(namespace)
                .and_then(|records| records.get_mut(key))
            else {
                return;
            };
            if rec.inputs.as_ref() == Some(&inputs) && rec.meta == meta {
                return;
            }
            rec.inputs = Some(inputs);
            rec.meta = meta;
            s.dirty = true;
        });
    }

    /// The recorded output fingerprint of `(namespace, key)`, if any.
    pub fn recorded_output(&self, namespace: &str, key: &str) -> Option<Fingerprint> {
        self.shared.with_manifest(|s| {
            s.manifest
                .records
                .get(namespace)
                .and_then(|records| records.get(key))
                .map(|rec| rec.output)
        })
    }

    /// The recorded input fingerprints of `(namespace, key)`, if any.
    pub fn recorded_inputs(
        &self,
        namespace: &str,
        key: &str,
    ) -> Option<BTreeMap<String, Fingerprint>> {
        self.shared.with_manifest(|s| {
            s.manifest
                .records
                .get(namespace)
                .and_then(|records| records.get(key))
                .and_then(|rec| rec.inputs.clone())
        })
    }

    /// The recorded metadata of `(namespace, key)`, if a record exists.
    pub fn recorded_meta(&self, namespace: &str, key: &str) -> Option<BTreeMap<String, String>> {
        self.shared.with_manifest(|s| {
            s.manifest
                .records
                .get(namespace)
                .and_then(|records| records.get(key))
                .map(|rec| rec.meta.clone())
        })
    }

    /// Force-invalidates provenance: every record whose key matches the
    /// given OS and/or app filters (both `None` = everything) loses its
    /// inputs, so the next sweep re-measures it. Artifact files are
    /// untouched. Returns `(namespace, records invalidated)` for every
    /// tracked namespace.
    pub fn invalidate_matching(&self, os: Option<&str>, app: Option<&str>) -> Vec<(String, usize)> {
        self.shared.with_manifest(|s| {
            let mut out = Vec::new();
            for namespace in ns::ALL {
                let mut count = 0;
                if let Some(records) = s.manifest.records.get_mut(*namespace) {
                    for (key, rec) in records.iter_mut() {
                        if rec.inputs.is_none() || !key_matches(namespace, key, os, app) {
                            continue;
                        }
                        rec.inputs = None;
                        count += 1;
                        s.dirty = true;
                    }
                }
                out.push(((*namespace).to_owned(), count));
            }
            out
        })
    }

    /// Per-namespace `(entries tracked, entries with provenance)` counts.
    pub fn cache_entry_counts(&self) -> Vec<(String, usize, usize)> {
        self.shared.with_manifest(|s| {
            ns::ALL
                .iter()
                .map(|namespace| {
                    let (total, with) = s
                        .manifest
                        .records
                        .get(*namespace)
                        .map(|records| {
                            (
                                records.len(),
                                records.values().filter(|r| r.inputs.is_some()).count(),
                            )
                        })
                        .unwrap_or((0, 0));
                    ((*namespace).to_owned(), total, with)
                })
                .collect()
        })
    }

    /// Records a cache hit for this session's counters.
    pub fn note_hit(&self, namespace: &str) {
        self.shared.stats.lock().expect("stats lock").hit(namespace);
    }

    /// Records a cache miss (nothing stored) for this session.
    pub fn note_miss(&self, namespace: &str) {
        self.shared
            .stats
            .lock()
            .expect("stats lock")
            .miss(namespace);
    }

    /// Records a stale recomputation (stored but outdated) for this
    /// session.
    pub fn note_stale(&self, namespace: &str) {
        self.shared
            .stats
            .lock()
            .expect("stats lock")
            .stale(namespace);
    }

    /// This session's accumulated cache counters.
    pub fn session_cache_stats(&self) -> CacheStats {
        self.shared.stats.lock().expect("stats lock").clone()
    }

    /// Persists this session's counters as the manifest's "last sweep"
    /// stats (shown by `loupe cache stats`) and flushes the manifest.
    ///
    /// # Errors
    ///
    /// I/O and serialisation failures.
    pub fn persist_sweep_stats(&self) -> Result<(), DbError> {
        let stats = self.session_cache_stats();
        self.shared.with_manifest(|s| {
            if s.manifest.last_sweep.as_ref() != Some(&stats) {
                s.manifest.last_sweep = Some(stats);
                s.dirty = true;
            }
        });
        self.flush()
    }

    /// The counters persisted by the last completed sweep, if any.
    pub fn last_sweep_stats(&self) -> Option<CacheStats> {
        self.shared.with_manifest(|s| s.manifest.last_sweep.clone())
    }

    /// Writes the manifest to disk if it changed. Also runs on drop;
    /// call it explicitly when the error matters.
    ///
    /// # Errors
    ///
    /// I/O and serialisation failures.
    pub fn flush(&self) -> Result<(), DbError> {
        self.shared.flush_manifest()
    }
}

/// Whether a record key refers to the given OS and/or app, decoded per
/// namespace key shape. A `None` filter matches everything; a set
/// filter matches only namespaces whose keys carry that dimension
/// (baselines have no OS, plans no app).
fn key_matches(namespace: &str, key: &str, os: Option<&str>, app: Option<&str>) -> bool {
    let mut segs = key.split('/');
    let first = segs.next();
    let second = segs.next();
    let third = segs.next();
    let (key_os, key_app) = match namespace {
        ns::BASELINES => (None, first),
        ns::ENV | ns::MATRIX => (first, second),
        ns::SUITES => (first, third),
        ns::STATIC => (None, second),
        ns::PLANS => (first, None),
        _ => (None, None),
    };
    os.is_none_or(|want| key_os == Some(want)) && app.is_none_or(|want| key_app == Some(want))
}

/// Conservative merge of two measurements of the same (app, workload):
/// traced counts accumulate; stub/fake capability is the logical AND
/// (anything that failed once is not safe); confirmation requires both;
/// conflict lists union (a conflict seen once is real); impact
/// annotations keep the worst observation of every metric; run
/// accounting accumulates (the merged entry cost both analyses).
pub fn merge_reports(a: &AppReport, b: &AppReport) -> AppReport {
    let mut merged = a.clone();
    merged.stats.absorb(&b.stats);
    for (s, n) in &b.traced {
        *merged.traced.entry(*s).or_insert(0) += *n;
    }
    // Fallback requirements union: a fallback path observed by either
    // measurement must be honoured by plans built on the merged entry.
    merged.fallbacks = a.fallbacks.union(&b.fallbacks);
    // Environment boundary counters accumulate like traced counts; the
    // first rejection of the earlier measurement stays first.
    for (s, n) in &b.rejections {
        *merged.rejections.entry(*s).or_insert(0) += *n;
    }
    for (s, n) in &b.fake_hits {
        *merged.fake_hits.entry(*s).or_insert(0) += *n;
    }
    if merged.first_rejection.is_none() {
        merged.first_rejection = b.first_rejection;
    }
    for (s, class_b) in &b.classes {
        let entry = merged.classes.entry(*s).or_insert(*class_b);
        *entry = FeatureClass {
            stub_ok: entry.stub_ok && class_b.stub_ok,
            fake_ok: entry.fake_ok && class_b.fake_ok,
        };
    }
    // Conflicts union, keeping a's feature order and appending b's new
    // entries in b's order: a feature that conflicted in either
    // measurement stays flagged in the merged entry.
    for s in &b.conflicts {
        if !merged.conflicts.contains(s) {
            merged.conflicts.push(*s);
        }
    }
    for (s, rec_b) in &b.impacts {
        let entry = merged.impacts.entry(*s).or_default();
        entry.stub = merge_impact(entry.stub, rec_b.stub);
        entry.fake = merge_impact(entry.fake, rec_b.fake);
    }
    for (key, class_b) in &b.sub_features {
        match merged.sub_features.iter_mut().find(|(k, _)| k == key) {
            Some((_, c)) => {
                *c = FeatureClass {
                    stub_ok: c.stub_ok && class_b.stub_ok,
                    fake_ok: c.fake_ok && class_b.fake_ok,
                }
            }
            None => merged.sub_features.push((*key, *class_b)),
        }
    }
    for (path, class_b) in &b.pseudo_files {
        let entry = merged.pseudo_files.entry(path.clone()).or_insert(*class_b);
        *entry = FeatureClass {
            stub_ok: entry.stub_ok && class_b.stub_ok,
            fake_ok: entry.fake_ok && class_b.fake_ok,
        };
    }
    merged.confirmed = a.confirmed && b.confirmed;
    merged
}

/// Conservative merge of two optional impact observations of the same
/// (syscall, mode): success only if every measured run succeeded, and
/// for each metric the worst (largest-magnitude) observed deviation —
/// repeated measurement must never make an impact look milder.
fn merge_impact(a: Option<Impact>, b: Option<Impact>) -> Option<Impact> {
    let worst = |x: f64, y: f64| if y.abs() > x.abs() { y } else { x };
    match (a, b) {
        (Some(a), Some(b)) => Some(Impact {
            success: a.success && b.success,
            tests_passed: match (a.tests_passed, b.tests_passed) {
                (Some(x), Some(y)) => Some(x && y),
                (known, None) | (None, known) => known,
            },
            perf_delta: worst(a.perf_delta, b.perf_delta),
            rss_delta: worst(a.rss_delta, b.rss_delta),
            fd_delta: worst(a.fd_delta, b.fd_delta),
        }),
        (only, None) | (None, only) => only,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loupe_apps::registry;
    use loupe_core::{AnalysisConfig, Engine, ImpactRecord};
    use std::collections::BTreeMap;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("loupedb-test-{tag}-{}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        dir
    }

    fn sample_report() -> AppReport {
        let app = registry::find("hello-musl-static").unwrap();
        Engine::new(AnalysisConfig::fast())
            .analyze(app.as_ref(), Workload::HealthCheck)
            .unwrap()
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = tmpdir("roundtrip");
        let db = Database::open(&dir).unwrap();
        let report = sample_report();
        db.save(&report).unwrap();
        let back = db
            .load(&report.app, Workload::HealthCheck)
            .unwrap()
            .unwrap();
        assert_eq!(back, report);
        assert_eq!(db.list().unwrap().len(), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn suite_namespace_roundtrips_and_stays_segregated() {
        let dir = tmpdir("suites");
        let db = Database::open(&dir).unwrap();
        let report = sample_report();
        db.save(&report).unwrap();

        let spec = loupe_plan::os::find("kerla").unwrap();
        let suite = ConformanceSuite::generate(&spec, &report, None);
        db.save_suite(&suite).unwrap();

        // Roundtrip is exact; overwriting replaces rather than merges.
        let back = db
            .load_suite("kerla", &report.app, Workload::HealthCheck)
            .unwrap()
            .unwrap();
        assert_eq!(back, suite);
        let mut rewritten = suite.clone();
        rewritten.cases.truncate(1);
        db.save_suite(&rewritten).unwrap();
        let back = db
            .load_suite("kerla", &report.app, Workload::HealthCheck)
            .unwrap()
            .unwrap();
        assert_eq!(back, rewritten, "suites overwrite, not merge");

        // The gentests namespace is invisible to the baseline listing,
        // and the bulk loaders see exactly the stored triples.
        assert_eq!(db.list().unwrap().len(), 1);
        assert_eq!(
            db.list_suites().unwrap(),
            vec![(
                "kerla".to_owned(),
                report.app.clone(),
                Workload::HealthCheck
            )]
        );
        assert_eq!(db.load_suites().unwrap(), vec![rewritten]);
        assert!(db
            .load_suite("gvisor", &report.app, Workload::HealthCheck)
            .unwrap()
            .is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn merge_is_conservative() {
        let report = sample_report();
        let mut looser = report.clone();
        let first = *looser.classes.keys().next().unwrap();
        looser.classes.insert(
            first,
            FeatureClass {
                stub_ok: true,
                fake_ok: true,
            },
        );
        let mut stricter = report.clone();
        stricter.classes.insert(
            first,
            FeatureClass {
                stub_ok: false,
                fake_ok: true,
            },
        );
        // Conflicts seen by only one measurement must survive the merge
        // (regression: merge_reports used to drop b's conflicts wholesale).
        let second = *report.classes.keys().nth(1).unwrap();
        looser.conflicts = vec![first];
        stricter.conflicts = vec![first, second];
        // Impacts too: one side measured a stub impact the other missed,
        // and where both measured, the worse observation must win.
        let mild = Impact {
            success: true,
            tests_passed: Some(true),
            perf_delta: 0.01,
            rss_delta: 0.0,
            fd_delta: 0.0,
        };
        let harsh = Impact {
            success: false,
            tests_passed: Some(false),
            perf_delta: -0.40,
            rss_delta: 0.10,
            fd_delta: 0.0,
        };
        looser.impacts.clear();
        stricter.impacts.clear();
        looser.impacts.insert(
            first,
            ImpactRecord {
                stub: Some(mild),
                fake: None,
            },
        );
        stricter.impacts.insert(
            first,
            ImpactRecord {
                stub: Some(harsh),
                fake: None,
            },
        );
        stricter.impacts.insert(
            second,
            ImpactRecord {
                stub: None,
                fake: Some(mild),
            },
        );

        let merged = merge_reports(&looser, &stricter);
        let class = merged.classes[&first];
        assert!(!class.stub_ok, "one failed stub disqualifies");
        assert!(class.fake_ok);
        // Counts accumulate — including the run accounting.
        assert_eq!(merged.traced[&first], report.traced[&first] * 2);
        assert_eq!(
            merged.stats.total_runs(),
            report.stats.total_runs() * 2,
            "a merged entry cost both analyses"
        );
        assert_eq!(
            merged.conflicts,
            vec![first, second],
            "conflict lists union, keeping feature order"
        );
        let rec = merged.impacts[&first];
        let stub = rec.stub.expect("stub impact survives the merge");
        assert!(!stub.success, "one failed observation disqualifies");
        assert_eq!(stub.tests_passed, Some(false));
        assert_eq!(stub.perf_delta, -0.40, "worst deviation wins");
        assert_eq!(stub.rss_delta, 0.10);
        assert_eq!(
            merged.impacts[&second].fake,
            Some(mild),
            "an impact measured on only one side is kept"
        );
    }

    #[test]
    fn saving_twice_merges() {
        let dir = tmpdir("merge");
        let db = Database::open(&dir).unwrap();
        let report = sample_report();
        db.save(&report).unwrap();
        db.save(&report).unwrap();
        let back = db
            .load(&report.app, Workload::HealthCheck)
            .unwrap()
            .unwrap();
        let first = *report.traced.keys().next().unwrap();
        assert_eq!(back.traced[&first], report.traced[&first] * 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn os_spec_roundtrip() {
        let dir = tmpdir("os");
        let db = Database::open(&dir).unwrap();
        let spec = loupe_plan::os::find("kerla").unwrap();
        db.save_os_spec(&spec).unwrap();
        let back = db.load_os_spec("kerla").unwrap().unwrap();
        assert_eq!(back.supported, spec.supported);
        assert!(db.load_os_spec("nonexistent").unwrap().is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn plan_validation_roundtrip_and_listing() {
        use loupe_plan::{InitialVerdict, StepVerdict, SupportPlan};
        let dir = tmpdir("plans");
        let db = Database::open(&dir).unwrap();
        assert!(db.list_plan_validations().unwrap().is_empty());
        let validation = PlanValidation {
            os: "kerla".into(),
            workload: Workload::HealthCheck,
            plan: SupportPlan {
                os: "kerla".into(),
                initially_supported: vec!["hello".into()],
                steps: vec![],
            },
            initial: vec![InitialVerdict {
                app: "hello".into(),
                passes: true,
            }],
            steps: vec![StepVerdict {
                index: 1,
                app: "redis".into(),
                unlocked: true,
                locked_before: Some(true),
            }],
        };
        db.save_plan_validation(&validation).unwrap();
        let back = db
            .load_plan_validation("kerla", Workload::HealthCheck)
            .unwrap()
            .unwrap();
        assert_eq!(back, validation);
        assert_eq!(
            db.list_plan_validations().unwrap(),
            vec![("kerla".to_owned(), Workload::HealthCheck)]
        );
        assert!(db
            .load_plan_validation("kerla", Workload::Benchmark)
            .unwrap()
            .is_none());
        // Validations live outside the measurement namespace.
        assert!(db.list().unwrap().is_empty());
        // Re-saving overwrites (no merge): one deterministic replay.
        let mut second = validation.clone();
        second.steps[0].unlocked = false;
        db.save_plan_validation(&second).unwrap();
        let back = db
            .load_plan_validation("kerla", Workload::HealthCheck)
            .unwrap()
            .unwrap();
        assert_eq!(back, second);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restricted_env_reports_are_segregated_from_baselines() {
        let dir = tmpdir("env-seg");
        let db = Database::open(&dir).unwrap();
        let mut restricted = sample_report();
        restricted.env = "kerla-step3".into();
        db.save(&restricted).unwrap();

        // The dynamic (baseline) path must not see it: the cache key now
        // includes the execution environment.
        assert!(db
            .load(&restricted.app, Workload::HealthCheck)
            .unwrap()
            .is_none());
        assert!(!db.contains(&restricted.app, Workload::HealthCheck));
        assert!(db.list().unwrap().is_empty());
        // But the segregated namespace holds it.
        let back = db
            .load_env("kerla-step3", &restricted.app, Workload::HealthCheck)
            .unwrap()
            .unwrap();
        assert_eq!(back, restricted);

        // Saving the Linux baseline afterwards does not merge with the
        // restricted entry: both coexist, each under its own key.
        let baseline = sample_report();
        db.save(&baseline).unwrap();
        let served = db
            .load(&baseline.app, Workload::HealthCheck)
            .unwrap()
            .unwrap();
        assert_eq!(served, baseline, "baseline unpolluted by restricted run");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_restricted_entry_at_baseline_path_is_rejected() {
        // A database written before the env segregation could hold a
        // restricted-kernel measurement at the baseline path. The dynamic
        // load must reject (not serve) it, and a fresh save self-heals.
        let dir = tmpdir("env-legacy");
        let db = Database::open(&dir).unwrap();
        let mut stale = sample_report();
        stale.env = "restricted-os".into();
        let path = dir.join(&stale.app).join("health.json");
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, serde_json::to_string(&stale).unwrap()).unwrap();

        assert!(
            db.load(&stale.app, Workload::HealthCheck)
                .unwrap()
                .is_none(),
            "restricted entry must not be served as a Linux baseline"
        );
        let fresh = sample_report();
        db.save(&fresh).unwrap();
        let served = db.load(&fresh.app, Workload::HealthCheck).unwrap().unwrap();
        assert_eq!(
            served, fresh,
            "fresh baseline overwrites the stale entry instead of merging"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn static_reports_live_in_their_own_level_keyed_namespace() {
        use loupe_static::{BinaryAnalyzer, SourceAnalyzer, StaticAnalyzer};
        let dir = tmpdir("static");
        let db = Database::open(&dir).unwrap();
        let app = registry::find("redis").unwrap();
        let bin = BinaryAnalyzer::new().analyze(app.as_ref());
        let src = SourceAnalyzer::new().analyze(app.as_ref());
        db.save_static(&bin).unwrap();
        db.save_static(&src).unwrap();

        // Levels do not collide with each other…
        assert_eq!(
            db.load_static(Level::Binary, "redis").unwrap().unwrap(),
            bin
        );
        assert_eq!(
            db.load_static(Level::Source, "redis").unwrap().unwrap(),
            src
        );
        assert!(db.contains_static(Level::Binary, "redis"));
        assert!(!db.contains_static(Level::Binary, "ghost"));
        assert_eq!(
            db.list_static().unwrap(),
            vec![
                (Level::Binary, "redis".to_owned()),
                (Level::Source, "redis".to_owned())
            ]
        );
        assert_eq!(db.load_static_level(Level::Source).unwrap(), vec![src]);
        // …nor with the dynamic namespace: no measurement entries exist.
        assert!(db.list().unwrap().is_empty());
        assert!(db.load("redis", Workload::HealthCheck).unwrap().is_none());

        // Re-saving overwrites (pure function, no merge).
        let mut altered = bin.clone();
        altered.syscalls = loupe_syscalls::SysnoSet::new();
        db.save_static(&altered).unwrap();
        assert_eq!(
            db.load_static(Level::Binary, "redis").unwrap().unwrap(),
            altered
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn matrix_cells_roundtrip_compose_and_stay_segregated() {
        use loupe_plan::{MatrixCell, TierOutcome};
        let dir = tmpdir("matrix");
        let db = Database::open(&dir).unwrap();
        assert!(db.list_matrix_cells().unwrap().is_empty());

        let vanilla_only = MatrixCell {
            os: "kerla".into(),
            app: "redis".into(),
            workload: Workload::HealthCheck,
            linux_pass: true,
            missing_required: [loupe_syscalls::Sysno::futex].into_iter().collect(),
            vanilla: Some(TierOutcome {
                pass: false,
                rejections: [(loupe_syscalls::Sysno::futex, 3)].into_iter().collect(),
                fake_hits: BTreeMap::new(),
                first_rejection: Some(loupe_syscalls::Sysno::futex),
                flag_rejections: Vec::new(),
                flag_fake_hits: Vec::new(),
                first_rejected_flag: None,
            }),
            planned: None,
            missing_required_flags: Vec::new(),
        };
        db.save_matrix_cell(&vanilla_only).unwrap();
        let back = db
            .load_matrix_cell("kerla", "redis", Workload::HealthCheck)
            .unwrap()
            .unwrap();
        assert_eq!(back, vanilla_only);

        // A later planned-tier measurement composes with the stored
        // vanilla verdict instead of clobbering it.
        let planned_only = MatrixCell {
            vanilla: None,
            planned: Some(TierOutcome {
                pass: true,
                ..TierOutcome::default()
            }),
            ..vanilla_only.clone()
        };
        db.save_matrix_cell(&planned_only).unwrap();
        let composed = db
            .load_matrix_cell("kerla", "redis", Workload::HealthCheck)
            .unwrap()
            .unwrap();
        assert_eq!(composed.vanilla, vanilla_only.vanilla, "vanilla kept");
        assert_eq!(composed.planned, planned_only.planned, "planned added");

        // Listing and bulk load see the cell; the measurement namespaces
        // (baseline and env) do not.
        assert_eq!(
            db.list_matrix_cells().unwrap(),
            vec![(
                "kerla".to_owned(),
                "redis".to_owned(),
                Workload::HealthCheck
            )]
        );
        assert_eq!(db.load_matrix().unwrap(), vec![composed]);
        assert!(db.list().unwrap().is_empty());
        assert!(db.load("redis", Workload::HealthCheck).unwrap().is_none());
        assert!(db
            .load_env("kerla", "redis", Workload::HealthCheck)
            .unwrap()
            .is_none());
        assert!(db
            .load_matrix_cell("kerla", "redis", Workload::Benchmark)
            .unwrap()
            .is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn matrix_cells_coexist_with_env_reports_of_the_same_os() {
        use loupe_plan::MatrixCell;
        let dir = tmpdir("matrix-env");
        let db = Database::open(&dir).unwrap();
        let mut restricted = sample_report();
        restricted.env = "kerla".into();
        db.save(&restricted).unwrap();
        let cell = MatrixCell {
            os: "kerla".into(),
            app: restricted.app.clone(),
            workload: Workload::HealthCheck,
            linux_pass: true,
            missing_required: loupe_syscalls::SysnoSet::new(),
            vanilla: None,
            planned: None,
            missing_required_flags: Vec::new(),
        };
        db.save_matrix_cell(&cell).unwrap();
        // Both live under env/kerla/ without shadowing each other.
        assert!(db
            .load_env("kerla", &restricted.app, Workload::HealthCheck)
            .unwrap()
            .is_some());
        assert_eq!(db.load_matrix().unwrap(), vec![cell]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_entry_is_none() {
        let dir = tmpdir("missing");
        let db = Database::open(&dir).unwrap();
        assert!(db.load("ghost", Workload::Benchmark).unwrap().is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn provenance_lifecycle_tracks_saves_and_invalidation() {
        let dir = tmpdir("provenance");
        let db = Database::open(&dir).unwrap();
        let report = sample_report();
        let key = baseline_key(&report.app, report.workload);
        let mut inputs = BTreeMap::new();
        inputs.insert("app".to_owned(), fingerprint_of(&report.app));

        // Before any save: no record, nothing current.
        assert!(db.recorded_output(ns::BASELINES, &key).is_none());
        assert!(!db.is_current(ns::BASELINES, &key, &inputs));

        // A raw save records the output but no provenance — the artifact
        // exists, yet is not current until a stage attaches inputs.
        db.save(&report).unwrap();
        let output = db.recorded_output(ns::BASELINES, &key).unwrap();
        assert_eq!(output, fingerprint_of(&report));
        assert!(db.recorded_inputs(ns::BASELINES, &key).is_none());
        assert!(!db.is_current(ns::BASELINES, &key, &inputs));

        db.record_provenance(
            ns::BASELINES,
            &key,
            inputs.clone(),
            [("note".to_owned(), "x".to_owned())].into(),
        );
        assert!(db.is_current(ns::BASELINES, &key, &inputs));
        assert_eq!(
            db.recorded_inputs(ns::BASELINES, &key),
            Some(inputs.clone())
        );
        assert_eq!(db.recorded_meta(ns::BASELINES, &key).unwrap()["note"], "x");
        // Different inputs → not current.
        let mut other = inputs.clone();
        other.insert("extra".to_owned(), fingerprint_of(&1u64));
        assert!(!db.is_current(ns::BASELINES, &key, &other));

        // A subsequent save changes the content (merge doubles counts),
        // so the provenance is wiped until re-attached.
        db.save(&report).unwrap();
        assert!(!db.is_current(ns::BASELINES, &key, &inputs));
        assert_ne!(db.recorded_output(ns::BASELINES, &key), Some(output));

        // Provenance survives a flush + reopen (manifest.json).
        db.record_provenance(ns::BASELINES, &key, inputs.clone(), BTreeMap::new());
        drop(db);
        let db = Database::open(&dir).unwrap();
        assert!(db.is_current(ns::BASELINES, &key, &inputs));

        // Force-invalidation strips provenance without touching files.
        let counts = db.invalidate_matching(None, Some(&report.app));
        assert!(counts.contains(&(ns::BASELINES.to_owned(), 1)));
        assert!(!db.is_current(ns::BASELINES, &key, &inputs));
        assert!(db.load(&report.app, report.workload).unwrap().is_some());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn invalidation_filters_respect_key_shapes() {
        assert!(key_matches(
            ns::MATRIX,
            "kerla/redis/health",
            Some("kerla"),
            None
        ));
        assert!(!key_matches(
            ns::MATRIX,
            "gvisor/redis/health",
            Some("kerla"),
            None
        ));
        assert!(key_matches(
            ns::MATRIX,
            "kerla/redis/health",
            None,
            Some("redis")
        ));
        assert!(key_matches(
            ns::SUITES,
            "kerla/health/redis",
            Some("kerla"),
            Some("redis")
        ));
        assert!(!key_matches(
            ns::SUITES,
            "kerla/health/redis",
            None,
            Some("health")
        ));
        assert!(key_matches(
            ns::BASELINES,
            "redis/health",
            None,
            Some("redis")
        ));
        // Baselines carry no OS dimension: an --os filter never hits them.
        assert!(!key_matches(
            ns::BASELINES,
            "redis/health",
            Some("kerla"),
            None
        ));
        assert!(key_matches(ns::PLANS, "kerla/health", Some("kerla"), None));
        assert!(!key_matches(ns::PLANS, "kerla/health", None, Some("redis")));
        assert!(key_matches(ns::STATIC, "binary/redis", None, Some("redis")));
        // No filters → everything matches.
        assert!(key_matches(ns::MATRIX, "kerla/redis/health", None, None));
    }

    #[test]
    fn concurrent_tier_saves_do_not_drop_a_tier() {
        use loupe_plan::{MatrixCell, TierOutcome};
        // Regression: save_matrix_cell composes read-modify-write; two
        // concurrent single-tier saves used to be able to interleave so
        // the second read missed the first write, dropping a tier.
        let dir = tmpdir("race");
        let db = Database::open(&dir).unwrap();
        let base = MatrixCell {
            os: "kerla".into(),
            app: "redis".into(),
            workload: Workload::HealthCheck,
            linux_pass: true,
            missing_required: loupe_syscalls::SysnoSet::new(),
            vanilla: None,
            planned: None,
            missing_required_flags: Vec::new(),
        };
        for round in 0..16 {
            let vanilla = MatrixCell {
                app: format!("redis{round}"),
                vanilla: Some(TierOutcome {
                    pass: true,
                    ..TierOutcome::default()
                }),
                ..base.clone()
            };
            let planned = MatrixCell {
                app: format!("redis{round}"),
                planned: Some(TierOutcome {
                    pass: false,
                    ..TierOutcome::default()
                }),
                ..base.clone()
            };
            let (db1, db2) = (db.clone(), db.clone());
            let t1 = std::thread::spawn(move || db1.save_matrix_cell(&vanilla).unwrap());
            let t2 = std::thread::spawn(move || db2.save_matrix_cell(&planned).unwrap());
            t1.join().unwrap();
            t2.join().unwrap();
            let cell = db
                .load_matrix_cell("kerla", &format!("redis{round}"), Workload::HealthCheck)
                .unwrap()
                .unwrap();
            assert!(cell.vanilla.is_some(), "vanilla tier lost in round {round}");
            assert!(cell.planned.is_some(), "planned tier lost in round {round}");
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn point_reads_decode_lazily_from_the_mapped_index() {
        use loupe_plan::{MatrixCell, TierOutcome};
        let dir = tmpdir("lazypoint");
        let db = Database::open(&dir).unwrap();
        for app in ["alpha", "beta"] {
            db.save_matrix_cell(&MatrixCell {
                os: "kerla".into(),
                app: app.into(),
                workload: Workload::HealthCheck,
                linux_pass: true,
                missing_required: loupe_syscalls::SysnoSet::new(),
                vanilla: Some(TierOutcome {
                    pass: true,
                    ..TierOutcome::default()
                }),
                planned: None,
                missing_required_flags: Vec::new(),
            })
            .unwrap();
        }
        db.load_matrix().unwrap(); // materialise the binary index
        drop(db);

        // Remove one JSON entry out-of-band WITHOUT touching the
        // manifest: the index still matches the recorded state, so a
        // fresh process's *point* read must be served from the mapped
        // snapshot — no bulk decode, no JSON file needed.
        fs::remove_file(
            dir.join("env")
                .join("kerla")
                .join("matrix")
                .join("alpha")
                .join("health.json"),
        )
        .unwrap();
        let db = Database::open(&dir).unwrap();
        let cell = db
            .load_matrix_cell("kerla", "alpha", Workload::HealthCheck)
            .unwrap()
            .expect("point read served from the mapped index");
        assert_eq!(cell.app, "alpha");
        // A key the index does not hold falls back to JSON (absent).
        assert!(db
            .load_matrix_cell("kerla", "gamma", Workload::HealthCheck)
            .unwrap()
            .is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn binary_snapshot_serves_bulk_reads_and_heals_on_corruption() {
        use loupe_plan::{MatrixCell, TierOutcome};
        let dir = tmpdir("binsnap");
        let db = Database::open(&dir).unwrap();
        let mut cells = Vec::new();
        for app in ["alpha", "beta", "gamma"] {
            let cell = MatrixCell {
                os: "kerla".into(),
                app: app.into(),
                workload: Workload::Benchmark,
                linux_pass: true,
                missing_required: loupe_syscalls::SysnoSet::new(),
                vanilla: Some(TierOutcome {
                    pass: app != "beta",
                    ..TierOutcome::default()
                }),
                planned: None,
                missing_required_flags: Vec::new(),
            };
            db.save_matrix_cell(&cell).unwrap();
            cells.push(cell);
        }
        let loaded = db.load_matrix().unwrap();
        assert_eq!(loaded, cells);
        let bin = dir.join("index").join("matrix.bin");
        assert!(bin.is_file(), "bulk load materialises the binary index");
        drop(db);

        // A fresh process serves the same bytes from the snapshot.
        let db = Database::open(&dir).unwrap();
        assert_eq!(db.load_matrix().unwrap(), cells);
        drop(db);

        // Corrupting the snapshot only costs a rebuild, never wrong data.
        fs::write(&bin, b"LOUPEBINgarbage").unwrap();
        let db = Database::open(&dir).unwrap();
        assert_eq!(db.load_matrix().unwrap(), cells);
        drop(db);

        // An out-of-band JSON edit is invisible while the snapshot still
        // matches the manifest (documented limitation); the remedy —
        // deleting the index — forces a rebuild that sees the new truth
        // and clears the edited cell's provenance.
        let db = Database::open(&dir).unwrap();
        db.record_provenance(
            ns::MATRIX,
            &matrix_key("kerla", "beta", Workload::Benchmark),
            BTreeMap::new(),
            BTreeMap::new(),
        );
        drop(db);
        let path = dir
            .join("env")
            .join("kerla")
            .join("matrix")
            .join("beta")
            .join("bench.json");
        let mut edited = cells[1].clone();
        edited.linux_pass = false;
        fs::write(&path, serde_json::to_string_pretty(&edited).unwrap()).unwrap();
        fs::remove_file(&bin).unwrap();

        let db = Database::open(&dir).unwrap();
        let reloaded = db.load_matrix().unwrap();
        assert_eq!(reloaded[1], edited, "rebuild sees the out-of-band edit");
        assert!(
            db.recorded_inputs(
                ns::MATRIX,
                &matrix_key("kerla", "beta", Workload::Benchmark)
            )
            .is_none(),
            "rebuild clears provenance of out-of-band-edited artifacts"
        );
        fs::remove_dir_all(&dir).ok();
    }
}
